//! Value-generation strategies (subset of proptest's `Strategy` zoo).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Something that can generate values of an associated type from an RNG.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy maps an RNG state directly to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`. Panics if empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }

    /// An empty union, to be filled with [`Union::push`]. Used by
    /// `prop_oneof!` so all options share one inferred value type (boxing
    /// each option separately would let integer literals default to `i32`
    /// before unification).
    pub fn empty() -> Union<T> {
        Union {
            options: Vec::new(),
        }
    }

    /// Add an option.
    pub fn push<S: Strategy<Value = T> + 'static>(&mut self, option: S) {
        self.options.push(Box::new(option));
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (subset of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_tuple {
    ($($t:ident),*) => {
        impl<$($t: Arbitrary),*> Arbitrary for ($($t,)*) {
            fn arbitrary(rng: &mut TestRng) -> ($($t,)*) {
                ($($t::arbitrary(rng),)*)
            }
        }
    };
}
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);

macro_rules! strategy_tuple {
    ($(($t:ident, $i:tt)),*) => {
        impl<$($t: Strategy),*> Strategy for ($($t,)*) {
            type Value = ($($t::Value,)*);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)*)
            }
        }
    };
}
strategy_tuple!((A, 0), (B, 1));
strategy_tuple!((A, 0), (B, 1), (C, 2));
strategy_tuple!((A, 0), (B, 1), (C, 2), (D, 3));

macro_rules! strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as usize;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as usize;
                if span == usize::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
strategy_range!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        // Widening-multiply rejection, as in TestRng::below but for u64.
        let zone = (span << span.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) <= zone {
                return self.start + (m >> 64) as u64;
            }
        }
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as usize;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..200 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (1u8..=255).generate(&mut rng);
            assert!(w >= 1);
            let x = (5usize..6).generate(&mut rng);
            assert_eq!(x, 5);
            let y = (-3i32..3).generate(&mut rng);
            assert!((-3..3).contains(&y));
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = TestRng::deterministic("oneof", 0);
        let s = crate::prop_oneof![Just(1usize), Just(64)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn vec_lengths() {
        let mut rng = TestRng::deterministic("vec", 0);
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
