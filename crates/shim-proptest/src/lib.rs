//! Workspace-local stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset of its API this repository's property tests
//! use.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `proptest` dependency to this path crate instead (see the
//! root `Cargo.toml`). It keeps the same shape — `proptest! { fn t(x in
//! strategy) { .. } }` expands to a `#[test]` that samples each strategy
//! for a number of cases — but the implementation is intentionally small:
//!
//! * Sampling is **deterministic**: the RNG is seeded from the test name
//!   and case index, so every run and every machine explores the same
//!   cases. There is no failure persistence (`.proptest-regressions`) and
//!   no shrinking; a failing case panics with the `prop_assert!` message.
//! * Strategies cover integer ranges, `any::<T>()` for primitives and
//!   small tuples, `Just`, `prop_oneof!`, `prop_map`, and
//!   `collection::vec`.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `vec(element, size_range)` — strategy for vectors of strategy-generated
/// elements, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.end - self.size.start) + self.size.start;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for `Config::cases` sampled
/// inputs. An optional `#![proptest_config(expr)]` header overrides the
/// config for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @impl ($cfg); $($rest)* }
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        stringify!($name),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!{ @impl ($crate::test_runner::Config::default()); $($rest)* }
    };
}

/// Choose uniformly among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let mut __union = $crate::strategy::Union::empty();
        $(__union.push($strat);)+
        __union
    }};
}

/// Skip the current case when an assumption does not hold (expands to
/// `continue` on the case loop, so it must appear directly in the test
/// body, as in real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert a condition inside a property test (panics on failure, naming
/// the failing expression; this shim does not shrink).
///
/// Messages go through `format!` explicitly so implicit `{var}` captures
/// work even though this crate is edition 2018 (a bare `assert!` literal
/// would not be treated as a format string here).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            panic!("{}", format!($($fmt)*));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
