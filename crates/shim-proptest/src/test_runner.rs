//! Test configuration and the deterministic RNG behind the shim.

/// Per-block test configuration (subset of proptest's `Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of sampled cases per property.
    pub cases: u64,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u64) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// A small deterministic RNG (SplitMix64 stream seeded from the test name
/// and case index). Not cryptographic; stable across platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from the property name and case number, so every run of every
    /// build explores the same inputs.
    pub fn deterministic(name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Widening-multiply rejection keeps this unbiased.
        let n = n as u64;
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (n as u128);
            if (m as u64) <= zone {
                return (m >> 64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::deterministic("below", 0);
        for n in [1usize, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
    }
}
