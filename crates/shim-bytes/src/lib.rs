//! Workspace-local stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate, providing the subset of its API this repository uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `bytes` dependency to this path crate instead (see the
//! root `Cargo.toml`). Semantics match the real crate for the covered
//! surface: [`Bytes`] is a cheaply cloneable, sliceable, immutable byte
//! buffer; [`BytesMut`] is an append-only builder that freezes into a
//! [`Bytes`]; [`BufMut`] carries the big-endian `put_*` writers.
//!
//! On top of the `bytes` API this shim recycles buffers: builders draw
//! their backing storage from a thread-local size-classed [`pool`], and
//! when the last [`Bytes`] reference to a buffer drops, the storage goes
//! back to the pool instead of the allocator. Freezing is zero-copy — the
//! builder's vector is moved, never copied, into the shared buffer.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod pool;

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, sliceable view of a byte buffer.
///
/// Clones and sub-slices share one reference-counted allocation; no byte
/// data is copied after construction. Dropping the last reference offers
/// the allocation back to the thread-local [`pool`].
#[derive(Default)]
pub struct Bytes {
    data: Option<Arc<Vec<u8>>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation at all).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static byte slice. (This shim copies the bytes once; the
    /// real crate borrows them. Behaviour is otherwise identical.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copy `data` into a fresh buffer (pooled when a recycled one fits).
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let mut v = pool::acquire(data.len());
        v.extend_from_slice(data);
        Bytes::from(v)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation. Panics if the range is out
    /// of bounds, like the real crate.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "range {start}..{end} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }
}

impl Clone for Bytes {
    fn clone(&self) -> Bytes {
        Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.end,
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        // Last reference out offers the backing vector to the pool.
        if let Some(arc) = self.data.take() {
            if let Ok(v) = Arc::try_unwrap(arc) {
                if v.capacity() != 0 {
                    pool::reclaim(v);
                }
            }
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Some(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.data {
            Some(d) => &d[self.start..self.end],
            None => &[],
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        // The real crate has an owning iterator type; a Vec round-trip is
        // the simplest consuming equivalent here.
        #[allow(clippy::unnecessary_to_owned)]
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
///
/// The backing storage comes from the thread-local [`pool`] and returns
/// there when the buffer (or the last [`Bytes`] frozen from it) drops.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with at least `cap` bytes preallocated, recycled
    /// from the [`pool`] when a buffer of the right size class is free.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: pool::acquire(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append `src`.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.data.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`] without copying: the backing
    /// vector moves into the shared buffer as-is.
    pub fn freeze(mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.data))
    }
}

impl Drop for BytesMut {
    fn drop(&mut self) {
        let v = std::mem::take(&mut self.data);
        if v.capacity() != 0 {
            pool::reclaim(v);
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian append operations, as in the real crate's `BufMut`.
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a `u16`, big-endian.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a `u32`, big-endian.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a `u64`, big-endian.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append an `i32`, big-endian.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append an `i64`, big-endian.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(&s.slice(1..)[..], &[3, 4]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u16(0x0102);
        m.put_u32(0x03040506);
        m.put_slice(&[7]);
        assert_eq!(&m.freeze()[..], &[1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn freeze_is_zero_copy_and_drop_recycles() {
        pool::reset();
        let mut m = BytesMut::with_capacity(1000); // 1024 class, miss
        m.put_slice(&[1, 2, 3]);
        let b = m.freeze(); // moves the vector, no copy, no reclaim
        let c = b.clone();
        drop(b);
        assert_eq!(pool::stats().returned, 0, "still referenced by a clone");
        drop(c);
        assert_eq!(pool::stats().returned, 1, "last reference recycles");
        let again = BytesMut::with_capacity(700); // same 1024 class: pooled
        assert_eq!(pool::stats().recycled, 1);
        drop(again);
        pool::reset();
    }

    #[test]
    fn eq_and_debug() {
        let b = Bytes::from_static(b"ab\n");
        assert_eq!(b, Bytes::copy_from_slice(b"ab\n"));
        assert_eq!(format!("{b:?}"), "b\"ab\\n\"");
    }
}
