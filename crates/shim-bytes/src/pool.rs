//! Thread-local recycling buffer pool.
//!
//! Every packet the simulator moves lives in a heap buffer: the sender
//! builds it in a [`BytesMut`](crate::BytesMut), freezes it, and the frame
//! travels the stack as a [`Bytes`](crate::Bytes) until the last clone is
//! dropped. Without recycling that is one `malloc`/`free` pair per packet
//! — the dominant allocator traffic of a full-grid run. This module keeps
//! dropped buffers on size-classed free lists and hands them back to the
//! next [`BytesMut::with_capacity`](crate::BytesMut::with_capacity) or
//! [`Bytes::copy_from_slice`](crate::Bytes::copy_from_slice) call, so
//! steady-state packet flow allocates nothing.
//!
//! # Lifecycle
//!
//! 1. [`acquire`] rounds the requested capacity up to a power-of-two size
//!    class (64 B … 64 KiB) and pops that class's free list; on a miss it
//!    allocates a fresh `Vec` of the full class size so the buffer stays
//!    reusable for every future request of the class.
//! 2. The buffer circulates inside `Bytes` clones/slices as an
//!    `Arc<Vec<u8>>`; no bytes are copied after freeze.
//! 3. When the last reference drops, [`reclaim`] pushes the vector back
//!    onto its class list (capped at [`MAX_PER_CLASS`] buffers per class;
//!    beyond that, or for odd-sized foreign vectors, the buffer falls
//!    through to the allocator).
//!
//! # Determinism
//!
//! The pool only recycles host memory — which `Vec` backs a packet can
//! never reach simulated behaviour, timestamps or output. The free lists
//! are thread-local, so parallel grid jobs never contend or share state.
//! [`reset`] clears the lists and zeroes the [`Stats`] counters; the
//! experiment layer calls it at the start of every run so per-run
//! `sim.pool.*` metrics are a pure function of the run's configuration,
//! not of which runs happened to precede it on the same worker thread.
//!
//! Requests above the largest class are served straight from the
//! allocator and are not reclaimed; they count as
//! [`Stats::oversize`] rather than misses.

use std::cell::RefCell;

/// Smallest recycled capacity (one cache line's worth of header bytes).
const MIN_CLASS: usize = 64;
/// Largest recycled capacity — covers a jumbo frame (9000 B) with room
/// for reassembled multi-fragment messages.
const MAX_CLASS: usize = 64 * 1024;
/// Free-list cap per class: bounds worst-case pool memory at
/// `sum(class_size * MAX_PER_CLASS)` ≈ 8 MiB per thread.
const MAX_PER_CLASS: usize = 64;
/// Number of size classes: powers of two in `[MIN_CLASS, MAX_CLASS]`.
const CLASSES: usize = (MAX_CLASS.ilog2() - MIN_CLASS.ilog2() + 1) as usize;

/// Pool counters, cumulative since the last [`reset`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Acquisitions served by a recycled buffer (no allocation).
    pub recycled: u64,
    /// Acquisitions that had to allocate because the class list was empty.
    pub misses: u64,
    /// Buffers returned to a free list on drop.
    pub returned: u64,
    /// Buffers dropped to the allocator because their class list was full
    /// or their capacity fit no class.
    pub discarded: u64,
    /// Requests above the largest class, served unpooled.
    pub oversize: u64,
}

struct Pool {
    classes: [Vec<Vec<u8>>; CLASSES],
    stats: Stats,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool {
        classes: [const { Vec::new() }; CLASSES],
        stats: Stats::default(),
    });
}

/// Index of the class whose size is exactly `cap`, if any.
fn class_of(cap: usize) -> Option<usize> {
    if !(MIN_CLASS..=MAX_CLASS).contains(&cap) || !cap.is_power_of_two() {
        return None;
    }
    Some((cap.ilog2() - MIN_CLASS.ilog2()) as usize)
}

/// A vector with at least `cap` bytes of capacity, recycled when the
/// pool has one of the right class.
pub(crate) fn acquire(cap: usize) -> Vec<u8> {
    let class_size = cap.next_power_of_two().max(MIN_CLASS);
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let Some(class) = class_of(class_size) else {
            p.stats.oversize += 1;
            return Vec::with_capacity(cap);
        };
        match p.classes[class].pop() {
            Some(v) => {
                p.stats.recycled += 1;
                v
            }
            None => {
                p.stats.misses += 1;
                // Allocate the full class size so the buffer serves any
                // future request of the class when it comes back.
                Vec::with_capacity(class_size)
            }
        }
    })
}

/// Offer a no-longer-referenced vector back to its class list.
pub(crate) fn reclaim(v: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match class_of(v.capacity()) {
            Some(class) if p.classes[class].len() < MAX_PER_CLASS => {
                let mut v = v;
                v.clear();
                p.classes[class].push(v);
                p.stats.returned += 1;
            }
            _ => p.stats.discarded += 1,
        }
    })
}

/// This thread's pool counters since the last [`reset`].
pub fn stats() -> Stats {
    POOL.with(|p| p.borrow().stats)
}

/// Drop every pooled buffer on this thread and zero the counters.
///
/// Run this before a measured simulation so its `sim.pool.*` metrics (and
/// its allocator behaviour) do not depend on what ran earlier on the
/// thread.
pub fn reset() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        for c in &mut p.classes {
            c.clear();
        }
        p.stats = Stats::default();
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_recycles() {
        reset();
        let v = acquire(1000); // -> 1024 class, miss
        assert_eq!(v.capacity(), 1024);
        reclaim(v);
        let v2 = acquire(600); // same class, hit
        assert_eq!(v2.capacity(), 1024);
        let s = stats();
        assert_eq!((s.misses, s.returned, s.recycled), (1, 1, 1));
        reset();
    }

    #[test]
    fn small_and_oversize_requests_bypass_classes() {
        reset();
        let tiny = acquire(1); // rounds up to MIN_CLASS
        assert_eq!(tiny.capacity(), MIN_CLASS);
        let big = acquire(MAX_CLASS + 1);
        assert!(big.capacity() > MAX_CLASS);
        assert_eq!(stats().oversize, 1);
        reclaim(big); // no class fits: discarded
        assert_eq!(stats().discarded, 1);
        reset();
    }

    #[test]
    fn class_lists_are_bounded() {
        reset();
        for _ in 0..(MAX_PER_CLASS + 5) {
            reclaim(Vec::with_capacity(MIN_CLASS));
        }
        let s = stats();
        assert_eq!(s.returned, MAX_PER_CLASS as u64);
        assert_eq!(s.discarded, 5);
        reset();
    }

    #[test]
    fn foreign_capacities_are_not_pooled() {
        reset();
        reclaim(Vec::with_capacity(100)); // not a power of two
        assert_eq!(stats().discarded, 1);
        reset();
    }
}
