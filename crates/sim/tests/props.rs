//! Property-based tests of the DES engine's core invariants.

use clic_sim::stats::LatencyStats;
use clic_sim::{LogHistogram, Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always execute in nondecreasing time order, with FIFO order
    /// among equal timestamps, for arbitrary schedules.
    #[test]
    fn execution_order_sorted_stable(delays in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(d), move |s| {
                log.borrow_mut().push((s.now().as_ns(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among ties");
            }
        }
    }

    /// The clock never runs backwards even under nested scheduling.
    #[test]
    fn nested_scheduling_monotonic(seed in any::<u64>(), n in 1usize..50) {
        let mut sim = Sim::new(seed);
        let times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        fn spawn(sim: &mut Sim, times: Rc<RefCell<Vec<u64>>>, left: usize) {
            if left == 0 {
                return;
            }
            let delay = sim.rng.gen_range_u64(0..500);
            sim.schedule_in(SimDuration::from_ns(delay), move |s| {
                times.borrow_mut().push(s.now().as_ns());
                spawn(s, times.clone(), left - 1);
            });
        }
        spawn(&mut sim, times.clone(), n);
        sim.run();
        let times = times.borrow();
        prop_assert_eq!(times.len(), n);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(SimDuration::from_ns(s));
        }
        let p25 = stats.percentile(0.25).unwrap();
        let p50 = stats.percentile(0.5).unwrap();
        let p99 = stats.percentile(0.99).unwrap();
        prop_assert!(stats.min().unwrap() <= p25);
        prop_assert!(p25 <= p50);
        prop_assert!(p50 <= p99);
        prop_assert!(p99 <= stats.max().unwrap());
        let mean = stats.mean().unwrap();
        prop_assert!(stats.min().unwrap() <= mean && mean <= stats.max().unwrap());
    }

    /// Histogram conserves count and mean, and its quantiles stay within
    /// the observed min/max.
    #[test]
    fn histogram_conserves(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        let expect = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-6);
        let (lo, hi) = (*values.iter().min().unwrap() as f64, *values.iter().max().unwrap() as f64);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= lo && v <= hi, "q{} = {} outside [{}, {}]", q, v, lo, hi);
        }
    }

    /// `LogHistogram::quantile` against an exact sorted-sample reference:
    /// the extreme quantiles are exactly the true min/max, and every
    /// interior estimate lands in the same log2 bucket as the
    /// nearest-rank sample of the sorted data (the tightest guarantee a
    /// log-bucketed sketch can make), bounded by `[min, max]`.
    #[test]
    fn quantile_tracks_sorted_reference(values in proptest::collection::vec(0u64..1_000_000, 1..120)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        prop_assert_eq!(h.quantile(0.0), Some(min as f64));
        prop_assert_eq!(h.quantile(1.0), Some(max as f64));
        let mut prev = f64::MIN;
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
            let exact = nearest_rank(&sorted, q);
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= min as f64 && est <= max as f64);
            let (lo, hi) = bucket_range(exact);
            prop_assert!(
                est >= lo as f64 && est < hi as f64 || est == exact as f64,
                "q{}: est {} outside bucket [{}, {}) of exact {}", q, est, lo, hi, exact
            );
            prop_assert!(est >= prev, "quantile not monotone in q at q{}", q);
            prev = est;
        }
    }

    /// Degenerate shapes are exact: a single sample answers every
    /// quantile with itself, and an all-one-bucket histogram stays inside
    /// that bucket.
    #[test]
    fn quantile_single_sample_and_one_bucket(v in 0u64..1_000_000, fill in proptest::collection::vec(0u64..8, 2..60)) {
        let mut h = LogHistogram::new();
        h.record(v);
        for q in [0.0, 0.3, 0.5, 0.99, 1.0] {
            prop_assert_eq!(h.quantile(q), Some(v as f64));
        }
        // All samples land in bucket [8, 16).
        let samples: Vec<u64> = fill.iter().map(|x| 8 + x).collect();
        let mut h = LogHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (min, max) = (
            *samples.iter().min().unwrap(),
            *samples.iter().max().unwrap(),
        );
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= min as f64 && est <= max as f64, "q{}: {}", q, est);
        }
        prop_assert_eq!(h.quantile(0.0), Some(min as f64));
        prop_assert_eq!(h.quantile(1.0), Some(max as f64));
    }

    /// Quantiles of a merged histogram agree with a histogram built from
    /// the concatenated samples — merge loses nothing the sketch had.
    #[test]
    fn quantile_survives_merge(
        a in proptest::collection::vec(0u64..1_000_000, 1..80),
        b in proptest::collection::vec(0u64..1_000_000, 1..80),
    ) {
        let mut ha = LogHistogram::new();
        for &v in &a {
            ha.record(v);
        }
        let mut hb = LogHistogram::new();
        for &v in &b {
            hb.record(v);
        }
        ha.merge(&hb);
        let mut all = LogHistogram::new();
        for &v in a.iter().chain(&b) {
            all.record(v);
        }
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(ha.quantile(q), all.quantile(q), "q = {}", q);
        }
        let mut sorted: Vec<u64> = a.iter().chain(&b).copied().collect();
        sorted.sort_unstable();
        prop_assert_eq!(ha.quantile(1.0), Some(sorted[sorted.len() - 1] as f64));
    }

    /// for_bytes never returns zero for nonzero payloads and scales
    /// monotonically.
    #[test]
    fn wire_time_monotone(a in 1u64..1_000_000, b in 1u64..1_000_000, bps in 1_000u64..10_000_000_000) {
        let ta = SimDuration::for_bytes(a, bps);
        let tb = SimDuration::for_bytes(b, bps);
        prop_assert!(ta.as_ns() > 0);
        if a <= b {
            prop_assert!(ta <= tb);
        } else {
            prop_assert!(ta >= tb);
        }
    }
}

/// Nearest-rank quantile over sorted samples — the exact reference
/// `LogHistogram::quantile` approximates (same rank rule: `ceil(q*n)`
/// clamped to `[1, n]`).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// `[inclusive lower, exclusive upper)` of the log2 bucket holding `v`,
/// mirroring the histogram's bucketing (bucket 0 holds only the value 0).
fn bucket_range(v: u64) -> (u64, u64) {
    if v == 0 {
        (0, 1)
    } else {
        let i = 64 - v.leading_zeros() as usize;
        (1u64 << (i - 1), 1u64 << i)
    }
}

mod calendar_queue_model {
    use clic_sim::queue::CalendarQueue;
    use clic_sim::SimTime;
    use proptest::prelude::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    proptest! {
        /// The calendar queue pops in exactly the order a sorted reference
        /// (a `BinaryHeap` min-ordered on `(time, seq)` — the scheduler the
        /// engine shipped with before the overhaul) would, for arbitrary
        /// interleaved insert/peek/pop sequences. Inserts cover the shapes
        /// the engine produces: near-cursor times (including ties with the
        /// last popped event, the past-horizon reinsertion case), times
        /// spread across many wheel slots, and far-future times beyond the
        /// wheel span that land in the overflow heap.
        #[test]
        fn pops_match_binary_heap_reference(
            ops in proptest::collection::vec((0u8..6, 0u64..2048), 1..300)
        ) {
            // One slot is 512 ns and the wheel spans 4096 slots; anything
            // at or past `floor + WHEEL_SPAN` must take the overflow path.
            const WHEEL_SPAN: u64 = 512 * 4096;
            let mut q: CalendarQueue<u64> = CalendarQueue::new();
            let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            // The engine never schedules before the current time: track the
            // last popped timestamp as the floor for new inserts.
            let mut floor = 0u64;
            for &(kind, off) in &ops {
                match kind {
                    // Near-cursor insert; off == 0 reproduces the
                    // horizon-pause reinsert (time equal to "now").
                    0 | 1 => {
                        let t = floor + off;
                        q.insert(SimTime::from_ns(t), seq, seq);
                        model.push(Reverse((t, seq)));
                        seq += 1;
                    }
                    // Spread across many slots of the wheel.
                    2 => {
                        let t = floor + off * 997;
                        q.insert(SimTime::from_ns(t), seq, seq);
                        model.push(Reverse((t, seq)));
                        seq += 1;
                    }
                    // Far future: beyond the wheel span, into overflow.
                    3 => {
                        let t = floor + WHEEL_SPAN + off * 31;
                        q.insert(SimTime::from_ns(t), seq, seq);
                        model.push(Reverse((t, seq)));
                        seq += 1;
                    }
                    // Peek must agree without disturbing pop order.
                    4 => {
                        let got = q.next_key().map(|(t, s)| (t.as_ns(), s));
                        prop_assert_eq!(got, model.peek().map(|r| r.0));
                    }
                    _ => {
                        let got = q.pop().map(|(t, s, v)| (t.as_ns(), s, v));
                        let want = model.pop().map(|Reverse((t, s))| (t, s, s));
                        if let Some((t, _, _)) = got {
                            floor = t;
                        }
                        prop_assert_eq!(got, want);
                        prop_assert_eq!(q.len(), model.len());
                    }
                }
            }
            // Drain both queues: every remaining event agrees too.
            while let Some(Reverse((t, s))) = model.pop() {
                let got = q.pop().map(|(t, s, v)| (t.as_ns(), s, v));
                prop_assert_eq!(got, Some((t, s, s)));
            }
            prop_assert!(q.is_empty());
            prop_assert_eq!(q.pop(), None);
        }
    }
}
