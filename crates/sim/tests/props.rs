//! Property-based tests of the DES engine's core invariants.

use clic_sim::stats::LatencyStats;
use clic_sim::{LogHistogram, Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always execute in nondecreasing time order, with FIFO order
    /// among equal timestamps, for arbitrary schedules.
    #[test]
    fn execution_order_sorted_stable(delays in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &d) in delays.iter().enumerate() {
            let log = log.clone();
            sim.schedule_at(SimTime::from_ns(d), move |s| {
                log.borrow_mut().push((s.now().as_ns(), i));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated among ties");
            }
        }
    }

    /// The clock never runs backwards even under nested scheduling.
    #[test]
    fn nested_scheduling_monotonic(seed in any::<u64>(), n in 1usize..50) {
        let mut sim = Sim::new(seed);
        let times: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        fn spawn(sim: &mut Sim, times: Rc<RefCell<Vec<u64>>>, left: usize) {
            if left == 0 {
                return;
            }
            let delay = sim.rng.gen_range_u64(0..500);
            sim.schedule_in(SimDuration::from_ns(delay), move |s| {
                times.borrow_mut().push(s.now().as_ns());
                spawn(s, times.clone(), left - 1);
            });
        }
        spawn(&mut sim, times.clone(), n);
        sim.run();
        let times = times.borrow();
        prop_assert_eq!(times.len(), n);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut stats = LatencyStats::new();
        for &s in &samples {
            stats.record(SimDuration::from_ns(s));
        }
        let p25 = stats.percentile(0.25).unwrap();
        let p50 = stats.percentile(0.5).unwrap();
        let p99 = stats.percentile(0.99).unwrap();
        prop_assert!(stats.min().unwrap() <= p25);
        prop_assert!(p25 <= p50);
        prop_assert!(p50 <= p99);
        prop_assert!(p99 <= stats.max().unwrap());
        let mean = stats.mean().unwrap();
        prop_assert!(stats.min().unwrap() <= mean && mean <= stats.max().unwrap());
    }

    /// Histogram conserves count and mean, and its quantiles stay within
    /// the observed min/max.
    #[test]
    fn histogram_conserves(values in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(bucket_total, values.len() as u64);
        let expect = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - expect).abs() < 1e-6);
        let (lo, hi) = (*values.iter().min().unwrap() as f64, *values.iter().max().unwrap() as f64);
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            prop_assert!(v >= lo && v <= hi, "q{} = {} outside [{}, {}]", q, v, lo, hi);
        }
    }

    /// for_bytes never returns zero for nonzero payloads and scales
    /// monotonically.
    #[test]
    fn wire_time_monotone(a in 1u64..1_000_000, b in 1u64..1_000_000, bps in 1_000u64..10_000_000_000) {
        let ta = SimDuration::for_bytes(a, bps);
        let tb = SimDuration::for_bytes(b, bps);
        prop_assert!(ta.as_ns() > 0);
        if a <= b {
            prop_assert!(ta <= tb);
        } else {
            prop_assert!(ta >= tb);
        }
    }
}
