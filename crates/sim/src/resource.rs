//! Contended serial resources.
//!
//! Two flavours are enough for the whole model:
//!
//! * [`Cpu`] — the host processor. Work items carry a priority class:
//!   interrupt work ([`CpuClass::Irq`]) always jumps ahead of task work
//!   ([`CpuClass::Task`]), but an in-flight item is never preempted. This is
//!   the "IRQs beat everything, at µs granularity" approximation documented
//!   in DESIGN.md §5.
//! * [`SerialResource`] — a plain FIFO pipe with one transaction in flight
//!   (the PCI bus, the memory bus). The caller computes the service time of
//!   each transaction.
//!
//! Both keep busy-time accounting so experiments can report CPU utilisation,
//! which the paper repeatedly leans on ("90 % of peak at 15–20 % CPU on Fast
//! Ethernet would need ~100 % on GbE").

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Sim;
use crate::time::{SimDuration, SimTime};

/// Priority class of CPU work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuClass {
    /// Hardware interrupt / driver top half: jumps the queue.
    Irq,
    /// Everything else: syscalls, protocol processing, bottom halves, copies.
    Task,
}

struct CpuWork {
    class: CpuClass,
    duration: SimDuration,
    done: Box<dyn FnOnce(&mut Sim)>,
}

/// A single processor serving two FIFO queues (IRQ before task),
/// non-preemptive within a work item.
pub struct Cpu {
    busy: bool,
    irq_q: VecDeque<CpuWork>,
    task_q: VecDeque<CpuWork>,
    busy_irq: SimDuration,
    busy_task: SimDuration,
    items_run: u64,
    max_queue: usize,
}

impl Cpu {
    /// Create an idle CPU.
    pub fn new() -> Rc<RefCell<Cpu>> {
        Rc::new(RefCell::new(Cpu {
            busy: false,
            irq_q: VecDeque::new(),
            task_q: VecDeque::new(),
            busy_irq: SimDuration::ZERO,
            busy_task: SimDuration::ZERO,
            items_run: 0,
            max_queue: 0,
        }))
    }

    /// Submit `duration` worth of work; `done` runs when the CPU has spent
    /// that time on it. Zero-duration work is legal and completes after any
    /// work already in front of it.
    pub fn run(
        cpu: &Rc<RefCell<Cpu>>,
        sim: &mut Sim,
        class: CpuClass,
        duration: SimDuration,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        {
            let mut c = cpu.borrow_mut();
            let work = CpuWork {
                class,
                duration,
                done: Box::new(done),
            };
            match class {
                CpuClass::Irq => c.irq_q.push_back(work),
                CpuClass::Task => c.task_q.push_back(work),
            }
            let depth = c.irq_q.len() + c.task_q.len();
            c.max_queue = c.max_queue.max(depth);
            if c.busy {
                return;
            }
        }
        Self::start_next(cpu, sim);
    }

    fn start_next(cpu: &Rc<RefCell<Cpu>>, sim: &mut Sim) {
        let work = {
            let mut c = cpu.borrow_mut();
            debug_assert!(!c.busy, "start_next on a busy CPU");
            let Some(work) = c.irq_q.pop_front().or_else(|| c.task_q.pop_front()) else {
                return;
            };
            c.busy = true;
            work
        };
        let cpu2 = cpu.clone();
        sim.schedule_in(work.duration, move |sim| {
            {
                let mut c = cpu2.borrow_mut();
                match work.class {
                    CpuClass::Irq => c.busy_irq += work.duration,
                    CpuClass::Task => c.busy_task += work.duration,
                }
                c.items_run += 1;
            }
            // The completion may submit more work; the CPU still reads as
            // busy so it lands on the queue rather than double-starting.
            (work.done)(sim);
            cpu2.borrow_mut().busy = false;
            Self::start_next(&cpu2, sim);
        });
    }

    /// Accumulated busy time for a class.
    pub fn busy_time(&self, class: CpuClass) -> SimDuration {
        match class {
            CpuClass::Irq => self.busy_irq,
            CpuClass::Task => self.busy_task,
        }
    }

    /// Total accumulated busy time.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_irq + self.busy_task
    }

    /// Busy fraction over an observation window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_total().as_secs_f64() / window.as_secs_f64()
    }

    /// Number of completed work items.
    pub fn items_run(&self) -> u64 {
        self.items_run
    }

    /// High-water mark of the combined queues.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }
}

struct SerialWork {
    duration: SimDuration,
    done: Box<dyn FnOnce(&mut Sim)>,
}

/// A FIFO resource with a single transaction in flight (a bus).
pub struct SerialResource {
    name: &'static str,
    busy: bool,
    queue: VecDeque<SerialWork>,
    busy_time: SimDuration,
    items: u64,
    max_queue: usize,
    last_free: SimTime,
}

impl SerialResource {
    /// Create an idle resource; `name` appears in panics and debug output.
    pub fn new(name: &'static str) -> Rc<RefCell<SerialResource>> {
        Rc::new(RefCell::new(SerialResource {
            name,
            busy: false,
            queue: VecDeque::new(),
            busy_time: SimDuration::ZERO,
            items: 0,
            max_queue: 0,
            last_free: SimTime::ZERO,
        }))
    }

    /// Occupy the resource for `duration`, running `done` on completion.
    pub fn acquire(
        res: &Rc<RefCell<SerialResource>>,
        sim: &mut Sim,
        duration: SimDuration,
        done: impl FnOnce(&mut Sim) + 'static,
    ) {
        {
            let mut r = res.borrow_mut();
            r.queue.push_back(SerialWork {
                duration,
                done: Box::new(done),
            });
            r.max_queue = r.max_queue.max(r.queue.len());
            if r.busy {
                return;
            }
        }
        Self::start_next(res, sim);
    }

    fn start_next(res: &Rc<RefCell<SerialResource>>, sim: &mut Sim) {
        let work = {
            let mut r = res.borrow_mut();
            debug_assert!(!r.busy, "start_next on busy resource {}", r.name);
            let Some(work) = r.queue.pop_front() else {
                return;
            };
            r.busy = true;
            work
        };
        let res2 = res.clone();
        sim.schedule_in(work.duration, move |sim| {
            {
                let mut r = res2.borrow_mut();
                r.busy_time += work.duration;
                r.items += 1;
                r.last_free = sim.now();
            }
            (work.done)(sim);
            res2.borrow_mut().busy = false;
            Self::start_next(&res2, sim);
        });
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Busy fraction over an observation window.
    pub fn utilization(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time.as_secs_f64() / window.as_secs_f64()
    }

    /// Completed transactions.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// High-water mark of the wait queue.
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn cpu_serializes_work() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let log = log.clone();
            Cpu::run(
                &cpu,
                &mut sim,
                CpuClass::Task,
                SimDuration::from_us(10),
                move |s| log.borrow_mut().push((i, s.now())),
            );
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                (0, SimTime::from_us(10)),
                (1, SimTime::from_us(20)),
                (2, SimTime::from_us(30)),
            ]
        );
        assert_eq!(
            cpu.borrow().busy_time(CpuClass::Task),
            SimDuration::from_us(30)
        );
        assert_eq!(cpu.borrow().items_run(), 3);
    }

    #[test]
    fn irq_jumps_task_queue() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        // One long task starts immediately; a second task and then an IRQ
        // queue behind it. The IRQ must run before the queued task.
        for (name, class) in [("t1", CpuClass::Task), ("t2", CpuClass::Task)] {
            let log = log.clone();
            Cpu::run(&cpu, &mut sim, class, SimDuration::from_us(10), move |_| {
                log.borrow_mut().push(name)
            });
        }
        let l = log.clone();
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Irq,
            SimDuration::from_us(1),
            move |_| l.borrow_mut().push("irq"),
        );
        sim.run();
        assert_eq!(*log.borrow(), vec!["t1", "irq", "t2"]);
    }

    #[test]
    fn in_flight_item_not_preempted() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Task,
            SimDuration::from_us(50),
            move |s| l.borrow_mut().push(("task", s.now())),
        );
        // IRQ arrives mid-task; it completes only after the task finishes.
        let cpu2 = cpu.clone();
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(5), move |s| {
            Cpu::run(&cpu2, s, CpuClass::Irq, SimDuration::from_us(1), move |s| {
                l.borrow_mut().push(("irq", s.now()))
            });
        });
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                ("task", SimTime::from_us(50)),
                ("irq", SimTime::from_us(51)),
            ]
        );
    }

    #[test]
    fn completion_resubmitting_does_not_double_start() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let cpu2 = cpu.clone();
        let l = log.clone();
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Task,
            SimDuration::from_us(5),
            move |s| {
                l.borrow_mut().push(("a", s.now()));
                let l2 = l.clone();
                Cpu::run(
                    &cpu2,
                    s,
                    CpuClass::Task,
                    SimDuration::from_us(5),
                    move |s| {
                        l2.borrow_mut().push(("b", s.now()));
                    },
                );
            },
        );
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![("a", SimTime::from_us(5)), ("b", SimTime::from_us(10))]
        );
    }

    #[test]
    fn zero_duration_work_completes() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Task,
            SimDuration::ZERO,
            move |_| *d.borrow_mut() = true,
        );
        sim.run();
        assert!(*done.borrow());
    }

    #[test]
    fn cpu_utilization_accounting() {
        let mut sim = Sim::new(0);
        let cpu = Cpu::new();
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Task,
            SimDuration::from_us(25),
            |_| {},
        );
        Cpu::run(
            &cpu,
            &mut sim,
            CpuClass::Irq,
            SimDuration::from_us(25),
            |_| {},
        );
        sim.run();
        let c = cpu.borrow();
        assert_eq!(c.busy_total(), SimDuration::from_us(50));
        let u = c.utilization(SimDuration::from_us(100));
        assert!((u - 0.5).abs() < 1e-9, "u={u}");
        assert_eq!(c.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn serial_resource_fifo() {
        let mut sim = Sim::new(0);
        let bus = SerialResource::new("pci");
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..4u32 {
            let log = log.clone();
            SerialResource::acquire(&bus, &mut sim, SimDuration::from_us(3), move |s| {
                log.borrow_mut().push((i, s.now()))
            });
        }
        sim.run();
        let got = log.borrow().clone();
        assert_eq!(got.len(), 4);
        for (i, (id, t)) in got.iter().enumerate() {
            assert_eq!(*id as usize, i);
            assert_eq!(*t, SimTime::from_us(3 * (i as u64 + 1)));
        }
        assert_eq!(bus.borrow().items(), 4);
        assert_eq!(bus.borrow().busy_time(), SimDuration::from_us(12));
        assert!(bus.borrow().max_queue_depth() >= 3);
    }

    #[test]
    fn serial_resource_interleaved_arrivals() {
        let mut sim = Sim::new(0);
        let bus = SerialResource::new("mem");
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        SerialResource::acquire(&bus, &mut sim, SimDuration::from_us(10), move |s| {
            l.borrow_mut().push(("a", s.now()))
        });
        // Arrives at t=4 while "a" is in service; serviced at 10..12.
        let bus2 = bus.clone();
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(4), move |s| {
            SerialResource::acquire(&bus2, s, SimDuration::from_us(2), move |s| {
                l.borrow_mut().push(("b", s.now()))
            });
        });
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![("a", SimTime::from_us(10)), ("b", SimTime::from_us(12))]
        );
    }
}
