//! Structured cross-layer tracing.
//!
//! Every protocol layer of the simulated stack — the CLIC module, the
//! kernel/driver, the NIC and buses, the Ethernet fabric, the TCP/IP
//! comparison stack and the MPI layer — emits typed records into one
//! [`Trace`] sink: begin/end marks that fold into [`StageSpan`]s (the
//! paper's Figure 7 pipeline stages) and [`Mark::Instant`] events for
//! one-shot occurrences (drops, retransmits, timeouts). Records carry the
//! emitting [`Layer`], a stable stage name and the packet/message id they
//! refer to, and are stamped with virtual [`SimTime`] only — a trace is a
//! pure function of the simulation's configuration and seed, so the
//! Chrome-trace export ([`Trace::chrome_trace_json`]) is byte-reproducible.
//!
//! Tracing is off by default — records cost one branch when disabled.

use crate::catalog::StageId;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// The protocol layer a trace record was emitted from. Determines the
/// Chrome-trace track (`tid`) the record renders on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Application / workload code.
    App,
    /// The CLIC protocol module (`clic-core`).
    Clic,
    /// Kernel, driver and socket buffers (`clic-os`).
    Os,
    /// NIC, PCI and memory buses (`clic-hw`).
    Hw,
    /// Links and switches (`clic-ethernet`).
    Eth,
    /// The TCP/IP comparison stack (`clic-tcpip`).
    TcpIp,
    /// The MPI/PVM message layer (`clic-mpi`).
    Mpi,
}

impl Layer {
    /// Every layer, in track order.
    pub const ALL: [Layer; 7] = [
        Layer::App,
        Layer::Clic,
        Layer::Os,
        Layer::Hw,
        Layer::Eth,
        Layer::TcpIp,
        Layer::Mpi,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::App => "app",
            Layer::Clic => "clic",
            Layer::Os => "os",
            Layer::Hw => "hw",
            Layer::Eth => "eth",
            Layer::TcpIp => "tcpip",
            Layer::Mpi => "mpi",
        }
    }

    /// Chrome-trace track id of this layer.
    fn tid(self) -> usize {
        match self {
            Layer::App => 0,
            Layer::Clic => 1,
            Layer::Os => 2,
            Layer::Hw => 3,
            Layer::Eth => 4,
            Layer::TcpIp => 5,
            Layer::Mpi => 6,
        }
    }
}

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// A stage starts.
    Begin,
    /// A stage ends.
    End,
    /// A one-shot occurrence (drop, retransmit, timeout).
    Instant,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the record was emitted.
    pub time: SimTime,
    /// Emitting layer.
    pub layer: Layer,
    /// Stable stage/event name (e.g. `"driver_rx"`, `"retransmit"`).
    pub stage: &'static str,
    /// Packet (or message) identity the record refers to.
    pub id: u64,
    /// Begin, end or instant.
    pub mark: Mark,
}

/// A folded per-packet stage span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Emitting layer.
    pub layer: Layer,
    /// Stage name.
    pub stage: &'static str,
    /// Packet id.
    pub id: u64,
    /// Span start.
    pub begin: SimTime,
    /// Span end.
    pub end: SimTime,
}

impl StageSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.begin
    }
}

/// A begin/end mark that could not be paired when folding spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A `Begin` mark never saw a matching `End`.
    UnmatchedBegin {
        /// Stage of the orphaned begin.
        stage: &'static str,
        /// Packet id of the orphaned begin.
        id: u64,
        /// When it was emitted.
        time: SimTime,
    },
    /// An `End` mark arrived with no open `Begin`.
    UnmatchedEnd {
        /// Stage of the orphaned end.
        stage: &'static str,
        /// Packet id of the orphaned end.
        id: u64,
        /// When it was emitted.
        time: SimTime,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnmatchedBegin { stage, id, time } => {
                write!(
                    f,
                    "begin mark for stage {stage:?} id {id} at {time} never ended"
                )
            }
            TraceError::UnmatchedEnd { stage, id, time } => {
                write!(
                    f,
                    "end mark for stage {stage:?} id {id} at {time} has no open begin"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Trace sink. Cheap no-op when disabled.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// A recording sink.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn push(&mut self, time: SimTime, layer: Layer, stage: &'static str, id: u64, mark: Mark) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                layer,
                stage,
                id,
                mark,
            });
        }
    }

    /// Emit a begin mark.
    pub fn begin(&mut self, time: SimTime, layer: Layer, stage: &'static str, id: u64) {
        self.push(time, layer, stage, id, Mark::Begin);
    }

    /// Emit an end mark.
    pub fn end(&mut self, time: SimTime, layer: Layer, stage: &'static str, id: u64) {
        self.push(time, layer, stage, id, Mark::End);
    }

    /// Emit an instant event (drop, retransmit, timeout).
    pub fn instant(&mut self, time: SimTime, layer: Layer, stage: &'static str, id: u64) {
        self.push(time, layer, stage, id, Mark::Instant);
    }

    /// Emit a begin mark for an interned stage. Resolving the name through
    /// [`crate::catalog::stage_id`] at the call site proves at compile time
    /// that the stage is cataloged (a typo fails the build, not the run).
    #[inline]
    pub fn begin_id(&mut self, time: SimTime, layer: Layer, stage: StageId, id: u64) {
        self.push(time, layer, stage.def().name, id, Mark::Begin);
    }

    /// Emit an end mark for an interned stage.
    #[inline]
    pub fn end_id(&mut self, time: SimTime, layer: Layer, stage: StageId, id: u64) {
        self.push(time, layer, stage.def().name, id, Mark::End);
    }

    /// Emit an instant event for an interned stage.
    #[inline]
    pub fn instant_id(&mut self, time: SimTime, layer: Layer, stage: StageId, id: u64) {
        self.push(time, layer, stage.def().name, id, Mark::Instant);
    }

    /// Raw records, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Stage names recorded in this trace that are missing from the
    /// central [`crate::catalog`], deduplicated and sorted — empty on a
    /// catalog-clean trace. Mirrors
    /// [`Metrics::uncataloged`](crate::metrics::Metrics::uncataloged);
    /// `clic-analyze` enforces the same property statically.
    pub fn uncataloged_stages(&self) -> Vec<&'static str> {
        let mut bad: Vec<&'static str> = self
            .events
            .iter()
            .map(|e| e.stage)
            .filter(|s| !crate::catalog::is_stage(s))
            .collect();
        bad.sort_unstable();
        bad.dedup();
        bad
    }

    /// Instant events, in emission order.
    pub fn instants(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| e.mark == Mark::Instant)
    }

    /// Fold begin/end marks into spans without judging stray marks.
    /// Begin/end pairs match FIFO per `(id, layer, stage)`, so a repeated
    /// stage (fragmentation, retransmission) yields multiple spans.
    /// Returns the spans sorted by `(id, begin, end)` plus every mark that
    /// found no partner.
    fn fold<'a, I>(events: I) -> (Vec<StageSpan>, Vec<TraceEvent>)
    where
        I: Iterator<Item = &'a TraceEvent>,
    {
        type Key = (u64, Layer, &'static str);
        let mut open: BTreeMap<Key, Vec<SimTime>> = BTreeMap::new();
        let mut spans = Vec::new();
        let mut strays = Vec::new();
        for ev in events {
            let key = (ev.id, ev.layer, ev.stage);
            match ev.mark {
                Mark::Instant => {}
                Mark::Begin => open.entry(key).or_default().push(ev.time),
                Mark::End => match open
                    .get_mut(&key)
                    .and_then(|starts| (!starts.is_empty()).then(|| starts.remove(0)))
                {
                    Some(begin) => spans.push(StageSpan {
                        layer: ev.layer,
                        stage: ev.stage,
                        id: ev.id,
                        begin,
                        end: ev.time,
                    }),
                    None => strays.push(ev.clone()),
                },
            }
        }
        // Leftover opens, deterministically ordered.
        let mut leftovers: Vec<TraceEvent> = Vec::new();
        for ((id, layer, stage), starts) in open {
            for time in starts {
                leftovers.push(TraceEvent {
                    time,
                    layer,
                    stage,
                    id,
                    mark: Mark::Begin,
                });
            }
        }
        leftovers.sort_by_key(|e| (e.time, e.id, e.layer, e.stage));
        strays.extend(leftovers);
        spans.sort_by_key(|s| (s.id, s.begin, s.end));
        (spans, strays)
    }

    /// Fold all marks into spans, rejecting malformed traces: any begin
    /// without an end (or vice versa) is surfaced as a [`TraceError`]
    /// rather than silently dropped.
    pub fn spans(&self) -> Result<Vec<StageSpan>, TraceError> {
        let (spans, strays) = Self::fold(self.events.iter());
        match strays.into_iter().next() {
            None => Ok(spans),
            Some(e) => Err(match e.mark {
                Mark::End => TraceError::UnmatchedEnd {
                    stage: e.stage,
                    id: e.id,
                    time: e.time,
                },
                _ => TraceError::UnmatchedBegin {
                    stage: e.stage,
                    id: e.id,
                    time: e.time,
                },
            }),
        }
    }

    /// Spans for one packet id (strict, like [`Trace::spans`], but only
    /// marks for `id` are considered).
    pub fn spans_for(&self, id: u64) -> Result<Vec<StageSpan>, TraceError> {
        let (spans, strays) = Self::fold(self.events.iter().filter(|e| e.id == id));
        match strays.into_iter().next() {
            None => Ok(spans),
            Some(e) => Err(match e.mark {
                Mark::End => TraceError::UnmatchedEnd {
                    stage: e.stage,
                    id: e.id,
                    time: e.time,
                },
                _ => TraceError::UnmatchedBegin {
                    stage: e.stage,
                    id: e.id,
                    time: e.time,
                },
            }),
        }
    }

    /// Export the trace as Chrome trace-event JSON (loadable in Perfetto
    /// or `chrome://tracing`). Spans become complete (`"X"`) events,
    /// instants become `"i"` events, and each [`Layer`] renders as its own
    /// named track. Timestamps are virtual microseconds derived from
    /// [`SimTime`] by exact integer arithmetic, so the output is
    /// byte-reproducible for a given simulation. Marks that fold into no
    /// span are exported as `unmatched:<stage>` instants rather than lost.
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace_json_with(&[])
    }

    /// [`Trace::chrome_trace_json`] with pre-formatted extra rows (e.g.
    /// [`crate::timeseries::TimelineRecorder::chrome_counter_rows`]
    /// counter tracks) appended after the span/instant rows. With no
    /// extras the output is byte-identical to `chrome_trace_json`, so
    /// golden traces are unaffected by this hook.
    pub fn chrome_trace_json_with(&self, extra_rows: &[String]) -> String {
        // Microseconds with exact fractional nanoseconds, as a JSON number.
        fn us(t: SimTime) -> String {
            let ns = t.as_ns();
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
        fn dur_us(d: SimDuration) -> String {
            let ns = d.as_ns();
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }

        let (mut spans, strays) = Self::fold(self.events.iter());
        spans.sort_by_key(|s| (s.begin, s.end, s.layer, s.stage, s.id));

        let mut out = String::from("{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [\n");
        let mut rows: Vec<String> = Vec::new();
        rows.push(
            "    {\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", \
             \"args\": {\"name\": \"clic-sim\"}}"
                .to_string(),
        );
        for layer in Layer::ALL {
            if self.events.iter().any(|e| e.layer == layer) {
                rows.push(format!(
                    "    {{\"ph\": \"M\", \"pid\": 0, \"tid\": {}, \"name\": \"thread_name\", \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    layer.tid(),
                    layer.name()
                ));
            }
        }
        for s in &spans {
            rows.push(format!(
                "    {{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                 \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{\"id\": {}}}}}",
                s.layer.tid(),
                us(s.begin),
                dur_us(s.duration()),
                s.stage,
                s.layer.name(),
                s.id
            ));
        }
        let mut points: Vec<&TraceEvent> = self.instants().collect();
        points.sort_by_key(|e| (e.time, e.layer, e.stage, e.id));
        for e in points {
            rows.push(format!(
                "    {{\"ph\": \"i\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \
                 \"name\": \"{}\", \"cat\": \"{}\", \"args\": {{\"id\": {}}}}}",
                e.layer.tid(),
                us(e.time),
                e.stage,
                e.layer.name(),
                e.id
            ));
        }
        for e in &strays {
            rows.push(format!(
                "    {{\"ph\": \"i\", \"pid\": 0, \"tid\": {}, \"ts\": {}, \"s\": \"t\", \
                 \"name\": \"unmatched:{}\", \"cat\": \"{}\", \"args\": {{\"id\": {}}}}}",
                e.layer.tid(),
                us(e.time),
                e.stage,
                e.layer.name(),
                e.id
            ));
        }
        rows.extend(extra_rows.iter().cloned());
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.begin(SimTime::ZERO, Layer::Os, "x", 1);
        t.end(SimTime::from_us(1), Layer::Os, "x", 1);
        t.instant(SimTime::from_us(2), Layer::Clic, "drop", 1);
        assert!(t.events().is_empty());
        assert!(t.spans().unwrap().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_pair_begin_end() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(1), Layer::Os, "driver", 7);
        t.end(SimTime::from_us(4), Layer::Os, "driver", 7);
        let spans = t.spans().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "driver");
        assert_eq!(spans[0].layer, Layer::Os);
        assert_eq!(spans[0].duration(), SimDuration::from_us(3));
    }

    #[test]
    fn repeated_stage_yields_multiple_spans_fifo() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), Layer::Hw, "xmit", 1);
        t.end(SimTime::from_us(2), Layer::Hw, "xmit", 1);
        t.begin(SimTime::from_us(10), Layer::Hw, "xmit", 1);
        t.end(SimTime::from_us(13), Layer::Hw, "xmit", 1);
        let spans = t.spans_for(1).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].duration(), SimDuration::from_us(2));
        assert_eq!(spans[1].duration(), SimDuration::from_us(3));
    }

    #[test]
    fn packets_do_not_cross_match() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(1), Layer::Os, "s", 2);
        t.end(SimTime::from_us(5), Layer::Os, "s", 2);
        // Packet 2's trace folds cleanly in isolation even while packet 1
        // has an open begin elsewhere in the sink.
        t.begin(SimTime::from_us(0), Layer::Os, "s", 1);
        let spans = t.spans_for(2).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].id, 2);
        assert_eq!(spans[0].duration(), SimDuration::from_us(4));
    }

    #[test]
    fn unmatched_begin_is_surfaced() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(3), Layer::Clic, "tx", 9);
        assert_eq!(
            t.spans(),
            Err(TraceError::UnmatchedBegin {
                stage: "tx",
                id: 9,
                time: SimTime::from_us(3),
            })
        );
        assert_eq!(t.spans_for(9), t.spans());
        // Other ids are unaffected.
        assert_eq!(t.spans_for(1), Ok(vec![]));
    }

    #[test]
    fn unmatched_end_is_surfaced() {
        let mut t = Trace::enabled();
        t.end(SimTime::from_us(5), Layer::Os, "s", 1);
        let err = t.spans().unwrap_err();
        assert_eq!(
            err,
            TraceError::UnmatchedEnd {
                stage: "s",
                id: 1,
                time: SimTime::from_us(5),
            }
        );
        assert!(err.to_string().contains("no open begin"));
    }

    #[test]
    fn layers_do_not_cross_match() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), Layer::Os, "s", 1);
        t.end(SimTime::from_us(2), Layer::Hw, "s", 1);
        assert!(
            t.spans().is_err(),
            "marks from different layers must not pair"
        );
    }

    #[test]
    fn overlapping_stages_on_one_packet() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), Layer::Os, "a", 1);
        t.begin(SimTime::from_us(1), Layer::Os, "b", 1);
        t.end(SimTime::from_us(2), Layer::Os, "a", 1);
        t.end(SimTime::from_us(3), Layer::Os, "b", 1);
        let spans = t.spans_for(1).unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "a");
        assert_eq!(spans[1].stage, "b");
    }

    #[test]
    fn instants_do_not_disturb_spans() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), Layer::Clic, "rx", 1);
        t.instant(SimTime::from_us(1), Layer::Clic, "drop.duplicate", 2);
        t.end(SimTime::from_us(2), Layer::Clic, "rx", 1);
        assert_eq!(t.spans().unwrap().len(), 1);
        let instants: Vec<_> = t.instants().collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].stage, "drop.duplicate");
    }

    #[test]
    fn chrome_export_shape_and_determinism() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_ns(1_500), Layer::Os, "driver_rx", 42);
        t.end(SimTime::from_ns(11_750), Layer::Os, "driver_rx", 42);
        t.instant(SimTime::from_us(20), Layer::Clic, "retransmit", 42);
        let json = t.chrome_trace_json();
        assert_eq!(json, t.chrome_trace_json(), "export must be reproducible");
        assert!(json.contains("\"traceEvents\""));
        // Exact fixed-point microsecond timestamps.
        assert!(json.contains("\"ts\": 1.500"), "{json}");
        assert!(json.contains("\"dur\": 10.250"), "{json}");
        assert!(json.contains("\"name\": \"driver_rx\""));
        assert!(json.contains("\"ph\": \"i\""));
        assert!(json.contains("\"thread_name\""));
        // Only layers with events get a track label.
        assert!(json.contains("\"name\": \"os\""));
        assert!(!json.contains("\"name\": \"mpi\""));
    }

    #[test]
    fn uncataloged_stages_are_reported() {
        let mut t = Trace::enabled();
        t.begin(SimTime::ZERO, Layer::Os, "driver_rx", 1);
        t.end(SimTime::from_us(1), Layer::Os, "driver_rx", 1);
        assert!(t.uncataloged_stages().is_empty());
        t.instant(SimTime::from_us(2), Layer::Clic, "bogus", 1);
        t.instant(SimTime::from_us(3), Layer::Clic, "bogus", 2);
        assert_eq!(t.uncataloged_stages(), vec!["bogus"]);
    }

    #[test]
    fn chrome_export_keeps_unmatched_marks_visible() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(1), Layer::Hw, "dma", 3);
        let json = t.chrome_trace_json();
        assert!(json.contains("unmatched:dma"), "{json}");
    }
}
