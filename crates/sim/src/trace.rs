//! Pipeline-stage tracing.
//!
//! The paper's Figure 7 decomposes the life of a single 1400-byte packet
//! into named pipeline stages (CLIC_MODULE, driver, NIC, buses, flight,
//! receiver driver, bottom halves, ...). Components emit begin/end marks for
//! `(packet id, stage)` pairs into this sink; the experiment layer folds the
//! marks into per-stage durations.
//!
//! Tracing is off by default — the marks cost a branch when disabled.

use crate::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// Which edge of a stage a mark denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Stage starts.
    Begin,
    /// Stage ends.
    End,
}

/// One trace mark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the mark was emitted.
    pub time: SimTime,
    /// Stable stage name (e.g. `"driver_rx"`).
    pub stage: &'static str,
    /// Packet (or message) identity the mark refers to.
    pub packet: u64,
    /// Begin or end.
    pub edge: Edge,
}

/// A collected per-packet stage span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name.
    pub stage: &'static str,
    /// Packet id.
    pub packet: u64,
    /// Span start.
    pub begin: SimTime,
    /// Span end.
    pub end: SimTime,
}

impl StageSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end - self.begin
    }
}

/// Trace sink. Cheap no-op when disabled.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    /// A sink that records nothing.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// A recording sink.
    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Whether marks are recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emit a begin mark.
    pub fn begin(&mut self, time: SimTime, stage: &'static str, packet: u64) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                stage,
                packet,
                edge: Edge::Begin,
            });
        }
    }

    /// Emit an end mark.
    pub fn end(&mut self, time: SimTime, stage: &'static str, packet: u64) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                stage,
                packet,
                edge: Edge::End,
            });
        }
    }

    /// Raw marks, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Fold begin/end marks into spans. Begin/end pairs match FIFO per
    /// `(packet, stage)`, so a repeated stage (retransmission) yields
    /// multiple spans. Unmatched begins are dropped.
    pub fn spans(&self) -> Vec<StageSpan> {
        let mut open: HashMap<(u64, &'static str), Vec<SimTime>> = HashMap::new();
        let mut out = Vec::new();
        for ev in &self.events {
            let key = (ev.packet, ev.stage);
            match ev.edge {
                Edge::Begin => open.entry(key).or_default().push(ev.time),
                Edge::End => {
                    if let Some(starts) = open.get_mut(&key) {
                        if !starts.is_empty() {
                            let begin = starts.remove(0);
                            out.push(StageSpan {
                                stage: ev.stage,
                                packet: ev.packet,
                                begin,
                                end: ev.time,
                            });
                        }
                    }
                }
            }
        }
        out.sort_by_key(|s| (s.packet, s.begin, s.end));
        out
    }

    /// Spans for one packet.
    pub fn spans_for(&self, packet: u64) -> Vec<StageSpan> {
        self.spans()
            .into_iter()
            .filter(|s| s.packet == packet)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.begin(SimTime::ZERO, "x", 1);
        t.end(SimTime::from_us(1), "x", 1);
        assert!(t.events().is_empty());
        assert!(t.spans().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn spans_pair_begin_end() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(1), "driver", 7);
        t.end(SimTime::from_us(4), "driver", 7);
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, "driver");
        assert_eq!(spans[0].duration(), SimDuration::from_us(3));
    }

    #[test]
    fn repeated_stage_yields_multiple_spans_fifo() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), "xmit", 1);
        t.end(SimTime::from_us(2), "xmit", 1);
        t.begin(SimTime::from_us(10), "xmit", 1);
        t.end(SimTime::from_us(13), "xmit", 1);
        let spans = t.spans_for(1);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].duration(), SimDuration::from_us(2));
        assert_eq!(spans[1].duration(), SimDuration::from_us(3));
    }

    #[test]
    fn packets_do_not_cross_match() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), "s", 1);
        t.begin(SimTime::from_us(1), "s", 2);
        t.end(SimTime::from_us(5), "s", 2);
        // Packet 1 never ends: only packet 2's span is produced.
        let spans = t.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].packet, 2);
        assert_eq!(spans[0].duration(), SimDuration::from_us(4));
    }

    #[test]
    fn end_without_begin_is_ignored() {
        let mut t = Trace::enabled();
        t.end(SimTime::from_us(5), "s", 1);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn overlapping_stages_on_one_packet() {
        let mut t = Trace::enabled();
        t.begin(SimTime::from_us(0), "a", 1);
        t.begin(SimTime::from_us(1), "b", 1);
        t.end(SimTime::from_us(2), "a", 1);
        t.end(SimTime::from_us(3), "b", 1);
        let spans = t.spans_for(1);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "a");
        assert_eq!(spans[1].stage, "b");
    }
}
