//! Per-run metrics registry: named counters, gauges and log-bucketed
//! histograms.
//!
//! Components record into [`Metrics`] through stable dotted names
//! (`"clic.retransmits"`, `"eth.switch.queue_depth"`); the experiment layer
//! reads them back by name or dumps the whole registry as deterministic
//! plain text. Recording is passive — it never schedules events or touches
//! the RNG — so enabling metrics cannot change simulation results.
//!
//! The registry is off by default; every recording call returns after one
//! branch when disabled.
//!
//! # Interned fast path
//!
//! Names registered in the central [`crate::catalog`] can be recorded
//! through [`MetricId`]s ([`Metrics::counter_add_id`] and friends): a
//! plain vector index instead of a string hash/compare and allocation per
//! record. The string-keyed APIs transparently route exact catalog names
//! into the same interned stores (so both paths observe one series), and
//! keep a `BTreeMap` fallback for dynamic names (per-node `n<idx>.`
//! prefixes, experiment-local scratch). Reads and [`Metrics::dump`]
//! merge-join the two stores in name order — ascending [`MetricId`] order
//! is ascending name order — so output is byte-identical to the
//! all-string implementation.

use crate::catalog::{self, MetricId, MetricKind, METRICS};
use std::collections::BTreeMap;

/// Whether `name` equals `suffix`, or ends with it immediately after a
/// `.` separator. Suffix aggregation ([`Metrics::sum_counters`],
/// [`Metrics::max_gauge_peak`]) matches only at dotted-segment
/// boundaries: `retransmits` binds to `n1.clic.retransmits` but never to
/// `clic.fast_retransmits`, whose trailing segment merely *contains* it.
fn suffix_at_segment_boundary(name: &str, suffix: &str) -> bool {
    if name.len() == suffix.len() {
        return name == suffix;
    }
    name.len() > suffix.len()
        && name.ends_with(suffix)
        && name.as_bytes()[name.len() - suffix.len() - 1] == b'.'
}

/// Log-bucketed histogram of `u64` values (latencies in ns, sizes in
/// bytes, queue depths).
///
/// Bucket 0 holds the value 0; bucket `i` (i ≥ 1) holds values in
/// `[2^(i-1), 2^i)`. Quantiles are estimated by linear interpolation of
/// the target rank inside its bucket, clamped to the exactly-tracked
/// minimum and maximum, so `quantile(1.0)` is always the true max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LogHistogram {
    /// New empty histogram (65 buckets cover the full `u64` range).
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_for(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `i`.
    fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Exclusive upper bound of bucket `i` (saturating at `u64::MAX`).
    fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 1,
            64 => u64::MAX,
            _ => 1u64 << i,
        }
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_for(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated q-quantile (`0.0..=1.0`), `None` when empty.
    ///
    /// Finds the bucket holding the nearest-rank sample, then linearly
    /// interpolates the rank's position across the bucket's value range;
    /// the estimate is clamped to the true `[min, max]`, and the extreme
    /// quantiles are exact: `quantile(0.0)` is the true minimum and
    /// `quantile(1.0)` the true maximum (interpolation alone could land
    /// mid-bucket below the max when the edge bucket holds several
    /// samples).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min as f64);
        }
        if q == 1.0 {
            return Some(self.max as f64);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = Self::bucket_lower(i) as f64;
                let width = (Self::bucket_upper(i) - Self::bucket_lower(i)) as f64;
                // Position of the rank inside this bucket, mid-sample.
                let frac = (rank - seen) as f64 - 0.5;
                let est = lower + width * (frac / c as f64);
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// Median estimate (`quantile(0.5)`), 0.0 when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5).unwrap_or(0.0)
    }

    /// 95th-percentile estimate, 0.0 when empty.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95).unwrap_or(0.0)
    }

    /// 99th-percentile estimate, 0.0 when empty.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99).unwrap_or(0.0)
    }

    /// Fold another histogram into this one (bucket-wise addition; min,
    /// max, count and sum combine exactly).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(inclusive lower, exclusive upper, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), Self::bucket_upper(i), c))
            .collect()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Gauge {
    current: i64,
    peak: i64,
}

/// The per-run metrics registry.
///
/// One instance lives on every [`crate::Sim`] (`sim.metrics`); experiment
/// layers may also build standalone registries (e.g. one per node) and
/// [`Metrics::merge`] them. All maps are `BTreeMap`s, so iteration order —
/// and therefore [`Metrics::dump`] output — is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, LogHistogram>,
    /// Interned stores, indexed by [`MetricId`]; sized to `METRICS.len()`
    /// on [`Metrics::enabled`] (empty on a disabled registry).
    fast_counters: Vec<u64>,
    fast_gauges: Vec<Gauge>,
    fast_histograms: Vec<Option<LogHistogram>>,
    /// Whether the id was ever recorded (distinguishes "counter at 0"
    /// from "never touched" so dumps stay identical to the map path).
    fast_touched: Vec<bool>,
}

impl Metrics {
    /// A registry that records nothing (the default on a fresh `Sim`).
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// A recording registry.
    pub fn enabled() -> Self {
        let mut m = Metrics {
            enabled: true,
            ..Metrics::default()
        };
        m.ensure_fast();
        m
    }

    /// Size the interned stores to the catalog (idempotent).
    fn ensure_fast(&mut self) {
        let n = METRICS.len();
        if self.fast_counters.len() < n {
            self.fast_counters.resize(n, 0);
            self.fast_gauges.resize(n, Gauge::default());
            self.fast_histograms.resize(n, None);
            self.fast_touched.resize(n, false);
        }
    }

    /// Whether recording calls have any effect.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `by` to the interned counter `id` — the allocation-free hot
    /// path for catalog names (see [`crate::catalog::counter_id`]).
    #[inline]
    pub fn counter_add_id(&mut self, id: MetricId, by: u64) {
        if !self.enabled {
            return;
        }
        let i = id.index();
        self.fast_counters[i] += by;
        self.fast_touched[i] = true;
    }

    /// Add one to the interned counter `id`.
    #[inline]
    pub fn counter_inc_id(&mut self, id: MetricId) {
        self.counter_add_id(id, 1);
    }

    /// Set the interned gauge `id` to `v`, tracking its peak.
    #[inline]
    pub fn gauge_set_id(&mut self, id: MetricId, v: i64) {
        if !self.enabled {
            return;
        }
        let i = id.index();
        let g = &mut self.fast_gauges[i];
        g.current = v;
        g.peak = g.peak.max(v);
        self.fast_touched[i] = true;
    }

    /// Record `v` into the interned histogram `id`.
    #[inline]
    pub fn observe_id(&mut self, id: MetricId, v: u64) {
        if !self.enabled {
            return;
        }
        let i = id.index();
        self.fast_histograms[i]
            .get_or_insert_with(LogHistogram::new)
            .record(v);
        self.fast_touched[i] = true;
    }

    /// Add `by` to counter `name`, creating it at zero first. Exact
    /// catalog names share their series with the interned fast path.
    pub fn counter_add(&mut self, name: &str, by: u64) {
        if !self.enabled {
            return;
        }
        match catalog::find_metric(name, MetricKind::Counter) {
            Some(id) => self.counter_add_id(id, by),
            None => *self.counters.entry(name.to_string()).or_insert(0) += by,
        }
    }

    /// Add one to counter `name`.
    pub fn counter_inc(&mut self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set gauge `name` to `v`, tracking its peak. Exact catalog names
    /// share their series with the interned fast path.
    pub fn gauge_set(&mut self, name: &str, v: i64) {
        if !self.enabled {
            return;
        }
        match catalog::find_metric(name, MetricKind::Gauge) {
            Some(id) => self.gauge_set_id(id, v),
            None => {
                let g = self.gauges.entry(name.to_string()).or_default();
                g.current = v;
                g.peak = g.peak.max(v);
            }
        }
    }

    /// Record `v` into histogram `name`. Exact catalog names share their
    /// series with the interned fast path.
    pub fn observe(&mut self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        match catalog::find_metric(name, MetricKind::Histogram) {
            Some(id) => self.observe_id(id, v),
            None => self
                .histograms
                .entry(name.to_string())
                .or_default()
                .record(v),
        }
    }

    /// Whether interned slot `i` was recorded as `kind`.
    fn fast_has(&self, i: usize, kind: MetricKind) -> bool {
        METRICS[i].kind == kind && self.fast_touched.get(i).copied().unwrap_or(false)
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match catalog::find_metric(name, MetricKind::Counter) {
            Some(id) => self.fast_counters.get(id.index()).copied().unwrap_or(0),
            None => self.counters.get(name).copied().unwrap_or(0),
        }
    }

    /// Current value of a gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match catalog::find_metric(name, MetricKind::Gauge) {
            Some(id) => self
                .fast_gauges
                .get(id.index())
                .map(|g| g.current)
                .unwrap_or(0),
            None => self.gauges.get(name).map(|g| g.current).unwrap_or(0),
        }
    }

    /// Highest value a gauge ever held (0 when absent).
    pub fn gauge_peak(&self, name: &str) -> i64 {
        match catalog::find_metric(name, MetricKind::Gauge) {
            Some(id) => self
                .fast_gauges
                .get(id.index())
                .map(|g| g.peak)
                .unwrap_or(0),
            None => self.gauges.get(name).map(|g| g.peak).unwrap_or(0),
        }
    }

    /// Histogram by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        match catalog::find_metric(name, MetricKind::Histogram) {
            Some(id) => self
                .fast_histograms
                .get(id.index())
                .and_then(|h| h.as_ref()),
            None => self.histograms.get(name),
        }
    }

    /// All counters, in name order (interned and dynamic series merged).
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut v: Vec<(&str, u64)> = self
            .counters
            .iter()
            .map(|(n, &x)| (n.as_str(), x))
            .collect();
        for (i, m) in METRICS.iter().enumerate() {
            if self.fast_has(i, MetricKind::Counter) {
                v.push((m.name, self.fast_counters[i]));
            }
        }
        v.sort_unstable_by_key(|&(n, _)| n);
        v.into_iter()
    }

    /// All gauges, in name order (interned and dynamic series merged).
    fn gauge_entries(&self) -> Vec<(&str, Gauge)> {
        let mut v: Vec<(&str, Gauge)> = self.gauges.iter().map(|(n, &g)| (n.as_str(), g)).collect();
        for (i, m) in METRICS.iter().enumerate() {
            if self.fast_has(i, MetricKind::Gauge) {
                v.push((m.name, self.fast_gauges[i]));
            }
        }
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// All histograms, in name order (interned and dynamic series merged).
    fn histogram_entries(&self) -> Vec<(&str, &LogHistogram)> {
        let mut v: Vec<(&str, &LogHistogram)> = self
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        for (i, m) in METRICS.iter().enumerate() {
            if METRICS[i].kind == MetricKind::Histogram {
                if let Some(h) = self.fast_histograms.get(i).and_then(|h| h.as_ref()) {
                    v.push((m.name, h));
                }
            }
        }
        v.sort_unstable_by_key(|&(n, _)| n);
        v
    }

    /// Sum of every counter whose name ends with `suffix` at a
    /// `.`-segment boundary — totals across per-node prefixes
    /// (`n0.clic.retransmits` + `n1.clic.retransmits`). A bare
    /// `retransmits` matches `n0.clic.retransmits` but never
    /// `clic.fast_retransmits`: suffixes only bind to whole dotted
    /// segments.
    pub fn sum_counters(&self, suffix: &str) -> u64 {
        self.counters()
            .filter(|(n, _)| suffix_at_segment_boundary(n, suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Largest peak over every gauge whose name ends with `suffix` at a
    /// `.`-segment boundary (same matching rule as
    /// [`Metrics::sum_counters`]).
    pub fn max_gauge_peak(&self, suffix: &str) -> i64 {
        self.gauge_entries()
            .iter()
            .filter(|(n, _)| suffix_at_segment_boundary(n, suffix))
            .map(|(_, g)| g.peak)
            .max()
            .unwrap_or(0)
    }

    /// Names recorded in this registry that are missing from the central
    /// [`crate::catalog`] (per-node `n<idx>.` prefixes are stripped before
    /// lookup). Returns the offending names in `(name, kind)` order —
    /// empty on a catalog-clean registry. The experiment layer
    /// debug-asserts this so an unregistered name cannot ship silently;
    /// `clic-analyze` enforces the same property statically.
    pub fn uncataloged(&self) -> Vec<String> {
        use crate::catalog::{is_metric, MetricKind};
        let mut bad = Vec::new();
        for n in self.counters.keys() {
            if !is_metric(n, MetricKind::Counter) {
                bad.push(format!("{n} (counter)"));
            }
        }
        for n in self.gauges.keys() {
            if !is_metric(n, MetricKind::Gauge) {
                bad.push(format!("{n} (gauge)"));
            }
        }
        for n in self.histograms.keys() {
            if !is_metric(n, MetricKind::Histogram) {
                bad.push(format!("{n} (histogram)"));
            }
        }
        bad
    }

    /// Fold `other` into this registry: counters add, gauge peaks combine
    /// (current takes `other`'s value), histograms merge. Interned series
    /// in `other` fold into this registry's interned stores.
    pub fn merge(&mut self, other: &Metrics) {
        for (n, &v) in &other.counters {
            *self.counters.entry(n.clone()).or_insert(0) += v;
        }
        for (n, o) in &other.gauges {
            let g = self.gauges.entry(n.clone()).or_default();
            g.current = o.current;
            g.peak = g.peak.max(o.peak);
        }
        for (n, o) in &other.histograms {
            self.histograms.entry(n.clone()).or_default().merge(o);
        }
        if other.fast_touched.iter().any(|&t| t)
            || other.fast_histograms.iter().any(|h| h.is_some())
        {
            self.ensure_fast();
            for (i, m) in METRICS.iter().enumerate() {
                if other.fast_has(i, MetricKind::Counter) {
                    self.fast_counters[i] += other.fast_counters[i];
                    self.fast_touched[i] = true;
                }
                if other.fast_has(i, MetricKind::Gauge) {
                    let g = &mut self.fast_gauges[i];
                    g.current = other.fast_gauges[i].current;
                    g.peak = g.peak.max(other.fast_gauges[i].peak);
                    self.fast_touched[i] = true;
                }
                if m.kind == MetricKind::Histogram {
                    if let Some(o) = other.fast_histograms.get(i).and_then(|h| h.as_ref()) {
                        self.fast_histograms[i]
                            .get_or_insert_with(LogHistogram::new)
                            .merge(o);
                        self.fast_touched[i] = true;
                    }
                }
            }
        }
    }

    /// Deterministic plain-text dump of the whole registry.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        let counters: Vec<(&str, u64)> = self.counters().collect();
        if !counters.is_empty() {
            out.push_str("# counters\n");
            for (n, v) in counters {
                out.push_str(&format!("{n} {v}\n"));
            }
        }
        let gauges = self.gauge_entries();
        if !gauges.is_empty() {
            out.push_str("# gauges (current peak)\n");
            for (n, g) in gauges {
                out.push_str(&format!("{n} {} {}\n", g.current, g.peak));
            }
        }
        let hists = self.histogram_entries();
        if !hists.is_empty() {
            out.push_str("# histograms (count mean p50 p95 p99 max)\n");
            for (n, h) in hists {
                out.push_str(&format!(
                    "{n} {} {:.1} {:.1} {:.1} {:.1} {}\n",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max().unwrap_or(0),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        let mut h = LogHistogram::new();
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8);
        // 1500 -> [1024,2048).
        for v in [0u64, 1, 2, 3, 4, 1500] {
            h.record(v);
        }
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 1, 1), (1, 2, 1), (2, 4, 2), (4, 8, 1), (1024, 2048, 1)]
        );
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1500));
        assert!((h.mean() - 1510.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_and_clamp() {
        let mut h = LogHistogram::new();
        for _ in 0..100 {
            h.record(1000); // all in bucket [512, 1024)
        }
        // Every sample is 1000: quantile estimates interpolate inside the
        // [512, 1024) bucket but clamp to the exact min/max of 1000.
        assert_eq!(h.quantile(0.0), Some(1000.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
        assert_eq!(h.p50(), 1000.0);

        // Spread across two buckets: the median must fall in the lower
        // bucket's range and interpolation must be monotone in q.
        let mut h = LogHistogram::new();
        for _ in 0..50 {
            h.record(10); // [8, 16)
        }
        for _ in 0..50 {
            h.record(100); // [64, 128)
        }
        let p25 = h.quantile(0.25).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p75 = h.quantile(0.75).unwrap();
        assert!((10.0..16.0).contains(&p25), "p25={p25}");
        assert!(p25 <= p50 && p50 <= p75, "{p25} {p50} {p75}");
        assert!((64.0..=100.0).contains(&p75), "p75={p75}");
        assert_eq!(h.quantile(1.0), Some(100.0));
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn merge_combines_exactly() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [0u64, 700] {
            b.record(v);
        }
        let mut all = LogHistogram::new();
        for v in [1u64, 5, 9, 0, 700] {
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(700));
        assert_eq!(a.sum(), 715);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = Metrics::disabled();
        m.counter_inc("x");
        m.gauge_set("g", 5);
        m.observe("h", 9);
        assert!(!m.is_enabled());
        assert_eq!(m.counter("x"), 0);
        assert_eq!(m.gauge_peak("g"), 0);
        assert!(m.histogram("h").is_none());
        assert!(m.dump().is_empty());
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let mut m = Metrics::enabled();
        m.counter_inc("clic.retransmits");
        m.counter_add("clic.retransmits", 2);
        m.gauge_set("q", 3);
        m.gauge_set("q", 7);
        m.gauge_set("q", 2);
        m.observe("sz", 1400);
        assert_eq!(m.counter("clic.retransmits"), 3);
        assert_eq!(m.gauge("q"), 2);
        assert_eq!(m.gauge_peak("q"), 7);
        assert_eq!(m.histogram("sz").unwrap().count(), 1);
    }

    #[test]
    fn interned_and_string_paths_share_series() {
        use crate::catalog::{counter_id, gauge_id, histogram_id};
        const RETX: MetricId = counter_id("clic.retransmits");
        const DEPTH_G: MetricId = gauge_id("eth.switch.queue_depth");
        const DEPTH_H: MetricId = histogram_id("eth.switch.queue_depth");
        let mut m = Metrics::enabled();
        m.counter_add_id(RETX, 2);
        m.counter_add("clic.retransmits", 3);
        m.gauge_set_id(DEPTH_G, 9);
        m.gauge_set("eth.switch.queue_depth", 4);
        m.observe_id(DEPTH_H, 16);
        m.observe("eth.switch.queue_depth", 16);
        assert_eq!(m.counter("clic.retransmits"), 5);
        assert_eq!(m.gauge("eth.switch.queue_depth"), 4);
        assert_eq!(m.gauge_peak("eth.switch.queue_depth"), 9);
        assert_eq!(m.histogram("eth.switch.queue_depth").unwrap().count(), 2);
        // The dump carries exactly one line per series regardless of path.
        let d = m.dump();
        assert_eq!(d.matches("clic.retransmits").count(), 1);
        // A merged copy doubles the counter and keeps the gauge peak.
        let mut o = Metrics::enabled();
        o.merge(&m);
        o.merge(&m);
        assert_eq!(o.counter("clic.retransmits"), 10);
        assert_eq!(o.gauge_peak("eth.switch.queue_depth"), 9);
        assert_eq!(o.histogram("eth.switch.queue_depth").unwrap().count(), 4);
    }

    #[test]
    fn suffix_totals_across_node_prefixes() {
        let mut m = Metrics::enabled();
        m.counter_add("n0.clic.retransmits", 2);
        m.counter_add("n1.clic.retransmits", 3);
        m.gauge_set("n0.eth.switch.queue_depth", 9);
        m.gauge_set("n1.eth.switch.queue_depth", 4);
        assert_eq!(m.sum_counters("clic.retransmits"), 5);
        assert_eq!(m.max_gauge_peak("eth.switch.queue_depth"), 9);
    }

    #[test]
    fn suffix_matching_honours_segment_boundaries() {
        // Regression: a bare `retransmits` suffix must not aggregate
        // `fast_retransmits`, whose final segment merely contains it.
        let mut m = Metrics::enabled();
        m.counter_add("clic.retransmits", 2);
        m.counter_add("n0.clic.retransmits", 3);
        m.counter_add("clic.fast_retransmits", 100);
        m.counter_add("tcp.fast_retransmits", 200);
        assert_eq!(m.sum_counters("retransmits"), 5);
        assert_eq!(m.sum_counters("fast_retransmits"), 300);
        assert_eq!(m.sum_counters("clic.retransmits"), 5);
        // An exact full-name match still counts itself once.
        assert_eq!(m.sum_counters("clic.fast_retransmits"), 100);
        // Partial segments never match, in either position.
        assert_eq!(m.sum_counters("ransmits"), 0);
        assert_eq!(m.sum_counters("ic.retransmits"), 0);

        m.gauge_set("eth.switch.queue_depth", 4);
        m.gauge_set("n1.eth.switch.queue_depth", 9);
        m.gauge_set("clic.recv_buffer_bytes", 123);
        assert_eq!(m.max_gauge_peak("queue_depth"), 9);
        assert_eq!(m.max_gauge_peak("depth"), 0); // partial segment
        assert_eq!(m.max_gauge_peak("bytes"), 0); // partial segment
        assert_eq!(m.max_gauge_peak("recv_buffer_bytes"), 123);
    }

    #[test]
    fn merge_registries() {
        let mut a = Metrics::enabled();
        a.counter_add("c", 1);
        a.gauge_set("g", 10);
        a.observe("h", 4);
        let mut b = Metrics::enabled();
        b.counter_add("c", 2);
        b.gauge_set("g", 3);
        b.observe("h", 900);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge_peak("g"), 10);
        assert_eq!(a.gauge("g"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn uncataloged_names_are_reported() {
        let mut m = Metrics::enabled();
        m.counter_inc("clic.retransmits");
        m.counter_inc("n0.os.syscalls");
        m.gauge_set("eth.switch.queue_depth", 1);
        m.observe("clic.msg_bytes", 10);
        assert!(m.uncataloged().is_empty());
        m.counter_inc("made.up");
        m.observe("eth.switch.drops", 1); // counter name recorded as histogram
        assert_eq!(
            m.uncataloged(),
            vec!["made.up (counter)", "eth.switch.drops (histogram)"]
        );
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let mut m = Metrics::enabled();
        m.counter_inc("b.second");
        m.counter_inc("a.first");
        m.gauge_set("depth", 4);
        m.observe("lat", 100);
        let d = m.dump();
        assert_eq!(d, m.clone().dump());
        let a = d.find("a.first").unwrap();
        let b = d.find("b.second").unwrap();
        assert!(a < b, "counters must be name-sorted:\n{d}");
        assert!(d.contains("depth 4 4"));
        assert!(d.contains("lat 1 100.0"));
    }
}
