//! The deterministic event loop.
//!
//! Events are boxed `FnOnce(&mut Sim)` closures ordered by `(time, seq)`:
//! ties in time execute in the order they were scheduled, which keeps every
//! run reproducible. Component state lives in `Rc<RefCell<_>>` cells captured
//! by the closures; the `Sim` itself only owns the clock, the queue, the RNG
//! and the trace sink.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// A scheduled event: a closure to run at a virtual instant.
type Action = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    time: SimTime,
    seq: u64,
    action: Action,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Why [`Sim::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    Drained,
    /// The configured horizon was reached before the queue drained.
    Horizon,
    /// The event budget was exhausted (runaway protection).
    EventLimit,
}

/// The simulation world: clock, event queue, RNG, trace sink and metrics
/// registry.
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Entry>,
    next_seq: u64,
    executed: u64,
    event_limit: u64,
    /// Deterministic randomness shared by all components of this run.
    pub rng: SimRng,
    /// Cross-layer span/event trace sink (disabled by default; see
    /// [`Trace`]).
    pub trace: Trace,
    /// Metrics registry (disabled by default; see [`Metrics`]). Recording
    /// is passive, so enabling it never changes simulation results.
    pub metrics: Metrics,
}

impl Sim {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            executed: 0,
            event_limit: u64::MAX,
            rng: SimRng::new(seed),
            trace: Trace::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Cap the total number of events this run may execute. Exceeding the
    /// cap stops `run` with [`StopReason::EventLimit`] — runaway protection
    /// for misconfigured experiments, not a normal control flow tool.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Schedule `action` at absolute time `at`. Scheduling in the past is a
    /// logic error in the calling component.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Entry {
            time: at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedule `action` at the current instant, after all events already
    /// queued for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, action);
    }

    /// Execute a single event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some(entry) => {
                debug_assert!(entry.time >= self.now, "time ran backwards");
                self.now = entry.time;
                self.executed += 1;
                (entry.action)(self);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains or a limit is hit.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until `horizon` (exclusive of events strictly after it), the
    /// queue drains, or the event budget is exhausted. The clock is advanced
    /// to `horizon` when stopping on the horizon so throughput windows are
    /// well-defined.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            if self.executed >= self.event_limit {
                return StopReason::EventLimit;
            }
            match self.queue.peek() {
                None => return StopReason::Drained,
                Some(entry) if entry.time > horizon => {
                    self.now = horizon;
                    return StopReason::Horizon;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &us in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(us), move |s| {
                log.borrow_mut().push(s.now().as_us_f64() as u64);
            });
        }
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_run_fifo() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..100 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_in(SimDuration::from_us(1), move |s| {
            h.borrow_mut().push(s.now());
            let h2 = h.clone();
            s.schedule_in(SimDuration::from_us(2), move |s| {
                h2.borrow_mut().push(s.now());
            });
        });
        sim.run();
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_us(1), SimTime::from_us(3)]
        );
    }

    #[test]
    fn schedule_now_runs_after_current_instant_queue() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        sim.schedule_at(SimTime::ZERO, move |s| {
            l1.borrow_mut().push("first");
            let l = l1.clone();
            s.schedule_now(move |_| l.borrow_mut().push("third"));
        });
        sim.schedule_at(SimTime::ZERO, move |_| l2.borrow_mut().push("second"));
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn horizon_stops_and_pins_clock() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(0u32));
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(10), move |_| *f.borrow_mut() += 1);
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(100), move |_| *f.borrow_mut() += 1);
        assert_eq!(sim.run_until(SimTime::from_us(50)), StopReason::Horizon);
        assert_eq!(*fired.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_us(50));
        assert_eq!(sim.events_pending(), 1);
        // Resuming picks up the remaining event.
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn event_at_horizon_still_runs() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(50), move |_| *f.borrow_mut() = true);
        sim.run_until(SimTime::from_us(50));
        assert!(*fired.borrow());
    }

    #[test]
    fn event_limit_halts_runaway() {
        let mut sim = Sim::new(0);
        // A self-perpetuating event chain.
        fn tick(s: &mut Sim) {
            s.schedule_in(SimDuration::from_ns(1), tick);
        }
        sim.schedule_now(tick);
        sim.set_event_limit(1000);
        assert_eq!(sim.run(), StopReason::EventLimit);
        assert_eq!(sim.events_executed(), 1000);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_us(10), |s| {
            s.schedule_at(SimTime::from_us(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u64> {
            let mut sim = Sim::new(42);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..50 {
                let delay = sim.rng.gen_range_u64(1..1000);
                let log = log.clone();
                sim.schedule_in(SimDuration::from_ns(delay), move |s| {
                    log.borrow_mut().push(s.now().as_ns());
                });
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(run_once(), run_once());
    }
}
