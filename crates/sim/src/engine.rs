//! The deterministic event loop.
//!
//! Events are actions ordered by `(time, seq)`: ties in time execute in
//! the order they were scheduled, which keeps every run reproducible.
//! Component state lives in `Rc<RefCell<_>>` cells captured by the
//! closures; the `Sim` itself only owns the clock, the queue, the RNG and
//! the trace sink.
//!
//! # Queue and event representation
//!
//! The pending-event queue is a hierarchical calendar queue
//! ([`crate::queue::CalendarQueue`]) rather than a binary heap: inserts
//! and pops on the simulator's dominant scheduling patterns (short
//! delays from the running event, same-instant follow-ups) are O(1)
//! instead of O(log n), and same-timestamp FIFO order falls out of the
//! total `(time, seq)` key rather than heap internals.
//!
//! Events come in two flavours:
//!
//! * **boxed closures** ([`Sim::schedule_at`] and friends) — the general
//!   path; one small allocation per event.
//! * **plain function pointers** ([`Sim::schedule_fn_at`],
//!   [`Sim::schedule_arg_at`]) — the allocation-free fast path for hot
//!   loops whose whole context fits in one `u64` (or in component state
//!   reachable from `&mut Sim`).
//!
//! # Invariants
//!
//! 1. `seq` increases monotonically with every schedule call and is never
//!    reused, so `(time, seq)` is a strict total order and same-time
//!    events run in schedule (FIFO) order.
//! 2. Scheduling in the past (`at < now`) is a logic error and panics.
//! 3. [`Sim::run_until`] executes events with `time <= horizon` and pins
//!    the clock to the horizon when it stops there, so throughput windows
//!    are well-defined and a later `run` resumes correctly.

use crate::metrics::Metrics;
use crate::queue::CalendarQueue;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::timeseries::TimelineRecorder;
use crate::trace::Trace;

/// A scheduled event.
enum Action {
    /// Plain function, no captured state: the allocation-free fast path.
    Call(fn(&mut Sim)),
    /// Plain function plus one word of context, also allocation-free.
    CallArg(fn(&mut Sim, u64), u64),
    /// The general boxed-closure event.
    Boxed(Box<dyn FnOnce(&mut Sim)>),
}

/// Which dispatch arm an executed event took — the coarse "module" axis
/// the engine can attribute without inspecting closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionArm {
    /// Plain function pointer (`schedule_fn_*`), allocation-free.
    Call,
    /// Function pointer plus one `u64` (`schedule_arg_*`).
    CallArg,
    /// Boxed closure (`schedule_at` / `schedule_in` / `schedule_now`).
    Boxed,
}

impl ActionArm {
    /// All arms, in declaration order.
    pub const ALL: [ActionArm; 3] = [ActionArm::Call, ActionArm::CallArg, ActionArm::Boxed];

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ActionArm::Call => "call",
            ActionArm::CallArg => "call_arg",
            ActionArm::Boxed => "boxed",
        }
    }
}

/// Host-side observer of event dispatch, for engine self-profiling.
///
/// The engine stays clock-free: it reports only *which* arm is about to
/// run / just ran, and the probe implementation decides what to measure.
/// Wall-clock probes live in the bench layer, the one place host timing
/// is policy-legal. Probes receive no `&mut Sim`, cannot schedule, and
/// observe dispatch only — installing one never changes simulation
/// results. Install before `run`; replacing the probe from inside an
/// event handler is unsupported.
pub trait EngineProbe {
    /// Called immediately before an event executes.
    fn begin(&mut self, arm: ActionArm);
    /// Called immediately after the event returns.
    fn end(&mut self, arm: ActionArm);
}

/// Why [`Sim::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    Drained,
    /// The configured horizon was reached before the queue drained.
    Horizon,
    /// The event budget was exhausted (runaway protection).
    EventLimit,
}

/// The simulation world: clock, event queue, RNG, trace sink and metrics
/// registry.
pub struct Sim {
    now: SimTime,
    queue: CalendarQueue<Action>,
    next_seq: u64,
    executed: u64,
    event_limit: u64,
    /// Deterministic randomness shared by all components of this run.
    pub rng: SimRng,
    /// Cross-layer span/event trace sink (disabled by default; see
    /// [`Trace`]).
    pub trace: Trace,
    /// Metrics registry (disabled by default; see [`Metrics`]). Recording
    /// is passive, so enabling it never changes simulation results.
    pub metrics: Metrics,
    /// Time-resolved telemetry recorder (disabled by default; see
    /// [`TimelineRecorder`]). Passive like `metrics`: enabling it never
    /// changes simulation results.
    pub timeline: TimelineRecorder,
    probe: Option<Box<dyn EngineProbe>>,
}

impl Sim {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: CalendarQueue::new(),
            next_seq: 0,
            executed: 0,
            event_limit: u64::MAX,
            rng: SimRng::new(seed),
            trace: Trace::disabled(),
            metrics: Metrics::disabled(),
            timeline: TimelineRecorder::disabled(),
            probe: None,
        }
    }

    /// Install a dispatch probe (engine self-profiling); see
    /// [`EngineProbe`]. The unprofiled run loop pays one predictable
    /// branch per event for this hook.
    pub fn set_probe(&mut self, probe: Box<dyn EngineProbe>) {
        self.probe = Some(probe);
    }

    /// Remove the installed probe, returning it so the caller can extract
    /// its report.
    pub fn take_probe(&mut self) -> Option<Box<dyn EngineProbe>> {
        self.probe.take()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Cap the total number of events this run may execute. Exceeding the
    /// cap stops `run` with [`StopReason::EventLimit`] — runaway protection
    /// for misconfigured experiments, not a normal control flow tool.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    #[inline]
    fn push(&mut self, at: SimTime, action: Action) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        // lint:allow(time-overflow, reason="u64 insertion-order tiebreaker; 2^64 events cannot occur in one run")
        self.next_seq += 1;
        self.queue.insert(at, seq, action);
    }

    /// Schedule `action` at absolute time `at`. Scheduling in the past is a
    /// logic error in the calling component.
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        self.push(at, Action::Boxed(Box::new(action)));
    }

    /// Schedule `action` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now + delay, action);
    }

    /// Schedule `action` at the current instant, after all events already
    /// queued for this instant.
    pub fn schedule_now(&mut self, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now, action);
    }

    /// Schedule a plain function at absolute time `at` — the
    /// allocation-free fast path. Ordering semantics are identical to
    /// [`Sim::schedule_at`].
    #[inline]
    pub fn schedule_fn_at(&mut self, at: SimTime, f: fn(&mut Sim)) {
        self.push(at, Action::Call(f));
    }

    /// Schedule a plain function after a relative delay, without
    /// allocating. Ordering semantics are identical to
    /// [`Sim::schedule_in`].
    #[inline]
    pub fn schedule_fn_in(&mut self, delay: SimDuration, f: fn(&mut Sim)) {
        self.schedule_fn_at(self.now + delay, f);
    }

    /// Schedule a plain function carrying one `u64` of context at absolute
    /// time `at`, without allocating.
    #[inline]
    pub fn schedule_arg_at(&mut self, at: SimTime, f: fn(&mut Sim, u64), arg: u64) {
        self.push(at, Action::CallArg(f, arg));
    }

    /// Schedule a plain function carrying one `u64` of context after a
    /// relative delay, without allocating.
    #[inline]
    pub fn schedule_arg_in(&mut self, delay: SimDuration, f: fn(&mut Sim, u64), arg: u64) {
        self.schedule_arg_at(self.now + delay, f, arg);
    }

    /// Execute a single event, if any. Returns `false` when the queue is
    /// empty.
    #[inline]
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((time, _seq, action)) => {
                debug_assert!(time >= self.now, "time ran backwards");
                self.now = time;
                self.executed += 1;
                self.dispatch(action);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains or a limit is hit.
    pub fn run(&mut self) -> StopReason {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until `horizon` (exclusive of events strictly after it), the
    /// queue drains, or the event budget is exhausted. The clock is advanced
    /// to `horizon` when stopping on the horizon so throughput windows are
    /// well-defined.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        loop {
            if self.executed >= self.event_limit {
                return StopReason::EventLimit;
            }
            // Pop unconditionally and reinsert on a horizon stop: one
            // queue operation per event instead of a peek plus a pop.
            // Reinsertion reuses the original seq, so FIFO order among
            // same-time events is unchanged when the run resumes.
            let Some((time, seq, action)) = self.queue.pop() else {
                return StopReason::Drained;
            };
            if time > horizon {
                self.queue.insert(time, seq, action);
                self.now = horizon;
                return StopReason::Horizon;
            }
            self.now = time;
            self.executed += 1;
            self.dispatch(action);
        }
    }

    /// Execute one popped action. The common (probe-less) path is the
    /// bare three-arm match; the profiled path is kept out of line so the
    /// hot loop stays pristine.
    #[inline]
    fn dispatch(&mut self, action: Action) {
        if self.probe.is_none() {
            match action {
                Action::Call(f) => f(self),
                Action::CallArg(f, arg) => f(self, arg),
                Action::Boxed(f) => f(self),
            }
        } else {
            self.dispatch_probed(action);
        }
    }

    #[inline(never)]
    fn dispatch_probed(&mut self, action: Action) {
        let arm = match &action {
            Action::Call(_) => ActionArm::Call,
            Action::CallArg(_, _) => ActionArm::CallArg,
            Action::Boxed(_) => ActionArm::Boxed,
        };
        // The probe is taken for the duration of the event so the handler
        // gets the usual `&mut Sim` without aliasing it.
        let mut probe = self.probe.take();
        if let Some(p) = probe.as_mut() {
            p.begin(arm);
        }
        match action {
            Action::Call(f) => f(self),
            Action::CallArg(f, arg) => f(self, arg),
            Action::Boxed(f) => f(self),
        }
        if let Some(p) = probe.as_mut() {
            p.end(arm);
        }
        self.probe = probe;
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for &us in &[30u64, 10, 20] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(us), move |s| {
                log.borrow_mut().push(s.now().as_us_f64() as u64);
            });
        }
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_run_fifo() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..100 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_us(5), move |_| log.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Sim::new(0);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        sim.schedule_in(SimDuration::from_us(1), move |s| {
            h.borrow_mut().push(s.now());
            let h2 = h.clone();
            s.schedule_in(SimDuration::from_us(2), move |s| {
                h2.borrow_mut().push(s.now());
            });
        });
        sim.run();
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_us(1), SimTime::from_us(3)]
        );
    }

    #[test]
    fn schedule_now_runs_after_current_instant_queue() {
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let (l1, l2) = (log.clone(), log.clone());
        sim.schedule_at(SimTime::ZERO, move |s| {
            l1.borrow_mut().push("first");
            let l = l1.clone();
            s.schedule_now(move |_| l.borrow_mut().push("third"));
        });
        sim.schedule_at(SimTime::ZERO, move |_| l2.borrow_mut().push("second"));
        sim.run();
        assert_eq!(*log.borrow(), vec!["first", "second", "third"]);
    }

    #[test]
    fn zero_duration_schedule_in_preserves_insertion_order() {
        // Regression: a zero-duration `schedule_in` issued *during* run()
        // must queue after every event already pending at the same
        // instant, and multiple zero-duration events must keep their own
        // insertion order — the same-time FIFO contract the calendar
        // queue has to honor even when the running slot is partially
        // drained.
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let t = SimTime::from_us(3);
        let l = log.clone();
        sim.schedule_at(t, move |s| {
            l.borrow_mut().push(0);
            let (la, lb) = (l.clone(), l.clone());
            s.schedule_in(SimDuration::ZERO, move |s2| {
                la.borrow_mut().push(3);
                let lc = la.clone();
                // Zero-duration from inside a zero-duration event.
                s2.schedule_in(SimDuration::ZERO, move |_| lc.borrow_mut().push(5));
            });
            s.schedule_in(SimDuration::ZERO, move |_| lb.borrow_mut().push(4));
        });
        let l = log.clone();
        sim.schedule_at(t, move |_| l.borrow_mut().push(1));
        let l = log.clone();
        sim.schedule_at(t, move |_| l.borrow_mut().push(2));
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), t);
    }

    #[test]
    fn fn_events_interleave_with_boxed_events_in_fifo_order() {
        // The allocation-free fast path shares the same (time, seq)
        // ordering domain as boxed closures.
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let t = SimTime::from_us(1);
        sim.schedule_at(t, move |_| l.borrow_mut().push(0u64));
        fn push_arg(s: &mut Sim, arg: u64) {
            let _ = s;
            ARG_SINK.with(|v| v.borrow_mut().push(arg));
        }
        thread_local! {
            static ARG_SINK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        ARG_SINK.with(|v| v.borrow_mut().clear());
        sim.schedule_arg_at(t, push_arg, 1);
        let l = log.clone();
        sim.schedule_at(t, move |_| l.borrow_mut().push(2));
        sim.schedule_arg_at(t, push_arg, 3);
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 2]);
        ARG_SINK.with(|v| assert_eq!(*v.borrow(), vec![1, 3]));
    }

    #[test]
    fn horizon_stops_and_pins_clock() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(0u32));
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(10), move |_| *f.borrow_mut() += 1);
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(100), move |_| *f.borrow_mut() += 1);
        assert_eq!(sim.run_until(SimTime::from_us(50)), StopReason::Horizon);
        assert_eq!(*fired.borrow(), 1);
        assert_eq!(sim.now(), SimTime::from_us(50));
        assert_eq!(sim.events_pending(), 1);
        // Resuming picks up the remaining event.
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(*fired.borrow(), 2);
    }

    #[test]
    fn scheduling_after_horizon_stop_stays_ordered() {
        // After a horizon stop the queue cursor may sit beyond `now`;
        // events scheduled into that gap must still run before the
        // far-future event that caused the peek.
        let mut sim = Sim::new(0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(500), move |s| l.borrow_mut().push(s.now()));
        assert_eq!(sim.run_until(SimTime::from_us(50)), StopReason::Horizon);
        let l = log.clone();
        sim.schedule_at(SimTime::from_us(60), move |s| l.borrow_mut().push(s.now()));
        assert_eq!(sim.run(), StopReason::Drained);
        assert_eq!(
            *log.borrow(),
            vec![SimTime::from_us(60), SimTime::from_us(500)]
        );
    }

    #[test]
    fn event_at_horizon_still_runs() {
        let mut sim = Sim::new(0);
        let fired = Rc::new(RefCell::new(false));
        let f = fired.clone();
        sim.schedule_at(SimTime::from_us(50), move |_| *f.borrow_mut() = true);
        sim.run_until(SimTime::from_us(50));
        assert!(*fired.borrow());
    }

    #[test]
    fn event_limit_halts_runaway() {
        let mut sim = Sim::new(0);
        // A self-perpetuating event chain.
        fn tick(s: &mut Sim) {
            s.schedule_in(SimDuration::from_ns(1), tick);
        }
        sim.schedule_now(tick);
        sim.set_event_limit(1000);
        assert_eq!(sim.run(), StopReason::EventLimit);
        assert_eq!(sim.events_executed(), 1000);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new(0);
        sim.schedule_at(SimTime::from_us(10), |s| {
            s.schedule_at(SimTime::from_us(5), |_| {});
        });
        sim.run();
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> Vec<u64> {
            let mut sim = Sim::new(42);
            let log = Rc::new(RefCell::new(Vec::new()));
            for _ in 0..50 {
                let delay = sim.rng.gen_range_u64(1..1000);
                let log = log.clone();
                sim.schedule_in(SimDuration::from_ns(delay), move |s| {
                    log.borrow_mut().push(s.now().as_ns());
                });
            }
            sim.run();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn probe_sees_every_arm_and_leaves_results_unchanged() {
        // Probes share their tallies out via Rc, the same pattern the
        // bench-layer wall-clock probe uses.
        struct CountProbe {
            begins: Rc<RefCell<Vec<ActionArm>>>,
            ends: Rc<RefCell<Vec<ActionArm>>>,
        }
        impl EngineProbe for CountProbe {
            fn begin(&mut self, arm: ActionArm) {
                self.begins.borrow_mut().push(arm);
            }
            fn end(&mut self, arm: ActionArm) {
                self.ends.borrow_mut().push(arm);
            }
        }

        fn run_once(probed: bool) -> (Vec<u64>, Vec<ActionArm>) {
            let begins = Rc::new(RefCell::new(Vec::new()));
            let ends = Rc::new(RefCell::new(Vec::new()));
            let mut sim = Sim::new(7);
            if probed {
                sim.set_probe(Box::new(CountProbe {
                    begins: begins.clone(),
                    ends: ends.clone(),
                }));
            }
            let log = Rc::new(RefCell::new(Vec::new()));
            let l = log.clone();
            sim.schedule_at(SimTime::from_us(1), move |s| {
                l.borrow_mut().push(s.now().as_ns())
            });
            fn tick(s: &mut Sim) {
                let _ = s;
            }
            sim.schedule_fn_at(SimTime::from_us(2), tick);
            fn tick_arg(s: &mut Sim, _arg: u64) {
                let _ = s;
            }
            sim.schedule_arg_at(SimTime::from_us(3), tick_arg, 9);
            assert_eq!(sim.run(), StopReason::Drained);
            assert_eq!(sim.take_probe().is_some(), probed);
            assert_eq!(*begins.borrow(), *ends.borrow());
            let result = (log.borrow().clone(), begins.borrow().clone());
            result
        }

        let (bare, none) = run_once(false);
        let (probed, arms) = run_once(true);
        assert!(none.is_empty());
        assert_eq!(bare, probed, "probe changed simulation results");
        assert_eq!(
            arms,
            vec![ActionArm::Boxed, ActionArm::Call, ActionArm::CallArg]
        );
    }

    #[test]
    fn timeline_defaults_disabled() {
        let sim = Sim::new(0);
        assert!(!sim.timeline.is_enabled());
    }
}
