//! Virtual time.
//!
//! All simulated time is kept in integer nanoseconds. Integer time makes the
//! event queue ordering exact (no float comparison hazards) and keeps runs
//! bit-for-bit reproducible across platforms.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since t=0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        // lint:allow(time-overflow, reason="fixed ×1e3 unit scale; overflows only past ~584 years of simulated time, far beyond any run")
        SimTime(us * 1_000)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Elapsed span since `earlier`; saturates to zero rather than wrapping,
    /// so callers comparing out-of-order stamps get a defined result.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference (`None` if `earlier` is in the future).
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_us(us: u64) -> Self {
        // lint:allow(time-overflow, reason="fixed ×1e3 unit scale; overflows only past ~584 years of simulated time, far beyond any run")
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional microseconds (rounded to the nearest ns).
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "negative duration");
        // lint:allow(time-overflow, reason="f64 multiply cannot wrap; float-to-int casts saturate")
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Construct from fractional seconds (rounded to the nearest ns).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration");
        SimDuration((s * 1_000_000_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Span expressed in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Span expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The time a given number of bytes occupies a pipe of `bits_per_sec`,
    /// rounded up to the next nanosecond so zero-cost transfers cannot occur.
    pub fn for_bytes(bytes: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "zero-bandwidth pipe");
        let bits = bytes as u128 * 8;
        // lint:allow(time-overflow, reason="arithmetic is performed in u128; cannot overflow for any u64 byte count")
        let ns = (bits * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // lint:allow(no-unwrap, reason="wall of ~584 years of simulated ns; overflow is a driver bug worth halting on")
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        // lint:allow(no-unwrap, reason="subtracting below t=0 is a scheduling bug worth halting on")
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        // lint:allow(no-unwrap, reason="a negative duration is a causality bug worth halting on")
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // lint:allow(no-unwrap, reason="overflow past ~584 years of ns is a driver bug worth halting on")
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        // lint:allow(no-unwrap, reason="a negative duration is a causality bug worth halting on")
        SimDuration(self.0.checked_sub(rhs.0).expect("negative SimDuration"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // lint:allow(no-unwrap, reason="overflow past ~584 years of ns is a driver bug worth halting on")
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimDuration::from_ms(2), SimDuration::from_us(2_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_ms(1_000));
        assert_eq!(SimDuration::from_us_f64(0.65), SimDuration::from_ns(650));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_ms(500));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_us(10);
        let d = SimDuration::from_us(4);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        assert_eq!(d + d, SimDuration::from_us(8));
        assert_eq!(d * 3, SimDuration::from_us(12));
        assert_eq!(d / 2, SimDuration::from_us(2));
    }

    #[test]
    fn saturating_since_defined_for_out_of_order() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(b.saturating_since(a), SimDuration::from_us(4));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_us(4)));
    }

    #[test]
    #[should_panic(expected = "negative SimDuration")]
    fn negative_difference_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    fn wire_time_rounds_up() {
        // 1 byte @ 1 Gb/s = 8 ns exactly.
        assert_eq!(
            SimDuration::for_bytes(1, 1_000_000_000),
            SimDuration::from_ns(8)
        );
        // 1 byte @ 3 Gb/s = 2.66.. ns -> rounds up to 3.
        assert_eq!(
            SimDuration::for_bytes(1, 3_000_000_000),
            SimDuration::from_ns(3)
        );
        // Nothing is free.
        assert_eq!(SimDuration::for_bytes(0, 1_000_000_000), SimDuration::ZERO);
        // 1500 bytes @ 100 Mb/s = 120 us.
        assert_eq!(
            SimDuration::for_bytes(1500, 100_000_000),
            SimDuration::from_us(120)
        );
    }

    #[test]
    fn float_views() {
        assert_eq!(SimDuration::from_us(36).as_us_f64(), 36.0);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_us(7).as_us_f64(), 7.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&us| SimDuration::from_us(us))
            .sum();
        assert_eq!(total, SimDuration::from_us(6));
    }
}
