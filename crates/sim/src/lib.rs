//! # clic-sim — discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`Sim`] — a deterministic event loop over boxed closures,
//! * [`Cpu`] — a two-priority-class (IRQ > task) serial processor resource,
//! * [`SerialResource`] — a FIFO bus resource (PCI, memory bus),
//! * [`SimRng`] — a seeded, reproducible random source,
//! * [`stats`] — counters, gauges, histograms and throughput meters,
//! * [`trace`] — per-packet pipeline-stage tracing (used to regenerate the
//!   paper's Figure 7 timing breakdown).
//!
//! A simulation is single-threaded; components are shared as
//! `Rc<RefCell<T>>` and captured by the event closures. Parameter sweeps run
//! many independent `Sim` instances in parallel (see `clic-cluster`).
//!
//! Determinism: events at equal timestamps execute in scheduling (FIFO)
//! order, and all randomness flows through [`SimRng`], so a run is a pure
//! function of its configuration and seed.

#![warn(missing_docs)]

pub mod engine;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::Sim;
pub use resource::{Cpu, CpuClass, SerialResource};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEvent};
