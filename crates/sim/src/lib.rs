//! # clic-sim — discrete-event simulation engine
//!
//! The substrate every other crate in this workspace runs on. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`Sim`] — a deterministic event loop (boxed closures plus an
//!   allocation-free plain-function fast path),
//! * [`queue`] — the hierarchical calendar queue ordering the event loop,
//! * [`Cpu`] — a two-priority-class (IRQ > task) serial processor resource,
//! * [`SerialResource`] — a FIFO bus resource (PCI, memory bus),
//! * [`SimRng`] — a seeded, reproducible random source,
//! * [`stats`] — sample-exact latency and throughput measurement,
//! * [`metrics`] — the per-run registry of named counters, gauges and
//!   log-bucketed histograms (plain-text dump exporter),
//! * [`trace`] — cross-layer span/event tracing with a Chrome trace-event
//!   JSON exporter (used to regenerate the paper's Figure 7 timing
//!   breakdown, and to trace any packet through the full pipeline),
//! * [`timeseries`] — the deterministic timeline recorder bucketing
//!   catalogued gauges/counters over simulated time (CSV dump plus
//!   Perfetto counter tracks),
//! * [`catalog`] — the central registry of every metric and trace-stage
//!   name; consumed at runtime by [`Metrics::uncataloged`] /
//!   [`Trace::uncataloged_stages`] and statically by `clic-analyze`.
//!
//! A simulation is single-threaded; components are shared as
//! `Rc<RefCell<T>>` and captured by the event closures. Parameter sweeps run
//! many independent `Sim` instances in parallel (see `clic-cluster`).
//!
//! Determinism: events at equal timestamps execute in scheduling (FIFO)
//! order, and all randomness flows through [`SimRng`], so a run is a pure
//! function of its configuration and seed.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod timeseries;
pub mod trace;

pub use catalog::{MetricId, MetricKind, StageId};
pub use engine::{ActionArm, EngineProbe, Sim};
pub use metrics::{LogHistogram, Metrics};
pub use resource::{Cpu, CpuClass, SerialResource};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use timeseries::TimelineRecorder;
pub use trace::{Layer, Mark, StageSpan, Trace, TraceError, TraceEvent};
