//! The engine's priority queue: a hierarchical calendar queue tuned to
//! ns-scale event distributions.
//!
//! [`CalendarQueue`] orders items by a total key `(time, seq)` — `seq` is
//! the engine's monotonically increasing schedule counter, so same-time
//! items pop in FIFO schedule order, which is the determinism contract of
//! [`crate::Sim`]. The structure replaces a `BinaryHeap` with tiers
//! chosen so the common scheduling patterns of this simulator hit O(1)
//! paths:
//!
//! * **wheel** — a ring of [`SLOTS`] unsorted buckets covering the next
//!   `SLOTS × SLOT_WIDTH_NS` of virtual time (≈ 2 ms). Inserts are an
//!   O(1) push; a 1-bit-per-slot occupancy bitmap finds the next
//!   non-empty bucket by word scans instead of walking empty buckets.
//! * **bucket view** — when the cursor reaches a bucket, the bucket is
//!   sorted *in place* and popped through a cursor, so bulk items are
//!   moved exactly twice (insert push, pop take). Dense buckets skip
//!   comparison sorting entirely: appends arrive in ascending `seq`
//!   order, so a stable two-pass counting sort on the in-slot time
//!   offset (9 bits) yields the full `(time, seq)` order as an index
//!   permutation without touching the items.
//! * **active slot** — a sorted overlay deque for items that must enter
//!   the already-open slot: schedules landing at or before the cursor
//!   (same-instant follow-ups, post-horizon resume inserts). Pops are
//!   `pop_front`; inserts compare against the back (`push_back` for
//!   in-order keys, the common case) and binary-search otherwise. A live
//!   bucket view is materialised into this deque before such an insert,
//!   preserving order.
//! * **overflow** — a min-heap for items beyond the wheel horizon
//!   (coarse timers: RTOs, keepalives, chaos schedules). Items migrate
//!   into their bucket when the cursor reaches it, so each pays O(log n)
//!   once regardless of how often the wheel turns.
//!
//! # Ordering invariants
//!
//! 1. Every active-deque item sorts `<=` every viewed-bucket item, every
//!    viewed item sorts `<` every other wheel item, and overflow items
//!    sort after the wheel window — maintained by routing inserts on
//!    their slot (`time >> SLOT_SHIFT`) relative to the cursor and by
//!    materialising the view before an in-slot insert.
//! 2. Keys are unique (`seq` never repeats), so pop order is a strict
//!    total order, unstable sorts are safe, and bucket appends are
//!    always in ascending `seq` order (the counting sort's stability
//!    precondition).
//! 3. Inserts must not precede the last popped key (the engine asserts
//!    `time >= now`). Inserting into an already-passed region of the
//!    current slot is still legal — such items sort to the front of the
//!    active deque — which is exactly what resuming after a
//!    [`crate::Sim::run_until`] horizon stop produces.
//!
//! The queue is generic over the payload so the engine can store its
//! action representation while property tests drive the same structure
//! with plain markers against a reference `BinaryHeap` model.

use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// log2 of the slot width: each wheel slot covers `2^SLOT_SHIFT` ns.
pub const SLOT_SHIFT: u32 = 9;
/// Width of one wheel slot in nanoseconds.
pub const SLOT_WIDTH_NS: u64 = 1 << SLOT_SHIFT;
/// Number of wheel slots (power of two). The wheel spans
/// `SLOTS * SLOT_WIDTH_NS` ns ≈ 2.1 ms of virtual time ahead of the
/// cursor; anything farther goes to the overflow heap.
pub const SLOTS: usize = 4096;

const SLOT_MASK: u64 = SLOTS as u64 - 1;
const WORDS: usize = SLOTS / 64;
/// Buckets larger than this are sorted with the counting permutation;
/// smaller ones with a comparison sort (the 2-pass count over
/// `SLOT_WIDTH_NS` offsets only amortises on dense buckets).
const COUNTING_SORT_MIN: usize = 64;

struct Item<T> {
    time: SimTime,
    seq: u64,
    value: T,
}

impl<T> Item<T> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
    #[inline]
    fn sort_key(&self) -> u128 {
        ((self.time.as_ns() as u128) << 64) | self.seq as u128
    }
}

/// Overflow entries order the surrounding `BinaryHeap` as a min-heap on
/// `(time, seq)` (comparison inverted; the payload does not participate).
struct OverflowItem<T>(Item<T>);

impl<T> PartialEq for OverflowItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for OverflowItem<T> {}
impl<T> PartialOrd for OverflowItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

/// A calendar queue over `(time, seq)`-keyed items. See the module docs
/// for the tier structure and invariants.
pub struct CalendarQueue<T> {
    /// Ring of unsorted future buckets; index = `slot & SLOT_MASK`.
    /// Entries are `Some` until taken by a view pop.
    wheel: Vec<Vec<Option<Item<T>>>>,
    /// One bit per wheel bucket: set while the bucket holds future items
    /// (cleared when the cursor opens the bucket).
    occupied: [u64; WORDS],
    /// Absolute slot index (`time >> SLOT_SHIFT`) the cursor points at.
    cur_slot: u64,
    /// Whether the cursor has opened a slot yet. False only before the
    /// first pop; until then slot-`cur_slot` inserts stay in the wheel so
    /// a pre-run fan-out is O(1) per insert.
    active_valid: bool,
    /// Sorted (ascending key) overlay for items entering the open slot.
    active: VecDeque<Item<T>>,
    /// Min-heap of items beyond the wheel horizon.
    overflow: BinaryHeap<OverflowItem<T>>,
    /// Sorted index permutation of the viewed bucket; empty = identity
    /// (the bucket was sorted in place).
    perm: Vec<u32>,
    /// Wheel index of the bucket a live view drains.
    view_idx: usize,
    /// Next view position to pop.
    view_head: usize,
    /// Number of items the live view covers.
    view_len: usize,
    /// Whether a bucket view is live (implies the active deque was empty
    /// when it was opened; in-slot inserts materialise it first).
    view_live: bool,
    /// Whether anything was ever popped. Gates the empty-queue insert
    /// fast path: before the first pop a fan-out into an empty queue
    /// must spread across wheel buckets, not the sorted deque.
    popped: bool,
    /// Total pending items.
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// An empty queue with the cursor at time zero.
    pub fn new() -> Self {
        CalendarQueue {
            wheel: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            cur_slot: 0,
            active_valid: false,
            active: VecDeque::new(),
            overflow: BinaryHeap::new(),
            perm: Vec::new(),
            view_idx: 0,
            view_head: 0,
            view_len: 0,
            view_live: false,
            popped: false,
            len: 0,
        }
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no items are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item. `seq` must be unique across the queue's lifetime
    /// and `(time, seq)` must not precede the last popped key (the engine
    /// guarantees both).
    #[inline]
    pub fn insert(&mut self, time: SimTime, seq: u64, value: T) {
        let item = Item { time, seq, value };
        self.len += 1;
        let slot = time.as_ns() >> SLOT_SHIFT;
        if self.len == 1 && self.popped {
            // Insert into an empty, running queue (the event-chain
            // pattern: each event schedules its successor and nothing
            // else is pending). Jump the cursor to the item's slot — the
            // tiers are all empty, and the insert contract bounds `time`
            // below by the last popped key, so the cursor only moves
            // forward. The item becomes the sole active entry and the
            // next pop takes it without a wheel advance.
            self.cur_slot = slot;
            self.active_valid = true;
            self.active.push_back(item);
            return;
        }
        if self.active_valid && slot <= self.cur_slot {
            // Entering the open (or, after a horizon stop, an
            // already-passed) slot: keep the sorted overlay authoritative
            // — fold a live bucket view into it first.
            if self.view_live {
                self.materialize_view();
            }
            // New items usually carry the largest key in the slot, so
            // compare against the back first and binary-search only on
            // the rare out-of-order insert.
            let key = item.key();
            match self.active.back() {
                Some(back) if key < back.key() => {
                    let idx = self.active.partition_point(|it| it.key() < key);
                    self.active.insert(idx, item);
                }
                _ => self.active.push_back(item),
            }
        } else if slot < self.cur_slot + SLOTS as u64 {
            let i = (slot & SLOT_MASK) as usize;
            self.wheel[i].push(Some(item));
            self.occupied[i / 64] |= 1 << (i % 64);
        } else {
            self.overflow.push(OverflowItem(item));
        }
    }

    /// Key of the earliest pending item, or `None` when empty. May
    /// advance the cursor to the next populated slot (which does not
    /// affect pop order).
    pub fn next_key(&mut self) -> Option<(SimTime, u64)> {
        loop {
            if let Some(front) = self.active.front() {
                return Some(front.key());
            }
            if self.view_live {
                let i = self.view_index(self.view_head);
                return self.wheel[self.view_idx][i].as_ref().map(Item::key);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Remove and return the earliest item, or `None` when empty.
    /// Amortised O(1) per item over a queue's lifetime.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        loop {
            if let Some(it) = self.active.pop_front() {
                self.len -= 1;
                self.popped = true;
                return Some((it.time, it.seq, it.value));
            }
            if self.view_live {
                let i = self.view_index(self.view_head);
                let it = self.wheel[self.view_idx][i].take();
                self.view_head += 1;
                if self.view_head == self.view_len {
                    self.wheel[self.view_idx].clear();
                    self.view_live = false;
                }
                self.len -= 1;
                self.popped = true;
                return it.map(|it| (it.time, it.seq, it.value));
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Bucket position of view entry `k` (identity when `perm` is empty:
    /// the bucket was sorted in place).
    #[inline]
    fn view_index(&self, k: usize) -> usize {
        if self.perm.is_empty() {
            k
        } else {
            self.perm[k] as usize
        }
    }

    /// Fold the remaining items of a live view into the active deque, in
    /// order. Called before an insert targets the open slot, so the
    /// sorted overlay stays authoritative.
    fn materialize_view(&mut self) {
        for k in self.view_head..self.view_len {
            let i = self.view_index(k);
            if let Some(it) = self.wheel[self.view_idx][i].take() {
                self.active.push_back(it);
            }
        }
        self.wheel[self.view_idx].clear();
        self.view_live = false;
    }

    /// Move the cursor to the next populated slot and open it as a
    /// sorted view (migrating due overflow items into it first).
    /// Requires pending items and no open view or active items.
    fn advance(&mut self) {
        // Find the next populated slot among the wheel (bitmap scan) and
        // the overflow heap, whichever is earlier.
        let scan_from = if self.active_valid {
            self.cur_slot + 1
        } else {
            self.cur_slot
        };
        let wheel_slot = self.next_occupied_slot(scan_from);
        let over_slot = self.overflow.peek().map(|o| o.0.time.as_ns() >> SLOT_SHIFT);
        let target = match (wheel_slot, over_slot) {
            (Some(w), Some(o)) => w.min(o),
            (Some(w), None) => w,
            (None, Some(o)) => o,
            (None, None) => return,
        };
        self.cur_slot = target;
        self.active_valid = true;
        let idx = (target & SLOT_MASK) as usize;
        self.occupied[idx / 64] &= !(1 << (idx % 64));
        // Append overflow items that landed in this slot; the bucket is
        // then sorted as a whole, so their position does not matter.
        let mut migrated = false;
        while let Some(top) = self.overflow.peek() {
            if top.0.time.as_ns() >> SLOT_SHIFT > target {
                break;
            }
            if let Some(OverflowItem(it)) = self.overflow.pop() {
                self.wheel[idx].push(Some(it));
                migrated = true;
            }
        }
        let n = self.wheel[idx].len();
        self.perm.clear();
        if !migrated && n > COUNTING_SORT_MIN {
            // Dense bucket: build a sorted index permutation with a
            // stable two-pass counting sort on the in-slot time offset.
            // Appends happened in ascending `seq` order, so stability
            // restores the full (time, seq) order without moving or
            // comparing items.
            const W: usize = SLOT_WIDTH_NS as usize;
            let mut counts = [0u32; W];
            let bucket = &self.wheel[idx];
            for it in bucket.iter().flatten() {
                counts[(it.time.as_ns() as usize) & (W - 1)] += 1;
            }
            let mut sum = 0u32;
            for c in counts.iter_mut() {
                let v = *c;
                *c = sum;
                sum += v;
            }
            self.perm.resize(n, 0);
            for (i, slot) in bucket.iter().enumerate() {
                if let Some(it) = slot {
                    let o = (it.time.as_ns() as usize) & (W - 1);
                    self.perm[counts[o] as usize] = i as u32;
                    counts[o] += 1;
                }
            }
        } else {
            // Sparse (or overflow-mixed) bucket: comparison-sort in place
            // and drain by identity. Keys are unique, so an unstable sort
            // yields the total order; `None` never occurs pre-drain.
            self.wheel[idx].sort_unstable_by_key(|slot| slot.as_ref().map(Item::sort_key));
        }
        self.view_idx = idx;
        self.view_head = 0;
        self.view_len = n;
        self.view_live = n > 0;
    }

    /// First wheel slot `>= from` whose bucket is non-empty, as an
    /// absolute slot index; `None` when the whole wheel is empty.
    fn next_occupied_slot(&self, from: u64) -> Option<u64> {
        let start = (from & SLOT_MASK) as usize;
        let (sw, sb) = (start / 64, (start % 64) as u32);
        for k in 0..=WORDS {
            let wi = (sw + k) % WORDS;
            let mut w = self.occupied[wi];
            if k == 0 {
                w &= !0u64 << sb;
            }
            if k == WORDS {
                if sb == 0 {
                    break;
                }
                w &= (1u64 << sb) - 1;
            }
            if w != 0 {
                let idx = wi * 64 + w.trailing_zeros() as usize;
                let delta = (idx + SLOTS - start) % SLOTS;
                return Some(from + delta as u64);
            }
        }
        None
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("len", &self.len)
            .field("cur_slot", &self.cur_slot)
            .field("active", &self.active.len())
            .field("overflow", &self.overflow.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some((t, s, v)) = q.pop() {
            out.push((t.as_ns(), s, v));
        }
        out
    }

    #[test]
    fn pops_in_key_order_across_tiers() {
        let mut q = CalendarQueue::new();
        // One per tier: current slot, wheel, overflow.
        q.insert(SimTime::from_ns(5), 0, 1);
        q.insert(SimTime::from_ns(SLOT_WIDTH_NS * 7), 1, 2);
        q.insert(SimTime::from_ns(SLOT_WIDTH_NS * SLOTS as u64 * 3), 2, 3);
        q.insert(SimTime::from_ns(6), 3, 4);
        assert_eq!(q.len(), 4);
        assert_eq!(
            drain(&mut q),
            vec![
                (5, 0, 1),
                (6, 3, 4),
                (SLOT_WIDTH_NS * 7, 1, 2),
                (SLOT_WIDTH_NS * SLOTS as u64 * 3, 2, 3),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_pops_in_seq_order() {
        let mut q = CalendarQueue::new();
        for seq in 0..100u64 {
            q.insert(SimTime::from_ns(42), seq, seq as u32);
        }
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn dense_bucket_counting_sort_is_stable() {
        // Enough same-slot items to trigger the counting-sort view, with
        // colliding times: equal times must pop in seq order.
        let mut q = CalendarQueue::new();
        let n = 4 * COUNTING_SORT_MIN as u64;
        for seq in 0..n {
            let t = (seq * 7) % SLOT_WIDTH_NS;
            q.insert(SimTime::from_ns(t), seq, seq as u32);
        }
        let popped = drain(&mut q);
        let mut expect: Vec<(u64, u64)> = (0..n).map(|s| ((s * 7) % SLOT_WIDTH_NS, s)).collect();
        expect.sort();
        let got: Vec<(u64, u64)> = popped.into_iter().map(|(t, s, _)| (t, s)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn insert_during_dense_drain_materializes_in_order() {
        // An insert targeting the open slot while a dense bucket view is
        // live must fold the view into the sorted overlay and land in
        // its key position.
        let mut q = CalendarQueue::new();
        let n = 4 * COUNTING_SORT_MIN as u64;
        for seq in 0..n {
            q.insert(SimTime::from_ns(2 * (seq % 100)), seq, seq as u32);
        }
        // Open the view and drain a few items.
        for _ in 0..10 {
            assert!(q.pop().is_some());
        }
        // Same-slot insert mid-drain (time after the drained prefix).
        q.insert(SimTime::from_ns(9), n, 999);
        let got: Vec<(u64, u64)> = drain(&mut q).into_iter().map(|(t, s, _)| (t, s)).collect();
        let mut expect: Vec<(u64, u64)> = (0..n).map(|s| (2 * (s % 100), s)).collect();
        expect.sort();
        let mut expect: Vec<(u64, u64)> = expect.split_off(10);
        expect.push((9, n));
        expect.sort();
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn insert_behind_cursor_after_advance_stays_ordered() {
        let mut q = CalendarQueue::new();
        // Popping the slot-0 item advances the cursor to the far
        // bucket…
        q.insert(SimTime::from_ns(3), 0, 1);
        q.insert(SimTime::from_ns(SLOT_WIDTH_NS * 100), 1, 2);
        q.insert(SimTime::from_ns(SLOT_WIDTH_NS * 100 + 1), 2, 3);
        assert_eq!(q.pop().map(|(t, ..)| t.as_ns()), Some(3));
        assert_eq!(
            q.next_key(),
            Some((SimTime::from_ns(SLOT_WIDTH_NS * 100), 1))
        );
        // …but an insert into the skipped region (legal after a horizon
        // stop) must still pop first.
        q.insert(SimTime::from_ns(SLOT_WIDTH_NS * 50), 3, 4);
        assert_eq!(
            drain(&mut q),
            vec![
                (SLOT_WIDTH_NS * 50, 3, 4),
                (SLOT_WIDTH_NS * 100, 1, 2),
                (SLOT_WIDTH_NS * 100 + 1, 2, 3),
            ]
        );
    }

    #[test]
    fn overflow_migrates_in_order() {
        let mut q = CalendarQueue::new();
        let far = SLOT_WIDTH_NS * SLOTS as u64;
        // Far-future items in reverse order, plus a near item.
        q.insert(SimTime::from_ns(far * 5), 0, 0);
        q.insert(SimTime::from_ns(far * 2), 1, 1);
        q.insert(SimTime::from_ns(far * 2 + 1), 2, 2);
        q.insert(SimTime::from_ns(1), 3, 3);
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(t, _, _)| t).collect();
        assert_eq!(order, vec![1, far * 2, far * 2 + 1, far * 5]);
    }

    #[test]
    fn interleaved_insert_and_pop() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::from_ns(10), 0, 0);
        assert_eq!(q.pop().map(|(t, ..)| t.as_ns()), Some(10));
        // Schedule from "inside" the popped event: same slot, later slot,
        // far future.
        q.insert(SimTime::from_ns(10), 1, 1);
        q.insert(SimTime::from_ns(10 + SLOT_WIDTH_NS * 2), 2, 2);
        q.insert(
            SimTime::from_ns(10 + SLOT_WIDTH_NS * SLOTS as u64 * 2),
            3,
            3,
        );
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_key(), None);
        assert!(q.pop().is_none());
    }
}
