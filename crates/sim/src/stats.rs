//! Measurement primitives used by all experiments.

use crate::time::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Add `by`.
    pub fn add(&mut self, by: u64) {
        self.n += by;
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.n
    }
}

/// Accumulates bytes over a time window and reports throughput.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    bytes: u64,
    start: SimTime,
    last: SimTime,
}

impl ThroughputMeter {
    /// Start measuring at `start`.
    pub fn new(start: SimTime) -> Self {
        ThroughputMeter {
            bytes: 0,
            start,
            last: start,
        }
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Megabits per second over `[start, last]`, the unit of the paper's
    /// figures. Zero if the window is empty.
    pub fn mbps(&self) -> f64 {
        let window = self.last.saturating_since(self.start);
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e6
    }

    /// Throughput over an externally supplied window (e.g. a fixed horizon).
    pub fn mbps_over(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e6
    }
}

/// Collects duration samples and reports summary statistics.
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples: Vec<SimDuration>,
}

impl LatencyStats {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_ns() as u128).sum();
        Some(SimDuration::from_ns(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().copied().max()
    }

    /// p-th percentile (0.0..=1.0) by nearest-rank on a sorted copy.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

/// Power-of-two bucketed histogram of u64 values (sizes, queue depths).
#[derive(Debug, Clone)]
pub struct Histogram {
    /// buckets[i] counts values in [2^(i-1), 2^i), buckets[0] counts 0..1.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// New empty histogram (65 buckets cover the full u64 range).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
        }
    }

    fn bucket_for(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record a value.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_for(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty `(bucket_upper_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let upper = if i == 0 { 0 } else { 1u64 << i.min(63) };
                (upper, c)
            })
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn throughput_mbps() {
        let mut m = ThroughputMeter::new(SimTime::ZERO);
        // 125 MB in 1 s = 1000 Mb/s.
        m.record(SimTime::from_ns(1_000_000_000), 125_000_000);
        assert!((m.mbps() - 1000.0).abs() < 1e-6);
        assert_eq!(m.bytes(), 125_000_000);
    }

    #[test]
    fn throughput_empty_window_is_zero() {
        let m = ThroughputMeter::new(SimTime::from_us(5));
        assert_eq!(m.mbps(), 0.0);
        assert_eq!(m.mbps_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn throughput_over_fixed_window() {
        let mut m = ThroughputMeter::new(SimTime::ZERO);
        m.record(SimTime::from_us(1), 1000);
        // 1000 B over 8 us = 1 Gb/s.
        assert!((m.mbps_over(SimDuration::from_us(8)) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn latency_summary() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), None);
        for us in [10u64, 20, 30, 40] {
            l.record(SimDuration::from_us(us));
        }
        assert_eq!(l.count(), 4);
        assert_eq!(l.mean(), Some(SimDuration::from_us(25)));
        assert_eq!(l.min(), Some(SimDuration::from_us(10)));
        assert_eq!(l.max(), Some(SimDuration::from_us(40)));
        assert_eq!(l.percentile(0.5), Some(SimDuration::from_us(20)));
        assert_eq!(l.percentile(1.0), Some(SimDuration::from_us(40)));
        assert_eq!(l.percentile(0.0), Some(SimDuration::from_us(10)));
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1500);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - (1 + 2 + 3 + 1500) as f64 / 5.0).abs() < 1e-9);
        let buckets = h.nonzero_buckets();
        // 0 -> bucket 0; 1 -> bucket 1 (upper 2); 2,3 -> bucket 2 (upper 4);
        // 1500 -> bucket 11 (upper 2048).
        assert_eq!(buckets, vec![(0, 1), (2, 1), (4, 2), (2048, 1)]);
    }
}
