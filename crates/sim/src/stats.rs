//! Sample-exact measurement primitives used by the experiment drivers.
//!
//! Event counting and bucketed distributions moved to the per-run
//! [`crate::metrics::Metrics`] registry; what remains here are the
//! sample-exact instruments workloads thread through their callbacks: the
//! throughput meter behind every bandwidth figure and the latency
//! collector behind the ping-pong/request-reply figures.

use crate::time::{SimDuration, SimTime};

/// Accumulates bytes over a time window and reports throughput.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    bytes: u64,
    start: SimTime,
    last: SimTime,
}

impl ThroughputMeter {
    /// Start measuring at `start`.
    pub fn new(start: SimTime) -> Self {
        ThroughputMeter {
            bytes: 0,
            start,
            last: start,
        }
    }

    /// Record `bytes` delivered at time `at`.
    pub fn record(&mut self, at: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.last = self.last.max(at);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Megabits per second over `[start, last]`, the unit of the paper's
    /// figures. Zero if the window is empty.
    pub fn mbps(&self) -> f64 {
        let window = self.last.saturating_since(self.start);
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e6
    }

    /// Throughput over an externally supplied window (e.g. a fixed horizon).
    pub fn mbps_over(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64() / 1e6
    }
}

/// Collects duration samples and reports summary statistics.
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples: Vec<SimDuration>,
}

impl LatencyStats {
    /// New empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let total: u128 = self.samples.iter().map(|d| d.as_ns() as u128).sum();
        Some(SimDuration::from_ns(
            (total / self.samples.len() as u128) as u64,
        ))
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<SimDuration> {
        self.samples.iter().copied().min()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<SimDuration> {
        self.samples.iter().copied().max()
    }

    /// p-th percentile (0.0..=1.0) by nearest-rank on a sorted copy.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_mbps() {
        let mut m = ThroughputMeter::new(SimTime::ZERO);
        // 125 MB in 1 s = 1000 Mb/s.
        m.record(SimTime::from_ns(1_000_000_000), 125_000_000);
        assert!((m.mbps() - 1000.0).abs() < 1e-6);
        assert_eq!(m.bytes(), 125_000_000);
    }

    #[test]
    fn throughput_empty_window_is_zero() {
        let m = ThroughputMeter::new(SimTime::from_us(5));
        assert_eq!(m.mbps(), 0.0);
        assert_eq!(m.mbps_over(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn throughput_bytes_in_zero_width_window_is_zero_not_nan() {
        // Bytes recorded at exactly the start instant leave `[start, last]`
        // empty: the naive bytes/window division would be inf (or NaN with
        // zero bytes). Both reports must stay a finite 0.0.
        let mut m = ThroughputMeter::new(SimTime::from_us(5));
        m.record(SimTime::from_us(5), 10_000);
        assert_eq!(m.bytes(), 10_000);
        assert_eq!(m.mbps(), 0.0);
        assert!(m.mbps().is_finite());
        assert_eq!(m.mbps_over(SimDuration::ZERO), 0.0);
        assert!(m.mbps_over(SimDuration::ZERO).is_finite());
    }

    #[test]
    fn throughput_over_fixed_window() {
        let mut m = ThroughputMeter::new(SimTime::ZERO);
        m.record(SimTime::from_us(1), 1000);
        // 1000 B over 8 us = 1 Gb/s.
        assert!((m.mbps_over(SimDuration::from_us(8)) - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn latency_summary() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), None);
        for us in [10u64, 20, 30, 40] {
            l.record(SimDuration::from_us(us));
        }
        assert_eq!(l.count(), 4);
        assert_eq!(l.mean(), Some(SimDuration::from_us(25)));
        assert_eq!(l.min(), Some(SimDuration::from_us(10)));
        assert_eq!(l.max(), Some(SimDuration::from_us(40)));
        assert_eq!(l.percentile(0.5), Some(SimDuration::from_us(20)));
        assert_eq!(l.percentile(1.0), Some(SimDuration::from_us(40)));
        assert_eq!(l.percentile(0.0), Some(SimDuration::from_us(10)));
    }
}
