//! Deterministic randomness.
//!
//! All stochastic behaviour in the simulator (link loss, jitter, workload
//! arrival processes) draws from this wrapper so a run is reproducible from
//! its seed alone.
//!
//! The generator is a self-contained xoshiro256++ implementation that is
//! **bit-compatible with `rand` 0.8's `SmallRng` on 64-bit platforms**:
//! the same seed produces the same stream of values from every method.
//! Earlier revisions wrapped `rand::rngs::SmallRng` directly; the crate
//! dependency was dropped so the workspace builds without registry
//! access, and keeping the streams identical preserves every published
//! number in `EXPERIMENTS.md` / `figures_full.txt` that depends on
//! randomness (the loss ablation in particular).

use std::ops::Range;

/// A seeded random source: xoshiro256++, seeded exactly as `rand` 0.8's
/// `SmallRng::seed_from_u64` does on 64-bit platforms. Stable across
/// platforms with the same seed.
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit seed.
    ///
    /// Seed expansion is the `rand_core` 0.6 *default*
    /// `SeedableRng::seed_from_u64` (a PCG32 stream filling the 32-byte
    /// seed in 4-byte chunks, read little-endian into the four state
    /// words). `SmallRng`'s `SeedableRng` impl does not forward
    /// `seed_from_u64` to xoshiro256++'s SplitMix64 override, so this —
    /// not SplitMix64 — is what `SmallRng::seed_from_u64` actually does.
    pub fn new(seed: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut state = seed;
        let mut seed_bytes = [0u8; 32];
        for chunk in seed_bytes.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed_bytes.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *word = u64::from_le_bytes(b);
        }
        SimRng { s }
    }

    /// Next 64 uniform bits (the xoshiro256++ core step).
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniform bits. The upper half of a 64-bit draw is used
    /// because xoshiro256++'s low bits have weak linear structure.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // As rand's Bernoulli: p == 1 short-circuits without drawing;
        // otherwise one draw is compared against p scaled to 64 bits.
        if p == 1.0 {
            return true;
        }
        let scale = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }

    /// Uniform value in `[low, low + span)` for a non-zero span, by
    /// widening multiply with rejection (rand's `UniformInt`, unbiased).
    fn sample_range(&mut self, low: u64, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = (span << span.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) <= zone {
                return low.wrapping_add((m >> 64) as u64);
            }
        }
    }

    /// Uniform `u64` in `range`. Panics on an empty range.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range_u64: empty range");
        let span = range.end.wrapping_sub(range.start);
        self.sample_range(range.start, span)
    }

    /// Uniform `usize` in `range`. Panics on an empty range.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range_usize: empty range");
        self.sample_range(range.start as u64, (range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        let scale = 1.0 / (1u64 << 53) as f64;
        scale * (self.next_u64() >> 11) as f64
    }

    /// Fill a byte buffer (used to generate test payloads): whole 64-bit
    /// words little-endian, then a 64- or 32-bit draw for the tail.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        let n = rest.len();
        if n > 4 {
            rest.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        } else if n > 0 {
            rest.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
        }
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0..1_000_000), b.gen_range_u64(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range_u64(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range_u64(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(3);
        for _ in 0..64 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        // Out-of-range probabilities are clamped, not a panic.
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = SimRng::new(5);
        let mut buf = [0u8; 64];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    /// Reference vector: seeding must match `rand 0.8`'s
    /// `SmallRng::seed_from_u64(0)` on 64-bit platforms, which expands the
    /// seed with `rand_core`'s default PCG32-based `seed_from_u64` (NOT
    /// xoshiro's SplitMix64 override — `SmallRng` doesn't forward it).
    /// Guards the exact bitstream the recorded numbers in
    /// `figures_full.txt` depend on.
    #[test]
    fn reference_stream_seed_zero() {
        let expected_state: [u64; 4] = [
            0x45cd_b581_f973_f2ec,
            0xad6c_ad06_7346_f087,
            0x67e7_1733_e3a3_d0d0,
            0xfe7d_8ad7_72ea_9bf2,
        ];
        let r = SimRng::new(0);
        assert_eq!(r.s, expected_state);
        // First output: rotl(s0 + s3, 23) + s0 over that state.
        let mut r = SimRng::new(0);
        let first = expected_state[0]
            .wrapping_add(expected_state[3])
            .rotate_left(23)
            .wrapping_add(expected_state[0]);
        assert_eq!(r.next_u64(), first);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::new(9);
        for _ in 0..1_000 {
            let v = r.gen_range_u64(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range_usize(1..2);
            assert_eq!(w, 1);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
