//! Deterministic randomness.
//!
//! All stochastic behaviour in the simulator (link loss, jitter, workload
//! arrival processes) draws from this wrapper so a run is reproducible from
//! its seed alone.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// A seeded random source. `SmallRng` is fast and, for a fixed rand version,
/// stable across platforms with the same seed.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// Uniform `u64` in `range`.
    pub fn gen_range_u64(&mut self, range: Range<u64>) -> u64 {
        self.inner.gen_range(range)
    }

    /// Uniform `usize` in `range`.
    pub fn gen_range_usize(&mut self, range: Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Fill a byte buffer (used to generate test payloads).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0..1_000_000), b.gen_range_u64(0..1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.gen_range_u64(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen_range_u64(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::new(3);
        for _ in 0..64 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        // Out-of-range probabilities are clamped, not a panic.
        assert!(r.gen_bool(2.0));
        assert!(!r.gen_bool(-1.0));
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = SimRng::new(5);
        let mut buf = [0u8; 64];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
