//! Deterministic time-resolved telemetry: the timeline recorder.
//!
//! End-of-run aggregates ([`crate::metrics::Metrics`]) say *that* a switch
//! queue filled or a window collapsed, never *when* or *for how long*. The
//! [`TimelineRecorder`] answers the time-resolved question: it samples
//! catalogued gauges (instantaneous level) and counters (per-bucket
//! increments) into fixed-width buckets of **simulated** time, producing
//! plottable series — switch queue depth over time, per-bucket link byte
//! rate, effective window trajectory — for the scenarios the experiment
//! layer replays.
//!
//! ## Determinism
//!
//! A sample's bucket index is a pure function of the simulation clock
//! (`time_ns / bucket_ns`, exact integer division) and recording happens
//! only inside event handlers, which the engine executes in one
//! deterministic order. There is no wall clock and no sampling thread:
//! "sampling at bucket boundaries" is implemented by rolling each series
//! forward lazily whenever a recording call crosses into a later bucket —
//! gauges carry their last-written level across empty buckets (a gauge is
//! a step function, so the level at a boundary *is* the last write before
//! it), counters emit their accumulated delta and restart from zero. The
//! resulting bytes depend only on the simulated run, never on host timing
//! or on how many worker processes replayed sibling scenarios.
//!
//! ## Flight recorder
//!
//! Chaos-soak-length runs would accumulate unbounded series; the
//! [`TimelineRecorder::flight_recorder`] mode bounds every series to the
//! most recent `capacity` sealed buckets, evicting the oldest. Eviction is
//! per-series and purely count-based, so it is exactly as deterministic as
//! the samples themselves.
//!
//! ## Identity and merge
//!
//! Series are keyed by interned catalog id ([`MetricId`], the same
//! compile-time interning metrics use) plus an optional node tag, so a
//! per-node recorder merges into a cluster-wide one exactly — no name
//! re-parsing, no float re-aggregation — via
//! [`TimelineRecorder::merge_node`], which imports series under an
//! `n<idx>.` display prefix exactly like per-node metric registries.
//!
//! Everything is off by default ([`TimelineRecorder::disabled`] is a
//! single-branch no-op), so paper-grade runs are byte-identical with the
//! recorder absent.

use std::collections::{BTreeMap, VecDeque};

use crate::catalog::{self, MetricId, MetricKind};
use crate::time::{SimDuration, SimTime};

/// How a series folds multiple writes into one bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeriesKind {
    /// Instantaneous level: the bucket holds the last value written in
    /// it; empty buckets carry the previous level forward.
    Level,
    /// Monotonic increments: the bucket holds the sum of deltas recorded
    /// in it; empty buckets hold zero.
    Rate,
}

/// One bucketed series: sealed buckets plus the bucket currently
/// accumulating.
#[derive(Debug, Clone)]
struct Series {
    kind: SeriesKind,
    /// Bucket index of `sealed[0]` (advances under ring eviction).
    start: u64,
    sealed: VecDeque<i64>,
    /// Bucket currently accumulating (always >= `start + sealed.len()`).
    cur_bucket: u64,
    /// Level (gauge) or accumulated delta (counter) of `cur_bucket`.
    cur: i64,
}

impl Series {
    fn new(kind: SeriesKind, bucket: u64) -> Series {
        Series {
            kind,
            start: bucket,
            sealed: VecDeque::new(),
            cur_bucket: bucket,
            cur: 0,
        }
    }

    /// Seal buckets up to (excluding) `bucket`, filling gaps per kind and
    /// applying ring eviction.
    fn advance_to(&mut self, bucket: u64, capacity: Option<usize>) {
        while self.cur_bucket < bucket {
            self.sealed.push_back(self.cur);
            if let Some(cap) = capacity {
                while self.sealed.len() > cap {
                    self.sealed.pop_front();
                    self.start += 1;
                }
            }
            self.cur_bucket += 1;
            if self.kind == SeriesKind::Rate {
                self.cur = 0;
            }
            // Level series keep `cur` (carry the last level forward).
        }
    }

    /// Seal the current (possibly partial) bucket as the final sample.
    fn seal_last(&mut self, capacity: Option<usize>) {
        self.sealed.push_back(self.cur);
        if let Some(cap) = capacity {
            while self.sealed.len() > cap {
                self.sealed.pop_front();
                self.start += 1;
            }
        }
    }
}

/// Records catalogued gauge/counter samples into fixed-width buckets of
/// simulated time. See the [module docs](self) for semantics.
#[derive(Debug, Clone)]
pub struct TimelineRecorder {
    enabled: bool,
    finished: bool,
    bucket_ns: u64,
    capacity: Option<usize>,
    series: BTreeMap<(MetricId, Option<u32>), Series>,
}

impl TimelineRecorder {
    /// A recorder that drops every sample (one branch per call). This is
    /// the default on [`crate::engine::Sim`], so paper-grade runs carry no
    /// timeline state at all.
    pub fn disabled() -> TimelineRecorder {
        TimelineRecorder {
            enabled: false,
            finished: false,
            bucket_ns: 1,
            capacity: None,
            series: BTreeMap::new(),
        }
    }

    /// A recorder sampling into `bucket`-wide buckets, unbounded history.
    pub fn enabled(bucket: SimDuration) -> TimelineRecorder {
        assert!(bucket.as_ns() > 0, "zero-width timeline bucket");
        TimelineRecorder {
            enabled: true,
            finished: false,
            bucket_ns: bucket.as_ns(),
            capacity: None,
            series: BTreeMap::new(),
        }
    }

    /// A bounded "flight recorder": every series keeps only its most
    /// recent `capacity` sealed buckets. For chaos-soak-length runs where
    /// only the window around a failure matters.
    pub fn flight_recorder(bucket: SimDuration, capacity: usize) -> TimelineRecorder {
        assert!(capacity > 0, "zero-capacity flight recorder");
        let mut r = TimelineRecorder::enabled(bucket);
        r.capacity = Some(capacity);
        r
    }

    /// Whether samples are being kept. Callers computing a non-trivial
    /// value to record should guard on this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Width of one bucket.
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration::from_ns(self.bucket_ns)
    }

    /// Number of distinct series recorded.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    #[inline]
    fn bucket_of(&self, t: SimTime) -> u64 {
        t.as_ns() / self.bucket_ns
    }

    fn record(&mut self, now: SimTime, id: MetricId, kind: SeriesKind, value: i64) {
        let bucket = self.bucket_of(now);
        let capacity = self.capacity;
        let s = self
            .series
            .entry((id, None))
            .or_insert_with(|| Series::new(kind, bucket));
        s.advance_to(bucket, capacity);
        match kind {
            SeriesKind::Level => s.cur = value,
            SeriesKind::Rate => s.cur += value,
        }
    }

    /// Record the instantaneous level of gauge `id` at `now`. The bucket
    /// keeps the last level written in it; later empty buckets inherit it.
    #[inline]
    pub fn gauge(&mut self, now: SimTime, id: MetricId, value: i64) {
        if !self.enabled || self.finished {
            return;
        }
        self.record(now, id, SeriesKind::Level, value);
    }

    /// Record `by` increments on counter `id` at `now`. The bucket keeps
    /// the sum of deltas recorded in it (a per-bucket rate once divided by
    /// the bucket width); empty buckets hold zero.
    #[inline]
    pub fn counter(&mut self, now: SimTime, id: MetricId, by: u64) {
        if !self.enabled || self.finished {
            return;
        }
        self.record(now, id, SeriesKind::Rate, by as i64);
    }

    /// Seal every series through the bucket containing `now` (the final,
    /// possibly partial, bucket included). Recording after `finish` is
    /// ignored; calling it again is a no-op.
    pub fn finish(&mut self, now: SimTime) {
        if !self.enabled || self.finished {
            return;
        }
        self.finished = true;
        let bucket = self.bucket_of(now);
        let capacity = self.capacity;
        for s in self.series.values_mut() {
            s.advance_to(bucket.max(s.cur_bucket), capacity);
            s.seal_last(capacity);
        }
    }

    /// Import every untagged series of a finished per-node recorder under
    /// node tag `node` (displayed with an `n<idx>.` prefix, like per-node
    /// metric registries). Sealed samples are copied exactly — same ids,
    /// same bucket indices, same integers — so merging is associative and
    /// byte-reproducible. Both recorders must use the same bucket width.
    pub fn merge_node(&mut self, other: &TimelineRecorder, node: u32) {
        if !other.enabled {
            return;
        }
        assert!(
            self.bucket_ns == other.bucket_ns,
            "merging timelines with different bucket widths"
        );
        for (&(id, tag), s) in &other.series {
            if tag.is_none() {
                self.series.insert((id, Some(node)), s.clone());
            }
        }
    }

    fn display_name(id: MetricId, node: Option<u32>) -> String {
        match node {
            Some(n) => format!("n{}.{}", n, id.def().name),
            None => id.def().name.to_string(),
        }
    }

    /// Exact microseconds of a bucket's start, as a JSON-safe decimal
    /// (`ns/1000` with three fractional digits, like the trace exporter).
    fn bucket_ts_us(&self, bucket: u64) -> String {
        // lint:allow(time-overflow, reason="bucket was derived as timestamp/bucket_ns, so the product is bounded by the original u64 timestamp")
        let ns = bucket * self.bucket_ns;
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }

    fn lookup(&self, name: &str, kind: MetricKind) -> Option<(MetricId, Option<u32>)> {
        let stripped = catalog::strip_node_prefix(name);
        let node = if stripped.len() < name.len() {
            name[1..name.len() - stripped.len() - 1].parse::<u32>().ok()
        } else {
            None
        };
        let id = catalog::find_metric(stripped, kind)?;
        Some((id, node))
    }

    /// Sealed samples of the gauge series `name` (optionally
    /// `n<idx>.`-prefixed) as `(bucket start, level)` pairs. `None` if the
    /// name is uncatalogued or never recorded. Series names resolve
    /// through the catalog exactly like metric names.
    pub fn gauge_series(&self, name: &str) -> Option<Vec<(SimTime, i64)>> {
        let key = self.lookup(name, MetricKind::Gauge)?;
        self.series.get(&key).map(|s| self.samples_of(s))
    }

    /// Sealed samples of the counter series `name` (optionally
    /// `n<idx>.`-prefixed) as `(bucket start, delta)` pairs. `None` if the
    /// name is uncatalogued or never recorded.
    pub fn counter_series(&self, name: &str) -> Option<Vec<(SimTime, i64)>> {
        let key = self.lookup(name, MetricKind::Counter)?;
        self.series.get(&key).map(|s| self.samples_of(s))
    }

    fn samples_of(&self, s: &Series) -> Vec<(SimTime, i64)> {
        s.sealed
            .iter()
            .enumerate()
            // lint:allow(time-overflow, reason="start+i indexes sealed buckets (timestamp/bucket_ns), so the product is bounded by the last recorded u64 timestamp")
            .map(|(i, &v)| (SimTime::from_ns((s.start + i as u64) * self.bucket_ns), v))
            .collect()
    }

    /// Deterministic text dump: a CSV with one row per sealed bucket per
    /// series (`series,bucket,t_us,value`), series in interned-id order
    /// (which is name order), untagged before per-node. Byte-identical for
    /// byte-identical runs.
    pub fn dump(&self) -> String {
        let mut out = format!(
            "# timeline bucket_us={}.{:03} series={}\n",
            self.bucket_ns / 1000,
            self.bucket_ns % 1000,
            self.series.len()
        );
        out.push_str("series,bucket,t_us,value\n");
        for (&(id, node), s) in &self.series {
            let name = Self::display_name(id, node);
            for (i, &v) in s.sealed.iter().enumerate() {
                let bucket = s.start + i as u64;
                out.push_str(&format!(
                    "{},{},{},{}\n",
                    name,
                    bucket,
                    self.bucket_ts_us(bucket),
                    v
                ));
            }
        }
        out
    }

    /// Perfetto counter-track rows (`"ph": "C"`) for every sealed bucket,
    /// formatted exactly like the Chrome-trace exporter's rows so they can
    /// be appended to [`crate::trace::Trace::chrome_trace_json_with`].
    /// Perfetto renders each distinct `name` as one counter track. Empty
    /// when nothing was recorded, keeping traces byte-identical.
    pub fn chrome_counter_rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for (&(id, node), s) in &self.series {
            let name = Self::display_name(id, node);
            for (i, &v) in s.sealed.iter().enumerate() {
                let bucket = s.start + i as u64;
                rows.push(format!(
                    "    {{\"ph\": \"C\", \"pid\": 0, \"ts\": {}, \"name\": \"{}\", \
                     \"args\": {{\"value\": {}}}}}",
                    self.bucket_ts_us(bucket),
                    name,
                    v
                ));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{counter_id, gauge_id};

    const QDEPTH: MetricId = gauge_id("eth.switch.queue_depth");
    const TXB: MetricId = counter_id("eth.link.tx_bytes");

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn disabled_records_nothing() {
        let mut r = TimelineRecorder::disabled();
        r.gauge(us(1), QDEPTH, 5);
        r.counter(us(1), TXB, 100);
        r.finish(us(10));
        assert!(!r.is_enabled());
        assert_eq!(r.series_count(), 0);
        assert!(r.chrome_counter_rows().is_empty());
    }

    #[test]
    fn gauge_carries_level_across_empty_buckets() {
        let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
        r.gauge(us(5), QDEPTH, 3); // bucket 0
        r.gauge(us(45), QDEPTH, 7); // bucket 4
        r.finish(us(60)); // seal through bucket 6
        let s = r.gauge_series("eth.switch.queue_depth").expect("recorded");
        assert_eq!(
            s,
            vec![
                (us(0), 3),
                (us(10), 3),
                (us(20), 3),
                (us(30), 3),
                (us(40), 7),
                (us(50), 7),
                (us(60), 7),
            ]
        );
    }

    #[test]
    fn counter_sums_deltas_and_zero_fills() {
        let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
        r.counter(us(1), TXB, 100); // bucket 0
        r.counter(us(2), TXB, 50); // bucket 0
        r.counter(us(35), TXB, 10); // bucket 3
        r.finish(us(39));
        let s = r.counter_series("eth.link.tx_bytes").expect("recorded");
        assert_eq!(
            s,
            vec![(us(0), 150), (us(10), 0), (us(20), 0), (us(30), 10)]
        );
    }

    #[test]
    fn last_write_in_bucket_wins_for_gauges() {
        let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
        r.gauge(us(1), QDEPTH, 1);
        r.gauge(us(9), QDEPTH, 9); // same bucket: level at the boundary
        r.finish(us(9));
        let s = r.gauge_series("eth.switch.queue_depth").expect("recorded");
        assert_eq!(s, vec![(us(0), 9)]);
    }

    #[test]
    fn series_start_at_first_sample_bucket() {
        let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
        r.counter(us(55), TXB, 7); // bucket 5: no buckets 0-4 invented
        r.finish(us(55));
        let s = r.counter_series("eth.link.tx_bytes").expect("recorded");
        assert_eq!(s, vec![(us(50), 7)]);
    }

    #[test]
    fn flight_recorder_keeps_last_n_with_correct_timestamps() {
        let mut r = TimelineRecorder::flight_recorder(SimDuration::from_us(10), 3);
        for b in 0..10u64 {
            r.counter(us(b * 10 + 1), TXB, (b + 1) * 100);
        }
        r.finish(us(99)); // buckets 0..=9 sealed; only 7, 8, 9 survive
        let s = r.counter_series("eth.link.tx_bytes").expect("recorded");
        assert_eq!(s, vec![(us(70), 800), (us(80), 900), (us(90), 1000)]);
    }

    #[test]
    fn finish_is_idempotent_and_stops_recording() {
        let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
        r.gauge(us(5), QDEPTH, 2);
        r.finish(us(5));
        r.finish(us(500));
        r.gauge(us(500), QDEPTH, 9);
        let s = r.gauge_series("eth.switch.queue_depth").expect("recorded");
        assert_eq!(s, vec![(us(0), 2)]);
    }

    #[test]
    fn merge_node_prefixes_and_copies_exactly() {
        let mut a = TimelineRecorder::enabled(SimDuration::from_us(10));
        a.gauge(us(5), QDEPTH, 4);
        a.finish(us(5));
        let mut merged = TimelineRecorder::enabled(SimDuration::from_us(10));
        merged.merge_node(&a, 0);
        merged.merge_node(&a, 3);
        assert_eq!(
            merged.gauge_series("n0.eth.switch.queue_depth"),
            a.gauge_series("eth.switch.queue_depth")
        );
        assert_eq!(
            merged.gauge_series("n3.eth.switch.queue_depth"),
            a.gauge_series("eth.switch.queue_depth")
        );
        assert_eq!(merged.gauge_series("eth.switch.queue_depth"), None);
        let dump = merged.dump();
        assert!(dump.contains("n0.eth.switch.queue_depth,0,0.000,4"));
        assert!(dump.contains("n3.eth.switch.queue_depth,0,0.000,4"));
    }

    #[test]
    fn uncatalogued_lookup_is_none() {
        let r = TimelineRecorder::enabled(SimDuration::from_us(10));
        assert_eq!(r.gauge_series("made.up"), None);
        assert_eq!(r.counter_series("eth.switch.queue_depth"), None); // wrong kind
    }

    #[test]
    fn dump_and_counter_rows_are_deterministic() {
        let build = || {
            let mut r = TimelineRecorder::enabled(SimDuration::from_us(10));
            r.counter(us(1), TXB, 100);
            r.gauge(us(12), QDEPTH, 2);
            r.counter(us(25), TXB, 70);
            r.finish(us(30));
            r
        };
        let (a, b) = (build(), build());
        assert_eq!(a.dump(), b.dump());
        assert_eq!(a.chrome_counter_rows(), b.chrome_counter_rows());
        let rows = a.chrome_counter_rows();
        assert!(rows.iter().all(|r| r.contains("\"ph\": \"C\"")));
        assert!(rows
            .iter()
            .any(|r| r.contains("\"name\": \"eth.link.tx_bytes\"")));
    }
}
