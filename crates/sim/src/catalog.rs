//! Central catalog of every observability name in the workspace.
//!
//! Every metric name recorded into [`crate::metrics::Metrics`] and every
//! trace stage/instant name emitted into [`crate::trace::Trace`] must be
//! registered here. The catalog is consumed twice:
//!
//! * **at runtime** — [`Metrics::uncataloged`](crate::metrics::Metrics::uncataloged)
//!   and [`Trace::uncataloged_stages`](crate::trace::Trace::uncataloged_stages)
//!   check recorded names against it, and the experiment layer
//!   (`clic-cluster`) debug-asserts traced runs are clean, so an
//!   unregistered name cannot ship silently;
//! * **statically** — `clic-analyze` (`crates/analyze`) extracts every
//!   name literal passed to a recording call in the workspace source and
//!   fails CI on names that are unregistered here, registered twice, or
//!   registered but never recorded anywhere (dead entries).
//!
//! Per-node registries prefix names with `n<idx>.` (for example
//! `n0.clic.retransmits`); the catalog stores the unprefixed name and
//! [`strip_node_prefix`] normalises before lookup.
//!
//! Keep both tables sorted by name — `clic-analyze` enforces sortedness
//! so diffs stay one-line and duplicates are obvious.

use crate::trace::Layer;

/// What kind of instrument a metric name refers to.
///
/// A name may legitimately be registered once per kind (the switch records
/// `eth.switch.queue_depth` both as a live gauge and as a depth
/// histogram); registering the same `(name, kind)` pair twice is an error
/// `clic-analyze` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Monotonic event count ([`crate::metrics::Metrics::counter_add`]).
    Counter,
    /// Instantaneous level with peak tracking
    /// ([`crate::metrics::Metrics::gauge_set`]).
    Gauge,
    /// Log-bucketed value distribution
    /// ([`crate::metrics::Metrics::observe`]).
    Histogram,
}

/// One registered metric name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dotted metric name, without any `n<idx>.` node prefix.
    pub name: &'static str,
    /// Instrument kind the name is registered for.
    pub kind: MetricKind,
    /// What the metric measures.
    pub help: &'static str,
}

/// One registered trace stage / instant-event name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDef {
    /// Stable stage name as passed to [`crate::trace::Trace::begin`] /
    /// [`crate::trace::Trace::instant`].
    pub name: &'static str,
    /// Layers that emit this stage.
    pub layers: &'static [Layer],
    /// What the span/event marks.
    pub help: &'static str,
}

const C: MetricKind = MetricKind::Counter;
const G: MetricKind = MetricKind::Gauge;
const H: MetricKind = MetricKind::Histogram;

/// Every metric name the workspace may record, sorted by `(name, kind)`.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        name: "clic.cwnd",
        kind: G,
        help: "per-flow congestion window after the latest update, packets",
    },
    MetricDef {
        name: "clic.drops.backlog",
        kind: C,
        help: "packets dropped because the receive backlog was full",
    },
    MetricDef {
        name: "clic.drops.duplicate",
        kind: C,
        help: "already-delivered packets dropped (sender missed an ACK)",
    },
    MetricDef {
        name: "clic.drops.expired",
        kind: C,
        help: "buffered receive state discarded after peer-silence expiry",
    },
    MetricDef {
        name: "clic.drops.ooo",
        kind: C,
        help: "packets dropped because the out-of-order buffer was full",
    },
    MetricDef {
        name: "clic.drops.stale_epoch",
        kind: C,
        help: "packets dropped for carrying a previous session epoch",
    },
    MetricDef {
        name: "clic.ecn_echoes",
        kind: C,
        help: "ACKs carrying a congestion-mark echo, processed by senders",
    },
    MetricDef {
        name: "clic.effective_window",
        kind: G,
        help: "effective send window after peer advertisement, packets (timeline)",
    },
    MetricDef {
        name: "clic.fast_retransmits",
        kind: C,
        help: "retransmissions triggered by duplicate ACKs",
    },
    MetricDef {
        name: "clic.flow_failures",
        kind: C,
        help: "flows torn down by any error (sum of the per-cause splits)",
    },
    MetricDef {
        name: "clic.flow_failures.max_retries",
        kind: C,
        help: "flows torn down after exhausting retransmission retries",
    },
    MetricDef {
        name: "clic.flow_failures.peer_dead",
        kind: C,
        help: "flows torn down after keepalive declared the peer dead",
    },
    MetricDef {
        name: "clic.flow_failures.stale_epoch",
        kind: C,
        help: "flows torn down because the peer restarted into a new epoch",
    },
    MetricDef {
        name: "clic.inflight_bytes",
        kind: G,
        help: "payload bytes sent but not yet acknowledged (timeline)",
    },
    MetricDef {
        name: "clic.keepalive_probes",
        kind: C,
        help: "keepalive probe packets sent on silent flows",
    },
    MetricDef {
        name: "clic.msg_bytes",
        kind: H,
        help: "per-message payload size offered to clic_send",
    },
    MetricDef {
        name: "clic.msgs_received",
        kind: C,
        help: "messages delivered to receiving ports",
    },
    MetricDef {
        name: "clic.msgs_sent",
        kind: C,
        help: "messages accepted from sending processes",
    },
    MetricDef {
        name: "clic.packets_received",
        kind: C,
        help: "CLIC data packets received",
    },
    MetricDef {
        name: "clic.packets_sent",
        kind: C,
        help: "CLIC data packets sent (including retransmissions)",
    },
    MetricDef {
        name: "clic.recv_buffer_bytes",
        kind: G,
        help: "receive-side buffered bytes charged against the budget",
    },
    MetricDef {
        name: "clic.retransmits",
        kind: C,
        help: "packets retransmitted (timeout or duplicate-ACK driven)",
    },
    MetricDef {
        name: "clic.rttvar",
        kind: H,
        help: "smoothed RTT variance samples feeding the adaptive RTO, ns",
    },
    MetricDef {
        name: "clic.ssthresh",
        kind: G,
        help: "per-flow slow-start threshold after the latest update, packets",
    },
    MetricDef {
        name: "clic.staged_copies",
        kind: C,
        help: "1-copy sends staged through a kernel bounce buffer",
    },
    MetricDef {
        name: "eth.corrupt",
        kind: C,
        help: "frames corrupted in flight by fault injection",
    },
    MetricDef {
        name: "eth.duplicates",
        kind: C,
        help: "frames duplicated in flight by fault injection",
    },
    MetricDef {
        name: "eth.fabric.flood_pruned",
        kind: C,
        help: "flood copies suppressed by the loop-free flood membership",
    },
    MetricDef {
        name: "eth.fabric.trunk_tx_frames",
        kind: C,
        help: "frames forwarded out switch-to-switch trunk ports",
    },
    MetricDef {
        name: "eth.link.frame_bytes",
        kind: H,
        help: "on-wire frame sizes, bytes",
    },
    MetricDef {
        name: "eth.link.frames_lost",
        kind: C,
        help: "frames lost in flight (fault injection or outage)",
    },
    MetricDef {
        name: "eth.link.tx_bytes",
        kind: C,
        help: "on-wire bytes offered to links, timeline rate source",
    },
    MetricDef {
        name: "eth.reorders",
        kind: C,
        help: "frames reordered in flight by fault injection",
    },
    MetricDef {
        name: "eth.switch.drops",
        kind: C,
        help: "frames tail-dropped at a full switch output queue",
    },
    MetricDef {
        name: "eth.switch.ecn_marks",
        kind: C,
        help: "frames stamped congestion-experienced at a switch output queue",
    },
    MetricDef {
        name: "eth.switch.frames_dropped",
        kind: C,
        help: "switch lifetime tail-drop total (per-run export)",
    },
    MetricDef {
        name: "eth.switch.frames_flooded",
        kind: C,
        help: "frames flooded to all ports (broadcast/multicast/unknown)",
    },
    MetricDef {
        name: "eth.switch.frames_forwarded",
        kind: C,
        help: "frames forwarded to a learned port",
    },
    MetricDef {
        name: "eth.switch.queue_depth",
        kind: G,
        help: "live output-queue depth, frames",
    },
    MetricDef {
        name: "eth.switch.queue_depth",
        kind: H,
        help: "output-queue depth observed at each enqueue, frames",
    },
    MetricDef {
        name: "hw.mem.copy_bytes",
        kind: H,
        help: "per-copy sizes through the memory bus, bytes",
    },
    MetricDef {
        name: "hw.nic.coll.completions",
        kind: C,
        help: "collective operations completed by the NIC-resident engine",
    },
    MetricDef {
        name: "hw.nic.coll.msgs_rx",
        kind: C,
        help: "collective control frames consumed by the NIC engine (no host IRQ)",
    },
    MetricDef {
        name: "hw.nic.coll.msgs_tx",
        kind: C,
        help: "collective control frames emitted by the NIC engine",
    },
    MetricDef {
        name: "hw.nic.irqs",
        kind: C,
        help: "interrupts raised by the NIC (after coalescing)",
    },
    MetricDef {
        name: "hw.nic.rx_fcs_errors",
        kind: C,
        help: "received frames discarded by the FCS check",
    },
    MetricDef {
        name: "hw.nic.rx_frames",
        kind: C,
        help: "frames accepted into the RX ring",
    },
    MetricDef {
        name: "hw.nic.rx_no_buffer",
        kind: C,
        help: "frames dropped because the RX ring was full",
    },
    MetricDef {
        name: "hw.nic.tx_bytes",
        kind: C,
        help: "payload bytes transmitted by the NIC, timeline rate source",
    },
    MetricDef {
        name: "hw.nic.tx_frames",
        kind: C,
        help: "frames transmitted from the TX ring",
    },
    MetricDef {
        name: "hw.nic.tx_ring_full",
        kind: C,
        help: "TX descriptor posts rejected by a full ring",
    },
    MetricDef {
        name: "hw.pci.dma_bytes",
        kind: C,
        help: "bytes moved over the PCI bus, timeline rate source",
    },
    MetricDef {
        name: "hw.pci.dma_bytes",
        kind: H,
        help: "per-transaction DMA sizes over the PCI bus, bytes",
    },
    MetricDef {
        name: "mpi.msg_bytes",
        kind: H,
        help: "MPI message payload sizes, bytes",
    },
    MetricDef {
        name: "mpi.recvs",
        kind: C,
        help: "MPI receives completed",
    },
    MetricDef {
        name: "mpi.sends",
        kind: C,
        help: "MPI sends initiated",
    },
    MetricDef {
        name: "os.bottom_halves",
        kind: C,
        help: "bottom-half executions",
    },
    MetricDef {
        name: "os.context_switches",
        kind: C,
        help: "process context switches",
    },
    MetricDef {
        name: "os.frames_received",
        kind: C,
        help: "frames handed from the driver to protocol handlers",
    },
    MetricDef {
        name: "os.irqs",
        kind: C,
        help: "interrupt entries into the kernel",
    },
    MetricDef {
        name: "os.lightweight_calls",
        kind: C,
        help: "GAMMA-style lightweight system calls",
    },
    MetricDef {
        name: "os.syscalls",
        kind: C,
        help: "full system calls (0.65 us each, paper section 3.1)",
    },
    MetricDef {
        name: "sim.pool.alloc_misses",
        kind: C,
        help: "packet-buffer requests that allocated because the pool's size class was empty",
    },
    MetricDef {
        name: "sim.pool.discarded",
        kind: C,
        help: "dropped buffers released to the allocator (class list full or unpoolable size)",
    },
    MetricDef {
        name: "sim.pool.oversize",
        kind: C,
        help: "buffer requests above the largest pool class, served unpooled",
    },
    MetricDef {
        name: "sim.pool.recycled",
        kind: C,
        help: "packet-buffer requests served by a recycled buffer (no allocation)",
    },
    MetricDef {
        name: "sim.pool.returned",
        kind: C,
        help: "dropped buffers recycled into the pool's free lists",
    },
    MetricDef {
        name: "tcp.fast_retransmits",
        kind: C,
        help: "TCP retransmissions triggered by triple duplicate ACKs",
    },
    MetricDef {
        name: "tcp.retransmits",
        kind: C,
        help: "TCP segments retransmitted on RTO",
    },
];

/// Every trace stage/instant name the workspace may emit, sorted by name.
pub const STAGES: &[StageDef] = &[
    StageDef {
        name: "bottom_half",
        layers: &[Layer::Os],
        help: "bottom-half run delivering frames to a protocol module",
    },
    StageDef {
        name: "clic_module_rx",
        layers: &[Layer::Clic],
        help: "CLIC_MODULE receive processing",
    },
    StageDef {
        name: "clic_module_tx",
        layers: &[Layer::Clic],
        help: "CLIC_MODULE send path: header composition + SK_BUFF build",
    },
    StageDef {
        name: "copy_to_user",
        layers: &[Layer::Clic],
        help: "final copy from kernel staging into user memory",
    },
    StageDef {
        name: "driver_rx",
        layers: &[Layer::Os],
        help: "driver IRQ routine moving frames NIC -> system memory",
    },
    StageDef {
        name: "driver_tx",
        layers: &[Layer::Os],
        help: "hard_start_xmit handing an SK_BUFF to the NIC",
    },
    StageDef {
        name: "drop.backlog",
        layers: &[Layer::Clic],
        help: "packet dropped: receive backlog full",
    },
    StageDef {
        name: "drop.duplicate",
        layers: &[Layer::Clic],
        help: "packet dropped: already delivered",
    },
    StageDef {
        name: "drop.expired",
        layers: &[Layer::Clic],
        help: "buffered receive state expired after prolonged peer silence",
    },
    StageDef {
        name: "drop.fcs",
        layers: &[Layer::Hw],
        help: "frame dropped: FCS check failed at the NIC",
    },
    StageDef {
        name: "drop.ooo",
        layers: &[Layer::Clic],
        help: "packet dropped: out-of-order buffer full",
    },
    StageDef {
        name: "drop.rx_no_buffer",
        layers: &[Layer::Hw],
        help: "frame dropped: NIC RX ring full",
    },
    StageDef {
        name: "drop.stale_epoch",
        layers: &[Layer::Clic],
        help: "packet dropped: stamped with a previous session epoch",
    },
    StageDef {
        name: "ecn_echo",
        layers: &[Layer::Clic],
        help: "sender processed an ACK echoing a congestion mark",
    },
    StageDef {
        name: "fast_retransmit",
        layers: &[Layer::Clic, Layer::TcpIp],
        help: "duplicate-ACK-triggered retransmission",
    },
    StageDef {
        name: "flow_fail",
        layers: &[Layer::Clic],
        help: "flow torn down: retries exhausted, peer dead or stale epoch",
    },
    StageDef {
        name: "ip_rx",
        layers: &[Layer::TcpIp],
        help: "IPv4 receive: checksum, reassembly, demux",
    },
    StageDef {
        name: "ip_tx",
        layers: &[Layer::TcpIp],
        help: "IPv4 send: header build + fragmentation",
    },
    StageDef {
        name: "keepalive",
        layers: &[Layer::Clic],
        help: "keepalive probe sent on a silent flow",
    },
    StageDef {
        name: "link_drop",
        layers: &[Layer::Eth],
        help: "frame lost on the wire (fault injection/outage)",
    },
    StageDef {
        name: "mpi_recv",
        layers: &[Layer::Mpi],
        help: "MPI receive: matching + completion",
    },
    StageDef {
        name: "mpi_send",
        layers: &[Layer::Mpi],
        help: "MPI send: eager or rendezvous initiation",
    },
    StageDef {
        name: "nic_coll_down",
        layers: &[Layer::Hw],
        help: "NIC collective engine: release/result distributed down the tree",
    },
    StageDef {
        name: "nic_coll_up",
        layers: &[Layer::Hw],
        help: "NIC collective engine: arrival/partial combined up the tree",
    },
    StageDef {
        name: "nic_rx_dma",
        layers: &[Layer::Hw],
        help: "NIC bus-master DMA of a received frame over PCI",
    },
    StageDef {
        name: "nic_tx_dma",
        layers: &[Layer::Hw],
        help: "NIC bus-master DMA gather of a frame for transmit",
    },
    StageDef {
        name: "rto",
        layers: &[Layer::Clic, Layer::TcpIp],
        help: "retransmission timeout fired",
    },
    StageDef {
        name: "staged_copy",
        layers: &[Layer::Clic],
        help: "1-copy send staging into a kernel bounce buffer",
    },
    StageDef {
        name: "switch_drop",
        layers: &[Layer::Eth],
        help: "frame tail-dropped at a switch output queue",
    },
    StageDef {
        name: "switch_mark",
        layers: &[Layer::Eth],
        help: "frame stamped congestion-experienced at a switch output queue",
    },
    StageDef {
        name: "syscall",
        layers: &[Layer::Os],
        help: "system-call entry/exit around a send or receive",
    },
    StageDef {
        name: "tcp_tx",
        layers: &[Layer::TcpIp],
        help: "TCP send: segmentation, checksum, window bookkeeping",
    },
    StageDef {
        name: "wire",
        layers: &[Layer::Eth],
        help: "frame serialization + propagation on a link",
    },
];

/// Strip an `n<idx>.` per-node prefix, if present: `n0.clic.retransmits`
/// normalises to `clic.retransmits`. Names without the prefix pass through
/// unchanged.
pub fn strip_node_prefix(name: &str) -> &str {
    let Some(rest) = name.strip_prefix('n') else {
        return name;
    };
    let Some(dot) = rest.find('.') else {
        return name;
    };
    if dot > 0 && rest[..dot].bytes().all(|b| b.is_ascii_digit()) {
        &rest[dot + 1..]
    } else {
        name
    }
}

/// Whether `name` (possibly `n<idx>.`-prefixed) is registered for `kind`.
pub fn is_metric(name: &str, kind: MetricKind) -> bool {
    let name = strip_node_prefix(name);
    METRICS.iter().any(|m| m.name == name && m.kind == kind)
}

/// Whether `stage` is a registered trace stage/instant name.
pub fn is_stage(stage: &str) -> bool {
    STAGES.iter().any(|s| s.name == stage)
}

// ---------------------------------------------------------------------------
// Interning
//
// Hot recording paths compare u16 catalog indices instead of hashing or
// comparing `&str` names. Ids are resolved at *compile time* through the
// `const fn` lookups below (`const TX: MetricId = counter_id("…")`), so an
// unregistered name at an interned call site fails the build rather than a
// runtime check; the string-keyed APIs remain for dynamic (per-node
// prefixed, experiment-local) names and route catalog hits to the interned
// stores via the runtime `find_*` binary searches.

/// Interned index of a `(name, kind)` entry in [`METRICS`].
///
/// Obtain one from [`counter_id`] / [`gauge_id`] / [`histogram_id`] in a
/// `const` context. Because [`METRICS`] is sorted by `(name, kind)`,
/// ascending id order is ascending name order, which keeps merged dumps
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId(u16);

impl MetricId {
    /// Position in [`METRICS`].
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The catalog entry this id refers to.
    pub fn def(self) -> &'static MetricDef {
        &METRICS[self.0 as usize]
    }
}

/// Interned index of an entry in [`STAGES`] (sorted by name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StageId(u16);

impl StageId {
    /// Position in [`STAGES`].
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The catalog entry this id refers to.
    pub fn def(self) -> &'static StageDef {
        &STAGES[self.0 as usize]
    }
}

/// Const-context string equality (`==` on `&str` is not const-stable).
const fn str_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len() != b.len() {
        return false;
    }
    let mut i = 0;
    while i < a.len() {
        if a[i] != b[i] {
            return false;
        }
        i += 1;
    }
    true
}

/// Const-context kind equality (no const `PartialEq` for enums).
const fn kind_eq(a: MetricKind, b: MetricKind) -> bool {
    matches!(
        (a, b),
        (MetricKind::Counter, MetricKind::Counter)
            | (MetricKind::Gauge, MetricKind::Gauge)
            | (MetricKind::Histogram, MetricKind::Histogram)
    )
}

const fn metric_id_of(name: &str, kind: MetricKind) -> MetricId {
    let mut i = 0;
    while i < METRICS.len() {
        if kind_eq(METRICS[i].kind, kind) && str_eq(METRICS[i].name, name) {
            return MetricId(i as u16);
        }
        i += 1;
    }
    // Evaluated in const context only: an unregistered name at an interned
    // call site is a compile error, never a runtime panic.
    // lint:allow(no-unwrap, reason="const-eval guard; interned names are resolved at compile time")
    panic!("metric name not registered in crates/sim/src/catalog.rs METRICS")
}

/// Compile-time id of a registered counter; unregistered names fail the
/// build. Use as `const X: MetricId = counter_id("…");`.
pub const fn counter_id(name: &str) -> MetricId {
    metric_id_of(name, MetricKind::Counter)
}

/// Compile-time id of a registered gauge; unregistered names fail the
/// build.
pub const fn gauge_id(name: &str) -> MetricId {
    metric_id_of(name, MetricKind::Gauge)
}

/// Compile-time id of a registered histogram; unregistered names fail the
/// build.
pub const fn histogram_id(name: &str) -> MetricId {
    metric_id_of(name, MetricKind::Histogram)
}

/// Compile-time id of a registered trace stage; unregistered names fail
/// the build. Use as `const S: StageId = stage_id("…");`.
pub const fn stage_id(name: &str) -> StageId {
    let mut i = 0;
    while i < STAGES.len() {
        if str_eq(STAGES[i].name, name) {
            return StageId(i as u16);
        }
        i += 1;
    }
    // lint:allow(no-unwrap, reason="const-eval guard; interned names are resolved at compile time")
    panic!("stage name not registered in crates/sim/src/catalog.rs STAGES")
}

/// Runtime id lookup for an exact (unprefixed) catalog name — binary
/// search over the `(name, kind)`-sorted table. The string-keyed
/// [`crate::metrics::Metrics`] APIs use this to route catalog names into
/// the interned stores.
pub fn find_metric(name: &str, kind: MetricKind) -> Option<MetricId> {
    METRICS
        .binary_search_by(|m| (m.name, m.kind).cmp(&(name, kind)))
        .ok()
        .map(|i| MetricId(i as u16))
}

/// Runtime id lookup for an exact stage name (binary search).
pub fn find_stage(name: &str) -> Option<StageId> {
    STAGES
        .binary_search_by(|s| s.name.cmp(name))
        .ok()
        .map(|i| StageId(i as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_unique() {
        for w in METRICS.windows(2) {
            assert!(
                (w[0].name, w[0].kind) < (w[1].name, w[1].kind),
                "METRICS out of order or duplicated at {:?}",
                w[1].name
            );
        }
        for w in STAGES.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "STAGES out of order or duplicated at {:?}",
                w[1].name
            );
        }
    }

    #[test]
    fn node_prefix_stripping() {
        assert_eq!(strip_node_prefix("n0.clic.retransmits"), "clic.retransmits");
        assert_eq!(strip_node_prefix("n12.os.syscalls"), "os.syscalls");
        assert_eq!(strip_node_prefix("clic.retransmits"), "clic.retransmits");
        assert_eq!(strip_node_prefix("nic.rx"), "nic.rx");
        assert_eq!(strip_node_prefix("n.x"), "n.x");
        assert_eq!(strip_node_prefix("n0"), "n0");
    }

    #[test]
    fn lookup_respects_kind() {
        assert!(is_metric("clic.retransmits", MetricKind::Counter));
        assert!(!is_metric("clic.retransmits", MetricKind::Gauge));
        assert!(is_metric("eth.switch.queue_depth", MetricKind::Gauge));
        assert!(is_metric("eth.switch.queue_depth", MetricKind::Histogram));
        assert!(is_metric("n1.clic.retransmits", MetricKind::Counter));
        assert!(!is_metric("made.up", MetricKind::Counter));
    }

    #[test]
    fn stage_lookup() {
        assert!(is_stage("driver_rx"));
        assert!(is_stage("drop.fcs"));
        assert!(!is_stage("made_up"));
    }

    #[test]
    fn interned_ids_resolve_at_compile_time() {
        const RETX: MetricId = counter_id("clic.retransmits");
        const QDEPTH_G: MetricId = gauge_id("eth.switch.queue_depth");
        const QDEPTH_H: MetricId = histogram_id("eth.switch.queue_depth");
        const WIRE: StageId = stage_id("wire");
        assert_eq!(RETX.def().name, "clic.retransmits");
        assert_eq!(QDEPTH_G.def().kind, MetricKind::Gauge);
        assert_eq!(QDEPTH_H.def().kind, MetricKind::Histogram);
        assert_ne!(QDEPTH_G, QDEPTH_H);
        assert_eq!(WIRE.def().name, "wire");
    }

    #[test]
    fn runtime_lookup_matches_const_lookup() {
        for (i, m) in METRICS.iter().enumerate() {
            let id = find_metric(m.name, m.kind).expect("every entry resolves");
            assert_eq!(id.index(), i);
        }
        for (i, s) in STAGES.iter().enumerate() {
            let id = find_stage(s.name).expect("every entry resolves");
            assert_eq!(id.index(), i);
        }
        assert!(find_metric("made.up", MetricKind::Counter).is_none());
        assert!(find_metric("clic.retransmits", MetricKind::Gauge).is_none());
        assert!(find_stage("made_up").is_none());
    }

    #[test]
    fn ascending_id_order_is_ascending_name_order() {
        // The dump merge-join relies on this.
        for w in METRICS.windows(2) {
            assert!(w[0].name <= w[1].name);
        }
    }
}
