//! Central catalog of every observability name in the workspace.
//!
//! Every metric name recorded into [`crate::metrics::Metrics`] and every
//! trace stage/instant name emitted into [`crate::trace::Trace`] must be
//! registered here. The catalog is consumed twice:
//!
//! * **at runtime** — [`Metrics::uncataloged`](crate::metrics::Metrics::uncataloged)
//!   and [`Trace::uncataloged_stages`](crate::trace::Trace::uncataloged_stages)
//!   check recorded names against it, and the experiment layer
//!   (`clic-cluster`) debug-asserts traced runs are clean, so an
//!   unregistered name cannot ship silently;
//! * **statically** — `clic-analyze` (`crates/analyze`) extracts every
//!   name literal passed to a recording call in the workspace source and
//!   fails CI on names that are unregistered here, registered twice, or
//!   registered but never recorded anywhere (dead entries).
//!
//! Per-node registries prefix names with `n<idx>.` (for example
//! `n0.clic.retransmits`); the catalog stores the unprefixed name and
//! [`strip_node_prefix`] normalises before lookup.
//!
//! Keep both tables sorted by name — `clic-analyze` enforces sortedness
//! so diffs stay one-line and duplicates are obvious.

use crate::trace::Layer;

/// What kind of instrument a metric name refers to.
///
/// A name may legitimately be registered once per kind (the switch records
/// `eth.switch.queue_depth` both as a live gauge and as a depth
/// histogram); registering the same `(name, kind)` pair twice is an error
/// `clic-analyze` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricKind {
    /// Monotonic event count ([`crate::metrics::Metrics::counter_add`]).
    Counter,
    /// Instantaneous level with peak tracking
    /// ([`crate::metrics::Metrics::gauge_set`]).
    Gauge,
    /// Log-bucketed value distribution
    /// ([`crate::metrics::Metrics::observe`]).
    Histogram,
}

/// One registered metric name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricDef {
    /// Dotted metric name, without any `n<idx>.` node prefix.
    pub name: &'static str,
    /// Instrument kind the name is registered for.
    pub kind: MetricKind,
    /// What the metric measures.
    pub help: &'static str,
}

/// One registered trace stage / instant-event name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDef {
    /// Stable stage name as passed to [`crate::trace::Trace::begin`] /
    /// [`crate::trace::Trace::instant`].
    pub name: &'static str,
    /// Layers that emit this stage.
    pub layers: &'static [Layer],
    /// What the span/event marks.
    pub help: &'static str,
}

const C: MetricKind = MetricKind::Counter;
const G: MetricKind = MetricKind::Gauge;
const H: MetricKind = MetricKind::Histogram;

/// Every metric name the workspace may record, sorted by `(name, kind)`.
pub const METRICS: &[MetricDef] = &[
    MetricDef {
        name: "clic.drops.backlog",
        kind: C,
        help: "packets dropped because the receive backlog was full",
    },
    MetricDef {
        name: "clic.drops.duplicate",
        kind: C,
        help: "already-delivered packets dropped (sender missed an ACK)",
    },
    MetricDef {
        name: "clic.drops.expired",
        kind: C,
        help: "buffered receive state discarded after peer-silence expiry",
    },
    MetricDef {
        name: "clic.drops.ooo",
        kind: C,
        help: "packets dropped because the out-of-order buffer was full",
    },
    MetricDef {
        name: "clic.drops.stale_epoch",
        kind: C,
        help: "packets dropped for carrying a previous session epoch",
    },
    MetricDef {
        name: "clic.fast_retransmits",
        kind: C,
        help: "retransmissions triggered by duplicate ACKs",
    },
    MetricDef {
        name: "clic.flow_failures",
        kind: C,
        help: "flows torn down by any error (sum of the per-cause splits)",
    },
    MetricDef {
        name: "clic.flow_failures.max_retries",
        kind: C,
        help: "flows torn down after exhausting retransmission retries",
    },
    MetricDef {
        name: "clic.flow_failures.peer_dead",
        kind: C,
        help: "flows torn down after keepalive declared the peer dead",
    },
    MetricDef {
        name: "clic.flow_failures.stale_epoch",
        kind: C,
        help: "flows torn down because the peer restarted into a new epoch",
    },
    MetricDef {
        name: "clic.keepalive_probes",
        kind: C,
        help: "keepalive probe packets sent on silent flows",
    },
    MetricDef {
        name: "clic.msg_bytes",
        kind: H,
        help: "per-message payload size offered to clic_send",
    },
    MetricDef {
        name: "clic.msgs_received",
        kind: C,
        help: "messages delivered to receiving ports",
    },
    MetricDef {
        name: "clic.msgs_sent",
        kind: C,
        help: "messages accepted from sending processes",
    },
    MetricDef {
        name: "clic.packets_received",
        kind: C,
        help: "CLIC data packets received",
    },
    MetricDef {
        name: "clic.packets_sent",
        kind: C,
        help: "CLIC data packets sent (including retransmissions)",
    },
    MetricDef {
        name: "clic.recv_buffer_bytes",
        kind: G,
        help: "receive-side buffered bytes charged against the budget",
    },
    MetricDef {
        name: "clic.retransmits",
        kind: C,
        help: "packets retransmitted (timeout or duplicate-ACK driven)",
    },
    MetricDef {
        name: "clic.rttvar",
        kind: H,
        help: "smoothed RTT variance samples feeding the adaptive RTO, ns",
    },
    MetricDef {
        name: "clic.staged_copies",
        kind: C,
        help: "1-copy sends staged through a kernel bounce buffer",
    },
    MetricDef {
        name: "eth.corrupt",
        kind: C,
        help: "frames corrupted in flight by fault injection",
    },
    MetricDef {
        name: "eth.duplicates",
        kind: C,
        help: "frames duplicated in flight by fault injection",
    },
    MetricDef {
        name: "eth.link.frame_bytes",
        kind: H,
        help: "on-wire frame sizes, bytes",
    },
    MetricDef {
        name: "eth.link.frames_lost",
        kind: C,
        help: "frames lost in flight (fault injection or outage)",
    },
    MetricDef {
        name: "eth.reorders",
        kind: C,
        help: "frames reordered in flight by fault injection",
    },
    MetricDef {
        name: "eth.switch.drops",
        kind: C,
        help: "frames tail-dropped at a full switch output queue",
    },
    MetricDef {
        name: "eth.switch.frames_dropped",
        kind: C,
        help: "switch lifetime tail-drop total (per-run export)",
    },
    MetricDef {
        name: "eth.switch.frames_flooded",
        kind: C,
        help: "frames flooded to all ports (broadcast/multicast/unknown)",
    },
    MetricDef {
        name: "eth.switch.frames_forwarded",
        kind: C,
        help: "frames forwarded to a learned port",
    },
    MetricDef {
        name: "eth.switch.queue_depth",
        kind: G,
        help: "live output-queue depth, frames",
    },
    MetricDef {
        name: "eth.switch.queue_depth",
        kind: H,
        help: "output-queue depth observed at each enqueue, frames",
    },
    MetricDef {
        name: "hw.mem.copy_bytes",
        kind: H,
        help: "per-copy sizes through the memory bus, bytes",
    },
    MetricDef {
        name: "hw.nic.irqs",
        kind: C,
        help: "interrupts raised by the NIC (after coalescing)",
    },
    MetricDef {
        name: "hw.nic.rx_fcs_errors",
        kind: C,
        help: "received frames discarded by the FCS check",
    },
    MetricDef {
        name: "hw.nic.rx_frames",
        kind: C,
        help: "frames accepted into the RX ring",
    },
    MetricDef {
        name: "hw.nic.rx_no_buffer",
        kind: C,
        help: "frames dropped because the RX ring was full",
    },
    MetricDef {
        name: "hw.nic.tx_frames",
        kind: C,
        help: "frames transmitted from the TX ring",
    },
    MetricDef {
        name: "hw.nic.tx_ring_full",
        kind: C,
        help: "TX descriptor posts rejected by a full ring",
    },
    MetricDef {
        name: "hw.pci.dma_bytes",
        kind: H,
        help: "per-transaction DMA sizes over the PCI bus, bytes",
    },
    MetricDef {
        name: "mpi.msg_bytes",
        kind: H,
        help: "MPI message payload sizes, bytes",
    },
    MetricDef {
        name: "mpi.recvs",
        kind: C,
        help: "MPI receives completed",
    },
    MetricDef {
        name: "mpi.sends",
        kind: C,
        help: "MPI sends initiated",
    },
    MetricDef {
        name: "os.bottom_halves",
        kind: C,
        help: "bottom-half executions",
    },
    MetricDef {
        name: "os.context_switches",
        kind: C,
        help: "process context switches",
    },
    MetricDef {
        name: "os.frames_received",
        kind: C,
        help: "frames handed from the driver to protocol handlers",
    },
    MetricDef {
        name: "os.irqs",
        kind: C,
        help: "interrupt entries into the kernel",
    },
    MetricDef {
        name: "os.lightweight_calls",
        kind: C,
        help: "GAMMA-style lightweight system calls",
    },
    MetricDef {
        name: "os.syscalls",
        kind: C,
        help: "full system calls (0.65 us each, paper section 3.1)",
    },
    MetricDef {
        name: "tcp.fast_retransmits",
        kind: C,
        help: "TCP retransmissions triggered by triple duplicate ACKs",
    },
    MetricDef {
        name: "tcp.retransmits",
        kind: C,
        help: "TCP segments retransmitted on RTO",
    },
];

/// Every trace stage/instant name the workspace may emit, sorted by name.
pub const STAGES: &[StageDef] = &[
    StageDef {
        name: "bottom_half",
        layers: &[Layer::Os],
        help: "bottom-half run delivering frames to a protocol module",
    },
    StageDef {
        name: "clic_module_rx",
        layers: &[Layer::Clic],
        help: "CLIC_MODULE receive processing",
    },
    StageDef {
        name: "clic_module_tx",
        layers: &[Layer::Clic],
        help: "CLIC_MODULE send path: header composition + SK_BUFF build",
    },
    StageDef {
        name: "copy_to_user",
        layers: &[Layer::Clic],
        help: "final copy from kernel staging into user memory",
    },
    StageDef {
        name: "driver_rx",
        layers: &[Layer::Os],
        help: "driver IRQ routine moving frames NIC -> system memory",
    },
    StageDef {
        name: "driver_tx",
        layers: &[Layer::Os],
        help: "hard_start_xmit handing an SK_BUFF to the NIC",
    },
    StageDef {
        name: "drop.backlog",
        layers: &[Layer::Clic],
        help: "packet dropped: receive backlog full",
    },
    StageDef {
        name: "drop.duplicate",
        layers: &[Layer::Clic],
        help: "packet dropped: already delivered",
    },
    StageDef {
        name: "drop.expired",
        layers: &[Layer::Clic],
        help: "buffered receive state expired after prolonged peer silence",
    },
    StageDef {
        name: "drop.fcs",
        layers: &[Layer::Hw],
        help: "frame dropped: FCS check failed at the NIC",
    },
    StageDef {
        name: "drop.ooo",
        layers: &[Layer::Clic],
        help: "packet dropped: out-of-order buffer full",
    },
    StageDef {
        name: "drop.rx_no_buffer",
        layers: &[Layer::Hw],
        help: "frame dropped: NIC RX ring full",
    },
    StageDef {
        name: "drop.stale_epoch",
        layers: &[Layer::Clic],
        help: "packet dropped: stamped with a previous session epoch",
    },
    StageDef {
        name: "fast_retransmit",
        layers: &[Layer::Clic, Layer::TcpIp],
        help: "duplicate-ACK-triggered retransmission",
    },
    StageDef {
        name: "flow_fail",
        layers: &[Layer::Clic],
        help: "flow torn down: retries exhausted, peer dead or stale epoch",
    },
    StageDef {
        name: "ip_rx",
        layers: &[Layer::TcpIp],
        help: "IPv4 receive: checksum, reassembly, demux",
    },
    StageDef {
        name: "ip_tx",
        layers: &[Layer::TcpIp],
        help: "IPv4 send: header build + fragmentation",
    },
    StageDef {
        name: "keepalive",
        layers: &[Layer::Clic],
        help: "keepalive probe sent on a silent flow",
    },
    StageDef {
        name: "link_drop",
        layers: &[Layer::Eth],
        help: "frame lost on the wire (fault injection/outage)",
    },
    StageDef {
        name: "mpi_recv",
        layers: &[Layer::Mpi],
        help: "MPI receive: matching + completion",
    },
    StageDef {
        name: "mpi_send",
        layers: &[Layer::Mpi],
        help: "MPI send: eager or rendezvous initiation",
    },
    StageDef {
        name: "nic_rx_dma",
        layers: &[Layer::Hw],
        help: "NIC bus-master DMA of a received frame over PCI",
    },
    StageDef {
        name: "nic_tx_dma",
        layers: &[Layer::Hw],
        help: "NIC bus-master DMA gather of a frame for transmit",
    },
    StageDef {
        name: "rto",
        layers: &[Layer::Clic, Layer::TcpIp],
        help: "retransmission timeout fired",
    },
    StageDef {
        name: "staged_copy",
        layers: &[Layer::Clic],
        help: "1-copy send staging into a kernel bounce buffer",
    },
    StageDef {
        name: "switch_drop",
        layers: &[Layer::Eth],
        help: "frame tail-dropped at a switch output queue",
    },
    StageDef {
        name: "syscall",
        layers: &[Layer::Os],
        help: "system-call entry/exit around a send or receive",
    },
    StageDef {
        name: "tcp_tx",
        layers: &[Layer::TcpIp],
        help: "TCP send: segmentation, checksum, window bookkeeping",
    },
    StageDef {
        name: "wire",
        layers: &[Layer::Eth],
        help: "frame serialization + propagation on a link",
    },
];

/// Strip an `n<idx>.` per-node prefix, if present: `n0.clic.retransmits`
/// normalises to `clic.retransmits`. Names without the prefix pass through
/// unchanged.
pub fn strip_node_prefix(name: &str) -> &str {
    let Some(rest) = name.strip_prefix('n') else {
        return name;
    };
    let Some(dot) = rest.find('.') else {
        return name;
    };
    if dot > 0 && rest[..dot].bytes().all(|b| b.is_ascii_digit()) {
        &rest[dot + 1..]
    } else {
        name
    }
}

/// Whether `name` (possibly `n<idx>.`-prefixed) is registered for `kind`.
pub fn is_metric(name: &str, kind: MetricKind) -> bool {
    let name = strip_node_prefix(name);
    METRICS.iter().any(|m| m.name == name && m.kind == kind)
}

/// Whether `stage` is a registered trace stage/instant name.
pub fn is_stage(stage: &str) -> bool {
    STAGES.iter().any(|s| s.name == stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_are_sorted_and_unique() {
        for w in METRICS.windows(2) {
            assert!(
                (w[0].name, w[0].kind) < (w[1].name, w[1].kind),
                "METRICS out of order or duplicated at {:?}",
                w[1].name
            );
        }
        for w in STAGES.windows(2) {
            assert!(
                w[0].name < w[1].name,
                "STAGES out of order or duplicated at {:?}",
                w[1].name
            );
        }
    }

    #[test]
    fn node_prefix_stripping() {
        assert_eq!(strip_node_prefix("n0.clic.retransmits"), "clic.retransmits");
        assert_eq!(strip_node_prefix("n12.os.syscalls"), "os.syscalls");
        assert_eq!(strip_node_prefix("clic.retransmits"), "clic.retransmits");
        assert_eq!(strip_node_prefix("nic.rx"), "nic.rx");
        assert_eq!(strip_node_prefix("n.x"), "n.x");
        assert_eq!(strip_node_prefix("n0"), "n0");
    }

    #[test]
    fn lookup_respects_kind() {
        assert!(is_metric("clic.retransmits", MetricKind::Counter));
        assert!(!is_metric("clic.retransmits", MetricKind::Gauge));
        assert!(is_metric("eth.switch.queue_depth", MetricKind::Gauge));
        assert!(is_metric("eth.switch.queue_depth", MetricKind::Histogram));
        assert!(is_metric("n1.clic.retransmits", MetricKind::Counter));
        assert!(!is_metric("made.up", MetricKind::Counter));
    }

    #[test]
    fn stage_lookup() {
        assert!(is_stage("driver_rx"));
        assert!(is_stage("drop.fcs"));
        assert!(!is_stage("made_up"));
    }
}
