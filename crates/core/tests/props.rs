//! Property-based tests: CLIC header codec and sliding-window invariants.

use bytes::Bytes;
use clic_core::header::{decode_msg_prefix, encode_msg_prefix};
use clic_core::reliable::{RecvOutcome, RecvWindow, SendWindow};
use clic_core::{ClicHeader, PacketType};
use clic_sim::SimTime;
use proptest::prelude::*;

fn arb_ptype() -> impl Strategy<Value = PacketType> {
    prop_oneof![
        Just(PacketType::Data),
        Just(PacketType::Ack),
        Just(PacketType::RemoteWrite),
        Just(PacketType::Mpi),
        Just(PacketType::Internal),
        Just(PacketType::KernelFunction),
    ]
}

proptest! {
    /// Header encode/decode roundtrip for arbitrary field values.
    #[test]
    fn header_roundtrip(
        ptype in arb_ptype(),
        flags in any::<u8>(),
        channel in any::<u16>(),
        seq in any::<u32>(),
        ce in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2_000),
    ) {
        let h = ClicHeader {
            ptype,
            flags,
            channel,
            seq,
            len: payload.len() as u32,
            ce,
        };
        let mut wire = h.encode().to_vec();
        // ACKs carry no payload on the wire: their `len` field is the
        // advertised receive window, not a byte count.
        let is_ack = ptype == PacketType::Ack;
        if !is_ack {
            wire.extend_from_slice(&payload);
        }
        wire.resize(wire.len().max(46), 0); // Ethernet padding
        let (parsed, body) = ClicHeader::decode(&wire).unwrap();
        prop_assert_eq!(parsed, h);
        if is_ack {
            prop_assert!(body.is_empty(), "ACK decode must not surface padding");
        } else {
            prop_assert_eq!(&body[..], &payload[..]);
        }
    }

    /// Message prefix roundtrip.
    #[test]
    fn msg_prefix_roundtrip(id in any::<u32>(), len in any::<u32>()) {
        let enc = encode_msg_prefix(id, len);
        prop_assert_eq!(decode_msg_prefix(&enc), Some((id, len)));
    }

    /// The receive window delivers every distinct sequence exactly once,
    /// in order, for an arbitrary arrival permutation with duplicates —
    /// as long as gaps stay within the buffer bound.
    #[test]
    fn recv_window_exactly_once_in_order(
        n in 1usize..64,
        seed in any::<u64>(),
        dups in 0usize..20,
    ) {
        // Build an arrival sequence: a shuffle of 0..n plus `dups` repeats.
        let mut arrivals: Vec<u32> = (0..n as u32).collect();
        for i in 0..n {
            let j = ((seed.wrapping_mul(2862933555777941757).wrapping_add(i as u64)) as usize) % n;
            arrivals.swap(i, j);
        }
        for k in 0..dups {
            arrivals.push((k % n) as u32);
        }
        let mut w = RecvWindow::new(n); // buffer big enough for any gap
        let mut delivered = Vec::new();
        for seq in arrivals {
            let h = ClicHeader {
                ptype: PacketType::Data,
                flags: 0,
                channel: 0,
                seq,
                len: 1,
                ce: false,
            };
            match w.offer(h, Bytes::from(vec![seq as u8])) {
                RecvOutcome::Deliver(batch) => {
                    for (hh, body) in batch {
                        prop_assert_eq!(body[0] as u32, hh.seq, "payload follows its seq");
                        delivered.push(hh.seq);
                    }
                }
                RecvOutcome::Duplicate | RecvOutcome::Buffered => {}
                RecvOutcome::Overflow => prop_assert!(false, "buffer sized to n cannot overflow"),
            }
        }
        prop_assert_eq!(delivered, (0..n as u32).collect::<Vec<_>>());
        prop_assert_eq!(w.ack_value(), n as u32);
    }

    /// Sender-window bookkeeping: cumulative ACKs free exactly the acked
    /// packets, the base never regresses, and capacity is respected.
    #[test]
    fn send_window_accounting(
        capacity in 1usize..32,
        acks in proptest::collection::vec(0u32..200, 1..40),
    ) {
        let mut w = SendWindow::new(capacity);
        let mut sent = 0u32;
        let mut freed = 0usize;
        for &ack in &acks {
            // Fill the window.
            while w.can_send() {
                let seq = w.alloc_seq();
                w.on_sent(
                    ClicHeader {
                        ptype: PacketType::Data,
                        flags: 0,
                        channel: 0,
                        seq,
                        len: 0,
                        ce: false,
                    },
                    Bytes::new(),
                    SimTime::ZERO,
                );
                sent += 1;
            }
            prop_assert_eq!(w.inflight_len(), capacity);
            let base_before = w.base();
            let acked = w.ack(ack.min(sent)).acked;
            freed += acked;
            prop_assert!(w.base() >= base_before, "base regressed");
            prop_assert_eq!(w.inflight_len(), sent as usize - freed);
        }
        // Total accounting holds.
        prop_assert_eq!(freed, w.base() as usize);
    }

    /// Retransmit sets always cover exactly the unacked range, in order.
    #[test]
    fn retransmit_set_is_unacked_range(n in 1usize..50, ack_to in 0u32..50) {
        let mut w = SendWindow::new(n);
        for _ in 0..n {
            let seq = w.alloc_seq();
            w.on_sent(
                ClicHeader {
                    ptype: PacketType::Data,
                    flags: 0,
                    channel: 0,
                    seq,
                    len: 0,
                    ce: false,
                },
                Bytes::new(),
                SimTime::ZERO,
            );
        }
        let upto = ack_to.min(n as u32);
        w.ack(upto);
        let set = w.take_retransmit_set();
        let seqs: Vec<u32> = set.iter().map(|p| p.header.seq).collect();
        prop_assert_eq!(seqs, (upto..n as u32).collect::<Vec<_>>());
    }
}
