//! End-to-end property test for the fault-injection subsystem: under an
//! arbitrary fault plan (loss — uniform or bursty —, corruption,
//! duplication, reordering, a link outage, a receiver crash/restart),
//! CLIC either delivers every message exactly once, in order and
//! byte-for-byte, or tears the flow down with a typed error
//! ([`ClicError::MaxRetriesExceeded`], [`ClicError::PeerDead`] or
//! [`ClicError::StaleEpoch`]) — never a silent drop, duplicate or
//! corruption.
//!
//! Each case runs a full two-node simulation, so the case count is kept
//! small; the deterministic paths are covered by the unit tests in
//! `clic-ethernet` and `clic-core`.

use bytes::Bytes;
use clic_core::{ClicConfig, ClicError, ClicModule, ClicPort, CongestionConfig};
use clic_ethernet::{FaultPlan, Link, LinkEnd, LossModel, MacAddr, Switch};
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimDuration, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Node {
    kernel: Rc<RefCell<Kernel>>,
    module: Rc<RefCell<ClicModule>>,
    mac: MacAddr,
}

fn mk_node(id: u32, link: Rc<RefCell<Link>>, end: LinkEnd, config: ClicConfig) -> Node {
    let kernel = Kernel::new(id, OsCosts::era_2002());
    let nic = Nic::new(
        MacAddr::for_node(id, 0),
        NicConfig::gigabit_standard(),
        PciBus::pci_33mhz_32bit(),
        link,
        end,
    );
    Nic::attach_to_link(&nic);
    let dev = Kernel::add_device(&kernel, nic);
    let module = ClicModule::install(&kernel, vec![dev], config);
    Node {
        kernel,
        module,
        mac: MacAddr::for_node(id, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactly-once in-order delivery, or a typed error — never silence.
    #[test]
    fn any_fault_schedule_is_exact_or_errors(
        seed in any::<u64>(),
        len in 0usize..20_000,
        loss_permille in 0u32..30,
        bursty in any::<bool>(),
        corrupt_permille in 0u32..20,
        dup_permille in 0u32..20,
        reorder_permille in 0u32..20,
        outage in any::<bool>(),
        nmsgs in 1usize..4,
        crash in any::<bool>(),
        crash_at_us in 200u64..4_000,
        restart_after_us in 100u64..3_000,
        ecn in any::<bool>(),
        dctcp in any::<bool>(),
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::gigabit();
        let p = loss_permille as f64 / 1000.0;
        let plan = FaultPlan {
            loss: if loss_permille == 0 {
                LossModel::None
            } else if bursty {
                LossModel::GilbertElliott {
                    p_enter_burst: 0.25 * p / (1.0 - p),
                    p_exit_burst: 0.25,
                    loss_good: 0.0,
                    loss_bad: 1.0,
                }
            } else {
                LossModel::Bernoulli(p)
            },
            corrupt: corrupt_permille as f64 / 1000.0,
            duplicate: dup_permille as f64 / 1000.0,
            reorder: reorder_permille as f64 / 1000.0,
            reorder_hold: SimDuration::from_us(80),
            outages: if outage {
                // A 2 ms blackout early in the run; the adaptive RTO
                // (max 200 ms, 16 retries) must ride it out.
                vec![(SimTime::from_us(1_000), SimTime::from_us(3_000))]
            } else {
                Vec::new()
            },
        };
        link.borrow_mut().set_faults(LinkEnd::A, plan.clone());
        link.borrow_mut().set_faults(LinkEnd::B, plan.clone());

        // With a crash in the schedule, run the full robustness stack:
        // epoch guard (so the restarted receiver rejects stale sequence
        // space) and keepalive (so a dead peer surfaces as PeerDead).
        let mut cfg = ClicConfig::paper_default();
        if crash {
            cfg.keepalive_interval = Some(SimDuration::from_us(500));
            cfg.peer_dead_timeout = SimDuration::from_ms(8);
            cfg.epoch_guard = true;
        }
        // ECN cases interpose a store-and-forward switch with a shallow
        // mark threshold (marking needs an output queue to measure) and
        // arm the congestion window on both endpoints, so marks, echoes
        // and cwnd cuts compose with the drawn loss/reorder/crash
        // schedule. The fault plan rides the sender-side hop both ways;
        // the delivery contract must hold regardless.
        if ecn {
            cfg.congestion = Some(if dctcp {
                CongestionConfig::dctcp()
            } else {
                CongestionConfig::aimd()
            });
        }
        let (a, b) = if ecn {
            let link_b = Link::gigabit();
            let switch = Switch::gigabit_default();
            // Threshold 1 marks any frame that finds the egress busy —
            // the deepest marking pressure the scheme allows, so marks
            // genuinely interleave with the drawn faults even on this
            // single flow (matched link rates never backlog deeper).
            switch
                .borrow_mut()
                .try_set_mark_threshold(1)
                .expect("threshold 1 is below the default queue limit");
            Switch::attach_port(&switch, link.clone(), LinkEnd::B);
            Switch::attach_port(&switch, link_b.clone(), LinkEnd::A);
            (
                mk_node(1, link, LinkEnd::A, cfg.clone()),
                mk_node(2, link_b, LinkEnd::B, cfg),
            )
        } else {
            (
                mk_node(1, link.clone(), LinkEnd::A, cfg.clone()),
                mk_node(2, link, LinkEnd::B, cfg),
            )
        };
        let errors: Rc<RefCell<Vec<ClicError>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let errors = errors.clone();
            a.module.borrow_mut().set_error_handler(Rc::new(move |_sim, e| {
                errors.borrow_mut().push(e);
            }));
        }
        let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
        let rx_pid = b.kernel.borrow_mut().processes.spawn("rx");
        let tx = ClicPort::bind(&a.module, tx_pid, 1);
        let rx = Rc::new(ClicPort::bind(&b.module, rx_pid, 1));

        let mk_payload = |tag: usize| -> Bytes {
            Bytes::from(
                (0..len)
                    .map(|i| ((i as u64).wrapping_mul(seed | 1).wrapping_add(tag as u64)) as u8)
                    .collect::<Vec<_>>(),
            )
        };
        let got: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
        fn drain(port: Rc<ClicPort>, sim: &mut Sim, got: Rc<RefCell<Vec<Bytes>>>, left: usize) {
            if left == 0 {
                return;
            }
            let p = port.clone();
            port.recv(sim, move |sim, msg| {
                got.borrow_mut().push(msg.data);
                drain(p.clone(), sim, got, left - 1);
            });
        }
        drain(rx, &mut sim, got.clone(), nmsgs);
        for k in 0..nmsgs {
            tx.send(&mut sim, b.mac, 1, mk_payload(k));
        }
        if crash {
            // Crash-stop the receiver mid-run, losing all in-flight CLIC
            // state, then restart it under a fresh epoch.
            let module = b.module.clone();
            sim.schedule_at(SimTime::from_us(crash_at_us), move |_s| {
                module.borrow_mut().crash();
            });
            let module = b.module.clone();
            sim.schedule_at(SimTime::from_us(crash_at_us + restart_after_us), move |_s| {
                module.borrow_mut().restart();
            });
        }
        sim.set_event_limit(30_000_000);
        sim.run();
        // Timers must quiesce: the run ends because the event queue
        // drains, not because it hit the limit.
        prop_assert!(sim.events_executed() < 30_000_000, "simulation never quiesced");

        let got = got.borrow();
        let errors = errors.borrow();
        for e in errors.iter() {
            prop_assert!(
                matches!(
                    e,
                    ClicError::MaxRetriesExceeded { .. }
                        | ClicError::PeerDead { .. }
                        | ClicError::StaleEpoch { .. }
                ),
                "unexpected error kind: {e:?}"
            );
            if !crash {
                prop_assert!(matches!(e, ClicError::MaxRetriesExceeded { .. }));
            }
        }
        if errors.is_empty() && !crash {
            prop_assert_eq!(got.len(), nmsgs, "no error, so every message must arrive");
        }
        // A receiver crash may discard a message the module already
        // acknowledged but the application had not yet drained (the
        // end-to-end argument in action) — but it can never *create* one.
        prop_assert!(got.len() <= nmsgs, "failure must never create messages");
        // Whatever arrived is the exact in-order prefix: no duplicates,
        // no reordering, no corruption reaches the application.
        for (k, data) in got.iter().enumerate() {
            prop_assert_eq!(data, &mk_payload(k), "message {} corrupted", k);
        }
    }
}

/// The ECN path in earnest: a clean switch-mediated run with a shallow
/// mark threshold must deliver exactly-once in order AND actually
/// exercise the mark→echo→cwnd machinery. The property test above draws
/// ECN configs under arbitrary fault schedules; this fixed schedule
/// proves marks really flow (a schedule that never marks would make
/// those draws vacuous).
#[test]
fn ecn_marking_path_delivers_and_echoes() {
    let mut sim = Sim::new(3);
    sim.metrics = clic_sim::Metrics::enabled();
    let link_a = Link::gigabit();
    let link_b = Link::gigabit();
    let switch = Switch::gigabit_default();
    switch.borrow_mut().try_set_mark_threshold(1).unwrap();
    Switch::attach_port(&switch, link_a.clone(), LinkEnd::B);
    Switch::attach_port(&switch, link_b.clone(), LinkEnd::A);
    let mut cfg = ClicConfig::paper_default();
    cfg.congestion = Some(CongestionConfig::dctcp());
    let a = mk_node(1, link_a, LinkEnd::A, cfg.clone());
    let b = mk_node(2, link_b, LinkEnd::B, cfg);
    let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
    let rx_pid = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = ClicPort::bind(&a.module, tx_pid, 1);
    let rx = Rc::new(ClicPort::bind(&b.module, rx_pid, 1));
    let nmsgs = 4usize;
    let len = 60_000usize;
    let mk_payload =
        |tag: usize| Bytes::from((0..len).map(|i| (i + tag) as u8).collect::<Vec<_>>());
    let got: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
    fn drain(port: Rc<ClicPort>, sim: &mut Sim, got: Rc<RefCell<Vec<Bytes>>>, left: usize) {
        if left == 0 {
            return;
        }
        let p = port.clone();
        port.recv(sim, move |sim, msg| {
            got.borrow_mut().push(msg.data);
            drain(p.clone(), sim, got, left - 1);
        });
    }
    drain(rx, &mut sim, got.clone(), nmsgs);
    for k in 0..nmsgs {
        tx.send(&mut sim, b.mac, 1, mk_payload(k));
    }
    sim.run();
    let got = got.borrow();
    assert_eq!(got.len(), nmsgs, "every message delivered");
    for (k, data) in got.iter().enumerate() {
        assert_eq!(data, &mk_payload(k), "message {k} intact, in order");
    }
    // The fragment bursts backlog the switch's output queue past the
    // threshold, so the path must have marked, echoed and cut cwnd.
    assert!(switch.borrow().frames_marked() > 0, "switch never marked");
    let echoes = a.module.borrow().stats().ecn_echoes;
    assert!(echoes > 0, "sender never saw an echo");
    assert!(sim.metrics.counter("clic.ecn_echoes") >= echoes);
    assert!(sim.metrics.counter("eth.switch.ecn_marks") > 0);
}

/// A link that goes dark for good surfaces the typed error after
/// `max_retries` — the deterministic teardown path.
#[test]
fn permanent_outage_surfaces_max_retries_error() {
    let mut sim = Sim::new(9);
    sim.metrics = clic_sim::Metrics::enabled();
    let link = Link::gigabit();
    let plan = FaultPlan {
        // Blackout from 50 µs until long after the retry budget burns out.
        outages: vec![(SimTime::from_us(50), SimTime::from_us(600_000_000))],
        ..FaultPlan::default()
    };
    link.borrow_mut().set_faults(LinkEnd::A, plan.clone());
    link.borrow_mut().set_faults(LinkEnd::B, plan);
    let mut cfg = ClicConfig::paper_default();
    cfg.max_retries = 3;
    let a = mk_node(1, link.clone(), LinkEnd::A, cfg.clone());
    let b = mk_node(2, link, LinkEnd::B, cfg);
    let errors: Rc<RefCell<Vec<ClicError>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let errors = errors.clone();
        a.module
            .borrow_mut()
            .set_error_handler(Rc::new(move |_sim, e| {
                errors.borrow_mut().push(e);
            }));
    }
    let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
    let rx_pid = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = ClicPort::bind(&a.module, tx_pid, 7);
    let rx = ClicPort::bind(&b.module, rx_pid, 7);
    let delivered = Rc::new(RefCell::new(0u32));
    {
        let delivered = delivered.clone();
        rx.recv(&mut sim, move |_s, _m| *delivered.borrow_mut() += 1);
    }
    tx.send(&mut sim, b.mac, 7, Bytes::from(vec![0xAAu8; 4096]));
    sim.set_event_limit(30_000_000);
    sim.run();

    let errors = errors.borrow();
    assert_eq!(errors.len(), 1, "exactly one flow failure: {errors:?}");
    match &errors[0] {
        ClicError::MaxRetriesExceeded {
            peer,
            channel,
            retries,
            ..
        } => {
            assert_eq!(*peer, b.mac);
            assert_eq!(*channel, 7);
            assert!(*retries > 3, "teardown only past the budget: {retries}");
        }
        other => panic!("expected MaxRetriesExceeded, got {other:?}"),
    }
    assert_eq!(*delivered.borrow(), 0);
    assert_eq!(a.module.borrow().stats().flow_failures, 1);
    // The error is also visible without a handler: counted and traced.
    assert!(sim.metrics.counter("clic.flow_failures") >= 1);
}
