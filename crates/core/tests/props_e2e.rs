//! End-to-end property test: CLIC delivers arbitrary payloads intact over
//! lossy links, for randomized sizes, seeds and loss rates.
//!
//! Each case runs a full two-node simulation, so the case count is kept
//! small; the regular integration tests cover the deterministic paths.

use bytes::Bytes;
use clic_core::{ClicConfig, ClicModule, ClicPort};
use clic_ethernet::{Link, LinkEnd, LossModel, MacAddr};
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_sim::Sim;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

struct Node {
    kernel: Rc<RefCell<Kernel>>,
    module: Rc<RefCell<ClicModule>>,
    mac: MacAddr,
}

fn mk_node(id: u32, link: Rc<RefCell<Link>>, end: LinkEnd, jumbo: bool) -> Node {
    let kernel = Kernel::new(id, OsCosts::era_2002());
    let cfg = if jumbo {
        NicConfig::gigabit_jumbo()
    } else {
        NicConfig::gigabit_standard()
    };
    let nic = Nic::new(
        MacAddr::for_node(id, 0),
        cfg,
        PciBus::pci_33mhz_32bit(),
        link,
        end,
    );
    Nic::attach_to_link(&nic);
    let dev = Kernel::add_device(&kernel, nic);
    let module = ClicModule::install(&kernel, vec![dev], ClicConfig::paper_default());
    Node {
        kernel,
        module,
        mac: MacAddr::for_node(id, 0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary payload contents and sizes survive arbitrary Bernoulli
    /// loss, on either MTU, byte-for-byte — the reliability invariant the
    /// whole protocol exists for.
    #[test]
    fn lossy_delivery_is_exact(
        seed in any::<u64>(),
        len in 0usize..30_000,
        loss_permille in 0u32..20,
        jumbo in any::<bool>(),
        nmsgs in 1usize..4,
    ) {
        let mut sim = Sim::new(seed);
        let link = Link::gigabit();
        if loss_permille > 0 {
            link.borrow_mut().set_loss(LossModel::Bernoulli(loss_permille as f64 / 1000.0));
        }
        let a = mk_node(1, link.clone(), LinkEnd::A, jumbo);
        let b = mk_node(2, link, LinkEnd::B, jumbo);
        let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
        let rx_pid = b.kernel.borrow_mut().processes.spawn("rx");
        let tx = ClicPort::bind(&a.module, tx_pid, 1);
        let rx = Rc::new(ClicPort::bind(&b.module, rx_pid, 1));

        // Payload content derived from the seed so it is arbitrary but
        // reproducible.
        let mk_payload = |tag: usize| -> Bytes {
            Bytes::from(
                (0..len)
                    .map(|i| ((i as u64).wrapping_mul(seed | 1).wrapping_add(tag as u64)) as u8)
                    .collect::<Vec<_>>(),
            )
        };
        let got: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
        fn drain(port: Rc<ClicPort>, sim: &mut Sim, got: Rc<RefCell<Vec<Bytes>>>, left: usize) {
            if left == 0 {
                return;
            }
            let p = port.clone();
            port.recv(sim, move |sim, msg| {
                got.borrow_mut().push(msg.data);
                drain(p.clone(), sim, got, left - 1);
            });
        }
        drain(rx, &mut sim, got.clone(), nmsgs);
        for k in 0..nmsgs {
            tx.send(&mut sim, b.mac, 1, mk_payload(k));
        }
        sim.set_event_limit(30_000_000);
        sim.run();

        let got = got.borrow();
        prop_assert_eq!(got.len(), nmsgs, "every message must arrive");
        for (k, data) in got.iter().enumerate() {
            prop_assert_eq!(data, &mk_payload(k), "message {} corrupted", k);
        }
    }
}
