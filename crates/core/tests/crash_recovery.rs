//! Golden crash-recovery tests: the epoch/keepalive machinery end to end
//! on a real two-node simulation.
//!
//! The scenarios the robustness work exists for:
//!
//! * a receiver that crash-restarts mid-transfer must *reject* the
//!   sender's stale pre-crash sequence space (counted as
//!   `clic.drops.stale_epoch`) and force a typed [`ClicError::StaleEpoch`]
//!   teardown — never silently accept packets from a dead session;
//! * a receiver that crashes and never comes back must surface
//!   [`ClicError::PeerDead`] via the keepalive deadline — never hang;
//! * after either teardown the surviving node is fully usable: a fresh
//!   send to the restarted peer completes.

use bytes::Bytes;
use clic_core::{ClicConfig, ClicError, ClicModule, ClicPort};
use clic_ethernet::{Link, LinkEnd, MacAddr};
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

struct Node {
    kernel: Rc<RefCell<Kernel>>,
    module: Rc<RefCell<ClicModule>>,
    mac: MacAddr,
}

fn mk_node(id: u32, link: Rc<RefCell<Link>>, end: LinkEnd, config: ClicConfig) -> Node {
    let kernel = Kernel::new(id, OsCosts::era_2002());
    let nic = Nic::new(
        MacAddr::for_node(id, 0),
        NicConfig::gigabit_standard(),
        PciBus::pci_33mhz_32bit(),
        link,
        end,
    );
    Nic::attach_to_link(&nic);
    let dev = Kernel::add_device(&kernel, nic);
    let module = ClicModule::install(&kernel, vec![dev], config);
    Node {
        kernel,
        module,
        mac: MacAddr::for_node(id, 0),
    }
}

fn capture_errors(node: &Node) -> Rc<RefCell<Vec<ClicError>>> {
    let errors: Rc<RefCell<Vec<ClicError>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = errors.clone();
    node.module
        .borrow_mut()
        .set_error_handler(Rc::new(move |_sim, e| sink.borrow_mut().push(e)));
    errors
}

/// The restarted receiver rejects the sender's pre-crash sequence space
/// packet by packet, the sender tears down with `StaleEpoch`, and the
/// pair is immediately usable again.
///
/// The keepalive interval is set *longer* than the RTO on purpose: the
/// first post-restart contact is then a retransmitted *data* packet still
/// stamped with the dead session's epoch, exercising the receive-side
/// stale-drop + RESET path rather than the probe/PONG discovery path.
#[test]
fn restarted_receiver_rejects_stale_packets() {
    let mut sim = Sim::new(42);
    sim.metrics = clic_sim::Metrics::enabled();
    let link = Link::gigabit();
    let mut cfg = ClicConfig::paper_default();
    cfg.epoch_guard = true;
    cfg.keepalive_interval = Some(SimDuration::from_ms(50));
    cfg.peer_dead_timeout = SimDuration::from_ms(500);
    let a = mk_node(1, link.clone(), LinkEnd::A, cfg.clone());
    let b = mk_node(2, link, LinkEnd::B, cfg);
    let errors = capture_errors(&a);

    let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
    let rx_pid = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = ClicPort::bind(&a.module, tx_pid, 5);
    let rx = ClicPort::bind(&b.module, rx_pid, 5);
    let delivered = Rc::new(RefCell::new(0u32));
    {
        let delivered = delivered.clone();
        rx.recv(&mut sim, move |_s, _m| *delivered.borrow_mut() += 1);
    }
    // Large enough that the transfer is still in flight at the crash.
    tx.send(&mut sim, b.mac, 5, Bytes::from(vec![0x5Au8; 512 * 1024]));
    {
        let module = b.module.clone();
        sim.schedule_at(SimTime::from_us(300), move |_s| {
            module.borrow_mut().crash();
        });
    }
    {
        let module = b.module.clone();
        sim.schedule_at(SimTime::from_us(900), move |_s| {
            module.borrow_mut().restart();
        });
    }
    sim.set_event_limit(50_000_000);
    sim.run();
    assert!(sim.events_executed() < 50_000_000, "never quiesced");

    // The sender tore down with StaleEpoch — it heard the new incarnation.
    {
        let errors = errors.borrow();
        assert_eq!(errors.len(), 1, "exactly one teardown: {errors:?}");
        match &errors[0] {
            ClicError::StaleEpoch { peer, channel } => {
                assert_eq!(*peer, b.mac);
                assert_eq!(*channel, 5);
            }
            other => panic!("expected StaleEpoch, got {other:?}"),
        }
    }
    // The restarted receiver rejected stale pre-crash packets outright.
    let b_stats = b.module.borrow().stats();
    assert!(
        b_stats.stale_epoch_drops > 0,
        "restarted receiver must reject stale sequence space"
    );
    assert!(sim.metrics.counter("clic.drops.stale_epoch") >= 1);
    assert_eq!(
        a.module.borrow().stats().flow_failures_stale_epoch,
        1,
        "the teardown is split out by cause"
    );
    // The half-transferred message never reached the application.
    assert_eq!(*delivered.borrow(), 0);
    // No receive-side bytes left stranded on either node.
    assert_eq!(a.module.borrow().buffered_bytes(), 0);
    assert_eq!(b.module.borrow().buffered_bytes(), 0);

    // Recovery: the crash wiped the receiver's port bindings (kernel
    // memory), so rebind and exchange a fresh message — the pair must
    // work immediately under the new epoch.
    let rx_pid = b.kernel.borrow_mut().processes.spawn("rx2");
    let rx = ClicPort::bind(&b.module, rx_pid, 5);
    {
        let delivered = delivered.clone();
        rx.recv(&mut sim, move |_s, _m| *delivered.borrow_mut() += 1);
    }
    tx.send(&mut sim, b.mac, 5, Bytes::from(vec![0xA5u8; 64 * 1024]));
    sim.run();
    assert!(
        sim.events_executed() < 50_000_000,
        "recovery never quiesced"
    );
    assert_eq!(*delivered.borrow(), 1, "post-restart send must complete");
    assert_eq!(errors.borrow().len(), 1, "no further teardowns");
}

/// A peer that crashes and never returns surfaces `PeerDead` through the
/// keepalive deadline instead of hanging, and every timer dies with it.
#[test]
fn crashed_peer_without_restart_surfaces_peer_dead() {
    let mut sim = Sim::new(17);
    sim.metrics = clic_sim::Metrics::enabled();
    let link = Link::gigabit();
    let mut cfg = ClicConfig::paper_default();
    cfg.epoch_guard = true;
    cfg.keepalive_interval = Some(SimDuration::from_us(500));
    cfg.peer_dead_timeout = SimDuration::from_ms(5);
    // Keep retry teardown out of the race so the liveness path is the
    // one under test.
    cfg.max_retries = 64;
    cfg.rto_max = SimDuration::from_ms(50);
    let a = mk_node(1, link.clone(), LinkEnd::A, cfg.clone());
    let b = mk_node(2, link, LinkEnd::B, cfg);
    let errors = capture_errors(&a);

    let tx_pid = a.kernel.borrow_mut().processes.spawn("tx");
    let tx = ClicPort::bind(&a.module, tx_pid, 3);
    tx.send(&mut sim, b.mac, 3, Bytes::from(vec![0x11u8; 256 * 1024]));
    {
        let module = b.module.clone();
        sim.schedule_at(SimTime::from_us(300), move |_s| {
            module.borrow_mut().crash();
        });
    }
    sim.set_event_limit(50_000_000);
    sim.run();
    assert!(sim.events_executed() < 50_000_000, "never quiesced");

    let errors = errors.borrow();
    assert_eq!(errors.len(), 1, "exactly one teardown: {errors:?}");
    match &errors[0] {
        ClicError::PeerDead { peer, channel } => {
            assert_eq!(*peer, b.mac);
            assert_eq!(*channel, 3);
        }
        other => panic!("expected PeerDead, got {other:?}"),
    }
    let a_stats = a.module.borrow().stats();
    assert_eq!(a_stats.flow_failures_peer_dead, 1);
    assert!(a_stats.keepalive_probes > 0, "liveness was probe-driven");
    assert!(sim.metrics.counter("clic.keepalive_probes") >= 1);
    assert!(sim.metrics.counter("clic.flow_failures.peer_dead") >= 1);
    assert_eq!(a.module.borrow().buffered_bytes(), 0);
}
