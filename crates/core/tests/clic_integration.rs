//! End-to-end tests of the CLIC protocol over the full simulated stack:
//! user process -> syscall -> CLIC_MODULE -> driver -> NIC -> PCI -> wire ->
//! NIC -> IRQ -> driver -> bottom half -> CLIC_MODULE -> user process.

use bytes::Bytes;
use clic_core::{ClicConfig, ClicModule, ClicPort, RecvMsg};
use clic_ethernet::{Link, LinkEnd, LossModel, MacAddr, Switch};
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One simulated host.
struct Node {
    kernel: Rc<RefCell<Kernel>>,
    module: Rc<RefCell<ClicModule>>,
    mac: MacAddr,
}

fn mk_node_on(
    id: u32,
    nic_cfg: NicConfig,
    clic_cfg: ClicConfig,
    links: Vec<(Rc<RefCell<Link>>, LinkEnd)>,
) -> Node {
    let kernel = Kernel::new(id, OsCosts::era_2002());
    let pci = PciBus::pci_33mhz_32bit();
    let mut devs = Vec::new();
    for (i, (link, end)) in links.into_iter().enumerate() {
        let nic = Nic::new(
            MacAddr::for_node(id, i as u8),
            nic_cfg.clone(),
            pci.clone(),
            link,
            end,
        );
        Nic::attach_to_link(&nic);
        devs.push(Kernel::add_device(&kernel, nic));
    }
    let module = ClicModule::install(&kernel, devs, clic_cfg);
    let mac = MacAddr::for_node(id, 0);
    Node {
        kernel,
        module,
        mac,
    }
}

/// Two nodes back to back on one gigabit link.
fn two_nodes(nic_cfg: NicConfig, clic_cfg: ClicConfig) -> (Node, Node) {
    let link = Link::gigabit();
    let a = mk_node_on(
        1,
        nic_cfg.clone(),
        clic_cfg.clone(),
        vec![(link.clone(), LinkEnd::A)],
    );
    let b = mk_node_on(2, nic_cfg, clic_cfg, vec![(link, LinkEnd::B)]);
    (a, b)
}

fn default_pair() -> (Node, Node) {
    two_nodes(NicConfig::gigabit_standard(), ClicConfig::paper_default())
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

fn bind_port(node: &Node, name: &str, channel: u16) -> ClicPort {
    let pid = node.kernel.borrow_mut().processes.spawn(name);
    ClicPort::bind(&node.module, pid, channel)
}

type Inbox = Rc<RefCell<Vec<(SimTime, RecvMsg)>>>;

fn recv_into(port: &ClicPort, sim: &mut Sim, inbox: &Inbox) {
    let inbox = inbox.clone();
    port.recv(sim, move |sim, msg| {
        inbox.borrow_mut().push((sim.now(), msg));
    });
}

#[test]
fn small_message_end_to_end() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "sender", 1);
    let rx = bind_port(&b, "receiver", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(1400);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    let inbox = inbox.borrow();
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].1.data, data);
    assert_eq!(inbox[0].1.src, a.mac);
    // A 1400-byte one-way trip on the paper's hardware is tens of µs.
    assert!(
        inbox[0].0 < SimTime::from_us(120),
        "latency {} too high",
        inbox[0].0
    );
    assert_eq!(b.module.borrow().stats().msgs_received, 1);
}

#[test]
fn zero_byte_message() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    tx.send(&mut sim, b.mac, 1, Bytes::new());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert!(inbox.borrow()[0].1.data.is_empty());
}

#[test]
fn recv_posted_after_arrival_finds_parked_message() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let data = payload(500);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    // Message is parked in system memory on b.
    assert_eq!(b.module.borrow().pending_len(1), 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data);
    assert_eq!(b.module.borrow().pending_len(1), 0);
}

#[test]
fn large_message_fragments_and_reassembles() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(100_000); // ~68 packets at MTU 1500
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data);
    let stats = a.module.borrow().stats();
    assert!(
        stats.packets_sent > 60,
        "expected many packets, got {}",
        stats.packets_sent
    );
    assert_eq!(stats.retransmits, 0);
}

#[test]
fn messages_delivered_in_order() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let done: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    // Chain 10 receives.
    fn chain(port: Rc<ClicPort>, sim: &mut Sim, done: Rc<RefCell<Vec<u8>>>, left: u32) {
        if left == 0 {
            return;
        }
        let p2 = port.clone();
        port.recv(sim, move |sim, msg| {
            done.borrow_mut().push(msg.data[0]);
            chain(p2, sim, done, left - 1);
        });
    }
    chain(Rc::new(rx), &mut sim, done.clone(), 10);
    for i in 0..10u8 {
        tx.send(&mut sim, b.mac, 1, Bytes::from(vec![i; 100]));
    }
    sim.run();
    assert_eq!(*done.borrow(), (0..10).collect::<Vec<u8>>());
}

#[test]
fn channels_are_independent() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 9);
    let rx1 = bind_port(&b, "r1", 1);
    let rx2 = bind_port(&b, "r2", 2);
    let (in1, in2): (Inbox, Inbox) = Default::default();
    recv_into(&rx1, &mut sim, &in1);
    recv_into(&rx2, &mut sim, &in2);
    tx.send(&mut sim, b.mac, 2, Bytes::from_static(b"two"));
    tx.send(&mut sim, b.mac, 1, Bytes::from_static(b"one"));
    sim.run();
    assert_eq!(&in1.borrow()[0].1.data[..], b"one");
    assert_eq!(&in2.borrow()[0].1.data[..], b"two");
}

#[test]
fn loss_recovered_by_retransmission() {
    let mut sim = Sim::new(7);
    let link = Link::gigabit();
    link.borrow_mut().set_loss(LossModel::EveryNth(10));
    let a = mk_node_on(
        1,
        NicConfig::gigabit_standard(),
        ClicConfig::paper_default(),
        vec![(link.clone(), LinkEnd::A)],
    );
    let b = mk_node_on(
        2,
        NicConfig::gigabit_standard(),
        ClicConfig::paper_default(),
        vec![(link, LinkEnd::B)],
    );
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(50_000);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data, "integrity under loss");
    let stats = a.module.borrow().stats();
    assert!(stats.retransmits > 0, "loss must trigger retransmissions");
}

#[test]
fn heavy_loss_still_converges() {
    let mut sim = Sim::new(3);
    let link = Link::gigabit();
    link.borrow_mut().set_loss(LossModel::Bernoulli(0.05));
    let a = mk_node_on(
        1,
        NicConfig::gigabit_standard(),
        ClicConfig::paper_default(),
        vec![(link.clone(), LinkEnd::A)],
    );
    let b = mk_node_on(
        2,
        NicConfig::gigabit_standard(),
        ClicConfig::paper_default(),
        vec![(link, LinkEnd::B)],
    );
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(200_000);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.set_event_limit(20_000_000);
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data);
}

#[test]
fn send_confirmed_fires_after_ack() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let _rx = bind_port(&b, "r", 1);
    let confirmed: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let c = confirmed.clone();
    tx.send_confirmed(&mut sim, b.mac, 1, payload(3000), move |sim| {
        *c.borrow_mut() = Some(sim.now());
    });
    sim.run();
    let t = confirmed.borrow().expect("confirmation must fire");
    // Confirmation needs a round trip: strictly after the one-way time.
    assert!(
        t > SimTime::from_us(30),
        "confirmed at {t}, suspiciously early"
    );
    assert!(a.module.borrow().stats().acks_received > 0);
}

#[test]
fn remote_write_needs_no_recv_call() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let pid = b.kernel.borrow_mut().processes.spawn("target");
    b.module.borrow_mut().register_remote_write(pid, 5);
    let data = payload(2000);
    tx.remote_write(&mut sim, b.mac, 5, data.clone());
    sim.run();
    let got = b.module.borrow_mut().take_remote_writes(5);
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].data, data);
    // Nothing parked as a normal message.
    assert_eq!(b.module.borrow().pending_len(5), 0);
}

#[test]
fn intra_node_delivery_bypasses_nic() {
    let mut sim = Sim::new(0);
    let (a, _b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&a, "r", 2);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(4000);
    tx.send(&mut sim, a.mac, 2, data.clone());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data);
    let stats = a.module.borrow().stats();
    assert_eq!(stats.intra_node, 1);
    assert_eq!(stats.packets_sent, 0, "no NIC involvement");
    // Intra-node beats the wire by a lot (no NIC, no interrupt path):
    // two copies + syscalls + a wakeup only.
    assert!(inbox.borrow()[0].0 < SimTime::from_us(40));
}

#[test]
fn broadcast_reaches_all_stations_on_switch() {
    let mut sim = Sim::new(0);
    let switch = Switch::gigabit_default();
    let mut nodes = Vec::new();
    for id in 1..=3u32 {
        let link = Link::gigabit();
        Switch::attach_port(&switch, link.clone(), LinkEnd::B);
        nodes.push(mk_node_on(
            id,
            NicConfig::gigabit_standard(),
            ClicConfig::paper_default(),
            vec![(link, LinkEnd::A)],
        ));
    }
    let tx = bind_port(&nodes[0], "s", 1);
    let mut inboxes = Vec::new();
    for node in &nodes[1..] {
        let rx = bind_port(node, "r", 1);
        let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
        recv_into(&rx, &mut sim, &inbox);
        inboxes.push(inbox);
    }
    tx.send(
        &mut sim,
        MacAddr::BROADCAST,
        1,
        Bytes::from_static(b"hello all"),
    );
    sim.run();
    for inbox in &inboxes {
        assert_eq!(inbox.borrow().len(), 1);
        assert_eq!(&inbox.borrow()[0].1.data[..], b"hello all");
    }
}

#[test]
fn multicast_group_delivery() {
    let mut sim = Sim::new(0);
    let switch = Switch::gigabit_default();
    let mut nodes = Vec::new();
    for id in 1..=3u32 {
        let link = Link::gigabit();
        Switch::attach_port(&switch, link.clone(), LinkEnd::B);
        nodes.push(mk_node_on(
            id,
            NicConfig::gigabit_standard(),
            ClicConfig::paper_default(),
            vec![(link, LinkEnd::A)],
        ));
    }
    let group = MacAddr::multicast_group(7);
    // Only node 2 joins.
    ClicModule::join_multicast(&nodes[1].module, group);
    let tx = bind_port(&nodes[0], "s", 1);
    let rx_joined = bind_port(&nodes[1], "r", 1);
    let rx_not = bind_port(&nodes[2], "r", 1);
    let (in_joined, in_not): (Inbox, Inbox) = Default::default();
    recv_into(&rx_joined, &mut sim, &in_joined);
    recv_into(&rx_not, &mut sim, &in_not);
    tx.send(&mut sim, group, 1, Bytes::from_static(b"mc"));
    sim.run();
    assert_eq!(in_joined.borrow().len(), 1);
    assert_eq!(in_not.borrow().len(), 0, "non-member must not receive");
}

#[test]
fn channel_bonding_two_links() {
    let mut sim = Sim::new(0);
    sim.set_event_limit(10_000_000);
    let link0 = Link::gigabit();
    let link1 = Link::gigabit();
    // Real bonding drivers give every slave NIC the same MAC, so the bond
    // is one station reachable over either link. Build the nodes by hand
    // to model that.
    fn bonded_node(id: u32, links: Vec<(Rc<RefCell<Link>>, LinkEnd)>) -> Node {
        let kernel = Kernel::new(id, OsCosts::era_2002());
        let pci = PciBus::pci_33mhz_32bit();
        let mac = MacAddr::for_node(id, 0);
        let mut devs = Vec::new();
        for (link, end) in links {
            let nic = Nic::new(mac, NicConfig::gigabit_standard(), pci.clone(), link, end);
            Nic::attach_to_link(&nic);
            devs.push(Kernel::add_device(&kernel, nic));
        }
        let module = ClicModule::install(&kernel, devs, ClicConfig::paper_default());
        Node {
            kernel,
            module,
            mac,
        }
    }
    let a = bonded_node(
        1,
        vec![(link0.clone(), LinkEnd::A), (link1.clone(), LinkEnd::A)],
    );
    let b = bonded_node(2, vec![(link0, LinkEnd::B), (link1, LinkEnd::B)]);
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(60_000);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data, "reordering absorbed");
    // Both of a's NICs carried traffic.
    let tx0 = a.kernel.borrow().device(0).borrow().stats().tx_frames;
    let tx1 = a.kernel.borrow().device(1).borrow().stats().tx_frames;
    assert!(tx0 > 0 && tx1 > 0, "striping used both NICs: {tx0}/{tx1}");
}

#[test]
fn tiny_tx_ring_forces_staging_path() {
    let mut sim = Sim::new(0);
    let mut nic_cfg = NicConfig::gigabit_standard();
    nic_cfg.tx_ring = 2;
    let (a, b) = two_nodes(nic_cfg, ClicConfig::paper_default());
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    let data = payload(80_000);
    tx.send(&mut sim, b.mac, 1, data.clone());
    sim.run();
    assert_eq!(inbox.borrow().len(), 1);
    assert_eq!(inbox.borrow()[0].1.data, data);
    let stats = a.module.borrow().stats();
    assert!(
        stats.staged_copies > 0,
        "tiny ring must exercise the staging branch"
    );
}

#[test]
fn one_copy_mode_charges_more_sender_cpu() {
    fn sender_cpu(zero_copy: bool) -> SimDuration {
        let mut sim = Sim::new(0);
        let cfg = if zero_copy {
            ClicConfig::paper_default()
        } else {
            ClicConfig::one_copy()
        };
        let (a, b) = two_nodes(NicConfig::gigabit_standard(), cfg);
        let tx = bind_port(&a, "s", 1);
        let _rx = bind_port(&b, "r", 1);
        tx.send(&mut sim, b.mac, 1, payload(9_000));
        sim.run();
        let cpu = a.kernel.borrow().cpu.clone();
        let t = cpu.borrow().busy_total();
        t
    }
    let zc = sender_cpu(true);
    let oc = sender_cpu(false);
    assert!(
        oc > zc + SimDuration::from_us(10),
        "1-copy {oc} should clearly exceed 0-copy {zc}"
    );
}

#[test]
fn jumbo_frames_use_fewer_packets() {
    fn packets(nic_cfg: NicConfig) -> u64 {
        let mut sim = Sim::new(0);
        let (a, b) = two_nodes(nic_cfg, ClicConfig::paper_default());
        let tx = bind_port(&a, "s", 1);
        let rx = bind_port(&b, "r", 1);
        let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
        recv_into(&rx, &mut sim, &inbox);
        tx.send(&mut sim, b.mac, 1, payload(90_000));
        sim.run();
        assert_eq!(inbox.borrow().len(), 1);
        let n = a.module.borrow().stats().packets_sent;
        n
    }
    let standard = packets(NicConfig::gigabit_standard());
    let jumbo = packets(NicConfig::gigabit_jumbo());
    assert!(
        jumbo * 5 < standard,
        "jumbo ({jumbo}) should use ~6x fewer packets than standard ({standard})"
    );
}

#[test]
fn direct_dispatch_reduces_latency() {
    fn latency(direct: bool) -> SimTime {
        let mut sim = Sim::new(0);
        let (a, b) = default_pair();
        b.kernel.borrow_mut().direct_dispatch = direct;
        let tx = bind_port(&a, "s", 1);
        let rx = bind_port(&b, "r", 1);
        let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
        recv_into(&rx, &mut sim, &inbox);
        tx.send(&mut sim, b.mac, 1, payload(1400));
        sim.run();
        let t = inbox.borrow()[0].0;
        t
    }
    let normal = latency(false);
    let direct = latency(true);
    assert!(
        direct < normal,
        "direct call ({direct}) must beat bottom-half path ({normal})"
    );
}

#[test]
fn multiprogramming_two_receivers_interleaved() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx1 = bind_port(&a, "s1", 10);
    let rx1 = bind_port(&b, "proc1", 1);
    let rx2 = bind_port(&b, "proc2", 2);
    let (in1, in2): (Inbox, Inbox) = Default::default();
    recv_into(&rx1, &mut sim, &in1);
    recv_into(&rx2, &mut sim, &in2);
    // Interleave traffic to both processes on node b.
    for i in 0..4u8 {
        let ch = 1 + (i % 2) as u16;
        tx1.send(&mut sim, b.mac, ch, Bytes::from(vec![i; 256]));
    }
    sim.run();
    assert_eq!(in1.borrow().len(), 1);
    assert_eq!(in2.borrow().len(), 1);
    // The remaining two messages are parked per channel.
    assert_eq!(b.module.borrow().pending_len(1), 1);
    assert_eq!(b.module.borrow().pending_len(2), 1);
    // Both processes experienced a wakeup.
    assert!(b.kernel.borrow().stats().context_switches >= 2);
}

#[test]
fn try_recv_returns_none_then_some() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let results: Rc<RefCell<Vec<Option<usize>>>> = Rc::new(RefCell::new(Vec::new()));
    let r = results.clone();
    rx.try_recv(&mut sim, move |_, m| {
        r.borrow_mut().push(m.map(|m| m.data.len()));
    });
    sim.run();
    assert_eq!(*results.borrow(), vec![None]);
    tx.send(&mut sim, b.mac, 1, payload(123));
    sim.run();
    let r = results.clone();
    rx.try_recv(&mut sim, move |_, m| {
        r.borrow_mut().push(m.map(|m| m.data.len()));
    });
    sim.run();
    assert_eq!(*results.borrow(), vec![None, Some(123)]);
}

#[test]
fn zero_byte_latency_near_paper_value() {
    // The paper reports 36 µs one-way latency for 0-byte messages. Accept a
    // generous band — the exact figure is a calibration product — but catch
    // order-of-magnitude regressions.
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&rx, &mut sim, &inbox);
    tx.send(&mut sim, b.mac, 1, Bytes::new());
    sim.run();
    let t = inbox.borrow()[0].0;
    assert!(
        (SimTime::from_us(15)..SimTime::from_us(80)).contains(&t),
        "0-byte one-way latency {t} out of plausible band"
    );
}

#[test]
fn kernel_function_call_and_reply() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    // Node b registers an in-kernel "double every byte" service as id 40.
    b.module
        .borrow_mut()
        .register_kernel_function(40, |_sim, msg| {
            let doubled: Vec<u8> = msg.data.iter().map(|&x| x.wrapping_mul(2)).collect();
            Some(Bytes::from(doubled))
        });
    // Node a calls it; the reply lands on a's channel 41.
    let reply_port = bind_port(&a, "caller", 41);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&reply_port, &mut sim, &inbox);
    clic_core::ClicModule::call_kernel_function(
        &a.module,
        &mut sim,
        b.mac,
        40,
        41,
        Bytes::from_static(&[1, 2, 3, 100]),
    );
    sim.run();
    let inbox = inbox.borrow();
    assert_eq!(inbox.len(), 1);
    assert_eq!(&inbox[0].1.data[..], &[2, 4, 6, 200]);
    assert_eq!(b.module.borrow().stats().kernel_calls, 1);
    // The remote side never made a system call for the reply.
    assert_eq!(b.kernel.borrow().stats().syscalls, 0);
}

#[test]
fn kernel_function_without_reply() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let hits: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));
    let h = hits.clone();
    b.module
        .borrow_mut()
        .register_kernel_function(50, move |_sim, _msg| {
            *h.borrow_mut() += 1;
            None
        });
    clic_core::ClicModule::call_kernel_function(
        &a.module,
        &mut sim,
        b.mac,
        50,
        0,
        Bytes::from_static(b"fire-and-forget"),
    );
    sim.run();
    assert_eq!(*hits.borrow(), 1);
}

#[test]
fn unknown_kernel_function_counted_and_dropped() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    clic_core::ClicModule::call_kernel_function(
        &a.module,
        &mut sim,
        b.mac,
        99,
        0,
        Bytes::from_static(b"?"),
    );
    sim.run();
    let stats = b.module.borrow().stats();
    assert_eq!(stats.kernel_calls, 0);
    assert_eq!(stats.kernel_calls_unknown, 1);
}

#[test]
fn large_kernel_function_args_fragmented() {
    let mut sim = Sim::new(0);
    let (a, b) = default_pair();
    let echoed: Rc<RefCell<Option<usize>>> = Rc::new(RefCell::new(None));
    let e = echoed.clone();
    b.module
        .borrow_mut()
        .register_kernel_function(60, move |_s, msg| {
            *e.borrow_mut() = Some(msg.data.len());
            Some(Bytes::from_static(b"ok"))
        });
    let reply_port = bind_port(&a, "caller", 61);
    let inbox: Inbox = Rc::new(RefCell::new(Vec::new()));
    recv_into(&reply_port, &mut sim, &inbox);
    clic_core::ClicModule::call_kernel_function(
        &a.module,
        &mut sim,
        b.mac,
        60,
        61,
        payload(20_000),
    );
    sim.run();
    assert_eq!(*echoed.borrow(), Some(20_000));
    assert_eq!(&inbox.borrow()[0].1.data[..], b"ok");
}

#[test]
fn finite_buffering_throttles_sender_until_drained() {
    let mut sim = Sim::new(0);
    let mut clic_cfg = ClicConfig::paper_default();
    clic_cfg.max_pending_bytes = 60_000; // tiny port budget
    let (a, b) = two_nodes(NicConfig::gigabit_standard(), clic_cfg);
    let tx = bind_port(&a, "s", 1);
    let rx = bind_port(&b, "r", 1);
    // No receive posted: 20 x 20 KB park at the receiver and blow the
    // 60 KB budget; the excess is refused unacknowledged.
    let data = payload(20_000);
    for _ in 0..20 {
        tx.send(&mut sim, b.mac, 1, data.clone());
    }
    // Bound the run: the sender retransmits into a full port for a while.
    sim.run_until(clic_sim::SimTime::from_us(40_000));
    let stats = b.module.borrow().stats();
    assert!(stats.backlog_drops > 0, "budget must refuse packets");
    assert!(
        b.module.borrow().pending_len(1) < 20,
        "not everything may park"
    );
    // The application finally drains: every message is delivered intact
    // (reliability survives the throttling).
    let got: Rc<RefCell<usize>> = Rc::new(RefCell::new(0));
    fn drain(port: Rc<ClicPort>, sim: &mut Sim, got: Rc<RefCell<usize>>, left: usize) {
        if left == 0 {
            return;
        }
        let p = port.clone();
        port.recv(sim, move |sim, msg| {
            assert_eq!(msg.data.len(), 20_000);
            *got.borrow_mut() += 1;
            drain(p.clone(), sim, got, left - 1);
        });
    }
    drain(Rc::new(rx), &mut sim, got.clone(), 20);
    sim.set_event_limit(sim.events_executed() + 50_000_000);
    sim.run();
    assert_eq!(*got.borrow(), 20, "all messages delivered after draining");
}
