//! User-process view of CLIC.
//!
//! A process binds a [`ClicPort`] to a channel and gets the primitives §5
//! lists: synchronous and asynchronous sends, sends with confirmation of
//! reception, blocking/non-blocking receives, remote writes, and Ethernet
//! multicast — all entering the kernel through ordinary system calls.

use crate::header::PacketType;
use crate::module::{ClicModule, SendOptions};
use bytes::Bytes;
use clic_ethernet::MacAddr;
use clic_os::Pid;
use clic_sim::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// A message delivered to a process.
#[derive(Debug, Clone)]
pub struct RecvMsg {
    /// Sending station.
    pub src: MacAddr,
    /// Channel it arrived on.
    pub channel: u16,
    /// Packet type of the carrying packets.
    pub ptype: PacketType,
    /// Message bytes.
    pub data: Bytes,
}

/// A process's handle on a CLIC channel.
pub struct ClicPort {
    module: Rc<RefCell<ClicModule>>,
    pid: Pid,
    channel: u16,
}

impl ClicPort {
    /// Bind `channel` for `pid` on this node's CLIC module.
    pub fn bind(module: &Rc<RefCell<ClicModule>>, pid: Pid, channel: u16) -> ClicPort {
        module.borrow_mut().bind(pid, channel);
        ClicPort {
            module: module.clone(),
            pid,
            channel,
        }
    }

    /// The bound channel.
    pub fn channel(&self) -> u16 {
        self.channel
    }

    /// The owning process.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Asynchronous send to (`dst`, `channel`).
    pub fn send(&self, sim: &mut Sim, dst: MacAddr, channel: u16, data: Bytes) {
        ClicModule::send(&self.module, sim, SendOptions::data(dst, channel), data);
    }

    /// Send tagged with a pipeline-trace id (used by the Figure 7
    /// experiment).
    pub fn send_traced(&self, sim: &mut Sim, dst: MacAddr, channel: u16, data: Bytes, trace: u64) {
        let opts = SendOptions {
            trace,
            ..SendOptions::data(dst, channel)
        };
        ClicModule::send(&self.module, sim, opts, data);
    }

    /// Send with confirmation of reception: `confirmed` runs once the whole
    /// message has been acknowledged by the destination node.
    pub fn send_confirmed(
        &self,
        sim: &mut Sim,
        dst: MacAddr,
        channel: u16,
        data: Bytes,
        confirmed: impl FnOnce(&mut Sim) + 'static,
    ) {
        let opts = SendOptions {
            confirm: Some(Box::new(confirmed)),
            ..SendOptions::data(dst, channel)
        };
        ClicModule::send(&self.module, sim, opts, data);
    }

    /// Asynchronous remote write into the region registered at
    /// (`dst`, `channel`); the remote process never calls receive.
    pub fn remote_write(&self, sim: &mut Sim, dst: MacAddr, channel: u16, data: Bytes) {
        let opts = SendOptions {
            ptype: PacketType::RemoteWrite,
            ..SendOptions::data(dst, channel)
        };
        ClicModule::send(&self.module, sim, opts, data);
    }

    /// Blocking receive on this port: `cont` runs with the next message,
    /// after this process is woken if it had to wait.
    pub fn recv(&self, sim: &mut Sim, cont: impl FnOnce(&mut Sim, RecvMsg) + 'static) {
        ClicModule::recv(&self.module, sim, self.channel, cont);
    }

    /// Non-blocking receive: `cont` gets `Some` or `None` right away.
    pub fn try_recv(&self, sim: &mut Sim, cont: impl FnOnce(&mut Sim, Option<RecvMsg>) + 'static) {
        ClicModule::try_recv(&self.module, sim, self.channel, cont);
    }
}
