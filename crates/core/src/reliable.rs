//! Sliding-window reliability machinery (pure logic).
//!
//! CLIC bridges the gap the paper's introduction describes: applications
//! need in-order reliable delivery over a network with "arbitrary delivery
//! order, limited fault-handling, and finite buffering". Each
//! (peer, channel) pair runs an independent flow: the sender keeps a
//! bounded window of unacknowledged packets; the receiver delivers in
//! sequence order, buffering out-of-order arrivals (which also absorbs the
//! reordering introduced by channel bonding) and answering with cumulative
//! ACKs.
//!
//! This module is deliberately simulator-free so the protocol invariants
//! can be unit- and property-tested in isolation; `module.rs` drives it
//! from the event loop.

use crate::header::ClicHeader;
use bytes::Bytes;
use clic_sim::SimTime;
use std::collections::BTreeMap;

/// A packet the sender must be able to retransmit.
#[derive(Debug, Clone)]
pub struct InflightPacket {
    /// Header as originally sent.
    pub header: ClicHeader,
    /// Payload (header-exclusive).
    pub payload: Bytes,
    /// How many times this packet has been retransmitted.
    pub retries: u32,
    /// When the packet first entered the network — the RTT sample base.
    /// Karn's rule: only packets with `retries == 0` yield RTT samples,
    /// since a retransmitted packet's ACK is ambiguous.
    pub sent_at: SimTime,
}

/// What a cumulative ACK did to the send window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckSummary {
    /// Packets newly acknowledged (0 for stale/duplicate ACKs).
    pub acked: usize,
    /// Send time of the newest acknowledged packet that was never
    /// retransmitted — the RTT sample per Karn's rule — or `None` when
    /// every newly acked packet had been retransmitted.
    pub clean_sent_at: Option<SimTime>,
}

/// Sender side of a flow.
#[derive(Debug)]
pub struct SendWindow {
    next_seq: u32,
    base: u32,
    capacity: usize,
    inflight: BTreeMap<u32, InflightPacket>,
}

impl SendWindow {
    /// A window admitting `capacity` unacknowledged packets.
    pub fn new(capacity: usize) -> SendWindow {
        assert!(capacity > 0);
        SendWindow {
            next_seq: 0,
            base: 0,
            capacity,
            inflight: BTreeMap::new(),
        }
    }

    /// True when another packet may enter the network.
    pub fn can_send(&self) -> bool {
        self.inflight.len() < self.capacity
    }

    /// Allocate the next sequence number.
    pub fn alloc_seq(&mut self) -> u32 {
        let s = self.next_seq;
        // lint:allow(time-overflow, reason="u32 sequence space; a single flow never sends 2^32 packets in one experiment")
        self.next_seq += 1;
        s
    }

    /// Record a packet as in flight at time `now`. Panics on duplicate
    /// sequence.
    pub fn on_sent(&mut self, header: ClicHeader, payload: Bytes, now: SimTime) {
        let prev = self.inflight.insert(
            header.seq,
            InflightPacket {
                header,
                payload,
                retries: 0,
                sent_at: now,
            },
        );
        assert!(prev.is_none(), "sequence {} sent twice", header.seq);
    }

    /// Apply a cumulative ACK (`upto` = receiver's next expected). Returns
    /// how many packets were newly acknowledged plus the RTT-sample basis
    /// (Karn's rule: the newest acked packet never retransmitted).
    pub fn ack(&mut self, upto: u32) -> AckSummary {
        if upto <= self.base {
            return AckSummary {
                acked: 0,
                clean_sent_at: None,
            };
        }
        let mut acked = 0;
        let mut clean_sent_at = None;
        // Everything below `upto` retires in one split: keep the >= upto
        // tail, consume the acked prefix in ascending order.
        let kept = self.inflight.split_off(&upto);
        let retired = std::mem::replace(&mut self.inflight, kept);
        for (_seq, p) in retired {
            acked += 1;
            if p.retries == 0 {
                clean_sent_at = Some(p.sent_at);
            }
        }
        self.base = upto;
        AckSummary {
            acked,
            clean_sent_at,
        }
    }

    /// Oldest unacknowledged sequence (the window base).
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Highest allocated sequence + 1.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Packets currently unacknowledged.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Payload bytes currently unacknowledged (timeline instrumentation).
    pub fn inflight_bytes(&self) -> u64 {
        self.inflight.values().map(|p| p.payload.len() as u64).sum()
    }

    /// True when every sent packet has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Iterate unacknowledged packets in sequence order, bumping their
    /// retry counters — the retransmission set on timeout.
    pub fn take_retransmit_set(&mut self) -> Vec<InflightPacket> {
        self.inflight
            .values_mut()
            .map(|p| {
                p.retries += 1;
                p.clone()
            })
            .collect()
    }

    /// Largest retry count among inflight packets (0 when none).
    pub fn max_retries(&self) -> u32 {
        self.inflight.values().map(|p| p.retries).max().unwrap_or(0)
    }

    /// Take just the window base for fast retransmit (triggered by
    /// duplicate ACKs naming it). Bumps its retry counter; `None` when
    /// nothing is in flight.
    pub fn retransmit_base(&mut self) -> Option<InflightPacket> {
        let p = self.inflight.values_mut().next()?;
        p.retries += 1;
        Some(p.clone())
    }
}

/// Result of offering a packet to the receive window.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvOutcome {
    /// In-order: this packet (and any buffered successors) deliver now, in
    /// sequence order.
    Deliver(Vec<(ClicHeader, Bytes)>),
    /// Already delivered — sender missed an ACK; re-ACK immediately.
    Duplicate,
    /// Out of order: buffered awaiting the gap.
    Buffered,
    /// Out-of-order buffer full: dropped (sender's timeout recovers).
    Overflow,
}

/// Receiver side of a flow.
#[derive(Debug)]
pub struct RecvWindow {
    expected: u32,
    ooo: BTreeMap<u32, (ClicHeader, Bytes)>,
    ooo_limit: usize,
}

impl RecvWindow {
    /// A receive window buffering at most `ooo_limit` out-of-order packets.
    pub fn new(ooo_limit: usize) -> RecvWindow {
        RecvWindow {
            expected: 0,
            ooo: BTreeMap::new(),
            ooo_limit,
        }
    }

    /// The cumulative ACK value to advertise (next expected sequence).
    pub fn ack_value(&self) -> u32 {
        self.expected
    }

    /// Out-of-order packets currently buffered.
    pub fn buffered(&self) -> usize {
        self.ooo.len()
    }

    /// Payload bytes currently held in the out-of-order buffer — the
    /// receive-buffer budget charges these against `recv_budget_bytes`.
    pub fn buffered_bytes(&self) -> usize {
        self.ooo.values().map(|(_, payload)| payload.len()).sum()
    }

    /// Offer an arriving data packet.
    pub fn offer(&mut self, header: ClicHeader, payload: Bytes) -> RecvOutcome {
        if header.seq < self.expected {
            return RecvOutcome::Duplicate;
        }
        if header.seq > self.expected {
            if self.ooo.contains_key(&header.seq) {
                return RecvOutcome::Duplicate;
            }
            if self.ooo.len() >= self.ooo_limit {
                return RecvOutcome::Overflow;
            }
            self.ooo.insert(header.seq, (header, payload));
            return RecvOutcome::Buffered;
        }
        // In order: deliver it plus any contiguous run from the buffer.
        let mut out = vec![(header, payload)];
        self.expected += 1;
        while let Some(entry) = self.ooo.remove(&self.expected) {
            out.push(entry);
            self.expected += 1;
        }
        RecvOutcome::Deliver(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::PacketType;
    use clic_sim::SimDuration;

    fn hdr(seq: u32) -> ClicHeader {
        ClicHeader {
            ptype: PacketType::Data,
            flags: 0,
            channel: 0,
            seq,
            len: 1,
            ce: false,
        }
    }

    fn payload(tag: u8) -> Bytes {
        Bytes::from(vec![tag])
    }

    #[test]
    fn send_window_blocks_at_capacity() {
        let mut w = SendWindow::new(2);
        for _ in 0..2 {
            assert!(w.can_send());
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(0), SimTime::ZERO);
        }
        assert!(!w.can_send());
        assert_eq!(w.inflight_len(), 2);
        // Cumulative ack for the first frees one slot.
        assert_eq!(w.ack(1).acked, 1);
        assert!(w.can_send());
        assert_eq!(w.base(), 1);
    }

    #[test]
    fn cumulative_ack_clears_range() {
        let mut w = SendWindow::new(10);
        for _ in 0..5 {
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(0), SimTime::ZERO);
        }
        assert_eq!(w.ack(4).acked, 4);
        assert_eq!(w.inflight_len(), 1);
        assert_eq!(w.ack(4).acked, 0, "stale ack is a no-op");
        assert_eq!(w.ack(5).acked, 1);
        assert!(w.all_acked());
    }

    #[test]
    fn old_ack_does_not_regress_base() {
        let mut w = SendWindow::new(10);
        for _ in 0..3 {
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(0), SimTime::ZERO);
        }
        w.ack(3);
        assert_eq!(w.base(), 3);
        w.ack(1);
        assert_eq!(w.base(), 3);
    }

    #[test]
    fn retransmit_set_is_ordered_and_counts_retries() {
        let mut w = SendWindow::new(10);
        for _ in 0..3 {
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(s as u8), SimTime::ZERO);
        }
        w.ack(1);
        let set = w.take_retransmit_set();
        assert_eq!(set.len(), 2);
        assert_eq!(set[0].header.seq, 1);
        assert_eq!(set[1].header.seq, 2);
        assert!(set.iter().all(|p| p.retries == 1));
        assert_eq!(w.max_retries(), 1);
        w.take_retransmit_set();
        assert_eq!(w.max_retries(), 2);
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut w = SendWindow::new(10);
        for i in 0..3u64 {
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(0), SimTime::ZERO + SimDuration::from_us(i));
        }
        // Seq 0 and 1 time out and are retransmitted; seq 2 stays clean.
        w.take_retransmit_set();
        let fresh = w.alloc_seq();
        w.on_sent(hdr(fresh), payload(0), SimTime::from_us(50));
        // Cumulative ACK covering 0..=2: only seq 2… but it was
        // retransmitted too (take_retransmit_set bumps every inflight).
        let s = w.ack(3);
        assert_eq!(s.acked, 3);
        assert_eq!(s.clean_sent_at, None, "all covered packets retransmitted");
        // The fresh packet yields a sample.
        let s = w.ack(4);
        assert_eq!(s.acked, 1);
        assert_eq!(s.clean_sent_at, Some(SimTime::from_us(50)));
    }

    #[test]
    fn fast_retransmit_takes_only_the_base() {
        let mut w = SendWindow::new(10);
        for _ in 0..3 {
            let s = w.alloc_seq();
            w.on_sent(hdr(s), payload(0), SimTime::ZERO);
        }
        let p = w.retransmit_base().expect("packets in flight");
        assert_eq!(p.header.seq, 0);
        assert_eq!(p.retries, 1);
        assert_eq!(w.max_retries(), 1);
        assert_eq!(w.inflight_len(), 3, "fast retransmit clones, not removes");
        w.ack(3);
        assert!(w.retransmit_base().is_none());
    }

    #[test]
    #[should_panic(expected = "sent twice")]
    fn duplicate_send_panics() {
        let mut w = SendWindow::new(4);
        w.on_sent(hdr(0), payload(0), SimTime::ZERO);
        w.on_sent(hdr(0), payload(0), SimTime::ZERO);
    }

    #[test]
    fn recv_in_order_stream() {
        let mut w = RecvWindow::new(16);
        for seq in 0..4 {
            match w.offer(hdr(seq), payload(seq as u8)) {
                RecvOutcome::Deliver(v) => {
                    assert_eq!(v.len(), 1);
                    assert_eq!(v[0].0.seq, seq);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(w.ack_value(), 4);
    }

    #[test]
    fn recv_buffers_gap_then_flushes() {
        let mut w = RecvWindow::new(16);
        assert_eq!(w.offer(hdr(1), payload(1)), RecvOutcome::Buffered);
        assert_eq!(w.offer(hdr(2), payload(2)), RecvOutcome::Buffered);
        assert_eq!(w.buffered(), 2);
        match w.offer(hdr(0), payload(0)) {
            RecvOutcome::Deliver(v) => {
                let seqs: Vec<u32> = v.iter().map(|(h, _)| h.seq).collect();
                assert_eq!(seqs, vec![0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(w.ack_value(), 3);
        assert_eq!(w.buffered(), 0);
    }

    #[test]
    fn recv_detects_duplicates() {
        let mut w = RecvWindow::new(16);
        let _ = w.offer(hdr(0), payload(0));
        assert_eq!(w.offer(hdr(0), payload(0)), RecvOutcome::Duplicate);
        assert_eq!(w.offer(hdr(5), payload(5)), RecvOutcome::Buffered);
        assert_eq!(w.offer(hdr(5), payload(5)), RecvOutcome::Duplicate);
    }

    #[test]
    fn recv_overflow_bounded() {
        let mut w = RecvWindow::new(2);
        assert_eq!(w.offer(hdr(1), payload(1)), RecvOutcome::Buffered);
        assert_eq!(w.offer(hdr(2), payload(2)), RecvOutcome::Buffered);
        assert_eq!(w.offer(hdr(3), payload(3)), RecvOutcome::Overflow);
        assert_eq!(w.buffered(), 2);
    }

    #[test]
    fn recv_boundary_at_exactly_ooo_limit() {
        // Pin the off-by-one down: the ooo_limit-th out-of-order packet is
        // the last one that buffers; packet limit+1 overflows; duplicates
        // of buffered packets at the boundary stay Duplicate (not
        // Overflow); and filling the gap drains the entire buffer.
        const LIMIT: usize = 3;
        let mut w = RecvWindow::new(LIMIT);
        for seq in 1..=LIMIT as u32 {
            assert_eq!(
                w.offer(hdr(seq), payload(seq as u8)),
                RecvOutcome::Buffered,
                "packet #{seq} of {LIMIT} must still fit"
            );
        }
        assert_eq!(w.buffered(), LIMIT, "buffer holds exactly ooo_limit");
        assert_eq!(w.buffered_bytes(), LIMIT, "one payload byte per packet");
        assert_eq!(
            w.offer(hdr(LIMIT as u32 + 1), payload(0)),
            RecvOutcome::Overflow,
            "packet limit+1 must overflow"
        );
        assert_eq!(w.buffered(), LIMIT, "overflow does not evict");
        assert_eq!(
            w.offer(hdr(2), payload(2)),
            RecvOutcome::Duplicate,
            "redelivery at a full buffer is a duplicate, not an overflow"
        );
        match w.offer(hdr(0), payload(0)) {
            RecvOutcome::Deliver(v) => {
                let seqs: Vec<u32> = v.iter().map(|(h, _)| h.seq).collect();
                assert_eq!(seqs, vec![0, 1, 2, 3], "gap fill drains the buffer");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(w.ack_value(), LIMIT as u32 + 1);
        assert_eq!(w.buffered(), 0);
        assert_eq!(w.buffered_bytes(), 0);
    }

    #[test]
    fn payload_survives_buffering() {
        let mut w = RecvWindow::new(4);
        let _ = w.offer(hdr(1), Bytes::from_static(b"second"));
        match w.offer(hdr(0), Bytes::from_static(b"first")) {
            RecvOutcome::Deliver(v) => {
                assert_eq!(&v[0].1[..], b"first");
                assert_eq!(&v[1].1[..], b"second");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
