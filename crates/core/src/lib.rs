//! # clic-core — the CLIC lightweight protocol
//!
//! The paper's contribution: a reliable, kernel-resident transport that
//! replaces TCP/IP for intra-cluster traffic over (Gigabit) Ethernet,
//! implemented here against the `clic-os` kernel and `clic-hw` NIC models.
//!
//! Layout mirrors §3 of the paper:
//!
//! * [`header`] — the 12-byte CLIC header carried directly over a level-1
//!   Ethernet header (no LLC, no IP): packet type (MPI / internal /
//!   kernel-function / data / ack / remote-write), channel, sequence
//!   number, length, flags.
//! * [`config`] — protocol knobs: 0-copy vs 1-copy send path, send window,
//!   ACK policy, retransmission timeout, channel bonding width.
//! * [`reliable`] — pure sliding-window machinery (sender window, receiver
//!   in-order delivery with out-of-order buffering, cumulative ACKs),
//!   unit-testable without a simulator.
//! * [`module`] — `CLIC_MODULE`: the kernel module inserted next to the
//!   standard stack. Implements the send path of Figure 3 (system call →
//!   header composition → SK_BUFF → unmodified driver → bus-master DMA,
//!   with staging to system memory when the NIC cannot take the packet) and
//!   the receive path (driver → bottom half → CLIC_MODULE → user memory,
//!   or the direct-call variant of Figure 8b), plus reliability,
//!   remote writes, intra-node delivery, Ethernet multicast and channel
//!   bonding.
//! * [`api`] — the user-process view: ports with blocking/non-blocking
//!   receive, plain and confirmed sends, remote writes.

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod config;
pub mod header;
pub mod module;
pub mod reliable;

pub use api::{ClicPort, RecvMsg};
pub use config::{ClicConfig, ClicCosts, CongestionConfig, CongestionMode};
pub use header::{ClicHeader, PacketType, CE_BIT, CLIC_HEADER, MSG_PREFIX};
pub use module::{ClicError, ClicModule, ClicStats, SendOptions};
