//! Protocol configuration and CPU cost model.

use clic_sim::SimDuration;

/// Per-operation CPU costs of CLIC_MODULE, calibrated so the end-to-end
/// pipeline reproduces the paper's measured stages (Figure 7a: sender
/// CLIC_MODULE + driver ≈ 0.7 + 4 µs for a 1400-byte packet).
#[derive(Debug, Clone, Copy)]
pub struct ClicCosts {
    /// Per-message send-side work: validate, allocate message id.
    pub tx_per_message: SimDuration,
    /// Per-packet send-side work: compose headers, update SK_BUFF.
    pub tx_per_packet: SimDuration,
    /// Per-packet receive-side work: parse, flow bookkeeping.
    pub rx_per_packet: SimDuration,
    /// Processing one received ACK.
    pub ack_process: SimDuration,
}

impl ClicCosts {
    /// Calibrated defaults for the 1.5 GHz testbed.
    pub fn era_2002() -> ClicCosts {
        ClicCosts {
            tx_per_message: SimDuration::from_ns(500),
            tx_per_packet: SimDuration::from_ns(700),
            rx_per_packet: SimDuration::from_ns(700),
            ack_process: SimDuration::from_ns(400),
        }
    }
}

impl Default for ClicCosts {
    fn default() -> Self {
        Self::era_2002()
    }
}

/// How an ECN-driven congestion window reacts to a window's worth of
/// congestion marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionMode {
    /// Classic AIMD: any echoed mark in a window halves `cwnd` once.
    Aimd,
    /// DCTCP-flavored: keep an EWMA `α` of the per-window fraction of
    /// mark-echoing ACKs and cut `cwnd` by `α/2` — gentle under light
    /// marking, as severe as AIMD when every ACK carries an echo.
    Dctcp,
}

/// Congestion-window knobs. `None` in [`ClicConfig::congestion`] (the
/// paper default) disables the whole mechanism: the sender ignores echoed
/// marks and keeps the fixed configured window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionConfig {
    /// Mark reaction: classic AIMD or the DCTCP-style scaled decrease.
    pub mode: CongestionMode,
    /// Initial congestion window, packets (slow start begins here).
    pub initial_cwnd: usize,
    /// Initial slow-start threshold, packets. Slow start doubles `cwnd`
    /// per RTT until it crosses this, then congestion avoidance grows it
    /// by one packet per RTT.
    pub initial_ssthresh: usize,
    /// EWMA gain for the DCTCP mark-fraction estimate (`α ← (1-g)·α +
    /// g·F`), as the classic `g = 1/16` by default. Ignored under
    /// [`CongestionMode::Aimd`].
    pub dctcp_gain: f64,
}

impl CongestionConfig {
    /// AIMD with conventional initial values: start at 2 packets, slow
    /// start up to half the paper-default window.
    pub fn aimd() -> CongestionConfig {
        CongestionConfig {
            mode: CongestionMode::Aimd,
            initial_cwnd: 2,
            initial_ssthresh: 32,
            dctcp_gain: 1.0 / 16.0,
        }
    }

    /// DCTCP-flavored marking response with the same initial values.
    pub fn dctcp() -> CongestionConfig {
        CongestionConfig {
            mode: CongestionMode::Dctcp,
            ..Self::aimd()
        }
    }
}

/// CLIC protocol knobs.
#[derive(Debug, Clone)]
pub struct ClicConfig {
    /// Send straight from user memory via scatter-gather DMA (path 2 of
    /// Figure 1). `false` selects the legacy 1-copy path (stage through a
    /// kernel buffer, paths 3/4) used by the Fast Ethernet CLIC and by
    /// Figure 4's comparison.
    pub zero_copy: bool,
    /// Maximum unacknowledged packets per (peer, channel) flow.
    pub window: usize,
    /// Receiver sends a cumulative ACK every this many in-order packets.
    pub ack_every: u32,
    /// ...or when this delay expires after the first unacknowledged packet.
    pub ack_delay: SimDuration,
    /// Initial retransmission timeout (doubles per retry). Once RTT
    /// samples arrive the RTO adapts: `SRTT + max(4·RTTVAR, 1 µs)`
    /// per RFC 6298, clamped to `[rto_min, rto_max]`, with samples taken
    /// only from never-retransmitted packets (Karn's rule).
    ///
    /// ```
    /// use clic_core::ClicConfig;
    /// use clic_sim::SimDuration;
    ///
    /// let mut cfg = ClicConfig::paper_default();
    /// // A latency-sensitive deployment can floor the RTO lower:
    /// cfg.rto_min = SimDuration::from_us(200);
    /// assert!(cfg.rto_min < cfg.rto && cfg.rto < cfg.rto_max);
    /// ```
    pub rto: SimDuration,
    /// Lower bound on the adaptive RTO (guards against spurious
    /// retransmission when the measured RTT is tiny).
    pub rto_min: SimDuration,
    /// Upper bound on RTO growth.
    pub rto_max: SimDuration,
    /// Fast retransmit: resend the window base after this many duplicate
    /// cumulative ACKs naming it (out-of-order arrivals at the receiver
    /// NACK immediately). Large enough that channel-bonding's benign
    /// round-robin reordering does not trigger it.
    pub fast_retransmit_dupacks: u32,
    /// Give up on a flow once any packet has been retransmitted this many
    /// times: the flow is torn down and the error handler (see
    /// `ClicModule::set_error_handler`) receives
    /// `ClicError::MaxRetriesExceeded`.
    pub max_retries: u32,
    /// Retry cadence when the NIC TX ring refuses a packet.
    pub tx_retry: SimDuration,
    /// Out-of-order buffer per flow, packets (absorbs channel-bonding
    /// reordering and loss recovery).
    pub ooo_limit: usize,
    /// Logical MTU override for module-level fragmentation. Setting this
    /// larger than the device MTU requires the NIC fragmentation offload
    /// (ablation B: the module hands the NIC super-packets).
    pub mtu_override: Option<usize>,
    /// Finite receive buffering per port (§1: networks have "finite
    /// buffering capabilities" — so does the kernel). When a port's parked
    /// backlog exceeds this many bytes, further data packets are dropped
    /// *unacknowledged*; the sender's retransmission throttles it until
    /// the application drains the port.
    pub max_pending_bytes: usize,
    /// Keepalive probe cadence for busy flows. `None` (the paper default)
    /// disables liveness probing and peer-dead detection entirely; the
    /// fault-free goldens run with it off. Probes are `Internal` control
    /// packets answered by pongs — they never enter the send window, so
    /// RTT estimation stays Karn-safe.
    pub keepalive_interval: Option<SimDuration>,
    /// Declare a peer dead — tearing its flows down with
    /// `ClicError::PeerDead` — after this long without hearing anything
    /// (ACK or pong) from it while data is outstanding. Only active when
    /// `keepalive_interval` is set; must be at least the interval.
    pub peer_dead_timeout: SimDuration,
    /// Carry a session epoch (incarnation number) in the CLIC header so a
    /// restarted peer rejects stale pre-crash sequence space. Senders
    /// handshake the peer's epoch via probe/pong before posting data, and
    /// a stale epoch tears the flow down with `ClicError::StaleEpoch`.
    /// Requires `keepalive_interval` (the handshake retries ride on it).
    pub epoch_guard: bool,
    /// Module-wide receive-buffer budget in bytes (out-of-order buffers,
    /// partial reassemblies and parked port backlogs all count). When set,
    /// every ACK advertises how many more packets fit — piggybacked in the
    /// otherwise-unused `len` field — and senders cap their effective
    /// window to it, so incast overload degrades gracefully instead of
    /// buffering without bound. `None` (paper default) advertises nothing.
    pub recv_budget_bytes: Option<usize>,
    /// ECN-driven congestion window. When set, the sender runs slow
    /// start plus AIMD (or the DCTCP-style scaled decrease) on a per-flow `cwnd`
    /// driven by congestion marks echoed on ACKs, and the effective window
    /// becomes `min(window, advertised window, cwnd)`. RTO and fast
    /// retransmit double as loss-as-congestion signals. `None` (paper
    /// default) keeps the fixed window.
    pub congestion: Option<CongestionConfig>,
    /// CPU cost model.
    pub costs: ClicCosts,
}

impl ClicConfig {
    /// The configuration the paper evaluates: 0-copy, coalesced interrupts
    /// provided by the NIC, generous window.
    pub fn paper_default() -> ClicConfig {
        ClicConfig {
            zero_copy: true,
            window: 64,
            ack_every: 4,
            ack_delay: SimDuration::from_us(100),
            // LAN-era kernels used RTO floors of tens to hundreds of ms; a
            // too-aggressive RTO spuriously retransmits whole windows while
            // the receiver's interrupt work delays its ACK bottom halves.
            rto: SimDuration::from_ms(10),
            // The same 10 ms floors the adaptive RTO: on a sub-ms-RTT LAN
            // the estimator would otherwise arm timers aggressively enough
            // that stale-timer processing perturbs clean-path timing. Loss
            // recovery leans on the NACK-driven fast retransmit instead;
            // latency-sensitive deployments can lower the floor (see the
            // `rto` example).
            rto_min: SimDuration::from_ms(10),
            rto_max: SimDuration::from_ms(200),
            fast_retransmit_dupacks: 3,
            max_retries: 16,
            tx_retry: SimDuration::from_us(30),
            ooo_limit: 256,
            mtu_override: None,
            max_pending_bytes: 8 << 20,
            keepalive_interval: None,
            peer_dead_timeout: SimDuration::from_ms(250),
            epoch_guard: false,
            recv_budget_bytes: None,
            congestion: None,
            costs: ClicCosts::era_2002(),
        }
    }

    /// The legacy 1-copy variant (Figure 4's comparison).
    pub fn one_copy() -> ClicConfig {
        ClicConfig {
            zero_copy: false,
            ..Self::paper_default()
        }
    }

    /// Check the knobs for nonsense combinations. `ClicModule::try_install`
    /// runs this; a failure surfaces as `ClicError::Config` instead of a
    /// panic deep inside the protocol machinery.
    pub fn validate(&self) -> Result<(), crate::ClicError> {
        let reject = |what| Err(crate::ClicError::Config { what });
        if self.window == 0 {
            return reject("window must allow at least one unacknowledged packet");
        }
        if self.rto_min > self.rto_max {
            return reject("rto_min exceeds rto_max (inverted RTO bounds)");
        }
        if self.rto < self.rto_min || self.rto > self.rto_max {
            return reject("initial rto outside [rto_min, rto_max]");
        }
        if self.ack_every == 0 {
            return reject("ack_every must be at least 1");
        }
        if self.recv_budget_bytes == Some(0) {
            return reject("recv_budget_bytes of zero cannot admit any packet");
        }
        match self.keepalive_interval {
            Some(interval) => {
                if interval.as_ns() == 0 {
                    return reject("keepalive_interval must be non-zero");
                }
                if self.peer_dead_timeout < interval {
                    return reject("peer_dead_timeout shorter than keepalive_interval");
                }
            }
            None => {
                if self.epoch_guard {
                    return reject("epoch_guard requires keepalive_interval (handshake retries)");
                }
            }
        }
        if let Some(cc) = &self.congestion {
            if cc.initial_cwnd == 0 {
                return reject("congestion initial_cwnd must admit at least one packet");
            }
            if cc.initial_ssthresh == 0 {
                return reject("congestion initial_ssthresh must be at least one packet");
            }
            if !(cc.dctcp_gain > 0.0 && cc.dctcp_gain <= 1.0) {
                return reject("congestion dctcp_gain must lie in (0, 1]");
            }
        }
        Ok(())
    }
}

impl Default for ClicConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ClicConfig::paper_default();
        assert!(c.zero_copy);
        assert!(c.window > 0);
        assert!(c.ack_every >= 1);
        assert!(c.rto < c.rto_max);
        assert!(c.rto_min <= c.rto);
        assert!(c.fast_retransmit_dupacks >= 1);
        assert!(c.max_retries >= 1);
        assert!(!ClicConfig::one_copy().zero_copy);
        assert!(c.validate().is_ok());
        assert!(ClicConfig::one_copy().validate().is_ok());
    }

    fn what(c: &ClicConfig) -> &'static str {
        match c.validate() {
            Err(crate::ClicError::Config { what }) => what,
            other => panic!("expected ClicError::Config, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_zero_window() {
        let mut c = ClicConfig::paper_default();
        c.window = 0;
        assert!(what(&c).contains("window"));
    }

    #[test]
    fn validate_rejects_inverted_rto_bounds() {
        let mut c = ClicConfig::paper_default();
        c.rto_min = SimDuration::from_ms(300);
        c.rto_max = SimDuration::from_ms(100);
        assert!(what(&c).contains("rto_min exceeds rto_max"));

        let mut c = ClicConfig::paper_default();
        c.rto = SimDuration::from_ms(500);
        assert!(what(&c).contains("initial rto"));
    }

    #[test]
    fn validate_rejects_degenerate_robustness_knobs() {
        let mut c = ClicConfig::paper_default();
        c.ack_every = 0;
        assert!(what(&c).contains("ack_every"));

        let mut c = ClicConfig::paper_default();
        c.recv_budget_bytes = Some(0);
        assert!(what(&c).contains("recv_budget_bytes"));

        let mut c = ClicConfig::paper_default();
        c.epoch_guard = true;
        assert!(what(&c).contains("epoch_guard"));

        let mut c = ClicConfig::paper_default();
        c.keepalive_interval = Some(SimDuration::from_ms(10));
        c.peer_dead_timeout = SimDuration::from_ms(5);
        assert!(what(&c).contains("peer_dead_timeout"));

        c.peer_dead_timeout = SimDuration::from_ms(50);
        assert!(c.validate().is_ok());
        c.epoch_guard = true;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_congestion_knobs() {
        let mut c = ClicConfig::paper_default();
        c.congestion = Some(CongestionConfig::aimd());
        assert!(c.validate().is_ok());
        c.congestion = Some(CongestionConfig::dctcp());
        assert!(c.validate().is_ok());

        let mut cc = CongestionConfig::aimd();
        cc.initial_cwnd = 0;
        c.congestion = Some(cc);
        assert!(what(&c).contains("initial_cwnd"));

        let mut cc = CongestionConfig::aimd();
        cc.initial_ssthresh = 0;
        c.congestion = Some(cc);
        assert!(what(&c).contains("initial_ssthresh"));

        let mut cc = CongestionConfig::dctcp();
        cc.dctcp_gain = 0.0;
        c.congestion = Some(cc);
        assert!(what(&c).contains("dctcp_gain"));
        let mut cc = CongestionConfig::dctcp();
        cc.dctcp_gain = 1.5;
        c.congestion = Some(cc);
        assert!(what(&c).contains("dctcp_gain"));
    }
}
