//! The 12-byte CLIC header.
//!
//! §3.1: CLIC uses the level-1 ("pure Ethernet") 14-byte header, then adds
//! its own 12-byte header indicating "whether the packet is an MPI packet,
//! an internal packet, a kernel function packet, etc.". Layout used here:
//!
//! ```text
//!  0        1        2        3
//! +--------+--------+-----------------+
//! |CE|ptype| flags  | channel (u16be) |
//! +--------+--------+-----------------+
//! |        sequence number (u32be)    |
//! +-----------------------------------+
//! |        payload length (u32be)     |
//! +-----------------------------------+
//! ```
//!
//! The explicit length is required because Ethernet pads short frames to
//! the 64-byte minimum and the padding is indistinguishable from payload at
//! the receiver.
//!
//! Packet types occupy only the low 7 bits of byte 0; the high bit is the
//! **congestion-experienced (CE) mark** ([`CE_BIT`]). A switch whose output
//! queue is past its mark threshold sets it in flight (the ECN idea applied
//! to the raw-Ethernet CLIC header, which has no IP ECN field to borrow);
//! the receiver echoes the mark on its next cumulative ACK and the sender's
//! congestion window reacts. The bit is zero everywhere unless a switch on
//! the path marks, so pre-congestion-control captures decode unchanged.
//!
//! Multi-packet messages put an additional 8-byte message prefix
//! (`msg id (u32be) | total length (u32be)`) at the start of the *first*
//! fragment's payload; later fragments are located by sequence continuity
//! on the reliable channel.

use bytes::Bytes;

/// CLIC header size on the wire.
pub const CLIC_HEADER: usize = 12;

/// Message prefix size (first fragment only).
pub const MSG_PREFIX: usize = 8;

/// Congestion-experienced mark: the high bit of the header's first byte
/// (the packet type uses only values 1–6, so bit 7 is free). Set by a
/// switch in flight, echoed by the receiver on ACKs.
pub const CE_BIT: u8 = 0x80;

/// Packet type discriminator (the paper's MPI / internal / kernel-function
/// taxonomy plus the transport-internal types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketType {
    /// Ordinary user message data.
    Data,
    /// Cumulative acknowledgement (`seq` = next expected sequence).
    Ack,
    /// Asynchronous remote write (delivered without a receive call).
    RemoteWrite,
    /// MPI-layer message (MPI-CLIC marks its traffic so profiling tools can
    /// tell it apart; transport semantics equal `Data`).
    Mpi,
    /// CLIC-internal control.
    Internal,
    /// Kernel-function invocation packet.
    KernelFunction,
}

impl PacketType {
    fn to_u8(self) -> u8 {
        match self {
            PacketType::Data => 1,
            PacketType::Ack => 2,
            PacketType::RemoteWrite => 3,
            PacketType::Mpi => 4,
            PacketType::Internal => 5,
            PacketType::KernelFunction => 6,
        }
    }

    fn from_u8(v: u8) -> Option<PacketType> {
        Some(match v {
            1 => PacketType::Data,
            2 => PacketType::Ack,
            3 => PacketType::RemoteWrite,
            4 => PacketType::Mpi,
            5 => PacketType::Internal,
            6 => PacketType::KernelFunction,
            _ => return None,
        })
    }

    /// Data-bearing types that travel on the reliable channel.
    pub fn is_data_bearing(self) -> bool {
        matches!(
            self,
            PacketType::Data
                | PacketType::RemoteWrite
                | PacketType::Mpi
                | PacketType::KernelFunction
        )
    }
}

/// Header flag bits.
///
/// Bits 0–2 are boolean flags; bits 3–7 carry the 5-bit session epoch
/// (see [`epoch_bits`]): `0` means "epoch unknown / guard off", values
/// `1..=31` are the sender's view of the session incarnation, wrapping
/// modulo 31. Restart frequencies are bounded by the peer-dead timeout, so
/// a 31-value space cannot alias within one flow's lifetime.
pub mod flags {
    /// Sender requests delivery confirmation for the message this packet
    /// completes.
    pub const CONFIRM: u8 = 0b0000_0001;
    /// Best-effort packet outside the reliable window (Ethernet
    /// multicast/broadcast).
    pub const BEST_EFFORT: u8 = 0b0000_0010;
    /// This packet is a retransmission.
    pub const RETRANSMIT: u8 = 0b0000_0100;

    /// Bit offset of the epoch field.
    pub const EPOCH_SHIFT: u32 = 3;
    /// Mask of the epoch field (bits 3–7).
    pub const EPOCH_MASK: u8 = 0b1111_1000;

    /// Extract the wire epoch (0 = unknown, 1..=31 otherwise).
    pub fn epoch_bits(flags: u8) -> u8 {
        (flags & EPOCH_MASK) >> EPOCH_SHIFT
    }

    /// Stamp a wire epoch into the flag byte, preserving the boolean bits.
    pub fn with_epoch(flags: u8, epoch: u8) -> u8 {
        debug_assert!(epoch <= 31, "wire epoch is a 5-bit field");
        (flags & !EPOCH_MASK) | (epoch << EPOCH_SHIFT)
    }
}

/// Payload tags of `PacketType::Internal` control packets. Control packets
/// carry exactly one payload byte selecting the sub-kind; they never enter
/// the reliable window (`seq` is unused) and are safe to lose.
pub mod control {
    /// Liveness probe: "are you there, and which epoch are you?". Answered
    /// by [`PONG`].
    pub const PROBE: u8 = 1;
    /// Session reset: the receiver saw data from a stale epoch (pre-crash
    /// sequence space) and has no state for it. The sender tears the flow
    /// down with `ClicError::StaleEpoch`.
    pub const RESET: u8 = 2;
    /// Probe response, epoch-stamped. Refreshes the prober's liveness clock
    /// and teaches it the responder's epoch; never touches RTT estimation
    /// (Karn-safe by construction).
    pub const PONG: u8 = 3;
}

/// A parsed CLIC header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClicHeader {
    /// Packet type.
    pub ptype: PacketType,
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// Communication channel (port).
    pub channel: u16,
    /// Sequence number on the (peer, channel) flow; for ACKs, the
    /// cumulative next-expected sequence.
    pub seq: u32,
    /// True payload length (excludes Ethernet padding).
    pub len: u32,
    /// Congestion-experienced mark ([`CE_BIT`]). On data-bearing packets:
    /// a switch queue on the path was past its mark threshold. On ACKs:
    /// the receiver is echoing marks it saw since its last ACK.
    pub ce: bool,
}

impl ClicHeader {
    /// Serialize to the 12-byte wire form.
    pub fn encode(&self) -> [u8; CLIC_HEADER] {
        let mut out = [0u8; CLIC_HEADER];
        out[0] = self.ptype.to_u8() | if self.ce { CE_BIT } else { 0 };
        out[1] = self.flags;
        out[2..4].copy_from_slice(&self.channel.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.len.to_be_bytes());
        out
    }

    /// Parse a header and the `len` bytes of payload that follow it,
    /// tolerating Ethernet minimum-frame padding after the payload.
    ///
    /// ACKs are the exception: they carry no payload, and their `len`
    /// field is repurposed as the receiver's advertised window in packets
    /// (0 when no budget is configured) — so for `PacketType::Ack` the
    /// payload is always empty and `len` is not a byte count.
    pub fn decode(buf: &[u8]) -> Option<(ClicHeader, Bytes)> {
        if buf.len() < CLIC_HEADER {
            return None;
        }
        let ptype = PacketType::from_u8(buf[0] & !CE_BIT)?;
        let header = ClicHeader {
            ptype,
            flags: buf[1],
            channel: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            len: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            ce: buf[0] & CE_BIT != 0,
        };
        if header.ptype == PacketType::Ack {
            return Some((header, Bytes::new()));
        }
        let end = CLIC_HEADER.checked_add(header.len as usize)?;
        if buf.len() < end {
            return None;
        }
        Some((header, Bytes::copy_from_slice(&buf[CLIC_HEADER..end])))
    }
}

/// Encode the 8-byte message prefix.
pub fn encode_msg_prefix(msg_id: u32, total_len: u32) -> [u8; MSG_PREFIX] {
    let mut out = [0u8; MSG_PREFIX];
    out[0..4].copy_from_slice(&msg_id.to_be_bytes());
    out[4..8].copy_from_slice(&total_len.to_be_bytes());
    out
}

/// Decode the message prefix from the front of a first-fragment payload.
pub fn decode_msg_prefix(buf: &[u8]) -> Option<(u32, u32)> {
    if buf.len() < MSG_PREFIX {
        return None;
    }
    Some((
        u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
        u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_is_exactly_12_bytes() {
        assert_eq!(CLIC_HEADER, 12);
        let h = ClicHeader {
            ptype: PacketType::Data,
            flags: flags::CONFIRM,
            channel: 7,
            seq: 42,
            len: 0,
            ce: false,
        };
        assert_eq!(h.encode().len(), 12);
    }

    #[test]
    fn roundtrip_all_types() {
        for ptype in [
            PacketType::Data,
            PacketType::Ack,
            PacketType::RemoteWrite,
            PacketType::Mpi,
            PacketType::Internal,
            PacketType::KernelFunction,
        ] {
            let h = ClicHeader {
                ptype,
                flags: 0b101,
                channel: 0xbeef,
                seq: 0xdead_0001,
                len: 4,
                ce: false,
            };
            let mut wire = h.encode().to_vec();
            wire.extend_from_slice(&[9, 8, 7, 6]);
            let (parsed, payload) = ClicHeader::decode(&wire).unwrap();
            assert_eq!(parsed, h);
            if ptype == PacketType::Ack {
                // ACK `len` is the advertised window, not a payload length.
                assert!(payload.is_empty());
            } else {
                assert_eq!(&payload[..], &[9, 8, 7, 6]);
            }
        }
    }

    #[test]
    fn ack_len_is_window_not_payload() {
        // A minimum-size Ethernet frame carrying an ACK that advertises a
        // 64-packet window: decode must not demand 64 payload bytes.
        let h = ClicHeader {
            ptype: PacketType::Ack,
            flags: 0,
            channel: 3,
            seq: 17,
            len: 64,
            ce: false,
        };
        let mut wire = h.encode().to_vec();
        wire.resize(46, 0); // Ethernet min-payload padding only
        let (parsed, payload) = ClicHeader::decode(&wire).unwrap();
        assert_eq!(parsed.len, 64);
        assert!(payload.is_empty());
    }

    #[test]
    fn epoch_rides_in_the_flag_high_bits() {
        let base = flags::CONFIRM | flags::RETRANSMIT;
        for epoch in [0u8, 1, 17, 31] {
            let f = flags::with_epoch(base, epoch);
            assert_eq!(flags::epoch_bits(f), epoch);
            // The boolean bits survive the stamp...
            assert_eq!(f & flags::CONFIRM, flags::CONFIRM);
            assert_eq!(f & flags::RETRANSMIT, flags::RETRANSMIT);
            assert_eq!(f & flags::BEST_EFFORT, 0);
            // ...and restamping replaces rather than accumulates.
            assert_eq!(flags::epoch_bits(flags::with_epoch(f, 2)), 2);
        }
    }

    #[test]
    fn decode_strips_ethernet_padding() {
        let h = ClicHeader {
            ptype: PacketType::Data,
            flags: 0,
            channel: 1,
            seq: 0,
            len: 3,
            ce: false,
        };
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&[1, 2, 3]);
        wire.resize(46, 0); // Ethernet min-payload padding
        let (_, payload) = ClicHeader::decode(&wire).unwrap();
        assert_eq!(&payload[..], &[1, 2, 3]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ClicHeader::decode(&[1, 2, 3]).is_none()); // too short
        let mut wire = ClicHeader {
            ptype: PacketType::Data,
            flags: 0,
            channel: 0,
            seq: 0,
            len: 100, // claims more payload than present
            ce: false,
        }
        .encode()
        .to_vec();
        wire.extend_from_slice(&[0; 10]);
        assert!(ClicHeader::decode(&wire).is_none());
        let mut bad_type = [0u8; 12];
        bad_type[0] = 99;
        assert!(ClicHeader::decode(&bad_type).is_none());
    }

    #[test]
    fn msg_prefix_roundtrip() {
        let enc = encode_msg_prefix(12345, 1 << 20);
        let (id, len) = decode_msg_prefix(&enc).unwrap();
        assert_eq!(id, 12345);
        assert_eq!(len, 1 << 20);
        assert!(decode_msg_prefix(&enc[..4]).is_none());
    }

    #[test]
    fn ce_mark_rides_the_ptype_high_bit() {
        let h = ClicHeader {
            ptype: PacketType::Data,
            flags: flags::CONFIRM,
            channel: 9,
            seq: 5,
            len: 2,
            ce: true,
        };
        let mut wire = h.encode().to_vec();
        assert_eq!(wire[0], 1 | CE_BIT);
        wire.extend_from_slice(&[0xaa, 0xbb]);
        let (parsed, payload) = ClicHeader::decode(&wire).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.ce);
        assert_eq!(&payload[..], &[0xaa, 0xbb]);
        // Unmarked encodings are bit-identical to the pre-CE wire format.
        let mut clean = h;
        clean.ce = false;
        assert_eq!(clean.encode()[0], 1);
        // A marked byte with a garbage low ptype still rejects.
        let mut bad = [0u8; 12];
        bad[0] = CE_BIT | 99;
        assert!(ClicHeader::decode(&bad).is_none());
    }

    #[test]
    fn data_bearing_classification() {
        assert!(PacketType::Data.is_data_bearing());
        assert!(PacketType::RemoteWrite.is_data_bearing());
        assert!(PacketType::Mpi.is_data_bearing());
        assert!(!PacketType::Ack.is_data_bearing());
        assert!(!PacketType::Internal.is_data_bearing());
    }
}
