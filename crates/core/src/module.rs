//! CLIC_MODULE — the kernel-resident protocol engine.
//!
//! Send path (Figure 3): a user `send` enters the kernel through INT 80h
//! (≈ 0.65 µs), CLIC_MODULE composes the level-1 Ethernet + 12-byte CLIC
//! headers, fragments the message to MTU-sized packets, updates SK_BUFFs
//! (scatter-gather pointing at user memory in the 0-copy configuration) and
//! calls the unmodified driver; the NIC moves the data as bus master, so
//! module + driver retire before the transfer finishes. If the NIC cannot
//! accept a packet, the module copies it to system memory and retries later
//! — overlapped with other traffic, exactly §3.1.
//!
//! Receive path: the driver (interrupt) moves frames to system memory and
//! invokes the module through a Linux bottom half — or directly, with the
//! Figure 8b improvement (`Kernel::direct_dispatch`). The module runs the
//! sliding-window reliability machinery, reassembles messages, and either
//! copies them to a waiting process's user memory (waking it), parks them
//! in system memory for a later `recv`, or — for remote writes — places
//! them into the registered region with no receive call at all.

use crate::api::RecvMsg;
use crate::config::{ClicConfig, CongestionConfig, CongestionMode};
use crate::header::{
    control, decode_msg_prefix, encode_msg_prefix, flags, ClicHeader, PacketType, CLIC_HEADER,
    MSG_PREFIX,
};
use crate::reliable::{RecvOutcome, RecvWindow, SendWindow};
use bytes::{BufMut, Bytes, BytesMut};
use clic_ethernet::{EtherType, Frame, MacAddr, RoundRobin};
use clic_os::driver::hard_start_xmit;
use clic_os::{Kernel, PacketHandler, Pid, SkBuff};
use clic_sim::catalog::{counter_id, gauge_id, histogram_id};
use clic_sim::{Layer, MetricId, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::{Rc, Weak};

/// Interned metric ids — the CLIC data path records per message/packet,
/// so names are resolved against the catalog at compile time.
const M_MSG_BYTES: MetricId = histogram_id("clic.msg_bytes");
const M_STAGED_COPIES: MetricId = counter_id("clic.staged_copies");
const M_FLOW_FAILURES: MetricId = counter_id("clic.flow_failures");
const M_KEEPALIVE_PROBES: MetricId = counter_id("clic.keepalive_probes");
const M_DROPS_EXPIRED: MetricId = counter_id("clic.drops.expired");
const M_RTTVAR: MetricId = histogram_id("clic.rttvar");
const M_FAST_RETRANSMITS: MetricId = counter_id("clic.fast_retransmits");
const M_RETRANSMITS: MetricId = counter_id("clic.retransmits");
const M_DROPS_STALE_EPOCH: MetricId = counter_id("clic.drops.stale_epoch");
const M_DROPS_BACKLOG: MetricId = counter_id("clic.drops.backlog");
const M_DROPS_DUPLICATE: MetricId = counter_id("clic.drops.duplicate");
const M_DROPS_OOO: MetricId = counter_id("clic.drops.ooo");
const M_RECV_BUFFER_BYTES: MetricId = gauge_id("clic.recv_buffer_bytes");
const M_CWND: MetricId = gauge_id("clic.cwnd");
const M_SSTHRESH: MetricId = gauge_id("clic.ssthresh");
const M_ECN_ECHOES: MetricId = counter_id("clic.ecn_echoes");
const TL_EFFECTIVE_WINDOW: MetricId = gauge_id("clic.effective_window");
const TL_INFLIGHT_BYTES: MetricId = gauge_id("clic.inflight_bytes");

/// Activity counters.
#[derive(Debug, Default, Clone)]
pub struct ClicStats {
    /// Messages accepted from user processes.
    pub msgs_sent: u64,
    /// Messages fully delivered to this node's processes.
    pub msgs_received: u64,
    /// Data-bearing packets posted to NICs (first transmissions).
    pub packets_sent: u64,
    /// Data-bearing packets processed off the wire.
    pub packets_received: u64,
    /// Cumulative ACKs sent.
    pub acks_sent: u64,
    /// ACKs processed.
    pub acks_received: u64,
    /// Packets retransmitted (timeout + fast retransmit).
    pub retransmits: u64,
    /// Fast retransmits triggered by duplicate cumulative ACKs (also
    /// counted in `retransmits`).
    pub fast_retransmits: u64,
    /// Flows torn down with a typed error, any cause (the sum of the three
    /// cause-split counters below).
    pub flow_failures: u64,
    /// Flows abandoned after `max_retries` retransmissions of one packet.
    pub flow_failures_max_retries: u64,
    /// Flows torn down because the peer went silent past the peer-dead
    /// timeout (keepalive probes unanswered).
    pub flow_failures_peer_dead: u64,
    /// Flows torn down because the peer restarted into a new session epoch
    /// (its pre-crash receive state is gone).
    pub flow_failures_stale_epoch: u64,
    /// Packets staged to system memory because the NIC ring was full.
    pub staged_copies: u64,
    /// Duplicate packets discarded (and re-ACKed).
    pub duplicates: u64,
    /// Out-of-order packets dropped for buffer overflow.
    pub ooo_drops: u64,
    /// Messages delivered over the intra-node fast path.
    pub intra_node: u64,
    /// Best-effort (multicast/broadcast) packets delivered.
    pub best_effort_rx: u64,
    /// Frames that failed CLIC header parsing.
    pub malformed: u64,
    /// Kernel functions invoked on this node.
    pub kernel_calls: u64,
    /// Kernel-function packets for an unregistered function id.
    pub kernel_calls_unknown: u64,
    /// Data packets refused (unacknowledged) because the destination
    /// port's parked backlog hit its buffering limit.
    pub backlog_drops: u64,
    /// Data packets rejected by the epoch guard: they were stamped with a
    /// session epoch other than this incarnation's (stale pre-crash
    /// sequence space). Each rejection answers with a session reset.
    pub stale_epoch_drops: u64,
    /// Receive-side flow states garbage-collected because the sender went
    /// silent while a reassembly or out-of-order buffer was open.
    pub expired_drops: u64,
    /// Keepalive/handshake probes sent.
    pub keepalive_probes: u64,
    /// ACKs carrying a congestion-mark echo, processed on the send side.
    pub ecn_echoes: u64,
}

/// Terminal protocol errors CLIC surfaces to the embedding application
/// instead of retrying forever (§1: the network has "limited
/// fault-handling" — at some point the peer is simply gone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClicError {
    /// A flow was torn down because one of its packets was retransmitted
    /// more than [`crate::ClicConfig::max_retries`] times without being
    /// acknowledged. Unacknowledged and queued data of the flow is
    /// discarded; pending confirm callbacks never fire.
    MaxRetriesExceeded {
        /// The unresponsive peer station.
        peer: MacAddr,
        /// Destination channel of the failed flow.
        channel: u16,
        /// Sequence number of the packet that exhausted its retries.
        seq: u32,
        /// How many times it was retransmitted.
        retries: u32,
    },
    /// A flow was torn down because nothing (no ACK, no pong) was heard
    /// from the peer for [`crate::ClicConfig::peer_dead_timeout`] while
    /// data was outstanding, despite keepalive probes.
    PeerDead {
        /// The silent peer station.
        peer: MacAddr,
        /// Destination channel of the failed flow.
        channel: u16,
    },
    /// A flow was torn down because the peer restarted into a new session
    /// epoch: its pre-crash receive state — including everything this flow
    /// had in flight — no longer exists.
    StaleEpoch {
        /// The restarted peer station.
        peer: MacAddr,
        /// Destination channel of the failed flow.
        channel: u16,
    },
    /// The configuration failed validation (see
    /// [`crate::ClicConfig::validate`]); nothing was installed.
    Config {
        /// Which knob (combination) was rejected.
        what: &'static str,
    },
}

impl std::fmt::Display for ClicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClicError::MaxRetriesExceeded {
                peer,
                channel,
                seq,
                retries,
            } => write!(
                f,
                "flow to {peer:?} channel {channel} failed: seq {seq} unacknowledged after {retries} retransmissions"
            ),
            ClicError::PeerDead { peer, channel } => write!(
                f,
                "flow to {peer:?} channel {channel} failed: peer declared dead (keepalive timeout)"
            ),
            ClicError::StaleEpoch { peer, channel } => write!(
                f,
                "flow to {peer:?} channel {channel} failed: peer restarted into a new session epoch"
            ),
            ClicError::Config { what } => write!(f, "invalid CLIC configuration: {what}"),
        }
    }
}

type FlowKey = (MacAddr, u16);

/// Per-flow congestion-window state, present only when
/// [`ClicConfig::congestion`] is set. Window arithmetic is in packets and
/// kept as `f64` so congestion avoidance can grow by fractional amounts
/// per ACK (one packet per window's worth of ACKs) and the DCTCP mode can
/// scale its decrease by the EWMA mark fraction.
struct Congestion {
    cfg: CongestionConfig,
    /// Congestion window, packets. Never below 1.0 (progress guarantee).
    cwnd: f64,
    /// Slow-start threshold, packets.
    ssthresh: f64,
    /// DCTCP's EWMA of the per-window fraction of mark-echoing ACKs.
    alpha: f64,
    /// ACKs (total / mark-echoing) since the last alpha window rolled.
    acks_seen: u64,
    acks_marked: u64,
    /// Decreases apply at most once per window in flight: further signals
    /// are ignored until the cumulative ACK passes this sequence.
    recover_until: u32,
    /// End of the current alpha-estimation window (a sequence number).
    round_until: u32,
}

impl Congestion {
    fn new(cfg: CongestionConfig) -> Congestion {
        Congestion {
            cfg,
            cwnd: cfg.initial_cwnd as f64,
            ssthresh: cfg.initial_ssthresh as f64,
            // α starts at 1 (the conservative choice from the DCTCP
            // paper's implementations): the first echoes — typically the
            // slow-start overshoot — cut like AIMD, and the EWMA then
            // relaxes α toward the true mark fraction.
            alpha: 1.0,
            acks_seen: 0,
            acks_marked: 0,
            recover_until: 0,
            round_until: 0,
        }
    }

    /// Fold one cumulative ACK into the DCTCP mark-fraction estimate; the
    /// EWMA rolls once per window of sequence space, RTT-paced like the
    /// decreases.
    fn note_ack(&mut self, marked: bool, base: u32, flight_end: u32) {
        self.acks_seen += 1;
        if marked {
            self.acks_marked += 1;
        }
        if base >= self.round_until {
            let fraction = self.acks_marked as f64 / self.acks_seen as f64;
            let g = self.cfg.dctcp_gain;
            self.alpha = (1.0 - g) * self.alpha + g * fraction;
            self.acks_seen = 0;
            self.acks_marked = 0;
            self.round_until = flight_end;
        }
    }

    /// ACK progress grows the window: slow start adds a packet per ACKed
    /// packet below `ssthresh`, congestion avoidance adds `acked/cwnd`
    /// (one packet per window per RTT). Clamped to the configured window —
    /// the effective cap can never exceed it anyway.
    fn on_acked(&mut self, acked: u64, max: f64) {
        let mut n = acked as f64;
        if self.cwnd < self.ssthresh {
            let ss = n.min(self.ssthresh - self.cwnd);
            self.cwnd += ss;
            n -= ss;
        }
        if n > 0.0 {
            self.cwnd += n / self.cwnd;
        }
        self.cwnd = self.cwnd.min(max);
    }

    /// An echoed congestion mark: multiplicative decrease, at most once
    /// per window in flight. AIMD halves; DCTCP scales by `α/2` so light
    /// marking sheds little and persistent marking converges to a halve.
    fn on_echo(&mut self, base: u32, flight_end: u32) {
        if base < self.recover_until {
            return;
        }
        self.recover_until = flight_end;
        let factor = match self.cfg.mode {
            CongestionMode::Aimd => 0.5,
            CongestionMode::Dctcp => 1.0 - self.alpha / 2.0,
        };
        self.cwnd = (self.cwnd * factor).max(1.0);
        self.ssthresh = self.cwnd.max(2.0);
    }

    /// Loss inferred from duplicate ACKs (fast retransmit): halve, once
    /// per window, like classic NewReno.
    fn on_loss(&mut self, base: u32, flight_end: u32) {
        if base < self.recover_until {
            return;
        }
        self.recover_until = flight_end;
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = self.ssthresh;
    }

    /// Retransmission timeout: the strongest congestion signal — restart
    /// from slow start with half the old window as the threshold.
    fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }
}

/// Record the congestion-window gauges (registry + timeline) after a
/// change. Only ever called with congestion control enabled, so disabled
/// runs see zero new metric traffic.
fn cong_gauges(sim: &mut Sim, c: &Congestion) {
    sim.metrics.gauge_set_id(M_CWND, c.cwnd as i64);
    sim.metrics.gauge_set_id(M_SSTHRESH, c.ssthresh as i64);
    sim.timeline.gauge(sim.now(), M_CWND, c.cwnd as i64);
    sim.timeline.gauge(sim.now(), M_SSTHRESH, c.ssthresh as i64);
}

struct QueuedPacket {
    header: ClicHeader,
    payload: Bytes,
    staged: bool,
    trace: u64,
}

struct OutFlow {
    window: SendWindow,
    queue: VecDeque<QueuedPacket>,
    posting: usize,
    confirms: Vec<(u32, Box<dyn FnOnce(&mut Sim)>)>,
    rto_gen: u64,
    rto_running: bool,
    rto_current: SimDuration,
    kick_armed: bool,
    /// Smoothed RTT (ns), RFC 6298 fixed-point; `None` until the first
    /// sample.
    srtt_ns: Option<u64>,
    /// RTT variance (ns).
    rttvar_ns: u64,
    /// Consecutive duplicate cumulative ACKs naming the window base.
    dup_acks: u32,
    /// When anything (ACK or pong) was last heard from the peer; the
    /// peer-dead timeout measures from here. Initialized to flow creation.
    last_heard: SimTime,
    /// Keepalive timer bookkeeping (same generation-counter pattern as the
    /// RTO timer: a stale firing compares generations and dies).
    ka_armed: bool,
    ka_gen: u64,
    /// Most recent window the peer advertised on an ACK (packets); caps
    /// the effective send window. `None` until the peer advertises one.
    peer_window: Option<usize>,
    /// Congestion-window state ([`ClicConfig::congestion`]); `None` keeps
    /// the fixed configured window.
    cong: Option<Congestion>,
}

impl OutFlow {
    fn new(config: &ClicConfig, now: SimTime) -> OutFlow {
        OutFlow {
            window: SendWindow::new(config.window),
            queue: VecDeque::new(),
            posting: 0,
            confirms: Vec::new(),
            rto_gen: 0,
            rto_running: false,
            rto_current: config.rto,
            kick_armed: false,
            srtt_ns: None,
            rttvar_ns: 0,
            dup_acks: 0,
            last_heard: now,
            ka_armed: false,
            ka_gen: 0,
            peer_window: None,
            cong: config.congestion.map(Congestion::new),
        }
    }

    /// A flow with nothing queued, posting or unacknowledged needs no
    /// liveness monitoring — its keepalive timer is allowed to die.
    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.posting == 0 && self.window.all_acked()
    }

    /// RFC 6298 with integer-ns arithmetic: fold in one RTT sample and
    /// return the resulting RTO, clamped to the configured bounds.
    fn rtt_sample(&mut self, sample_ns: u64, config: &ClicConfig) -> SimDuration {
        let srtt = match self.srtt_ns {
            None => {
                self.rttvar_ns = sample_ns / 2;
                sample_ns
            }
            Some(prev) => {
                // lint:allow(time-overflow, reason="RTT terms are real simulated spans; the 3x/7x headroom holds for any run shorter than ~68 years")
                self.rttvar_ns = (3 * self.rttvar_ns + prev.abs_diff(sample_ns)) / 4;
                // lint:allow(time-overflow, reason="RTT terms are real simulated spans; the 3x/7x headroom holds for any run shorter than ~68 years")
                (7 * prev + sample_ns) / 8
            }
        };
        self.srtt_ns = Some(srtt);
        // The 1 µs floor plays the role of RFC 6298's clock-granularity G.
        // lint:allow(time-overflow, reason="srtt and rttvar are smoothed real RTTs, orders of magnitude below the u64 ceiling")
        let rto_ns = (srtt + (4 * self.rttvar_ns).max(1_000))
            .clamp(config.rto_min.as_ns(), config.rto_max.as_ns());
        SimDuration::from_ns(rto_ns)
    }
}

struct Assembly {
    total: usize,
    buf: BytesMut,
    ptype: PacketType,
}

struct InFlow {
    window: RecvWindow,
    assembling: Option<Assembly>,
    unacked: u32,
    ack_timer_armed: bool,
    ack_gen: u64,
    /// When a data packet or probe from the peer last arrived; expiry GC
    /// measures from here.
    last_heard: SimTime,
    /// Expiry-GC timer bookkeeping (generation-guarded like every timer).
    exp_armed: bool,
    exp_gen: u64,
    /// A congestion-marked packet arrived since the last ACK left; the
    /// next ACK echoes the mark back to the sender. Always maintained —
    /// without switch marking it simply never sets, and echoing costs the
    /// receiver nothing.
    ce_seen: bool,
}

impl InFlow {
    fn new(config: &ClicConfig, now: SimTime) -> InFlow {
        InFlow {
            window: RecvWindow::new(config.ooo_limit),
            assembling: None,
            unacked: 0,
            ack_timer_armed: false,
            ack_gen: 0,
            last_heard: now,
            exp_armed: false,
            exp_gen: 0,
            ce_seen: false,
        }
    }

    /// Buffered state that must not be stranded if the sender dies:
    /// partial reassemblies plus out-of-order packets.
    fn holds_state(&self) -> bool {
        self.assembling.is_some() || self.window.buffered() > 0
    }
}

type Waiter = Box<dyn FnOnce(&mut Sim, RecvMsg)>;

#[derive(Default)]
struct PortState {
    pid: Option<Pid>,
    pending: VecDeque<RecvMsg>,
    pending_bytes: usize,
    waiting: VecDeque<Waiter>,
    remote_writes: Option<Vec<RecvMsg>>,
}

/// Options for [`ClicModule::send`].
pub struct SendOptions {
    /// Destination station (unicast, broadcast, or multicast group).
    pub dst: MacAddr,
    /// Channel (port) at the destination.
    pub channel: u16,
    /// Data, Mpi, KernelFunction or RemoteWrite.
    pub ptype: PacketType,
    /// Invoked when the whole message has been acknowledged
    /// (`send_confirmed` primitive).
    pub confirm: Option<Box<dyn FnOnce(&mut Sim)>>,
    /// Pipeline-trace id (0 = untraced).
    pub trace: u64,
}

impl SendOptions {
    /// Plain data send.
    pub fn data(dst: MacAddr, channel: u16) -> SendOptions {
        SendOptions {
            dst,
            channel,
            ptype: PacketType::Data,
            confirm: None,
            trace: 0,
        }
    }
}

/// The CLIC kernel module of one node.
pub struct ClicModule {
    kernel: Weak<RefCell<Kernel>>,
    devices: Vec<usize>,
    macs: Vec<MacAddr>,
    bond: RoundRobin,
    max_chunk: usize,
    config: ClicConfig,
    out: BTreeMap<FlowKey, OutFlow>,
    inflows: BTreeMap<FlowKey, InFlow>,
    ports: BTreeMap<u16, PortState>,
    kernel_functions: BTreeMap<u16, KernelFn>,
    next_msg_id: u32,
    stats: ClicStats,
    error_handler: Option<Rc<dyn Fn(&mut Sim, ClicError)>>,
    /// This node's session incarnation, bumped on every restart. Monotonic
    /// internally; folded onto the 5-bit wire space when stamped.
    epoch: u32,
    /// Crash-stopped: frames are dropped, sends are swallowed. All flow,
    /// port and peer-epoch state was wiped at crash time.
    crashed: bool,
    /// Last wire epoch observed from each peer (via ACK, pong or reset);
    /// the epoch guard refuses to post data until the peer's is known.
    peer_epochs: BTreeMap<MacAddr, u8>,
}

/// Fold the monotonic incarnation counter onto the 5-bit wire space
/// (`1..=31`; `0` is reserved for "unknown / guard off").
fn wire_epoch(epoch: u32) -> u8 {
    ((epoch - 1) % 31 + 1) as u8
}

/// An in-kernel service invocable from remote nodes (the "kernel function
/// packet" type of the CLIC header, §3.1). Runs in kernel context on the
/// receiving node; an optional reply is sent back without any process
/// involvement.
type KernelFn = Rc<dyn Fn(&mut Sim, &RecvMsg) -> Option<Bytes>>;

struct Handler(Rc<RefCell<ClicModule>>);

impl PacketHandler for Handler {
    fn handle(&self, sim: &mut Sim, kernel: &Rc<RefCell<Kernel>>, _dev: usize, frame: Frame) {
        ClicModule::on_frame(&self.0, sim, kernel, frame);
    }
}

impl ClicModule {
    /// Insert CLIC_MODULE into `kernel`, attached to `devices` (more than
    /// one enables channel bonding). Registers the CLIC EtherType handler.
    /// Panics on an invalid configuration; [`ClicModule::try_install`]
    /// surfaces the same condition as [`ClicError::Config`].
    pub fn install(
        kernel: &Rc<RefCell<Kernel>>,
        devices: Vec<usize>,
        config: ClicConfig,
    ) -> Rc<RefCell<ClicModule>> {
        match Self::try_install(kernel, devices, config) {
            Ok(module) => module,
            // lint:allow(no-unwrap, reason="install is the panicking convenience wrapper; try_install is the fallible API")
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible [`ClicModule::install`]: validates `config` first and
    /// returns [`ClicError::Config`] instead of panicking on nonsense.
    pub fn try_install(
        kernel: &Rc<RefCell<Kernel>>,
        devices: Vec<usize>,
        config: ClicConfig,
    ) -> Result<Rc<RefCell<ClicModule>>, ClicError> {
        config.validate()?;
        if devices.is_empty() {
            return Err(ClicError::Config {
                what: "CLIC needs at least one device",
            });
        }
        let (macs, device_mtu) = {
            let k = kernel.borrow();
            let macs: Vec<MacAddr> = devices
                .iter()
                .map(|&d| k.device(d).borrow().mac())
                .collect();
            let mtu = devices
                .iter()
                .map(|&d| k.device(d).borrow().mtu())
                .min()
                // lint:allow(no-unwrap, reason="devices asserted non-empty above")
                .unwrap();
            (macs, mtu)
        };
        let mtu = config.mtu_override.unwrap_or(device_mtu);
        if mtu <= CLIC_HEADER + MSG_PREFIX {
            return Err(ClicError::Config {
                what: "MTU too small for CLIC headers",
            });
        }
        let width = devices.len();
        let module = Rc::new(RefCell::new(ClicModule {
            kernel: Rc::downgrade(kernel),
            devices,
            macs,
            bond: RoundRobin::new(width),
            max_chunk: mtu - CLIC_HEADER,
            config,
            out: BTreeMap::new(),
            inflows: BTreeMap::new(),
            ports: BTreeMap::new(),
            kernel_functions: BTreeMap::new(),
            next_msg_id: 1,
            stats: ClicStats::default(),
            error_handler: None,
            epoch: 1,
            crashed: false,
            peer_epochs: BTreeMap::new(),
        }));
        kernel
            .borrow_mut()
            .register_handler(EtherType::CLIC.0, Rc::new(Handler(module.clone())));
        Ok(module)
    }

    fn kernel(module: &Rc<RefCell<ClicModule>>) -> Rc<RefCell<Kernel>> {
        module
            .borrow()
            .kernel
            .upgrade()
            // lint:allow(no-unwrap, reason="the kernel owns every device a module binds to; a live module implies a live kernel")
            .expect("kernel dropped while CLIC module alive")
    }

    /// This node's primary station address.
    pub fn mac(&self) -> MacAddr {
        self.macs[0]
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClicStats {
        self.stats.clone()
    }

    /// Crash-stop this node's CLIC state: every outbound flow (with its
    /// queued data and unfired confirms), every receive-side flow (with
    /// its reassemblies and out-of-order buffers), every port binding and
    /// all learned peer epochs are lost, exactly as a kernel panic would
    /// lose them. Frames arriving while crashed are dropped. Statistics
    /// survive — they model an external observer, not kernel memory.
    pub fn crash(&mut self) {
        self.crashed = true;
        self.out.clear();
        self.inflows.clear();
        self.ports.clear();
        self.peer_epochs.clear();
    }

    /// Restart after [`ClicModule::crash`]: the module comes back empty
    /// under a new session epoch, so peers still holding pre-crash
    /// sequence space get session resets instead of silent acceptance.
    pub fn restart(&mut self) {
        self.crashed = false;
        self.epoch += 1;
    }

    /// Whether the module is currently crash-stopped.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Current session incarnation (starts at 1, bumped per restart).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Bytes currently held in receive-side buffers: parked port backlogs,
    /// out-of-order windows and partial reassemblies. This is what the
    /// receive budget charges against `recv_budget_bytes`, and what the
    /// chaos harness asserts drains to zero at quiescence.
    pub fn buffered_bytes(&self) -> usize {
        let parked: usize = self.ports.values().map(|p| p.pending_bytes).sum();
        let flows: usize = self
            .inflows
            .values()
            .map(|f| f.window.buffered_bytes() + f.assembling.as_ref().map_or(0, |a| a.buf.len()))
            .sum();
        parked + flows
    }

    /// Install the callback invoked when a flow fails terminally (e.g.
    /// [`ClicError::MaxRetriesExceeded`] after the peer stops answering).
    /// Without a handler failures are still counted in
    /// [`ClicStats::flow_failures`] but otherwise silent.
    pub fn set_error_handler(&mut self, handler: Rc<dyn Fn(&mut Sim, ClicError)>) {
        self.error_handler = Some(handler);
    }

    /// Largest message that fits a single best-effort (multicast) packet.
    pub fn max_best_effort_len(&self) -> usize {
        self.max_chunk - MSG_PREFIX
    }

    /// Bind `channel` to `pid` so wakeups are charged to the right process.
    pub fn bind(&mut self, pid: Pid, channel: u16) {
        let port = self.ports.entry(channel).or_default();
        assert!(port.pid.is_none(), "channel {channel} already bound");
        port.pid = Some(pid);
    }

    /// Register `channel` as a remote-write region for `pid`: messages of
    /// type RemoteWrite land here with no receive call.
    pub fn register_remote_write(&mut self, pid: Pid, channel: u16) {
        let port = self.ports.entry(channel).or_default();
        port.pid.get_or_insert(pid);
        port.remote_writes = Some(Vec::new());
    }

    /// Drain messages delivered into a remote-write region.
    pub fn take_remote_writes(&mut self, channel: u16) -> Vec<RecvMsg> {
        self.ports
            .get_mut(&channel)
            .and_then(|p| p.remote_writes.as_mut())
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Register an in-kernel function invocable from remote nodes. The
    /// handler runs in kernel context when a KernelFunction packet for
    /// `id` completes; returning `Some(reply)` sends the reply straight
    /// from the kernel to the caller's reply channel.
    pub fn register_kernel_function(
        &mut self,
        id: u16,
        handler: impl Fn(&mut Sim, &RecvMsg) -> Option<Bytes> + 'static,
    ) {
        let prev = self.kernel_functions.insert(id, Rc::new(handler));
        assert!(prev.is_none(), "kernel function {id} already registered");
    }

    /// Invoke kernel function `id` on the node at `dst`. `args` go out as
    /// a KernelFunction message on channel `id`; any reply arrives as an
    /// ordinary message on `reply_channel` of this node.
    pub fn call_kernel_function(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        dst: MacAddr,
        id: u16,
        reply_channel: u16,
        args: Bytes,
    ) {
        let mut payload = BytesMut::with_capacity(2 + args.len());
        payload.put_u16(reply_channel);
        payload.put_slice(&args);
        let opts = SendOptions {
            ptype: PacketType::KernelFunction,
            ..SendOptions::data(dst, id)
        };
        Self::send(module, sim, opts, payload.freeze());
    }

    /// Join an Ethernet multicast group on every bonded NIC.
    pub fn join_multicast(module: &Rc<RefCell<ClicModule>>, group: MacAddr) {
        let kernel = Self::kernel(module);
        let devices = module.borrow().devices.clone();
        for d in devices {
            kernel.borrow().device(d).borrow_mut().join_multicast(group);
        }
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Send `data` according to `opts`, entering the kernel through a
    /// standard system call.
    pub fn send(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, opts: SendOptions, data: Bytes) {
        let kernel = Self::kernel(module);
        sim.metrics.observe_id(M_MSG_BYTES, data.len() as u64);
        if opts.trace != 0 {
            sim.trace.begin(sim.now(), Layer::Os, "syscall", opts.trace);
        }
        let module = module.clone();
        Kernel::syscall(&kernel, sim, move |sim| {
            if opts.trace != 0 {
                sim.trace.end(sim.now(), Layer::Os, "syscall", opts.trace);
            }
            Self::module_tx(&module, sim, opts, data);
        });
    }

    fn module_tx(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, opts: SendOptions, data: Bytes) {
        assert!(
            opts.ptype.is_data_bearing(),
            "send accepts data-bearing packet types only"
        );
        if module.borrow().crashed {
            return; // a crashed kernel swallows the call; nothing confirms
        }
        let kernel = Self::kernel(module);

        // Intra-node fast path: one copy user-to-user, no NIC involved.
        if module.borrow().macs.contains(&opts.dst) {
            Self::intra_node_tx(module, sim, opts, data);
            return;
        }

        // Ethernet multicast/broadcast: best-effort single packet.
        if opts.dst.is_multicast() {
            Self::best_effort_tx(module, sim, opts, data);
            return;
        }

        let (cost, key) = {
            let mut m = module.borrow_mut();
            m.stats.msgs_sent += 1;
            let npackets = (MSG_PREFIX + data.len()).div_ceil(m.max_chunk).max(1) as u64;
            let mut cost = m.config.costs.tx_per_message + m.config.costs.tx_per_packet * npackets;
            if !m.config.zero_copy {
                // Legacy path: stage the whole message through kernel
                // memory before the driver sees it.
                cost += kernel.borrow().costs.copy.cost_observed(sim, data.len());
            }
            (cost, (opts.dst, opts.channel))
        };
        if opts.trace != 0 {
            sim.trace
                .begin(sim.now(), Layer::Clic, "clic_module_tx", opts.trace);
        }
        let module2 = module.clone();
        Kernel::cpu_task(&kernel, sim, cost, move |sim| {
            if opts.trace != 0 {
                sim.trace
                    .end(sim.now(), Layer::Clic, "clic_module_tx", opts.trace);
            }
            Self::enqueue_message(&module2, sim, key, opts, data);
        });
    }

    fn intra_node_tx(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        opts: SendOptions,
        data: Bytes,
    ) {
        let kernel = Self::kernel(module);
        let cost = {
            let mut m = module.borrow_mut();
            m.stats.msgs_sent += 1;
            m.stats.intra_node += 1;
            m.config.costs.tx_per_message
                + kernel.borrow().costs.copy.cost_observed(sim, data.len())
        };
        let module2 = module.clone();
        let src = module.borrow().macs[0];
        Kernel::cpu_task(&kernel, sim, cost, move |sim| {
            let msg = RecvMsg {
                src,
                channel: opts.channel,
                ptype: opts.ptype,
                data: Bytes::copy_from_slice(&data),
            };
            Self::deliver_message(&module2, sim, msg, 0);
            if let Some(confirm) = opts.confirm {
                confirm(sim);
            }
        });
    }

    fn best_effort_tx(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        opts: SendOptions,
        data: Bytes,
    ) {
        let kernel = Self::kernel(module);
        let (cost, dev, msg_id, max_len) = {
            let mut m = module.borrow_mut();
            m.stats.msgs_sent += 1;
            let id = m.next_msg_id;
            m.next_msg_id += 1;
            let dev_slot = m.bond.next_index();
            (
                m.config.costs.tx_per_message + m.config.costs.tx_per_packet,
                m.devices[dev_slot],
                id,
                m.max_best_effort_len(),
            )
        };
        assert!(
            data.len() <= max_len,
            "best-effort (multicast) messages must fit one packet: {} > {max_len}",
            data.len()
        );
        let header = ClicHeader {
            ptype: opts.ptype,
            flags: flags::BEST_EFFORT,
            channel: opts.channel,
            seq: 0,
            len: (MSG_PREFIX + data.len()) as u32,
            ce: false,
        };
        let mut payload = BytesMut::with_capacity(MSG_PREFIX + data.len());
        payload.put_slice(&encode_msg_prefix(msg_id, data.len() as u32));
        payload.put_slice(&data);
        let payload = payload.freeze();
        let zero_copy = module.borrow().config.zero_copy;
        let kernel2 = kernel.clone();
        Kernel::cpu_task(&kernel, sim, cost, move |sim| {
            let skb = Self::build_skb(header, &payload, zero_copy, opts.trace);
            hard_start_xmit(
                &kernel2,
                sim,
                dev,
                opts.dst,
                EtherType::CLIC,
                skb,
                |_sim, _ok| {}, // best effort: ring-full means the packet is lost
            );
            if let Some(confirm) = opts.confirm {
                // No ACKs on multicast: confirmation fires at handoff.
                confirm(sim);
            }
        });
    }

    fn build_skb(header: ClicHeader, payload: &Bytes, zero_copy: bool, trace: u64) -> SkBuff {
        let h = Bytes::copy_from_slice(&header.encode());
        let skb = if zero_copy {
            SkBuff::zero_copy(h, payload.clone())
        } else {
            SkBuff::staged(h, payload)
        };
        skb.with_trace(trace)
    }

    fn enqueue_message(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        key: FlowKey,
        opts: SendOptions,
        data: Bytes,
    ) {
        let now = sim.now();
        {
            let mut m = module.borrow_mut();
            let msg_id = m.next_msg_id;
            m.next_msg_id += 1;
            let max_chunk = m.max_chunk;
            let fresh = OutFlow::new(&m.config, now);
            let flow = m.out.entry(key).or_insert(fresh);
            // First fragment carries the message prefix.
            let mut first = BytesMut::with_capacity(MSG_PREFIX + data.len().min(max_chunk));
            first.put_slice(&encode_msg_prefix(msg_id, data.len() as u32));
            let first_data = (max_chunk - MSG_PREFIX).min(data.len());
            first.put_slice(&data[..first_data]);
            let mut chunks = vec![first.freeze()];
            let mut off = first_data;
            while off < data.len() {
                let end = (off + max_chunk).min(data.len());
                chunks.push(data.slice(off..end));
                off = end;
            }
            // lint:allow(time-overflow, reason="subtraction is on chunks.len(), seeded nonempty with the first fragment; the nearby seq name is incidental")
            let last_idx = chunks.len() - 1;
            let mut last_seq = 0;
            for (i, chunk) in chunks.into_iter().enumerate() {
                let seq = flow.window.alloc_seq();
                last_seq = seq;
                let mut f = 0u8;
                if i == last_idx && opts.confirm.is_some() {
                    f |= flags::CONFIRM;
                }
                flow.queue.push_back(QueuedPacket {
                    header: ClicHeader {
                        ptype: opts.ptype,
                        flags: f,
                        channel: opts.channel,
                        seq,
                        len: chunk.len() as u32,
                        ce: false,
                    },
                    payload: chunk,
                    staged: false,
                    trace: opts.trace,
                });
            }
            if let Some(confirm) = opts.confirm {
                flow.confirms.push((last_seq, confirm));
            }
        }
        Self::pump(module, sim, key);
        // Liveness monitoring rides along while the flow is busy; if the
        // peer's epoch is still unknown (guard on), the first probe doubles
        // as the session handshake and the keepalive timer retries it.
        if Self::ensure_keepalive(module, sim, key) {
            let handshaking = {
                let m = module.borrow();
                m.config.epoch_guard && !m.peer_epochs.contains_key(&key.0)
            };
            if handshaking {
                Self::send_probe(module, sim, key);
            }
        }
    }

    /// Move queued packets into the network while the window allows. With
    /// the epoch guard on, nothing posts until the peer's epoch is known
    /// (the probe/pong handshake teaches it) — every data packet is
    /// stamped with the peer's epoch so a restarted receiver can tell
    /// stale sequence space from fresh.
    fn pump(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        loop {
            let (post, window_sample) = {
                let mut m = module.borrow_mut();
                let window_cap = m.config.window;
                let stamp = if m.config.epoch_guard {
                    match m.peer_epochs.get(&key.0).copied() {
                        Some(e) => Some(e),
                        None => return, // handshake pending; pong resumes us
                    }
                } else {
                    None
                };
                let Some(flow) = m.out.get_mut(&key) else {
                    return;
                };
                // The receiver's advertised window (backpressure) and the
                // congestion window both cap the configured one; the floor
                // of 1 guarantees progress.
                let mut cap = flow.peer_window.map_or(window_cap, |w| w.min(window_cap));
                if let Some(c) = &flow.cong {
                    cap = cap.min(c.cwnd as usize);
                }
                let cap = cap.max(1);
                // Timeline samples of the window state at this pump; the
                // byte sum walks the inflight map, so guard on enablement.
                let window_sample = if sim.timeline.is_enabled() {
                    Some((cap as i64, flow.window.inflight_bytes() as i64))
                } else {
                    None
                };
                let post =
                    if flow.queue.is_empty() || flow.window.inflight_len() + flow.posting >= cap {
                        None
                    } else {
                        match flow.queue.pop_front() {
                            None => None,
                            Some(mut pkt) => {
                                if let Some(epoch) = stamp {
                                    pkt.header.flags = flags::with_epoch(pkt.header.flags, epoch);
                                }
                                flow.posting += 1;
                                let dev_slot = m.bond.next_index();
                                let dev = m.devices[dev_slot];
                                Some((pkt, dev))
                            }
                        }
                    };
                (post, window_sample)
            };
            if let Some((cap, inflight)) = window_sample {
                sim.timeline.gauge(sim.now(), TL_EFFECTIVE_WINDOW, cap);
                sim.timeline.gauge(sim.now(), TL_INFLIGHT_BYTES, inflight);
            }
            match post {
                None => return,
                Some((pkt, dev)) => Self::post_packet(module, sim, key, pkt, dev),
            }
        }
    }

    fn post_packet(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        key: FlowKey,
        pkt: QueuedPacket,
        dev: usize,
    ) {
        let kernel = Self::kernel(module);
        let zero_copy = module.borrow().config.zero_copy && !pkt.staged;
        let skb = Self::build_skb(pkt.header, &pkt.payload, zero_copy, pkt.trace);
        let module2 = module.clone();
        hard_start_xmit(
            &kernel,
            sim,
            dev,
            key.0,
            EtherType::CLIC,
            skb,
            move |sim, ok| {
                if ok {
                    {
                        let now = sim.now();
                        let mut m = module2.borrow_mut();
                        m.stats.packets_sent += 1;
                        let Some(flow) = m.out.get_mut(&key) else {
                            return; // flow torn down while the post ran
                        };
                        flow.posting -= 1;
                        flow.window.on_sent(pkt.header, pkt.payload, now);
                    }
                    Self::ensure_rto(&module2, sim, key);
                    Self::pump(&module2, sim, key);
                } else {
                    Self::on_ring_full(&module2, sim, key, pkt);
                }
            },
        );
    }

    /// §3.1: "If the data cannot be sent at the present moment, CLIC_MODULE
    /// copies the data in the system memory... overlapped with the
    /// communication of other messages."
    fn on_ring_full(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        key: FlowKey,
        mut pkt: QueuedPacket,
    ) {
        let kernel = Self::kernel(module);
        let staging_cost = if !pkt.staged {
            let mut m = module.borrow_mut();
            m.stats.staged_copies += 1;
            sim.metrics.counter_inc_id(M_STAGED_COPIES);
            sim.trace
                .instant(sim.now(), Layer::Clic, "staged_copy", pkt.trace);
            pkt.staged = true;
            if m.config.zero_copy {
                Some(
                    kernel
                        .borrow()
                        .costs
                        .copy
                        .cost_observed(sim, pkt.payload.len()),
                )
            } else {
                None // already staged by the 1-copy send path
            }
        } else {
            None
        };
        let module2 = module.clone();
        let requeue = move |sim: &mut Sim| {
            let retry = {
                let mut m = module2.borrow_mut();
                let retry = m.config.tx_retry;
                match m.out.get_mut(&key) {
                    None => None, // flow torn down; nothing left to pump
                    Some(flow) => {
                        flow.posting -= 1;
                        flow.queue.push_front(pkt);
                        if flow.kick_armed {
                            None
                        } else {
                            flow.kick_armed = true;
                            Some(retry)
                        }
                    }
                }
            };
            if let Some(delay) = retry {
                let module3 = module2.clone();
                sim.schedule_in(delay, move |sim| {
                    if let Some(flow) = module3.borrow_mut().out.get_mut(&key) {
                        flow.kick_armed = false;
                    }
                    Self::pump(&module3, sim, key);
                });
            }
        };
        match staging_cost {
            Some(cost) => Kernel::cpu_task(&kernel, sim, cost, requeue),
            None => requeue(sim),
        }
    }

    fn ensure_rto(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        let arm = {
            let mut m = module.borrow_mut();
            let Some(flow) = m.out.get_mut(&key) else {
                return;
            };
            if flow.rto_running || flow.window.all_acked() {
                None
            } else {
                flow.rto_running = true;
                flow.rto_gen += 1;
                Some((flow.rto_gen, flow.rto_current))
            }
        };
        if let Some((generation, delay)) = arm {
            let module2 = module.clone();
            sim.schedule_in(delay, move |sim| {
                Self::on_rto(&module2, sim, key, generation);
            });
        }
    }

    fn on_rto(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey, generation: u64) {
        let action = {
            let mut m = module.borrow_mut();
            let rto_max = m.config.rto_max;
            let max_retries = m.config.max_retries;
            let Some(flow) = m.out.get_mut(&key) else {
                return;
            };
            if flow.rto_gen != generation {
                return; // superseded by an ACK-driven reset
            }
            flow.rto_running = false;
            if flow.window.all_acked() {
                return;
            }
            let set = flow.window.take_retransmit_set();
            if flow.window.max_retries() > max_retries {
                // The peer is not answering: tear the flow down and
                // surface a typed error instead of retrying forever.
                Err(ClicError::MaxRetriesExceeded {
                    peer: key.0,
                    channel: key.1,
                    seq: flow.window.base(),
                    retries: flow.window.max_retries(),
                })
            } else {
                flow.rto_current = (flow.rto_current * 2).min(rto_max);
                // Loss-as-congestion: a timeout is the strongest signal —
                // collapse to one packet and restart from slow start.
                if let Some(c) = flow.cong.as_mut() {
                    c.on_timeout();
                    cong_gauges(sim, c);
                }
                m.stats.retransmits += set.len() as u64;
                Ok(set)
            }
        };
        let resend = match action {
            Ok(set) => set,
            Err(err) => {
                Self::fail_flow(module, sim, key, err);
                return;
            }
        };
        if !resend.is_empty() {
            sim.metrics
                .counter_add("clic.retransmits", resend.len() as u64);
            sim.trace.instant(sim.now(), Layer::Clic, "rto", 0);
        }
        let kernel = Self::kernel(module);
        let zero_copy = module.borrow().config.zero_copy;
        for pkt in resend {
            let (dev, _) = {
                let mut m = module.borrow_mut();
                let slot = m.bond.next_index();
                (m.devices[slot], ())
            };
            let mut header = pkt.header;
            header.flags |= flags::RETRANSMIT;
            let skb = Self::build_skb(header, &pkt.payload, zero_copy, 0);
            hard_start_xmit(&kernel, sim, dev, key.0, EtherType::CLIC, skb, |_, _| {});
        }
        Self::ensure_rto(module, sim, key);
    }

    // ------------------------------------------------------------------
    // Liveness, session epochs and teardown
    // ------------------------------------------------------------------

    /// Tear an outbound flow down with a typed terminal error: its
    /// unacknowledged and queued data is discarded, pending confirms never
    /// fire, the failure is counted by cause, and the error handler (if
    /// any) runs. A no-op if the flow is already gone.
    fn fail_flow(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey, err: ClicError) {
        let cause = {
            let mut m = module.borrow_mut();
            if m.out.remove(&key).is_none() {
                return; // already torn down by a racing cause
            }
            m.stats.flow_failures += 1;
            match &err {
                ClicError::MaxRetriesExceeded { .. } => {
                    m.stats.flow_failures_max_retries += 1;
                    Some("clic.flow_failures.max_retries")
                }
                ClicError::PeerDead { .. } => {
                    m.stats.flow_failures_peer_dead += 1;
                    Some("clic.flow_failures.peer_dead")
                }
                ClicError::StaleEpoch { .. } => {
                    m.stats.flow_failures_stale_epoch += 1;
                    Some("clic.flow_failures.stale_epoch")
                }
                // Config errors come from validation, never from a flow.
                ClicError::Config { .. } => None,
            }
        };
        sim.metrics.counter_inc_id(M_FLOW_FAILURES);
        if let Some(name) = cause {
            sim.metrics.counter_inc(name);
        }
        sim.trace.instant(sim.now(), Layer::Clic, "flow_fail", 0);
        let handler = module.borrow().error_handler.clone();
        if let Some(h) = handler {
            h(sim, err);
        }
    }

    /// Arm the keepalive timer for a flow if liveness monitoring is on and
    /// it is not armed already. Returns whether this call armed it (the
    /// caller uses that to fire the one handshake probe per busy period).
    fn ensure_keepalive(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) -> bool {
        let arm = {
            let mut m = module.borrow_mut();
            let Some(interval) = m.config.keepalive_interval else {
                return false;
            };
            let Some(flow) = m.out.get_mut(&key) else {
                return false;
            };
            if flow.ka_armed {
                None
            } else {
                flow.ka_armed = true;
                flow.ka_gen += 1;
                Some((flow.ka_gen, interval))
            }
        };
        match arm {
            None => false,
            Some((generation, delay)) => {
                let module2 = module.clone();
                sim.schedule_in(delay, move |sim| {
                    Self::on_keepalive(&module2, sim, key, generation);
                });
                true
            }
        }
    }

    fn on_keepalive(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        key: FlowKey,
        generation: u64,
    ) {
        enum Verdict {
            Idle,
            Dead,
            Probe,
        }
        let verdict = {
            let now = sim.now();
            let mut m = module.borrow_mut();
            let timeout = m.config.peer_dead_timeout;
            let Some(flow) = m.out.get_mut(&key) else {
                return; // flow finished or was torn down; timer dies
            };
            if flow.ka_gen != generation {
                return; // superseded
            }
            flow.ka_armed = false;
            if flow.is_idle() {
                // Nothing outstanding: let the timer die so the event loop
                // can quiesce. The next enqueue re-arms it.
                Verdict::Idle
            } else if now.saturating_since(flow.last_heard) >= timeout {
                Verdict::Dead
            } else {
                Verdict::Probe
            }
        };
        match verdict {
            Verdict::Idle => {}
            Verdict::Dead => {
                Self::fail_flow(
                    module,
                    sim,
                    key,
                    ClicError::PeerDead {
                        peer: key.0,
                        channel: key.1,
                    },
                );
            }
            Verdict::Probe => {
                Self::send_probe(module, sim, key);
                Self::ensure_keepalive(module, sim, key);
            }
        }
    }

    /// Send one keepalive/handshake probe towards `key`'s peer. Probes are
    /// answered by pongs, not ACKs — a probe must never feed the duplicate
    /// ACK counter or the RTT estimator (Karn-safe by construction).
    fn send_probe(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        module.borrow_mut().stats.keepalive_probes += 1;
        sim.metrics.counter_inc_id(M_KEEPALIVE_PROBES);
        sim.trace.instant(sim.now(), Layer::Clic, "keepalive", 0);
        Self::send_control(module, sim, key, control::PROBE);
    }

    /// Transmit a one-byte `Internal` control packet (probe, pong or
    /// reset) to `key.0`, stamped with this node's epoch when the guard is
    /// on. Control packets bypass the reliable window; losing one is
    /// harmless — probes repeat and resets are re-triggered by the next
    /// stale packet.
    fn send_control(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey, tag: u8) {
        let kernel = Self::kernel(module);
        let (header, dev) = {
            let mut m = module.borrow_mut();
            if m.crashed {
                return;
            }
            let epoch = if m.config.epoch_guard {
                wire_epoch(m.epoch)
            } else {
                0
            };
            let slot = m.bond.next_index();
            (
                ClicHeader {
                    ptype: PacketType::Internal,
                    flags: flags::with_epoch(0, epoch),
                    channel: key.1,
                    seq: 0,
                    len: 1,
                    ce: false,
                },
                m.devices[slot],
            )
        };
        let skb = SkBuff::zero_copy(
            Bytes::copy_from_slice(&header.encode()),
            Bytes::copy_from_slice(&[tag]),
        );
        hard_start_xmit(&kernel, sim, dev, key.0, EtherType::CLIC, skb, |_, _| {});
    }

    fn process_control(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        src: MacAddr,
        header: ClicHeader,
        chunk: Bytes,
    ) {
        let Some(&tag) = chunk.first() else {
            module.borrow_mut().stats.malformed += 1;
            return;
        };
        match tag {
            control::PROBE => {
                // The prober is alive: refresh receive-side state for it,
                // then answer with an epoch-stamped pong.
                let now = sim.now();
                {
                    let mut m = module.borrow_mut();
                    for (_, flow) in m.inflows.range_mut((src, 0)..=(src, u16::MAX)) {
                        flow.last_heard = now;
                    }
                }
                Self::send_control(module, sim, (src, header.channel), control::PONG);
            }
            control::PONG => {
                let now = sim.now();
                {
                    let mut m = module.borrow_mut();
                    for (_, flow) in m.out.range_mut((src, 0)..=(src, u16::MAX)) {
                        flow.last_heard = now;
                    }
                }
                Self::note_peer_epoch(module, sim, src, flags::epoch_bits(header.flags));
                // A pong may complete the epoch handshake: resume every
                // flow towards the peer that was gated on it.
                let keys: Vec<FlowKey> = module
                    .borrow()
                    .out
                    .keys()
                    .filter(|k| k.0 == src)
                    .copied()
                    .collect();
                for key in keys {
                    Self::pump(module, sim, key);
                }
            }
            control::RESET => {
                // The peer has no state for our session (it restarted and
                // saw our stale data). Its stamp is a fresh epoch, so the
                // epoch bookkeeping below tears down every flow to it.
                Self::note_peer_epoch(module, sim, src, flags::epoch_bits(header.flags));
            }
            _ => {
                module.borrow_mut().stats.malformed += 1;
            }
        }
    }

    /// Record the peer's epoch as observed on an ACK, pong or reset. With
    /// the guard on, a *change* from a previously recorded value means the
    /// peer restarted: everything in flight towards it addresses a dead
    /// incarnation, so every flow to it tears down with `StaleEpoch`.
    fn note_peer_epoch(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        src: MacAddr,
        observed: u8,
    ) {
        if observed == 0 {
            return; // peer runs without the guard; nothing to track
        }
        let stale: Vec<FlowKey> = {
            let mut m = module.borrow_mut();
            let guard = m.config.epoch_guard;
            match m.peer_epochs.insert(src, observed) {
                Some(prev) if guard && prev != observed => {
                    m.out.keys().filter(|k| k.0 == src).copied().collect()
                }
                _ => Vec::new(),
            }
        };
        for key in stale {
            Self::fail_flow(
                module,
                sim,
                key,
                ClicError::StaleEpoch {
                    peer: key.0,
                    channel: key.1,
                },
            );
        }
    }

    /// Arm the receive-side expiry timer for a flow holding buffered state
    /// (reassembly or out-of-order packets), so a dead sender cannot
    /// strand buffers forever. Active only when keepalive is configured.
    fn ensure_expiry(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        let arm = {
            let mut m = module.borrow_mut();
            let Some(interval) = m.config.keepalive_interval else {
                return;
            };
            let delay = m.config.peer_dead_timeout.max(interval);
            let Some(flow) = m.inflows.get_mut(&key) else {
                return;
            };
            if flow.exp_armed || !flow.holds_state() {
                None
            } else {
                flow.exp_armed = true;
                flow.exp_gen += 1;
                Some((flow.exp_gen, delay))
            }
        };
        if let Some((generation, delay)) = arm {
            let module2 = module.clone();
            sim.schedule_in(delay, move |sim| {
                Self::on_expiry(&module2, sim, key, generation);
            });
        }
    }

    fn on_expiry(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey, generation: u64) {
        let expired = {
            let now = sim.now();
            let mut m = module.borrow_mut();
            let timeout = m.config.peer_dead_timeout;
            let Some(flow) = m.inflows.get_mut(&key) else {
                return;
            };
            if flow.exp_gen != generation {
                return;
            }
            flow.exp_armed = false;
            if !flow.holds_state() {
                return; // drained in the meantime; timer dies
            }
            if now.saturating_since(flow.last_heard) >= timeout {
                m.inflows.remove(&key);
                m.stats.expired_drops += 1;
                true
            } else {
                false
            }
        };
        if expired {
            sim.metrics.counter_inc_id(M_DROPS_EXPIRED);
            sim.trace.instant(sim.now(), Layer::Clic, "drop.expired", 0);
        } else {
            // Still buffering and the sender was heard recently: re-check
            // one timeout from now.
            Self::ensure_expiry(module, sim, key);
        }
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    fn on_frame(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        frame: Frame,
    ) {
        if module.borrow().crashed {
            return; // dead kernels process no frames
        }
        let Some((header, chunk)) = ClicHeader::decode(&frame.payload) else {
            module.borrow_mut().stats.malformed += 1;
            return;
        };
        let cost = {
            let m = module.borrow();
            match header.ptype {
                PacketType::Ack => m.config.costs.ack_process,
                _ => m.config.costs.rx_per_packet,
            }
        };
        if frame.trace != 0 {
            sim.trace
                .begin(sim.now(), Layer::Clic, "clic_module_rx", frame.trace);
        }
        let module2 = module.clone();
        let kernel2 = kernel.clone();
        let src = frame.src;
        let trace = frame.trace;
        Kernel::cpu_task(kernel, sim, cost, move |sim| {
            if trace != 0 {
                sim.trace
                    .end(sim.now(), Layer::Clic, "clic_module_rx", trace);
            }
            Self::process_packet(&module2, sim, &kernel2, src, header, chunk, trace);
        });
    }

    fn process_packet(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        src: MacAddr,
        header: ClicHeader,
        chunk: Bytes,
        trace: u64,
    ) {
        if module.borrow().crashed {
            return; // crashed between interrupt and bottom half
        }
        match header.ptype {
            PacketType::Ack => Self::process_ack(module, sim, src, header),
            PacketType::Internal => Self::process_control(module, sim, src, header, chunk),
            _ if header.flags & flags::BEST_EFFORT != 0 => {
                Self::process_best_effort(module, sim, src, header, chunk, trace);
            }
            _ => Self::process_data(module, sim, kernel, src, header, chunk, trace),
        }
    }

    fn process_ack(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        src: MacAddr,
        header: ClicHeader,
    ) {
        let key = (src, header.channel);
        let now = sim.now();
        // An epoch change on the ACK stamp means the peer restarted — this
        // tears down every flow to it (including `key`) before the window
        // machinery can misread ACKs from the new incarnation.
        Self::note_peer_epoch(module, sim, src, flags::epoch_bits(header.flags));
        let (fired, pump_needed, fast_rtx) = {
            let mut m = module.borrow_mut();
            m.stats.acks_received += 1;
            let config = m.config.clone();
            let Some(flow) = m.out.get_mut(&key) else {
                return;
            };
            flow.last_heard = now;
            if header.len > 0 {
                // The receiver advertised its remaining buffer budget in
                // the (otherwise unused) ACK length field.
                flow.peer_window = Some(header.len as usize);
            }
            let summary = flow.window.ack(header.seq);
            // Congestion control: every ACK is a mark-fraction sample;
            // progress grows cwnd and an echoed mark shrinks it (at most
            // once per window in flight). All windows are post-ACK state.
            let base = flow.window.base();
            let flight_end = base + flow.window.inflight_len() as u32;
            let echoed = flow.cong.is_some() && header.ce;
            if let Some(c) = flow.cong.as_mut() {
                c.note_ack(header.ce, base, flight_end);
                if summary.acked > 0 {
                    c.on_acked(summary.acked as u64, config.window as f64);
                }
                if header.ce {
                    c.on_echo(base, flight_end);
                }
                cong_gauges(sim, c);
            }
            if echoed {
                sim.metrics.counter_inc_id(M_ECN_ECHOES);
                sim.trace.instant(now, Layer::Clic, "ecn_echo", 0);
            }
            let outcome = if summary.acked == 0 {
                // A cumulative ACK that moves nothing is the receiver
                // NACKing out-of-order arrival: it re-advertises the
                // window base. Enough of them in a row and the base is
                // presumed lost — resend it without waiting for the RTO.
                let mut fast = None;
                if header.seq == flow.window.base() && flow.window.inflight_len() > 0 {
                    flow.dup_acks += 1;
                    if flow.dup_acks >= config.fast_retransmit_dupacks {
                        flow.dup_acks = 0;
                        fast = flow.window.retransmit_base();
                        // Loss-as-congestion: duplicate-ACK loss halves
                        // the window, NewReno-style.
                        if let Some(c) = flow.cong.as_mut() {
                            c.on_loss(base, flight_end);
                            cong_gauges(sim, c);
                        }
                    }
                }
                (Vec::new(), false, fast)
            } else {
                flow.dup_acks = 0;
                // Fresh progress: fold in the RTT sample (Karn's rule —
                // only from never-retransmitted packets) and re-arm the
                // RTO from the adapted estimate.
                if let Some(sent_at) = summary.clean_sent_at {
                    let sample_ns = now.saturating_since(sent_at).as_ns();
                    flow.rto_current = flow.rtt_sample(sample_ns, &config);
                    sim.metrics.observe_id(M_RTTVAR, flow.rttvar_ns);
                }
                flow.rto_gen += 1;
                flow.rto_running = false;
                let base = flow.window.base();
                let mut fired = Vec::new();
                let mut remaining = Vec::new();
                for (seq, cont) in flow.confirms.drain(..) {
                    if seq < base {
                        fired.push(cont);
                    } else {
                        remaining.push((seq, cont));
                    }
                }
                flow.confirms = remaining;
                (fired, true, None)
            };
            if echoed {
                m.stats.ecn_echoes += 1;
            }
            outcome
        };
        for cont in fired {
            cont(sim);
        }
        if let Some(pkt) = fast_rtx {
            {
                let mut m = module.borrow_mut();
                m.stats.fast_retransmits += 1;
                m.stats.retransmits += 1;
            }
            sim.metrics.counter_inc_id(M_FAST_RETRANSMITS);
            sim.metrics.counter_inc_id(M_RETRANSMITS);
            sim.trace
                .instant(sim.now(), Layer::Clic, "fast_retransmit", 0);
            let kernel = Self::kernel(module);
            let (dev, zero_copy) = {
                let mut m = module.borrow_mut();
                let slot = m.bond.next_index();
                (m.devices[slot], m.config.zero_copy)
            };
            let mut hdr = pkt.header;
            hdr.flags |= flags::RETRANSMIT;
            let skb = Self::build_skb(hdr, &pkt.payload, zero_copy, 0);
            hard_start_xmit(&kernel, sim, dev, key.0, EtherType::CLIC, skb, |_, _| {});
        }
        if pump_needed {
            Self::ensure_rto(module, sim, key);
            Self::pump(module, sim, key);
        }
    }

    fn process_best_effort(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        src: MacAddr,
        header: ClicHeader,
        chunk: Bytes,
        trace: u64,
    ) {
        let Some((_msg_id, total)) = decode_msg_prefix(&chunk) else {
            module.borrow_mut().stats.malformed += 1;
            return;
        };
        if chunk.len() < MSG_PREFIX + total as usize {
            module.borrow_mut().stats.malformed += 1;
            return;
        }
        module.borrow_mut().stats.best_effort_rx += 1;
        let msg = RecvMsg {
            src,
            channel: header.channel,
            ptype: header.ptype,
            data: chunk.slice(MSG_PREFIX..MSG_PREFIX + total as usize),
        };
        Self::deliver_message(module, sim, msg, trace);
    }

    fn process_data(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        src: MacAddr,
        header: ClicHeader,
        chunk: Bytes,
        trace: u64,
    ) {
        let key = (src, header.channel);
        let now = sim.now();
        // Epoch guard: data stamped for another incarnation is stale
        // pre-crash sequence space. Accepting it would splice old bytes
        // into new flows; instead drop it and tell the sender to reset.
        let stale = {
            let mut m = module.borrow_mut();
            if m.config.epoch_guard && flags::epoch_bits(header.flags) != wire_epoch(m.epoch) {
                m.stats.packets_received += 1;
                m.stats.stale_epoch_drops += 1;
                true
            } else {
                false
            }
        };
        if stale {
            sim.metrics.counter_inc_id(M_DROPS_STALE_EPOCH);
            sim.trace
                .instant(sim.now(), Layer::Clic, "drop.stale_epoch", trace);
            Self::send_control(module, sim, key, control::RESET);
            return;
        }
        let (completed, ack_now) = {
            let mut m = module.borrow_mut();
            m.stats.packets_received += 1;
            // Finite buffering: refuse (do not ACK) data for a port whose
            // parked backlog is over budget; the sender's retransmission
            // throttles it until the application drains.
            let over_budget = m
                .ports
                .get(&header.channel)
                .map(|p| p.pending_bytes > m.config.max_pending_bytes)
                .unwrap_or(false);
            if over_budget {
                m.stats.backlog_drops += 1;
                sim.metrics.counter_inc_id(M_DROPS_BACKLOG);
                sim.trace
                    .instant(sim.now(), Layer::Clic, "drop.backlog", trace);
                return;
            }
            let ack_every = m.config.ack_every;
            let fresh = InFlow::new(&m.config, now);
            let flow = m.inflows.entry(key).or_insert(fresh);
            flow.last_heard = now;
            if header.ce {
                // A switch on the path marked this packet: remember it so
                // the next ACK (whatever triggers it) echoes the mark.
                flow.ce_seen = true;
            }
            match flow.window.offer(header, chunk) {
                RecvOutcome::Deliver(packets) => {
                    flow.unacked += packets.len() as u32;
                    let mut completed = Vec::new();
                    for (h, c) in packets {
                        if let Some(msg) = Self::feed_assembly(flow, src, h, c) {
                            completed.push(msg);
                        }
                    }
                    let ack_now = flow.unacked >= ack_every;
                    if ack_now {
                        flow.unacked = 0;
                        flow.ack_gen += 1;
                        flow.ack_timer_armed = false;
                    }
                    m.stats.msgs_received += completed.len() as u64;
                    (completed, ack_now)
                }
                RecvOutcome::Duplicate => {
                    m.stats.duplicates += 1;
                    sim.metrics.counter_inc_id(M_DROPS_DUPLICATE);
                    sim.trace
                        .instant(sim.now(), Layer::Clic, "drop.duplicate", trace);
                    (Vec::new(), true) // re-ACK so the sender resyncs
                }
                // Out of order: NACK at once by re-advertising the
                // cumulative ACK value. The sender counts these duplicate
                // ACKs and fast-retransmits the gap.
                RecvOutcome::Buffered => (Vec::new(), true),
                RecvOutcome::Overflow => {
                    m.stats.ooo_drops += 1;
                    sim.metrics.counter_inc_id(M_DROPS_OOO);
                    sim.trace.instant(sim.now(), Layer::Clic, "drop.ooo", trace);
                    (Vec::new(), false)
                }
            }
        };
        let _ = kernel;
        // Acknowledge before delivering: the ACK must not queue behind the
        // (possibly large) copies to user memory, or the sender times out
        // while the receiver is merely busy delivering.
        if ack_now {
            Self::send_ack(module, sim, key);
        } else {
            Self::maybe_arm_ack_timer(module, sim, key);
        }
        // If this flow now holds buffered state (a reassembly in progress
        // or out-of-order packets), make sure a dead sender cannot strand
        // it: the expiry timer garbage-collects silent flows.
        Self::ensure_expiry(module, sim, key);
        for msg in completed {
            Self::deliver_message(module, sim, msg, trace);
        }
    }

    fn feed_assembly(
        flow: &mut InFlow,
        src: MacAddr,
        header: ClicHeader,
        chunk: Bytes,
    ) -> Option<RecvMsg> {
        let assembly = match flow.assembling.take() {
            None => {
                let (_msg_id, total) =
                    // lint:allow(no-unwrap, reason="the send path always stamps the message prefix on the first fragment; in-order delivery is guaranteed by the recv window")
                    decode_msg_prefix(&chunk).expect("first fragment lacks message prefix");
                let mut buf = BytesMut::with_capacity(total as usize);
                buf.put_slice(&chunk[MSG_PREFIX..]);
                Assembly {
                    total: total as usize,
                    buf,
                    ptype: header.ptype,
                }
            }
            Some(mut a) => {
                a.buf.put_slice(&chunk);
                a
            }
        };
        debug_assert!(assembly.buf.len() <= assembly.total, "assembly overrun");
        if assembly.buf.len() >= assembly.total {
            Some(RecvMsg {
                src,
                channel: header.channel,
                ptype: assembly.ptype,
                data: assembly.buf.freeze(),
            })
        } else {
            flow.assembling = Some(assembly);
            None
        }
    }

    fn maybe_arm_ack_timer(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        let arm = {
            let mut m = module.borrow_mut();
            let delay = m.config.ack_delay;
            let Some(flow) = m.inflows.get_mut(&key) else {
                return;
            };
            if flow.unacked == 0 || flow.ack_timer_armed {
                None
            } else {
                flow.ack_timer_armed = true;
                flow.ack_gen += 1;
                Some((flow.ack_gen, delay))
            }
        };
        if let Some((generation, delay)) = arm {
            let module2 = module.clone();
            sim.schedule_in(delay, move |sim| {
                let fire = {
                    let mut m = module2.borrow_mut();
                    match m.inflows.get_mut(&key) {
                        Some(flow) if flow.ack_gen == generation && flow.ack_timer_armed => {
                            flow.ack_timer_armed = false;
                            flow.unacked = 0;
                            true
                        }
                        _ => false,
                    }
                };
                if fire {
                    Self::send_ack(&module2, sim, key);
                }
            });
        }
    }

    fn send_ack(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, key: FlowKey) {
        let kernel = Self::kernel(module);
        let (header, dev) = {
            let mut m = module.borrow_mut();
            let (ack_value, echo) = match m.inflows.get_mut(&key) {
                Some(flow) => (flow.window.ack_value(), std::mem::take(&mut flow.ce_seen)),
                None => return,
            };
            m.stats.acks_sent += 1;
            // Backpressure: advertise how many more packets fit in the
            // receive budget (floor 1 so a full buffer throttles senders
            // to a trickle instead of deadlocking them).
            let advertised = match m.config.recv_budget_bytes {
                None => 0,
                Some(budget) => {
                    let used = m.buffered_bytes();
                    sim.metrics.gauge_set_id(M_RECV_BUFFER_BYTES, used as i64);
                    sim.timeline
                        .gauge(sim.now(), M_RECV_BUFFER_BYTES, used as i64);
                    let free = budget.saturating_sub(used);
                    ((free / m.max_chunk).max(1)).min(m.config.window) as u32
                }
            };
            let epoch = if m.config.epoch_guard {
                wire_epoch(m.epoch)
            } else {
                0
            };
            let slot = m.bond.next_index();
            (
                ClicHeader {
                    ptype: PacketType::Ack,
                    flags: flags::with_epoch(0, epoch),
                    channel: key.1,
                    seq: ack_value,
                    len: advertised,
                    ce: echo,
                },
                m.devices[slot],
            )
        };
        let skb = SkBuff::zero_copy(Bytes::copy_from_slice(&header.encode()), Bytes::new());
        // A lost or refused ACK is harmless: cumulative ACKs supersede it.
        hard_start_xmit(&kernel, sim, dev, key.0, EtherType::CLIC, skb, |_, _| {});
    }

    // ------------------------------------------------------------------
    // Delivery to processes
    // ------------------------------------------------------------------

    fn deliver_message(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, msg: RecvMsg, trace: u64) {
        let kernel = Self::kernel(module);
        if msg.ptype == PacketType::KernelFunction {
            Self::invoke_kernel_function(module, sim, msg);
            return;
        }
        enum Action {
            RemoteWrite {
                cost: SimDuration,
            },
            Wake {
                pid: Option<Pid>,
                waiter: Waiter,
                cost: SimDuration,
            },
            Park,
        }
        let action = {
            let mut m = module.borrow_mut();
            let direct = kernel.borrow().direct_dispatch;
            let copy_cost = if direct {
                // Figure 8b: the data went straight to user memory.
                SimDuration::ZERO
            } else {
                kernel
                    .borrow()
                    .costs
                    .copy
                    .cost_observed(sim, msg.data.len())
            };
            let port = m.ports.entry(msg.channel).or_default();
            if msg.ptype == PacketType::RemoteWrite && port.remote_writes.is_some() {
                Action::RemoteWrite { cost: copy_cost }
            } else if let Some(waiter) = port.waiting.pop_front() {
                Action::Wake {
                    pid: port.pid,
                    waiter,
                    cost: copy_cost,
                }
            } else {
                Action::Park
            }
        };
        match action {
            Action::RemoteWrite { cost } => {
                // §3.1 step 7: CLIC_MODULE moves the packet straight into
                // the user memory region, no receive call involved.
                let module2 = module.clone();
                if trace != 0 {
                    sim.trace
                        .begin(sim.now(), Layer::Clic, "copy_to_user", trace);
                }
                Kernel::cpu_task(&kernel, sim, cost, move |sim| {
                    if trace != 0 {
                        sim.trace.end(sim.now(), Layer::Clic, "copy_to_user", trace);
                    }
                    let mut m = module2.borrow_mut();
                    // The port may have been torn down during the copy
                    // delay; the write is then dropped, as real hardware
                    // would drop a DMA into an unmapped region.
                    if let Some(region) = m
                        .ports
                        .get_mut(&msg.channel)
                        .and_then(|p| p.remote_writes.as_mut())
                    {
                        region.push(msg);
                    }
                });
            }
            Action::Wake { pid, waiter, cost } => {
                let kernel2 = kernel.clone();
                if trace != 0 {
                    sim.trace
                        .begin(sim.now(), Layer::Clic, "copy_to_user", trace);
                }
                Kernel::cpu_task(&kernel, sim, cost, move |sim| {
                    if trace != 0 {
                        sim.trace.end(sim.now(), Layer::Clic, "copy_to_user", trace);
                    }
                    match pid {
                        Some(pid) => Kernel::wake(&kernel2, sim, pid, move |sim| waiter(sim, msg)),
                        None => waiter(sim, msg),
                    }
                });
            }
            Action::Park => {
                // Stays in system memory until a receive call arrives.
                let mut m = module.borrow_mut();
                if let Some(port) = m.ports.get_mut(&msg.channel) {
                    port.pending_bytes += msg.data.len();
                    port.pending.push_back(msg);
                }
            }
        }
    }

    /// Run a registered kernel function against a completed
    /// KernelFunction message; the optional reply leaves straight from
    /// kernel context (no system call).
    fn invoke_kernel_function(module: &Rc<RefCell<ClicModule>>, sim: &mut Sim, msg: RecvMsg) {
        let kernel = Self::kernel(module);
        let handler = {
            let mut m = module.borrow_mut();
            match m.kernel_functions.get(&msg.channel).cloned() {
                Some(h) => {
                    m.stats.kernel_calls += 1;
                    Some(h)
                }
                None => {
                    m.stats.kernel_calls_unknown += 1;
                    None
                }
            }
        };
        let Some(handler) = handler else {
            return;
        };
        if msg.data.len() < 2 {
            module.borrow_mut().stats.malformed += 1;
            return;
        }
        let reply_channel = u16::from_be_bytes([msg.data[0], msg.data[1]]);
        let call_msg = RecvMsg {
            data: msg.data.slice(2..),
            ..msg.clone()
        };
        // A small fixed kernel cost for the dispatch; the handler may add
        // its own work via kernel.cpu_task.
        let module2 = module.clone();
        let cost = module.borrow().config.costs.rx_per_packet;
        Kernel::cpu_task(&kernel, sim, cost, move |sim| {
            if let Some(reply) = handler(sim, &call_msg) {
                let opts = SendOptions::data(call_msg.src, reply_channel);
                // Kernel-internal send: no syscall boundary to cross.
                Self::module_tx(&module2, sim, opts, reply);
            }
        });
    }

    // ------------------------------------------------------------------
    // Receive API (driven by clic-core::api)
    // ------------------------------------------------------------------

    /// Blocking receive: runs `cont` with the next message on `channel`,
    /// parking the process if none is pending.
    pub fn recv(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        channel: u16,
        cont: impl FnOnce(&mut Sim, RecvMsg) + 'static,
    ) {
        let kernel = Self::kernel(module);
        let module = module.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            let popped = {
                let mut m = module.borrow_mut();
                let port = m.ports.entry(channel).or_default();
                let msg = port.pending.pop_front();
                if let Some(msg) = &msg {
                    port.pending_bytes -= msg.data.len();
                }
                msg
            };
            match popped {
                Some(msg) => {
                    // Copy from system memory to the caller's buffer.
                    let cost = kernel
                        .borrow()
                        .costs
                        .copy
                        .cost_observed(sim, msg.data.len());
                    Kernel::cpu_task(&kernel, sim, cost, move |sim| cont(sim, msg));
                }
                None => {
                    let mut m = module.borrow_mut();
                    let port = m.ports.entry(channel).or_default();
                    if let Some(pid) = port.pid {
                        kernel.borrow_mut().processes.block(pid);
                    }
                    port.waiting.push_back(Box::new(cont));
                }
            }
        });
    }

    /// Non-blocking receive: `cont` gets `Some(msg)` or `None` immediately.
    pub fn try_recv(
        module: &Rc<RefCell<ClicModule>>,
        sim: &mut Sim,
        channel: u16,
        cont: impl FnOnce(&mut Sim, Option<RecvMsg>) + 'static,
    ) {
        let kernel = Self::kernel(module);
        let module = module.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            let got = {
                let mut m = module.borrow_mut();
                let port = m.ports.entry(channel).or_default();
                let msg = port.pending.pop_front();
                if let Some(msg) = &msg {
                    port.pending_bytes -= msg.data.len();
                }
                msg
            };
            match got {
                Some(msg) => {
                    let cost = kernel
                        .borrow()
                        .costs
                        .copy
                        .cost_observed(sim, msg.data.len());
                    Kernel::cpu_task(&kernel, sim, cost, move |sim| cont(sim, Some(msg)));
                }
                None => cont(sim, None),
            }
        });
    }

    /// Number of messages parked on `channel`.
    pub fn pending_len(&self, channel: u16) -> usize {
        self.ports
            .get(&channel)
            .map(|p| p.pending.len())
            .unwrap_or(0)
    }
}
