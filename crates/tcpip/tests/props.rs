//! Property-based tests for IP/TCP codecs, checksums and reassembly.

use bytes::Bytes;
use clic_tcpip::ip::{self, internet_checksum, IpAddr, IpProto, IpReassembler, Ipv4Header};
use proptest::prelude::*;

proptest! {
    /// RFC 1071: the checksum of data with its own checksum folded in
    /// verifies to zero; flipping any bit breaks it.
    #[test]
    fn checksum_detects_corruption(
        mut data in proptest::collection::vec(any::<u8>(), 2..1_500),
        flip in any::<(usize, u8)>(),
    ) {
        // Fold the checksum into the first two bytes (like a header field).
        data[0] = 0;
        data[1] = 0;
        let c = internet_checksum(&data);
        data[0] = (c >> 8) as u8;
        data[1] = (c & 0xff) as u8;
        prop_assert_eq!(internet_checksum(&data), 0);
        // Flip one nonzero bit somewhere.
        let (pos, bit) = flip;
        let pos = pos % data.len();
        let mask = 1u8 << (bit % 8);
        data[pos] ^= mask;
        // A single-bit flip is always detected by the Internet checksum.
        prop_assert_ne!(internet_checksum(&data), 0);
    }

    /// IPv4 header roundtrip for arbitrary field combinations.
    #[test]
    fn ipv4_header_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        tcp in any::<bool>(),
        ident in any::<u16>(),
        frag_offset in 0u16..0x2000,
        more in any::<bool>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..1_000),
    ) {
        let h = Ipv4Header {
            src: IpAddr(src),
            dst: IpAddr(dst),
            proto: if tcp { IpProto::Tcp } else { IpProto::Udp },
            ident,
            frag_offset,
            more_fragments: more,
            ttl,
            payload_len: payload.len() as u16,
        };
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&payload);
        let (parsed, body) = Ipv4Header::decode(&wire).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(&body[..], &payload[..]);
    }

    /// IP fragmentation + reassembly is the identity under arbitrary
    /// arrival permutations.
    #[test]
    fn ip_frag_roundtrip(len in 1usize..30_000, mtu in 68usize..9_000, seed in any::<u64>()) {
        let payload = Bytes::from((0..len).map(|i| (i % 251) as u8).collect::<Vec<_>>());
        let mut frags = ip::fragment(
            IpAddr::for_node(1),
            IpAddr::for_node(2),
            IpProto::Udp,
            42,
            64,
            &payload,
            mtu,
        );
        let n = frags.len();
        for i in 0..n {
            let j = ((seed.wrapping_add(i as u64 * 7919)) as usize) % n;
            frags.swap(i, j);
        }
        let mut r = IpReassembler::new();
        let mut out = None;
        for f in &frags {
            let (h, body) = Ipv4Header::decode(f).unwrap();
            if let Some(p) = r.offer(&h, body) {
                prop_assert!(out.is_none());
                out = Some(p);
            }
        }
        prop_assert_eq!(out.unwrap(), payload);
    }

    /// Corrupting any single header byte makes the header undecodable
    /// (checksum) or changes no accepted-field silently.
    #[test]
    fn ipv4_header_corruption_detected(pos in 0usize..20, mask in 1u8..=255) {
        let h = Ipv4Header {
            src: IpAddr::for_node(1),
            dst: IpAddr::for_node(2),
            proto: IpProto::Tcp,
            ident: 7,
            frag_offset: 0,
            more_fragments: false,
            ttl: 64,
            payload_len: 0,
        };
        let mut wire = h.encode().to_vec();
        wire[pos] ^= mask;
        match Ipv4Header::decode(&wire) {
            None => {} // rejected: good
            Some((parsed, _)) => {
                // The only acceptable parse is the original (i.e. the flip
                // hit a bit the checksum catches as... it cannot: any
                // single flip must be caught).
                prop_assert!(false, "corrupted header accepted: {parsed:?}");
            }
        }
    }
}
