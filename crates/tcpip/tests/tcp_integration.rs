//! End-to-end TCP tests over the full simulated node stack.

#![allow(clippy::type_complexity)]

use bytes::Bytes;
use clic_ethernet::{Link, LinkEnd, LossModel, MacAddr};
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_sim::{Sim, SimTime};
use clic_tcpip::{ConnId, IpAddr, IpLayer, TcpIpCosts, TcpStack};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

struct Node {
    // Held so the stack's Weak<Kernel> stays upgradable.
    #[allow(dead_code)]
    kernel: Rc<RefCell<Kernel>>,
    tcp: Rc<RefCell<TcpStack>>,
    ip: IpAddr,
}

fn mk_node(id: u32, nic_cfg: NicConfig, link: Rc<RefCell<Link>>, end: LinkEnd) -> Node {
    let kernel = Kernel::new(id, OsCosts::era_2002());
    let nic = Nic::new(
        MacAddr::for_node(id, 0),
        nic_cfg,
        PciBus::pci_33mhz_32bit(),
        link,
        end,
    );
    Nic::attach_to_link(&nic);
    let dev = Kernel::add_device(&kernel, nic);
    let mut neighbors = BTreeMap::new();
    for peer in 1..=4u32 {
        neighbors.insert(IpAddr::for_node(peer), MacAddr::for_node(peer, 0));
    }
    let ip_layer = IpLayer::install(
        &kernel,
        dev,
        IpAddr::for_node(id),
        neighbors,
        TcpIpCosts::era_2002(),
    );
    let tcp = TcpStack::install(&kernel, &ip_layer);
    Node {
        kernel,
        tcp,
        ip: IpAddr::for_node(id),
    }
}

fn pair(nic_cfg: NicConfig) -> (Node, Node, Rc<RefCell<Link>>) {
    let link = Link::gigabit();
    let a = mk_node(1, nic_cfg.clone(), link.clone(), LinkEnd::A);
    let b = mk_node(2, nic_cfg, link.clone(), LinkEnd::B);
    (a, b, link)
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

/// Establish a connection and return both ends' ids via cells.
fn establish(
    sim: &mut Sim,
    a: &Node,
    b: &Node,
    port: u16,
) -> (Rc<RefCell<Option<ConnId>>>, Rc<RefCell<Option<ConnId>>>) {
    let client: Rc<RefCell<Option<ConnId>>> = Rc::new(RefCell::new(None));
    let server: Rc<RefCell<Option<ConnId>>> = Rc::new(RefCell::new(None));
    let sc = server.clone();
    b.tcp
        .borrow_mut()
        .listen(port, move |_sim, id| *sc.borrow_mut() = Some(id));
    let cc = client.clone();
    TcpStack::connect(&a.tcp, sim, b.ip, port, move |_sim, id| {
        *cc.borrow_mut() = Some(id)
    });
    sim.run();
    assert!(client.borrow().is_some(), "client connect must complete");
    assert!(server.borrow().is_some(), "server accept must fire");
    (client, server)
}

#[test]
fn handshake_establishes_both_ends() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    establish(&mut sim, &a, &b, 5000);
    assert_eq!(a.tcp.borrow().stats().established, 1);
    assert_eq!(b.tcp.borrow().stats().established, 1);
    // Handshake is ~1.5 RTTs of small frames: well under a millisecond.
    assert!(
        sim.now() < SimTime::from_us(500),
        "handshake took {}",
        sim.now()
    );
}

#[test]
fn bulk_transfer_integrity() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let data = payload(200_000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        data.len(),
        move |_sim, bytes| *g.borrow_mut() = Some(bytes),
    );
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data.clone());
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
    let stats = a.tcp.borrow().stats();
    assert!(stats.segments_tx as usize >= data.len() / 1460);
    assert_eq!(stats.retransmits, 0, "lossless link: no retransmits");
}

#[test]
fn mss_respects_jumbo_mtu() {
    let (a, _b, _) = pair(NicConfig::gigabit_jumbo());
    assert_eq!(a.tcp.borrow().mss(), 9000 - 20 - 20);
    let (a, _b, _) = pair(NicConfig::gigabit_standard());
    assert_eq!(a.tcp.borrow().mss(), 1460);
}

#[test]
fn bidirectional_transfer() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let d1 = payload(30_000);
    let d2 = Bytes::from(vec![0xEEu8; 30_000]);
    let (got1, got2): (Rc<RefCell<Option<Bytes>>>, Rc<RefCell<Option<Bytes>>>) = Default::default();
    let g = got1.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        d1.len(),
        move |_s, x| *g.borrow_mut() = Some(x),
    );
    let g = got2.clone();
    TcpStack::recv(
        &a.tcp,
        &mut sim,
        client.borrow().unwrap(),
        d2.len(),
        move |_s, x| *g.borrow_mut() = Some(x),
    );
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), d1.clone());
    TcpStack::send(&b.tcp, &mut sim, server.borrow().unwrap(), d2.clone());
    sim.run();
    assert_eq!(got1.borrow().as_ref().unwrap(), &d1);
    assert_eq!(got2.borrow().as_ref().unwrap(), &d2);
}

#[test]
fn loss_recovered_by_rto() {
    let mut sim = Sim::new(5);
    let (a, b, link) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    // Inject loss only after the handshake.
    link.borrow_mut().set_loss(LossModel::EveryNth(40));
    let data = payload(120_000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        data.len(),
        move |_sim, bytes| *g.borrow_mut() = Some(bytes),
    );
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data.clone());
    sim.set_event_limit(30_000_000);
    sim.run();
    assert_eq!(
        got.borrow().as_ref().unwrap(),
        &data,
        "integrity under loss"
    );
    let stats = a.tcp.borrow().stats();
    assert!(
        stats.retransmits + stats.fast_retransmits > 0,
        "loss must trigger some form of retransmission: {stats:?}"
    );
}

#[test]
fn reads_in_pieces() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let data = payload(10_000);
    let pieces: Rc<RefCell<Vec<Bytes>>> = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..4 {
        let p = pieces.clone();
        TcpStack::recv(
            &b.tcp,
            &mut sim,
            server.borrow().unwrap(),
            2_500,
            move |_s, x| p.borrow_mut().push(x),
        );
    }
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data.clone());
    sim.run();
    let pieces = pieces.borrow();
    assert_eq!(pieces.len(), 4);
    let mut whole = Vec::new();
    for p in pieces.iter() {
        whole.extend_from_slice(p);
    }
    assert_eq!(&whole[..], &data[..]);
}

#[test]
fn two_connections_do_not_interfere() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (c1, s1) = establish(&mut sim, &a, &b, 5000);
    let (c2, s2) = establish(&mut sim, &a, &b, 5001);
    let d1 = Bytes::from(vec![1u8; 20_000]);
    let d2 = Bytes::from(vec![2u8; 20_000]);
    let (g1, g2): (Rc<RefCell<Option<Bytes>>>, Rc<RefCell<Option<Bytes>>>) = Default::default();
    let g = g1.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        s1.borrow().unwrap(),
        d1.len(),
        move |_s, x| *g.borrow_mut() = Some(x),
    );
    let g = g2.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        s2.borrow().unwrap(),
        d2.len(),
        move |_s, x| *g.borrow_mut() = Some(x),
    );
    TcpStack::send(&a.tcp, &mut sim, c1.borrow().unwrap(), d1.clone());
    TcpStack::send(&a.tcp, &mut sim, c2.borrow().unwrap(), d2.clone());
    sim.run();
    assert_eq!(g1.borrow().as_ref().unwrap(), &d1);
    assert_eq!(g2.borrow().as_ref().unwrap(), &d2);
}

#[test]
fn slow_start_ramps_throughput() {
    // The byte delivered per unit time early in the connection should be
    // lower than late (slow start) — this is what makes TCP's curve in
    // Figure 5 rise slower than CLIC's.
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let start = sim.now();
    let data = payload(400_000);
    let quarter: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let done: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let q = quarter.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        100_000,
        move |sim, _| *q.borrow_mut() = Some(sim.now()),
    );
    let d = done.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        300_000,
        move |sim, _| *d.borrow_mut() = Some(sim.now()),
    );
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data);
    sim.run();
    let t_quarter = quarter.borrow().unwrap() - start;
    let t_done = done.borrow().unwrap() - start;
    let rest = t_done - t_quarter;
    // First quarter strictly slower than the remaining three quarters
    // normalized: (t_quarter / 1) > (rest / 3).
    assert!(
        t_quarter.as_ns() * 3 > rest.as_ns(),
        "first 100 KB {t_quarter} vs remaining 300 KB {rest}"
    );
}

#[test]
fn fast_retransmit_fires_before_rto() {
    let mut sim = Sim::new(11);
    let (a, b, link) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    link.borrow_mut().set_loss(LossModel::EveryNth(25));
    let data = payload(200_000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        data.len(),
        move |_sim, bytes| *g.borrow_mut() = Some(bytes),
    );
    let start = sim.now();
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data.clone());
    sim.set_event_limit(30_000_000);
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data);
    let stats = a.tcp.borrow().stats();
    assert!(
        stats.fast_retransmits > 0,
        "steady loss with a full pipe must trigger dup-ACK recovery: {stats:?}"
    );
    // Recovery must not require an RTO for every loss event (~6 losses at
    // EveryNth(25) over ~140 segments would cost >1.2 s with RTOs alone;
    // dup-ACK recovery keeps most of them off the 200 ms timer).
    let elapsed = sim.now().saturating_since(start);
    assert!(
        elapsed < clic_sim::SimDuration::from_ms(1_000),
        "transfer with fast retransmit took {elapsed}"
    );
}

#[test]
fn close_delivers_all_data_then_notifies_peer() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let data = payload(50_000);
    let got: Rc<RefCell<Option<Bytes>>> = Rc::new(RefCell::new(None));
    let g = got.clone();
    TcpStack::recv(
        &b.tcp,
        &mut sim,
        server.borrow().unwrap(),
        data.len(),
        move |_s, bytes| *g.borrow_mut() = Some(bytes),
    );
    let peer_closed: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let p = peer_closed.clone();
    b.tcp
        .borrow_mut()
        .on_peer_close(server.borrow().unwrap(), move |sim, _| {
            *p.borrow_mut() = Some(sim.now())
        });
    // Send then immediately close: the FIN must trail the data.
    TcpStack::send(&a.tcp, &mut sim, client.borrow().unwrap(), data.clone());
    TcpStack::close(&a.tcp, &mut sim, client.borrow().unwrap());
    sim.run();
    assert_eq!(got.borrow().as_ref().unwrap(), &data, "data before FIN");
    assert!(
        peer_closed.borrow().is_some(),
        "peer must learn of the close"
    );
}

#[test]
fn both_sides_close_reaches_closed_state() {
    let mut sim = Sim::new(0);
    let (a, b, _) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    let b_tcp = b.tcp.clone();
    let server_id = server.borrow().unwrap();
    // Server closes in response to the client's close.
    b.tcp.borrow_mut().on_peer_close(server_id, move |sim, id| {
        TcpStack::close(&b_tcp, sim, id);
    });
    TcpStack::close(&a.tcp, &mut sim, client.borrow().unwrap());
    sim.run();
    assert!(b.tcp.borrow().is_closed(server_id));
}

#[test]
fn close_with_lossy_fin_still_converges() {
    let mut sim = Sim::new(9);
    let (a, b, link) = pair(NicConfig::gigabit_standard());
    let (client, server) = establish(&mut sim, &a, &b, 5000);
    link.borrow_mut().set_loss(LossModel::EveryNth(2)); // brutal
    let closed: Rc<RefCell<bool>> = Rc::new(RefCell::new(false));
    let c = closed.clone();
    b.tcp
        .borrow_mut()
        .on_peer_close(server.borrow().unwrap(), move |_s, _| {
            *c.borrow_mut() = true
        });
    TcpStack::close(&a.tcp, &mut sim, client.borrow().unwrap());
    sim.set_event_limit(10_000_000);
    sim.run();
    assert!(*closed.borrow(), "FIN must be retransmitted through loss");
}
