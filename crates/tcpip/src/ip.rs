//! IPv4: headers, checksums, fragmentation, reassembly.

use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// Size of the (option-less) IPv4 header.
pub const IPV4_HEADER: usize = 20;

/// A 32-bit IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Deterministic cluster address for a node: 10.0.x.y.
    pub fn for_node(node: u32) -> IpAddr {
        IpAddr(0x0a00_0000 | (node & 0xffff))
    }
}

impl std::fmt::Display for IpAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.0.to_be_bytes();
        write!(f, "{}.{}.{}.{}", b[0], b[1], b[2], b[3])
    }
}

/// IP protocol numbers used here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
}

impl IpProto {
    fn to_u8(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
        }
    }

    fn from_u8(v: u8) -> Option<IpProto> {
        match v {
            6 => Some(IpProto::Tcp),
            17 => Some(IpProto::Udp),
            _ => None,
        }
    }
}

/// RFC 1071 Internet checksum.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// A parsed IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// Payload protocol.
    pub proto: IpProto,
    /// Datagram identification (shared by fragments).
    pub ident: u16,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload length of this packet (excluding the header).
    pub payload_len: u16,
}

impl Ipv4Header {
    /// Serialize with a correct header checksum.
    pub fn encode(&self) -> [u8; IPV4_HEADER] {
        let mut h = [0u8; IPV4_HEADER];
        h[0] = 0x45; // version 4, IHL 5
        let total = IPV4_HEADER as u16 + self.payload_len;
        h[2..4].copy_from_slice(&total.to_be_bytes());
        h[4..6].copy_from_slice(&self.ident.to_be_bytes());
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.more_fragments {
            flags_frag |= 0x2000;
        }
        h[6..8].copy_from_slice(&flags_frag.to_be_bytes());
        h[8] = self.ttl;
        h[9] = self.proto.to_u8();
        h[12..16].copy_from_slice(&self.src.0.to_be_bytes());
        h[16..20].copy_from_slice(&self.dst.0.to_be_bytes());
        let csum = internet_checksum(&h);
        h[10..12].copy_from_slice(&csum.to_be_bytes());
        h
    }

    /// Parse and verify; returns the header and its payload slice.
    pub fn decode(buf: &[u8]) -> Option<(Ipv4Header, Bytes)> {
        if buf.len() < IPV4_HEADER || buf[0] != 0x45 {
            return None;
        }
        if internet_checksum(&buf[..IPV4_HEADER]) != 0 {
            return None; // corrupted header
        }
        let total = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total < IPV4_HEADER || buf.len() < total {
            return None;
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        let header = Ipv4Header {
            src: IpAddr(u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]])),
            dst: IpAddr(u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]])),
            proto: IpProto::from_u8(buf[9])?,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            frag_offset: flags_frag & 0x1fff,
            more_fragments: flags_frag & 0x2000 != 0,
            ttl: buf[8],
            payload_len: (total - IPV4_HEADER) as u16,
        };
        Some((header, Bytes::copy_from_slice(&buf[IPV4_HEADER..total])))
    }
}

/// Split `payload` into IP fragments that fit `mtu` (header included).
/// Fragment data lengths are multiples of 8 except the last.
pub fn fragment(
    src: IpAddr,
    dst: IpAddr,
    proto: IpProto,
    ident: u16,
    ttl: u8,
    payload: &Bytes,
    mtu: usize,
) -> Vec<Bytes> {
    assert!(mtu > IPV4_HEADER + 8, "MTU too small for IP fragmentation");
    let chunk = (mtu - IPV4_HEADER) & !7; // multiple of 8
    let mut out = Vec::new();
    let mut off = 0usize;
    loop {
        let end = (off + chunk).min(payload.len());
        let more = end < payload.len();
        let header = Ipv4Header {
            src,
            dst,
            proto,
            ident,
            frag_offset: (off / 8) as u16,
            more_fragments: more,
            ttl,
            payload_len: (end - off) as u16,
        };
        let mut pkt = BytesMut::with_capacity(IPV4_HEADER + end - off);
        pkt.put_slice(&header.encode());
        pkt.put_slice(&payload[off..end]);
        out.push(pkt.freeze());
        if !more {
            break;
        }
        off = end;
    }
    out
}

/// IP reassembly buffer keyed by (src, ident, proto).
#[derive(Debug, Default)]
pub struct IpReassembler {
    partial: BTreeMap<(IpAddr, u16, u8), Partial>,
}

#[derive(Debug)]
struct Partial {
    chunks: Vec<(usize, Bytes)>, // (byte offset, data)
    total: Option<usize>,        // known once the last fragment arrives
}

impl IpReassembler {
    /// New empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer a fragment (or whole datagram); returns the reassembled
    /// payload when complete.
    pub fn offer(&mut self, header: &Ipv4Header, payload: Bytes) -> Option<Bytes> {
        if header.frag_offset == 0 && !header.more_fragments {
            return Some(payload); // unfragmented
        }
        let key = (header.src, header.ident, header.proto.to_u8());
        let offset = header.frag_offset as usize * 8;
        let entry = self.partial.entry(key).or_insert(Partial {
            chunks: Vec::new(),
            total: None,
        });
        if !entry.chunks.iter().any(|(o, _)| *o == offset) {
            entry.chunks.push((offset, payload.clone()));
        }
        if !header.more_fragments {
            entry.total = Some(offset + payload.len());
        }
        let total = entry.total?;
        let have: usize = entry.chunks.iter().map(|(_, d)| d.len()).sum();
        if have < total {
            return None;
        }
        let mut chunks = self.partial.remove(&key).unwrap().chunks;
        chunks.sort_by_key(|(o, _)| *o);
        let mut out = BytesMut::with_capacity(total);
        let mut expect = 0usize;
        for (o, d) in chunks {
            if o != expect {
                return None; // overlapping/hole anomaly: drop datagram
            }
            expect += d.len();
            out.put_slice(&d);
        }
        Some(out.freeze())
    }

    /// Datagrams awaiting fragments.
    pub fn pending(&self) -> usize {
        self.partial.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 241) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: checksum of data including its own
        // checksum field is zero.
        let h = Ipv4Header {
            src: IpAddr::for_node(1),
            dst: IpAddr::for_node(2),
            proto: IpProto::Tcp,
            ident: 99,
            frag_offset: 0,
            more_fragments: false,
            ttl: 64,
            payload_len: 100,
        };
        let enc = h.encode();
        assert_eq!(internet_checksum(&enc), 0);
    }

    #[test]
    fn header_roundtrip() {
        let h = Ipv4Header {
            src: IpAddr::for_node(3),
            dst: IpAddr::for_node(4),
            proto: IpProto::Udp,
            ident: 0xabcd,
            frag_offset: 185,
            more_fragments: true,
            ttl: 17,
            payload_len: 8,
        };
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let (parsed, body) = Ipv4Header::decode(&wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(&body[..], &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn corrupted_header_rejected() {
        let h = Ipv4Header {
            src: IpAddr::for_node(1),
            dst: IpAddr::for_node(2),
            proto: IpProto::Tcp,
            ident: 1,
            frag_offset: 0,
            more_fragments: false,
            ttl: 64,
            payload_len: 0,
        };
        let mut wire = h.encode().to_vec();
        wire[15] ^= 0xff; // flip a source-address byte
        assert!(Ipv4Header::decode(&wire).is_none());
    }

    #[test]
    fn decode_tolerates_ethernet_padding() {
        let h = Ipv4Header {
            src: IpAddr::for_node(1),
            dst: IpAddr::for_node(2),
            proto: IpProto::Udp,
            ident: 7,
            frag_offset: 0,
            more_fragments: false,
            ttl: 64,
            payload_len: 4,
        };
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&[9, 9, 9, 9]);
        wire.resize(46, 0);
        let (_, body) = Ipv4Header::decode(&wire).unwrap();
        assert_eq!(&body[..], &[9, 9, 9, 9]);
    }

    #[test]
    fn fragment_offsets_are_8_byte_aligned() {
        let p = payload(5000);
        let frags = fragment(
            IpAddr::for_node(1),
            IpAddr::for_node(2),
            IpProto::Udp,
            42,
            64,
            &p,
            1500,
        );
        assert!(frags.len() > 3);
        for f in &frags {
            assert!(f.len() <= 1500);
            let (h, _) = Ipv4Header::decode(f).unwrap();
            if h.more_fragments {
                assert_eq!(usize::from(h.payload_len) % 8, 0);
            }
        }
    }

    #[test]
    fn reassembly_roundtrip_in_and_out_of_order() {
        let p = payload(10_000);
        let mut frags = fragment(
            IpAddr::for_node(1),
            IpAddr::for_node(2),
            IpProto::Udp,
            5,
            64,
            &p,
            1500,
        );
        // In order.
        let mut r = IpReassembler::new();
        let mut got = None;
        for f in &frags {
            let (h, body) = Ipv4Header::decode(f).unwrap();
            got = r.offer(&h, body);
        }
        assert_eq!(got.unwrap(), p);
        // Reverse order.
        frags.reverse();
        let mut r = IpReassembler::new();
        let mut got = None;
        for f in &frags {
            let (h, body) = Ipv4Header::decode(f).unwrap();
            if let Some(x) = r.offer(&h, body) {
                got = Some(x);
            }
        }
        assert_eq!(got.unwrap(), p);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn duplicate_fragment_is_idempotent() {
        let p = payload(3000);
        let frags = fragment(
            IpAddr::for_node(1),
            IpAddr::for_node(2),
            IpProto::Udp,
            5,
            64,
            &p,
            1500,
        );
        let mut r = IpReassembler::new();
        let mut got = None;
        for f in frags.iter().chain(frags.iter().take(1)) {
            let (h, body) = Ipv4Header::decode(f).unwrap();
            if let Some(x) = r.offer(&h, body) {
                got = Some(x);
            }
        }
        assert_eq!(got.unwrap(), p);
    }

    #[test]
    fn unfragmented_passthrough() {
        let h = Ipv4Header {
            src: IpAddr::for_node(1),
            dst: IpAddr::for_node(2),
            proto: IpProto::Tcp,
            ident: 0,
            frag_offset: 0,
            more_fragments: false,
            ttl: 64,
            payload_len: 3,
        };
        let mut r = IpReassembler::new();
        assert_eq!(
            r.offer(&h, Bytes::from_static(&[1, 2, 3])).unwrap(),
            Bytes::from_static(&[1, 2, 3])
        );
    }

    #[test]
    fn node_addresses_displayed() {
        assert_eq!(IpAddr::for_node(1).to_string(), "10.0.0.1");
        assert_eq!(IpAddr::for_node(258).to_string(), "10.0.1.2");
    }
}
