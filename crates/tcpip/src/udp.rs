//! UDP over the IP layer.
//!
//! Best-effort datagrams with an 8-byte header and a real checksum. Large
//! datagrams exercise IP fragmentation. Used by tests and by the PVM-like
//! layer's control plane.

use crate::ip::{internet_checksum, IpAddr, IpProto, Ipv4Header};
use crate::stack::{IpLayer, IpProtoHandler};
use bytes::{BufMut, Bytes, BytesMut};
use clic_os::Kernel;
use clic_sim::Sim;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};

/// UDP header size.
pub const UDP_HEADER: usize = 8;

/// A datagram delivered to a bound port.
#[derive(Debug, Clone)]
pub struct Datagram {
    /// Sender address.
    pub src: IpAddr,
    /// Sender port.
    pub src_port: u16,
    /// Payload.
    pub data: Bytes,
}

type UdpSink = Rc<dyn Fn(&mut Sim, Datagram)>;

/// Per-node UDP.
pub struct UdpStack {
    kernel: Weak<RefCell<Kernel>>,
    ip: Rc<RefCell<IpLayer>>,
    ports: BTreeMap<u16, UdpSink>,
    /// Datagrams dropped: no socket bound.
    pub no_port: u64,
    /// Datagrams dropped: bad checksum/too short.
    pub rx_errors: u64,
}

struct UdpHook(Rc<RefCell<UdpStack>>);

impl IpProtoHandler for UdpHook {
    fn handle(
        &self,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        header: Ipv4Header,
        payload: Bytes,
    ) {
        UdpStack::on_datagram(&self.0, sim, kernel, header, payload);
    }
}

impl UdpStack {
    /// Install UDP over an IP layer.
    pub fn install(
        kernel: &Rc<RefCell<Kernel>>,
        ip: &Rc<RefCell<IpLayer>>,
    ) -> Rc<RefCell<UdpStack>> {
        let stack = Rc::new(RefCell::new(UdpStack {
            kernel: Rc::downgrade(kernel),
            ip: ip.clone(),
            ports: BTreeMap::new(),
            no_port: 0,
            rx_errors: 0,
        }));
        ip.borrow_mut()
            .register(IpProto::Udp, Rc::new(UdpHook(stack.clone())));
        stack
    }

    /// Bind `port`; each arriving datagram invokes `sink`.
    pub fn bind(&mut self, port: u16, sink: impl Fn(&mut Sim, Datagram) + 'static) {
        let prev = self.ports.insert(port, Rc::new(sink));
        assert!(prev.is_none(), "UDP port {port} already bound");
    }

    /// Send a datagram (system call + per-datagram cost + checksum).
    pub fn send(
        stack: &Rc<RefCell<UdpStack>>,
        sim: &mut Sim,
        src_port: u16,
        dst: IpAddr,
        dst_port: u16,
        data: Bytes,
    ) {
        let kernel = stack.borrow().kernel.upgrade().expect("kernel dropped");
        let stack2 = stack.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            let (ip, src, cost) = {
                let s = stack2.borrow();
                let l = s.ip.borrow();
                (
                    s.ip.clone(),
                    l.ip(),
                    l.costs.udp_per_datagram + l.costs.checksum_cost(data.len()),
                )
            };
            Kernel::cpu_task(&kernel, sim, cost, move |sim| {
                let mut h = [0u8; UDP_HEADER];
                h[0..2].copy_from_slice(&src_port.to_be_bytes());
                h[2..4].copy_from_slice(&dst_port.to_be_bytes());
                h[4..6].copy_from_slice(&((UDP_HEADER + data.len()) as u16).to_be_bytes());
                // Checksum over pseudo header + datagram.
                let mut pseudo = Vec::with_capacity(12 + UDP_HEADER + data.len());
                pseudo.extend_from_slice(&src.0.to_be_bytes());
                pseudo.extend_from_slice(&dst.0.to_be_bytes());
                pseudo.extend_from_slice(&[0, 17]);
                pseudo.extend_from_slice(&((UDP_HEADER + data.len()) as u16).to_be_bytes());
                pseudo.extend_from_slice(&h);
                pseudo.extend_from_slice(&data);
                let csum = internet_checksum(&pseudo);
                h[6..8].copy_from_slice(&csum.to_be_bytes());
                let mut pkt = BytesMut::with_capacity(UDP_HEADER + data.len());
                pkt.put_slice(&h);
                pkt.put_slice(&data);
                IpLayer::send(&ip, sim, IpProto::Udp, dst, pkt.freeze(), 0);
            });
        });
    }

    fn on_datagram(
        stack: &Rc<RefCell<UdpStack>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        header: Ipv4Header,
        payload: Bytes,
    ) {
        let cost = {
            let s = stack.borrow();
            let l = s.ip.borrow();
            l.costs.udp_per_datagram + l.costs.checksum_cost(payload.len())
        };
        let stack2 = stack.clone();
        Kernel::cpu_task(kernel, sim, cost, move |sim| {
            let sink = {
                let mut s = stack2.borrow_mut();
                if payload.len() < UDP_HEADER {
                    s.rx_errors += 1;
                    return;
                }
                let my_ip = s.ip.borrow().ip();
                let mut pseudo = Vec::with_capacity(12 + payload.len());
                pseudo.extend_from_slice(&header.src.0.to_be_bytes());
                pseudo.extend_from_slice(&my_ip.0.to_be_bytes());
                pseudo.extend_from_slice(&[0, 17]);
                let ulen = u16::from_be_bytes([payload[4], payload[5]]) as usize;
                if ulen < UDP_HEADER || ulen > payload.len() {
                    s.rx_errors += 1;
                    return;
                }
                pseudo.extend_from_slice(&(ulen as u16).to_be_bytes());
                pseudo.extend_from_slice(&payload[..ulen]);
                if internet_checksum(&pseudo) != 0 {
                    s.rx_errors += 1;
                    return;
                }
                let dst_port = u16::from_be_bytes([payload[2], payload[3]]);
                match s.ports.get(&dst_port) {
                    Some(sink) => Some((
                        sink.clone(),
                        Datagram {
                            src: header.src,
                            src_port: u16::from_be_bytes([payload[0], payload[1]]),
                            data: payload.slice(UDP_HEADER..ulen),
                        },
                    )),
                    None => {
                        s.no_port += 1;
                        None
                    }
                }
            };
            if let Some((sink, dgram)) = sink {
                sink(sim, dgram);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::TcpIpCosts;
    use clic_ethernet::{Link, LinkEnd, MacAddr};
    use clic_hw::{Nic, NicConfig, PciBus};
    use clic_os::OsCosts;

    fn node(
        id: u32,
        link: Rc<RefCell<Link>>,
        end: LinkEnd,
    ) -> (Rc<RefCell<Kernel>>, Rc<RefCell<UdpStack>>) {
        let kernel = Kernel::new(id, OsCosts::era_2002());
        let nic = Nic::new(
            MacAddr::for_node(id, 0),
            NicConfig::gigabit_standard(),
            PciBus::pci_33mhz_32bit(),
            link,
            end,
        );
        Nic::attach_to_link(&nic);
        let dev = Kernel::add_device(&kernel, nic);
        let mut neighbors = BTreeMap::new();
        for peer in 1..=2u32 {
            neighbors.insert(IpAddr::for_node(peer), MacAddr::for_node(peer, 0));
        }
        let ip = IpLayer::install(
            &kernel,
            dev,
            IpAddr::for_node(id),
            neighbors,
            TcpIpCosts::era_2002(),
        );
        let udp = UdpStack::install(&kernel, &ip);
        (kernel, udp)
    }

    #[test]
    fn datagram_end_to_end() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, ua) = node(1, link.clone(), LinkEnd::A);
        let (_kb, ub) = node(2, link, LinkEnd::B);
        let got: Rc<RefCell<Vec<Datagram>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ub.borrow_mut()
            .bind(7000, move |_sim, d| g.borrow_mut().push(d));
        UdpStack::send(
            &ua,
            &mut sim,
            5555,
            IpAddr::for_node(2),
            7000,
            Bytes::from_static(b"datagram"),
        );
        sim.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].data[..], b"datagram");
        assert_eq!(got[0].src, IpAddr::for_node(1));
        assert_eq!(got[0].src_port, 5555);
    }

    #[test]
    fn large_datagram_ip_fragmented() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, ua) = node(1, link.clone(), LinkEnd::A);
        let (kb, ub) = node(2, link, LinkEnd::B);
        let got: Rc<RefCell<Vec<Datagram>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        ub.borrow_mut()
            .bind(7000, move |_sim, d| g.borrow_mut().push(d));
        let big = Bytes::from((0..9000usize).map(|i| (i % 229) as u8).collect::<Vec<_>>());
        UdpStack::send(&ua, &mut sim, 1, IpAddr::for_node(2), 7000, big.clone());
        sim.run();
        assert_eq!(got.borrow().len(), 1);
        assert_eq!(got.borrow()[0].data, big);
        // It really was fragmented on the wire.
        assert!(kb.borrow().stats().frames_received > 5);
    }

    #[test]
    fn unbound_port_counted() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, ua) = node(1, link.clone(), LinkEnd::A);
        let (_kb, ub) = node(2, link, LinkEnd::B);
        UdpStack::send(
            &ua,
            &mut sim,
            1,
            IpAddr::for_node(2),
            9,
            Bytes::from_static(b"x"),
        );
        sim.run();
        assert_eq!(ub.borrow().no_port, 1);
    }
}
