//! # clic-tcpip — the TCP/IP baseline stack
//!
//! The comparison stack of Figures 5 and 6: a Linux-2.4-style TCP/IP
//! implementation running over the *same* kernel, driver and NIC models as
//! CLIC, so every difference between the curves comes from the protocol
//! layers — exactly the paper's argument ("the reduction in the number of
//! protocol layers... decreases the software overhead and the number of
//! data copies").
//!
//! * [`ip`] — IPv4: real 20-byte headers with RFC 1071 checksums,
//!   fragmentation + reassembly (exercised by UDP), TTL, protocol demux.
//! * [`tcp`] — TCP-lite: three-way handshake, byte sequence numbers,
//!   cumulative + delayed ACKs, sliding window, slow start / congestion
//!   avoidance, RTO with exponential backoff, MSS derived from the device
//!   MTU. Checksums are charged per byte and computed for real.
//! * [`udp`] — datagram service over IP (used by tests and the PVM-like
//!   layer's control traffic).
//! * [`costs`] — per-layer CPU costs, the calibrated "TCP/IP tax".
//!
//! Address resolution is a static neighbor table injected at install time;
//! ARP adds nothing to the evaluated curves (documented in DESIGN.md).

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod costs;
pub mod ip;
pub mod stack;
pub mod tcp;
pub mod udp;

pub use costs::TcpIpCosts;
pub use ip::{IpAddr, IpProto, Ipv4Header};
pub use stack::IpLayer;
pub use tcp::{ConnId, TcpStack};
pub use udp::UdpStack;
