//! The IP layer object: EtherType 0x0800 handler, protocol demux,
//! fragmentation/reassembly, static neighbor resolution.

use crate::costs::TcpIpCosts;
use crate::ip::{self, IpAddr, IpProto, IpReassembler, Ipv4Header, IPV4_HEADER};
use bytes::{BufMut, Bytes, BytesMut};
use clic_ethernet::{EtherType, Frame, MacAddr};
use clic_os::driver::hard_start_xmit;
use clic_os::{Kernel, PacketHandler, SkBuff};
use clic_sim::{Layer, Sim};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::{Rc, Weak};

/// Upper-layer protocol hook (TCP, UDP).
pub trait IpProtoHandler {
    /// A complete (reassembled) IP payload arrived.
    fn handle(
        &self,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        header: Ipv4Header,
        payload: Bytes,
    );
}

/// Per-node IP layer.
pub struct IpLayer {
    kernel: Weak<RefCell<Kernel>>,
    dev: usize,
    ip: IpAddr,
    neighbors: BTreeMap<IpAddr, MacAddr>,
    /// Cost model shared with the transports above.
    pub costs: TcpIpCosts,
    mtu: usize,
    reasm: IpReassembler,
    handlers: BTreeMap<u8, Rc<dyn IpProtoHandler>>,
    next_ident: u16,
    /// Datagrams dropped for an unknown destination.
    pub no_route: u64,
    /// Packets dropped in parsing/checksum.
    pub rx_errors: u64,
}

struct EthHook(Rc<RefCell<IpLayer>>);

impl PacketHandler for EthHook {
    fn handle(&self, sim: &mut Sim, kernel: &Rc<RefCell<Kernel>>, _dev: usize, frame: Frame) {
        IpLayer::on_frame(&self.0, sim, kernel, frame);
    }
}

impl IpLayer {
    /// Install the IP layer on `kernel` device `dev` with a static neighbor
    /// table (ARP is out of scope; see DESIGN.md).
    pub fn install(
        kernel: &Rc<RefCell<Kernel>>,
        dev: usize,
        ip: IpAddr,
        neighbors: BTreeMap<IpAddr, MacAddr>,
        costs: TcpIpCosts,
    ) -> Rc<RefCell<IpLayer>> {
        let mtu = kernel.borrow().device(dev).borrow().mtu();
        let layer = Rc::new(RefCell::new(IpLayer {
            kernel: Rc::downgrade(kernel),
            dev,
            ip,
            neighbors,
            costs,
            mtu,
            reasm: IpReassembler::new(),
            handlers: BTreeMap::new(),
            next_ident: 1,
            no_route: 0,
            rx_errors: 0,
        }));
        kernel
            .borrow_mut()
            .register_handler(EtherType::IPV4.0, Rc::new(EthHook(layer.clone())));
        layer
    }

    /// This host's address.
    pub fn ip(&self) -> IpAddr {
        self.ip
    }

    /// Path MTU towards cluster peers (the device MTU).
    pub fn mtu(&self) -> usize {
        self.mtu
    }

    /// Register the handler for an IP protocol.
    pub fn register(&mut self, proto: IpProto, handler: Rc<dyn IpProtoHandler>) {
        let key = match proto {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
        };
        let prev = self.handlers.insert(key, handler);
        assert!(prev.is_none(), "duplicate IP protocol handler");
    }

    fn kernel_of(layer: &Rc<RefCell<IpLayer>>) -> Rc<RefCell<Kernel>> {
        layer.borrow().kernel.upgrade().expect("kernel dropped")
    }

    /// Send `payload` to `dst` as protocol `proto`, charging the IP TX cost
    /// and fragmenting when it exceeds the MTU.
    pub fn send(
        layer: &Rc<RefCell<IpLayer>>,
        sim: &mut Sim,
        proto: IpProto,
        dst: IpAddr,
        payload: Bytes,
        trace: u64,
    ) {
        let kernel = Self::kernel_of(layer);
        let (packets, mac, dev, cost) = {
            let mut l = layer.borrow_mut();
            let Some(&mac) = l.neighbors.get(&dst) else {
                l.no_route += 1;
                return;
            };
            let ident = l.next_ident;
            l.next_ident = l.next_ident.wrapping_add(1);
            let packets = if IPV4_HEADER + payload.len() <= l.mtu {
                let header = Ipv4Header {
                    src: l.ip,
                    dst,
                    proto,
                    ident,
                    frag_offset: 0,
                    more_fragments: false,
                    ttl: 64,
                    payload_len: payload.len() as u16,
                };
                let mut pkt = BytesMut::with_capacity(IPV4_HEADER + payload.len());
                pkt.put_slice(&header.encode());
                pkt.put_slice(&payload);
                vec![pkt.freeze()]
            } else {
                ip::fragment(l.ip, dst, proto, ident, 64, &payload, l.mtu)
            };
            (packets, mac, l.dev, l.costs.ip_tx)
        };
        let total_cost = cost * packets.len() as u64;
        if trace != 0 {
            sim.trace.begin(sim.now(), Layer::TcpIp, "ip_tx", trace);
        }
        let kernel2 = kernel.clone();
        Kernel::cpu_task(&kernel, sim, total_cost, move |sim| {
            if trace != 0 {
                sim.trace.end(sim.now(), Layer::TcpIp, "ip_tx", trace);
            }
            for pkt in packets {
                // TCP/IP always sends from kernel memory (the user->kernel
                // copy was charged by the transport when the data entered
                // the socket buffer), so the SkBuff is kernel-located; the
                // bytes were already staged so no extra clone cost here.
                let skb = SkBuff {
                    header: Bytes::new(),
                    data: pkt,
                    location: clic_os::DataLocation::Kernel,
                    trace,
                };
                hard_start_xmit(&kernel2, sim, 0, mac, EtherType::IPV4, skb, |_, _ok| {
                    // Ring-full drops are recovered by TCP's RTO / UDP's
                    // best-effort contract.
                });
            }
        });
        let _ = dev;
    }

    fn on_frame(
        layer: &Rc<RefCell<IpLayer>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        frame: Frame,
    ) {
        let (parsed, cost) = {
            let mut l = layer.borrow_mut();
            match Ipv4Header::decode(&frame.payload) {
                Some((header, payload)) if header.dst == l.ip => {
                    (Some((header, payload)), l.costs.ip_rx)
                }
                Some(_) => (None, l.costs.ip_rx), // not for us
                None => {
                    l.rx_errors += 1;
                    (None, l.costs.ip_rx)
                }
            }
        };
        let Some((header, payload)) = parsed else {
            return;
        };
        if frame.trace != 0 {
            sim.trace
                .begin(sim.now(), Layer::TcpIp, "ip_rx", frame.trace);
        }
        let layer2 = layer.clone();
        let kernel2 = kernel.clone();
        let trace = frame.trace;
        Kernel::cpu_task(kernel, sim, cost, move |sim| {
            if trace != 0 {
                sim.trace.end(sim.now(), Layer::TcpIp, "ip_rx", trace);
            }
            let (complete, handler) = {
                let mut l = layer2.borrow_mut();
                let complete = l.reasm.offer(&header, payload);
                let proto_key = match header.proto {
                    IpProto::Tcp => 6u8,
                    IpProto::Udp => 17,
                };
                (complete, l.handlers.get(&proto_key).cloned())
            };
            if let (Some(data), Some(handler)) = (complete, handler) {
                handler.handle(sim, &kernel2, header, data);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clic_ethernet::{Link, LinkEnd};
    use clic_hw::{Nic, NicConfig, PciBus};
    use clic_os::OsCosts;

    struct Sink {
        got: RefCell<Vec<(Ipv4Header, Bytes)>>,
    }
    impl IpProtoHandler for Sink {
        fn handle(
            &self,
            _sim: &mut Sim,
            _kernel: &Rc<RefCell<Kernel>>,
            header: Ipv4Header,
            payload: Bytes,
        ) {
            self.got.borrow_mut().push((header, payload));
        }
    }

    fn node(
        id: u32,
        link: Rc<RefCell<Link>>,
        end: LinkEnd,
    ) -> (Rc<RefCell<Kernel>>, Rc<RefCell<IpLayer>>) {
        let kernel = Kernel::new(id, OsCosts::era_2002());
        let mut cfg = NicConfig::gigabit_standard();
        cfg.coalesce_usecs = 0;
        cfg.coalesce_frames = 1;
        let nic = Nic::new(
            MacAddr::for_node(id, 0),
            cfg,
            PciBus::pci_33mhz_32bit(),
            link,
            end,
        );
        Nic::attach_to_link(&nic);
        let dev = Kernel::add_device(&kernel, nic);
        let mut neighbors = BTreeMap::new();
        for peer in 1..=4u32 {
            neighbors.insert(IpAddr::for_node(peer), MacAddr::for_node(peer, 0));
        }
        let layer = IpLayer::install(
            &kernel,
            dev,
            IpAddr::for_node(id),
            neighbors,
            TcpIpCosts::era_2002(),
        );
        (kernel, layer)
    }

    #[test]
    fn datagram_crosses_wire() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, la) = node(1, link.clone(), LinkEnd::A);
        let (_kb, lb) = node(2, link, LinkEnd::B);
        let sink = Rc::new(Sink {
            got: RefCell::new(Vec::new()),
        });
        lb.borrow_mut().register(IpProto::Udp, sink.clone());
        IpLayer::send(
            &la,
            &mut sim,
            IpProto::Udp,
            IpAddr::for_node(2),
            Bytes::from_static(b"ping"),
            0,
        );
        sim.run();
        let got = sink.got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].1[..], b"ping");
        assert_eq!(got[0].0.src, IpAddr::for_node(1));
    }

    #[test]
    fn oversize_payload_fragments_and_reassembles() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, la) = node(1, link.clone(), LinkEnd::A);
        let (_kb, lb) = node(2, link, LinkEnd::B);
        let sink = Rc::new(Sink {
            got: RefCell::new(Vec::new()),
        });
        lb.borrow_mut().register(IpProto::Udp, sink.clone());
        let big = Bytes::from((0..6000usize).map(|i| (i % 239) as u8).collect::<Vec<_>>());
        IpLayer::send(
            &la,
            &mut sim,
            IpProto::Udp,
            IpAddr::for_node(2),
            big.clone(),
            0,
        );
        sim.run();
        let got = sink.got.borrow();
        assert_eq!(got.len(), 1, "exactly one reassembled datagram");
        assert_eq!(got[0].1, big);
    }

    #[test]
    fn unknown_destination_counts_no_route() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, la) = node(1, link, LinkEnd::A);
        IpLayer::send(
            &la,
            &mut sim,
            IpProto::Udp,
            IpAddr(0xdeadbeef),
            Bytes::from_static(b"x"),
            0,
        );
        sim.run();
        assert_eq!(la.borrow().no_route, 1);
    }

    #[test]
    fn packet_for_other_host_ignored() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let (_ka, la) = node(1, link.clone(), LinkEnd::A);
        let (_kb, lb) = node(2, link, LinkEnd::B);
        let sink = Rc::new(Sink {
            got: RefCell::new(Vec::new()),
        });
        lb.borrow_mut().register(IpProto::Udp, sink.clone());
        // IP destination 3 behind node 2's MAC: the IP layer must drop it.
        {
            let mut l = la.borrow_mut();
            l.neighbors
                .insert(IpAddr::for_node(3), MacAddr::for_node(2, 0));
        }
        IpLayer::send(
            &la,
            &mut sim,
            IpProto::Udp,
            IpAddr::for_node(3),
            Bytes::from_static(b"stray"),
            0,
        );
        sim.run();
        assert!(sink.got.borrow().is_empty());
    }
}
