//! TCP-lite.
//!
//! Enough of RFC 793 + Reno-era congestion control to make an honest
//! baseline for Figures 5 and 6: three-way handshake, byte sequence
//! numbers, cumulative + delayed ACKs, receiver window, slow start and
//! congestion avoidance, retransmission timeout with exponential backoff,
//! and real header encoding with pseudo-header checksums (verified on
//! receive and charged per byte — this stack pays the "touch every byte"
//! tax CLIC avoids).
//!
//! Also implemented: fast retransmit on three duplicate ACKs (RFC 2581)
//! and FIN-based connection teardown. Omissions (documented in DESIGN.md
//! §5): SACK, timestamps, PAWS, RST handling, TIME_WAIT. None shapes the
//! paper's curves.

use crate::costs::TcpIpCosts;
use crate::ip::{internet_checksum, IpAddr, IpProto, Ipv4Header};
use crate::stack::{IpLayer, IpProtoHandler};
use bytes::{BufMut, Bytes, BytesMut};
use clic_os::{Kernel, Pid};
use clic_sim::catalog::counter_id;
use clic_sim::{Layer, MetricId, Sim, SimDuration};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::{Rc, Weak};

/// Interned metric ids for the retransmission paths.
const M_RETRANSMITS: MetricId = counter_id("tcp.retransmits");
const M_FAST_RETRANSMITS: MetricId = counter_id("tcp.fast_retransmits");

/// TCP header size (no options).
pub const TCP_HEADER: usize = 20;

/// Connection identifier local to one stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

mod tcpflags {
    pub const FIN: u8 = 0x01;
    pub const SYN: u8 = 0x02;
    pub const ACK: u8 = 0x10;
}

/// Wrapping sequence compare: true when `a >= b`.
fn seq_ge(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 >= 0
}

/// Wrapping sequence compare: true when `a > b`.
fn seq_gt(a: u32, b: u32) -> bool {
    a.wrapping_sub(b) as i32 > 0
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ack: u32,
    flags: u8,
    window: u16,
}

impl Segment {
    fn encode(&self, src: IpAddr, dst: IpAddr, payload: &[u8]) -> Bytes {
        let mut h = [0u8; TCP_HEADER];
        h[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        h[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        h[4..8].copy_from_slice(&self.seq.to_be_bytes());
        h[8..12].copy_from_slice(&self.ack.to_be_bytes());
        h[12] = 5 << 4; // data offset
        h[13] = self.flags;
        h[14..16].copy_from_slice(&self.window.to_be_bytes());
        // Checksum over pseudo header + segment.
        let mut pseudo = Vec::with_capacity(12 + TCP_HEADER + payload.len());
        pseudo.extend_from_slice(&src.0.to_be_bytes());
        pseudo.extend_from_slice(&dst.0.to_be_bytes());
        pseudo.extend_from_slice(&[0, 6]);
        pseudo.extend_from_slice(&((TCP_HEADER + payload.len()) as u16).to_be_bytes());
        pseudo.extend_from_slice(&h);
        pseudo.extend_from_slice(payload);
        let csum = internet_checksum(&pseudo);
        h[16..18].copy_from_slice(&csum.to_be_bytes());
        let mut out = BytesMut::with_capacity(TCP_HEADER + payload.len());
        out.put_slice(&h);
        out.put_slice(payload);
        out.freeze()
    }

    fn decode(src: IpAddr, dst: IpAddr, buf: &[u8]) -> Option<(Segment, Bytes)> {
        if buf.len() < TCP_HEADER {
            return None;
        }
        // Verify: checksum over pseudo header + full segment must be 0.
        let mut pseudo = Vec::with_capacity(12 + buf.len());
        pseudo.extend_from_slice(&src.0.to_be_bytes());
        pseudo.extend_from_slice(&dst.0.to_be_bytes());
        pseudo.extend_from_slice(&[0, 6]);
        pseudo.extend_from_slice(&(buf.len() as u16).to_be_bytes());
        pseudo.extend_from_slice(buf);
        if internet_checksum(&pseudo) != 0 {
            return None;
        }
        let seg = Segment {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: buf[13],
            window: u16::from_be_bytes([buf[14], buf[15]]),
        };
        let off = usize::from(buf[12] >> 4) * 4;
        if off < TCP_HEADER || buf.len() < off {
            return None;
        }
        Some((seg, Bytes::copy_from_slice(&buf[off..])))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    SynSent,
    SynReceived,
    Established,
    /// We sent FIN, awaiting its ACK (and possibly the peer's FIN).
    FinWait,
    /// Peer sent FIN; we may still send until the application closes.
    CloseWait,
    /// Both FINs exchanged; awaiting the final ACK of ours.
    LastAck,
    /// Fully closed.
    Closed,
}

type Reader = (usize, Box<dyn FnOnce(&mut Sim, Bytes)>);

struct Conn {
    local_port: u16,
    peer_ip: IpAddr,
    peer_port: u16,
    state: TcpState,
    on_established: Option<Box<dyn FnOnce(&mut Sim, ConnId)>>,
    on_peer_close: Option<Box<dyn FnOnce(&mut Sim, ConnId)>>,
    /// Set once the application asked to close; the FIN goes out when the
    /// send buffer drains.
    close_requested: bool,
    fin_sent: bool,
    pid: Option<Pid>,
    // --- send side ---
    snd_una: u32,
    snd_nxt: u32,
    send_buf: VecDeque<Bytes>,
    send_buf_bytes: usize,
    retx: BTreeMap<u32, Bytes>,
    cwnd: usize,
    ssthresh: usize,
    peer_wnd: usize,
    rto: SimDuration,
    rto_gen: u64,
    rto_running: bool,
    dup_acks: u32,
    // --- receive side ---
    rcv_nxt: u32,
    ooo: BTreeMap<u32, Bytes>,
    recv_buf: VecDeque<Bytes>,
    recv_buf_bytes: usize,
    readers: VecDeque<Reader>,
    delack_count: u32,
    delack_armed: bool,
    delack_gen: u64,
}

/// Stack-wide counters.
#[derive(Debug, Default, Clone)]
pub struct TcpStats {
    /// Data segments transmitted (first time).
    pub segments_tx: u64,
    /// Segments retransmitted after timeout.
    pub retransmits: u64,
    /// Segments retransmitted by the 3-dup-ACK fast path.
    pub fast_retransmits: u64,
    /// Segments received and accepted.
    pub segments_rx: u64,
    /// ACK-only segments sent.
    pub acks_tx: u64,
    /// Segments dropped on checksum failure.
    pub checksum_errors: u64,
    /// Connections established (both roles).
    pub established: u64,
}

/// Per-node TCP.
pub struct TcpStack {
    kernel: Weak<RefCell<Kernel>>,
    ip: Rc<RefCell<IpLayer>>,
    costs: TcpIpCosts,
    mss: usize,
    conns: BTreeMap<ConnId, Conn>,
    by_tuple: BTreeMap<(IpAddr, u16, u16), ConnId>,
    listeners: BTreeMap<u16, Rc<dyn Fn(&mut Sim, ConnId)>>,
    next_conn: u32,
    next_ephemeral: u16,
    stats: TcpStats,
    /// Advertised receive window.
    rwnd: usize,
    /// Initial/reset ssthresh.
    initial_ssthresh: usize,
    initial_rto: SimDuration,
    delack_threshold: u32,
    delack_delay: SimDuration,
}

struct TcpHook(Rc<RefCell<TcpStack>>);

impl IpProtoHandler for TcpHook {
    fn handle(
        &self,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        header: Ipv4Header,
        payload: Bytes,
    ) {
        TcpStack::on_packet(&self.0, sim, kernel, header, payload);
    }
}

impl TcpStack {
    /// Install TCP over an IP layer.
    pub fn install(
        kernel: &Rc<RefCell<Kernel>>,
        ip: &Rc<RefCell<IpLayer>>,
    ) -> Rc<RefCell<TcpStack>> {
        let (costs, mtu) = {
            let l = ip.borrow();
            (l.costs, l.mtu())
        };
        let stack = Rc::new(RefCell::new(TcpStack {
            kernel: Rc::downgrade(kernel),
            ip: ip.clone(),
            costs,
            mss: mtu - crate::ip::IPV4_HEADER - TCP_HEADER,
            conns: BTreeMap::new(),
            by_tuple: BTreeMap::new(),
            listeners: BTreeMap::new(),
            next_conn: 1,
            next_ephemeral: 32_000,
            stats: TcpStats::default(),
            rwnd: 256 * 1024,
            initial_ssthresh: 64 * 1024,
            initial_rto: SimDuration::from_ms(200),
            delack_threshold: 2,
            delack_delay: SimDuration::from_us(200),
        }));
        ip.borrow_mut()
            .register(IpProto::Tcp, Rc::new(TcpHook(stack.clone())));
        stack
    }

    fn kernel_of(stack: &Rc<RefCell<TcpStack>>) -> Rc<RefCell<Kernel>> {
        stack.borrow().kernel.upgrade().expect("kernel dropped")
    }

    /// Maximum segment size in use.
    pub fn mss(&self) -> usize {
        self.mss
    }

    /// Counters snapshot.
    pub fn stats(&self) -> TcpStats {
        self.stats.clone()
    }

    fn new_conn(&mut self, local_port: u16, peer_ip: IpAddr, peer_port: u16) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn {
                local_port,
                peer_ip,
                peer_port,
                state: TcpState::SynSent,
                on_established: None,
                on_peer_close: None,
                close_requested: false,
                fin_sent: false,
                pid: None,
                snd_una: 0,
                snd_nxt: 0,
                send_buf: VecDeque::new(),
                send_buf_bytes: 0,
                retx: BTreeMap::new(),
                cwnd: 2 * self.mss,
                ssthresh: self.initial_ssthresh,
                peer_wnd: 64 * 1024,
                rto: self.initial_rto,
                rto_gen: 0,
                rto_running: false,
                dup_acks: 0,
                rcv_nxt: 0,
                ooo: BTreeMap::new(),
                recv_buf: VecDeque::new(),
                recv_buf_bytes: 0,
                readers: VecDeque::new(),
                delack_count: 0,
                delack_armed: false,
                delack_gen: 0,
            },
        );
        self.by_tuple.insert((peer_ip, peer_port, local_port), id);
        id
    }

    /// Bind `pid` to a connection so blocking reads charge wakeups to it.
    pub fn set_owner(&mut self, conn: ConnId, pid: Pid) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.pid = Some(pid);
        }
    }

    /// Listen on `port`; `on_accept` runs for each established inbound
    /// connection.
    pub fn listen(&mut self, port: u16, on_accept: impl Fn(&mut Sim, ConnId) + 'static) {
        let prev = self.listeners.insert(port, Rc::new(on_accept));
        assert!(prev.is_none(), "port {port} already listening");
    }

    /// Open a connection to `dst:port`; `on_connected` fires when the
    /// handshake completes.
    pub fn connect(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        dst: IpAddr,
        port: u16,
        on_connected: impl FnOnce(&mut Sim, ConnId) + 'static,
    ) {
        let kernel = Self::kernel_of(stack);
        let stack2 = stack.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            let (id, seg, peer) = {
                let mut s = stack2.borrow_mut();
                let local_port = s.next_ephemeral;
                s.next_ephemeral += 1;
                let id = s.new_conn(local_port, dst, port);
                let c = s.conns.get_mut(&id).unwrap();
                c.state = TcpState::SynSent;
                c.on_established = Some(Box::new(on_connected));
                c.snd_nxt = 1; // SYN consumes sequence 0
                let seg = Segment {
                    src_port: local_port,
                    dst_port: port,
                    seq: 0,
                    ack: 0,
                    flags: tcpflags::SYN,
                    window: u16::MAX,
                };
                (id, seg, dst)
            };
            let _ = id;
            Self::emit(&stack2, sim, peer, seg, Bytes::new(), 0);
        });
    }

    /// Queue `data` on the connection (user send): charges the syscall, the
    /// user→kernel socket-buffer copy, then transmits as the window allows.
    pub fn send(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId, data: Bytes) {
        Self::send_traced(stack, sim, conn, data, 0);
    }

    /// [`TcpStack::send`] with a pipeline-trace id.
    pub fn send_traced(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: ConnId,
        data: Bytes,
        trace: u64,
    ) {
        let kernel = Self::kernel_of(stack);
        let stack2 = stack.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            let copy_cost = kernel.borrow().costs.copy.cost_observed(sim, data.len());
            let stack3 = stack2.clone();
            Kernel::cpu_task(&kernel, sim, copy_cost, move |sim| {
                {
                    let mut s = stack3.borrow_mut();
                    let Some(c) = s.conns.get_mut(&conn) else {
                        return;
                    };
                    // The socket buffer physically owns a staged copy.
                    c.send_buf.push_back(Bytes::copy_from_slice(&data));
                    c.send_buf_bytes += data.len();
                }
                Self::try_transmit(&stack3, sim, conn, trace);
            });
        });
    }

    /// Blocking read of exactly `len` bytes.
    pub fn recv(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: ConnId,
        len: usize,
        cont: impl FnOnce(&mut Sim, Bytes) + 'static,
    ) {
        let kernel = Self::kernel_of(stack);
        let stack2 = stack.clone();
        let kernel2 = kernel.clone();
        Kernel::syscall(&kernel, sim, move |sim| {
            {
                let mut s = stack2.borrow_mut();
                let Some(c) = s.conns.get_mut(&conn) else {
                    return;
                };
                c.readers.push_back((len, Box::new(cont)));
                if c.recv_buf_bytes < len {
                    if let Some(pid) = c.pid {
                        kernel2.borrow_mut().processes.block(pid);
                    }
                }
            }
            Self::satisfy_readers(&stack2, sim, conn);
        });
    }

    /// Bytes waiting in the receive buffer.
    pub fn recv_available(&self, conn: ConnId) -> usize {
        self.conns.get(&conn).map(|c| c.recv_buf_bytes).unwrap_or(0)
    }

    /// Install a callback fired once when the peer closes its side.
    pub fn on_peer_close(&mut self, conn: ConnId, cb: impl FnOnce(&mut Sim, ConnId) + 'static) {
        if let Some(c) = self.conns.get_mut(&conn) {
            assert!(c.on_peer_close.is_none(), "peer-close handler already set");
            c.on_peer_close = Some(Box::new(cb));
        }
    }

    /// Whether the connection has fully closed (both FINs exchanged and
    /// acknowledged).
    pub fn is_closed(&self, conn: ConnId) -> bool {
        self.conns
            .get(&conn)
            .map(|c| c.state == TcpState::Closed)
            .unwrap_or(true)
    }

    /// Close our side of the connection: queued data is still delivered,
    /// then a FIN goes out. The connection fully closes once the peer
    /// closes too.
    pub fn close(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let kernel = Self::kernel_of(stack);
        let stack2 = stack.clone();
        Kernel::syscall(&kernel.clone(), sim, move |sim| {
            // Defer one CPU-queue round so the socket-buffer copies of any
            // send() issued before this close() have landed — otherwise
            // the FIN could overtake data still being staged.
            let stack3 = stack2.clone();
            Kernel::cpu_task(&kernel, sim, SimDuration::ZERO, move |sim| {
                {
                    let mut s = stack3.borrow_mut();
                    let Some(c) = s.conns.get_mut(&conn) else {
                        return;
                    };
                    if c.close_requested {
                        return;
                    }
                    c.close_requested = true;
                }
                Self::maybe_send_fin(&stack3, sim, conn);
            });
        });
    }

    /// Emit the FIN once the send buffer has drained.
    fn maybe_send_fin(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let fin = {
            let mut s = stack.borrow_mut();
            let rwnd16 = s.rwnd.min(u16::MAX as usize) as u16;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if !c.close_requested || c.fin_sent || c.send_buf_bytes > 0 {
                None
            } else {
                c.fin_sent = true;
                c.state = match c.state {
                    TcpState::CloseWait => TcpState::LastAck,
                    _ => TcpState::FinWait,
                };
                let seg = Segment {
                    src_port: c.local_port,
                    dst_port: c.peer_port,
                    seq: c.snd_nxt,
                    ack: c.rcv_nxt,
                    flags: tcpflags::FIN | tcpflags::ACK,
                    window: rwnd16,
                };
                // The FIN occupies one sequence number and is
                // retransmittable like data.
                c.retx.insert(c.snd_nxt, Bytes::new());
                c.snd_nxt = c.snd_nxt.wrapping_add(1);
                Some((c.peer_ip, seg))
            }
        };
        if let Some((peer, seg)) = fin {
            Self::emit_data(stack, sim, peer, seg, Bytes::new(), 0);
            Self::ensure_rto(stack, sim, conn);
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Transmit as much queued data as windows allow.
    fn try_transmit(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId, trace: u64) {
        loop {
            let emit = {
                let mut s = stack.borrow_mut();
                let mss = s.mss;
                let rwnd16 = s.rwnd.min(u16::MAX as usize) as u16;
                let Some(c) = s.conns.get_mut(&conn) else {
                    return;
                };
                if c.state != TcpState::Established && c.state != TcpState::SynReceived {
                    return;
                }
                let flight = c.snd_nxt.wrapping_sub(c.snd_una) as usize;
                let wnd = c.cwnd.min(c.peer_wnd);
                if c.send_buf_bytes == 0 {
                    drop(s);
                    Self::maybe_send_fin(stack, sim, conn);
                    return;
                }
                if flight >= wnd {
                    return;
                }
                let take = mss.min(c.send_buf_bytes).min(wnd - flight);
                // Gather `take` bytes from the socket buffer.
                let mut payload = BytesMut::with_capacity(take);
                while payload.len() < take {
                    let mut head = c.send_buf.pop_front().unwrap();
                    let need = take - payload.len();
                    if head.len() <= need {
                        payload.put_slice(&head);
                    } else {
                        payload.put_slice(&head.slice(..need));
                        head = head.slice(need..);
                        c.send_buf.push_front(head);
                    }
                }
                c.send_buf_bytes -= take;
                let payload = payload.freeze();
                let seg = Segment {
                    src_port: c.local_port,
                    dst_port: c.peer_port,
                    seq: c.snd_nxt,
                    ack: c.rcv_nxt,
                    flags: tcpflags::ACK,
                    window: rwnd16,
                };
                c.retx.insert(c.snd_nxt, payload.clone());
                c.snd_nxt = c.snd_nxt.wrapping_add(take as u32);
                let peer = c.peer_ip;
                s.stats.segments_tx += 1;
                (peer, seg, payload)
            };
            let (peer, seg, payload) = emit;
            Self::emit_data(stack, sim, peer, seg, payload, trace);
            Self::ensure_rto(stack, sim, conn);
        }
    }

    /// Send a data segment: charge TCP per-segment + checksum cost, then
    /// hand to IP.
    fn emit_data(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        peer: IpAddr,
        seg: Segment,
        payload: Bytes,
        trace: u64,
    ) {
        let kernel = Self::kernel_of(stack);
        let cost = {
            let s = stack.borrow();
            s.costs.tcp_tx_per_segment + s.costs.checksum_cost(payload.len())
        };
        let stack2 = stack.clone();
        if trace != 0 {
            sim.trace.begin(sim.now(), Layer::TcpIp, "tcp_tx", trace);
        }
        Kernel::cpu_task(&kernel, sim, cost, move |sim| {
            if trace != 0 {
                sim.trace.end(sim.now(), Layer::TcpIp, "tcp_tx", trace);
            }
            Self::emit(&stack2, sim, peer, seg, payload, trace);
        });
    }

    /// Encode and pass to the IP layer (no extra CPU charge — the caller
    /// already charged it).
    fn emit(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        peer: IpAddr,
        seg: Segment,
        payload: Bytes,
        trace: u64,
    ) {
        let (ip, src) = {
            let s = stack.borrow();
            let ip = s.ip.clone();
            let src = ip.borrow().ip();
            (ip, src)
        };
        let bytes = seg.encode(src, peer, &payload);
        IpLayer::send(&ip, sim, IpProto::Tcp, peer, bytes, trace);
    }

    fn ensure_rto(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let arm = {
            let mut s = stack.borrow_mut();
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if c.rto_running || c.retx.is_empty() {
                None
            } else {
                c.rto_running = true;
                c.rto_gen += 1;
                Some((c.rto_gen, c.rto))
            }
        };
        if let Some((generation, delay)) = arm {
            let stack2 = stack.clone();
            sim.schedule_in(delay, move |sim| {
                Self::on_rto(&stack2, sim, conn, generation);
            });
        }
    }

    fn on_rto(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId, generation: u64) {
        let resend = {
            let mut s = stack.borrow_mut();
            let mss = s.mss;
            let rwnd16 = s.rwnd.min(u16::MAX as usize) as u16;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if c.rto_gen != generation {
                return;
            }
            c.rto_running = false;
            let Some((&seq, payload)) = c.retx.iter().next() else {
                return;
            };
            let payload = payload.clone();
            // Reno on timeout: collapse the window, back off the timer,
            // resend the first unacknowledged segment.
            let flight = c.snd_nxt.wrapping_sub(c.snd_una) as usize;
            c.ssthresh = (flight / 2).max(2 * mss);
            c.cwnd = mss;
            c.rto = (c.rto * 2).min(SimDuration::from_secs(2));
            let seg = Segment {
                src_port: c.local_port,
                dst_port: c.peer_port,
                seq,
                ack: c.rcv_nxt,
                flags: tcpflags::ACK,
                window: rwnd16,
            };
            let peer = c.peer_ip;
            s.stats.retransmits += 1;
            Some((peer, seg, payload))
        };
        let Some((peer, seg, payload)) = resend else {
            return;
        };
        sim.metrics.counter_inc_id(M_RETRANSMITS);
        sim.trace.instant(sim.now(), Layer::TcpIp, "rto", 0);
        Self::emit_data(stack, sim, peer, seg, payload, 0);
        Self::ensure_rto(stack, sim, conn);
    }

    fn on_packet(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        kernel: &Rc<RefCell<Kernel>>,
        header: Ipv4Header,
        payload: Bytes,
    ) {
        let cost = {
            let s = stack.borrow();
            s.costs.tcp_rx_per_segment + s.costs.checksum_cost(payload.len())
        };
        let stack2 = stack.clone();
        Kernel::cpu_task(kernel, sim, cost, move |sim| {
            Self::process_segment(&stack2, sim, header, payload);
        });
    }

    fn process_segment(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        header: Ipv4Header,
        payload: Bytes,
    ) {
        let Some((seg, data)) = Segment::decode(header.src, header.dst, &payload) else {
            stack.borrow_mut().stats.checksum_errors += 1;
            return;
        };
        stack.borrow_mut().stats.segments_rx += 1;
        let key = (header.src, seg.src_port, seg.dst_port);
        let conn = stack.borrow().by_tuple.get(&key).copied();
        match conn {
            Some(id) => Self::segment_for_conn(stack, sim, id, seg, data),
            None if seg.flags & tcpflags::SYN != 0 => {
                Self::passive_open(stack, sim, header.src, seg);
            }
            None => {} // stray segment: no RST machinery, just drop
        }
    }

    fn passive_open(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, peer: IpAddr, syn: Segment) {
        let reply = {
            let mut s = stack.borrow_mut();
            if !s.listeners.contains_key(&syn.dst_port) {
                return;
            }
            let id = s.new_conn(syn.dst_port, peer, syn.src_port);
            let c = s.conns.get_mut(&id).unwrap();
            c.state = TcpState::SynReceived;
            c.rcv_nxt = syn.seq.wrapping_add(1);
            c.snd_nxt = 1; // our SYN consumes 0
            c.peer_wnd = syn.window as usize;
            Segment {
                src_port: syn.dst_port,
                dst_port: syn.src_port,
                seq: 0,
                ack: c.rcv_nxt,
                flags: tcpflags::SYN | tcpflags::ACK,
                window: u16::MAX,
            }
        };
        Self::emit(stack, sim, peer, reply, Bytes::new(), 0);
    }

    fn segment_for_conn(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: ConnId,
        seg: Segment,
        data: Bytes,
    ) {
        // Handshake transitions first.
        let established_cb = {
            let mut s = stack.borrow_mut();
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            c.peer_wnd = seg.window as usize;
            match c.state {
                TcpState::SynSent
                    if seg.flags & (tcpflags::SYN | tcpflags::ACK)
                        == tcpflags::SYN | tcpflags::ACK =>
                {
                    c.state = TcpState::Established;
                    c.rcv_nxt = seg.seq.wrapping_add(1);
                    c.snd_una = seg.ack;
                    s.stats.established += 1;
                    let cb = s.conns.get_mut(&conn).unwrap().on_established.take();
                    // Complete the handshake with a bare ACK.
                    let c = s.conns.get(&conn).unwrap();
                    let ack = Segment {
                        src_port: c.local_port,
                        dst_port: c.peer_port,
                        seq: c.snd_nxt,
                        ack: c.rcv_nxt,
                        flags: tcpflags::ACK,
                        window: (s.rwnd.min(u16::MAX as usize)) as u16,
                    };
                    let peer = c.peer_ip;
                    drop(s);
                    Self::emit(stack, sim, peer, ack, Bytes::new(), 0);
                    Some((cb, conn))
                }
                TcpState::SynReceived if seg.flags & tcpflags::ACK != 0 => {
                    c.state = TcpState::Established;
                    c.snd_una = seg.ack;
                    s.stats.established += 1;
                    let port = s.conns.get(&conn).unwrap().local_port;
                    let listener = s.listeners.get(&port).cloned();
                    drop(s);
                    if let Some(l) = listener {
                        l(sim, conn);
                    }
                    None
                }
                _ => None,
            }
        };
        if let Some((Some(cb), id)) = established_cb {
            cb(sim, id);
        }

        Self::process_ack_field(stack, sim, conn, seg);
        if !data.is_empty() {
            Self::process_data(stack, sim, conn, seg, data);
        }
        if seg.flags & tcpflags::FIN != 0 {
            Self::process_fin(stack, sim, conn, seg);
        }
        Self::maybe_finish_close(stack, sim, conn);
    }

    fn process_fin(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId, seg: Segment) {
        let (notify, ack_now) = {
            let mut s = stack.borrow_mut();
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            // Only honour the FIN once it is in order: FIN segments in
            // this stack carry no data, so the FIN's sequence must equal
            // the next expected byte.
            if c.rcv_nxt != seg.seq {
                return; // out-of-order FIN: recovered later by retransmit
            }
            c.rcv_nxt = c.rcv_nxt.wrapping_add(1);
            let notify = c.on_peer_close.take();
            c.state = match c.state {
                TcpState::FinWait => TcpState::Closed, // simultaneous/after our FIN
                TcpState::Established | TcpState::SynReceived => TcpState::CloseWait,
                other => other,
            };
            (notify, true)
        };
        if ack_now {
            Self::send_ack(stack, sim, conn);
        }
        if let Some(cb) = notify {
            cb(sim, conn);
        }
    }

    /// Transition to Closed once our FIN is acknowledged and the peer has
    /// closed too.
    fn maybe_finish_close(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let _ = sim;
        let mut s = stack.borrow_mut();
        let Some(c) = s.conns.get_mut(&conn) else {
            return;
        };
        if c.fin_sent && c.retx.is_empty() && c.state == TcpState::LastAck {
            c.state = TcpState::Closed;
        }
    }

    fn process_ack_field(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId, seg: Segment) {
        // Fast retransmit: three duplicate ACKs for the window base signal
        // a lost segment well before the RTO (RFC 2581).
        let fast_resend = {
            let mut s = stack.borrow_mut();
            let mss = s.mss;
            let rwnd16 = s.rwnd.min(u16::MAX as usize) as u16;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if seg.flags & tcpflags::ACK != 0
                && seg.ack == c.snd_una
                && !c.retx.is_empty()
                && c.state == TcpState::Established
            {
                c.dup_acks += 1;
                if c.dup_acks == 3 {
                    let (&seq, payload) = c.retx.iter().next().unwrap();
                    let payload = payload.clone();
                    let flight = c.snd_nxt.wrapping_sub(c.snd_una) as usize;
                    c.ssthresh = (flight / 2).max(2 * mss);
                    c.cwnd = c.ssthresh;
                    let reply = Segment {
                        src_port: c.local_port,
                        dst_port: c.peer_port,
                        seq,
                        ack: c.rcv_nxt,
                        flags: tcpflags::ACK,
                        window: rwnd16,
                    };
                    let peer = c.peer_ip;
                    s.stats.fast_retransmits += 1;
                    Some((peer, reply, payload))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((peer, reply, payload)) = fast_resend {
            sim.metrics.counter_inc_id(M_FAST_RETRANSMITS);
            sim.trace
                .instant(sim.now(), Layer::TcpIp, "fast_retransmit", 0);
            Self::emit_data(stack, sim, peer, reply, payload, 0);
        }
        let progressed = {
            let mut s = stack.borrow_mut();
            let mss = s.mss;
            let initial_rto = s.initial_rto;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if seg.flags & tcpflags::ACK == 0 || !seq_gt(seg.ack, c.snd_una) {
                false
            } else {
                let acked = seg.ack.wrapping_sub(c.snd_una) as usize;
                c.snd_una = seg.ack;
                let keys: Vec<u32> = c
                    .retx
                    .keys()
                    .copied()
                    .filter(|&k| !seq_ge(k, seg.ack))
                    .collect();
                for k in keys {
                    c.retx.remove(&k);
                }
                // Congestion window growth.
                if c.cwnd < c.ssthresh {
                    c.cwnd += acked.min(mss); // slow start
                } else {
                    c.cwnd += (mss * mss / c.cwnd).max(1); // avoidance
                }
                c.rto = initial_rto;
                c.rto_gen += 1;
                c.rto_running = false;
                c.dup_acks = 0;
                true
            }
        };
        if progressed {
            Self::ensure_rto(stack, sim, conn);
            Self::try_transmit(stack, sim, conn, 0);
        }
    }

    fn process_data(
        stack: &Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: ConnId,
        seg: Segment,
        data: Bytes,
    ) {
        let (ack_now, arm_delack) = {
            let mut s = stack.borrow_mut();
            let threshold = s.delack_threshold;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            if seq_gt(seg.seq, c.rcv_nxt) {
                // Out of order: buffer, ACK immediately (dup ACK).
                c.ooo.entry(seg.seq).or_insert(data);
                (true, false)
            } else if seq_gt(c.rcv_nxt, seg.seq)
                && seq_ge(c.rcv_nxt, seg.seq.wrapping_add(data.len() as u32))
            {
                // Entirely old: re-ACK.
                (true, false)
            } else {
                // In order (possibly with an old prefix).
                let skip = c.rcv_nxt.wrapping_sub(seg.seq) as usize;
                let fresh = data.slice(skip..);
                c.rcv_nxt = c.rcv_nxt.wrapping_add(fresh.len() as u32);
                c.recv_buf_bytes += fresh.len();
                c.recv_buf.push_back(fresh);
                // Drain contiguous out-of-order segments.
                while let Some((&seq, _)) = c.ooo.iter().next() {
                    if seq_gt(seq, c.rcv_nxt) {
                        break;
                    }
                    let seg_data = c.ooo.remove(&seq).unwrap();
                    let skip = c.rcv_nxt.wrapping_sub(seq) as usize;
                    if skip < seg_data.len() {
                        let fresh = seg_data.slice(skip..);
                        c.rcv_nxt = c.rcv_nxt.wrapping_add(fresh.len() as u32);
                        c.recv_buf_bytes += fresh.len();
                        c.recv_buf.push_back(fresh);
                    }
                }
                c.delack_count += 1;
                if c.delack_count >= threshold {
                    c.delack_count = 0;
                    c.delack_gen += 1;
                    c.delack_armed = false;
                    (true, false)
                } else {
                    (false, !c.delack_armed)
                }
            }
        };
        if ack_now {
            Self::send_ack(stack, sim, conn);
        } else if arm_delack {
            let generation = {
                let mut s = stack.borrow_mut();
                let c = s.conns.get_mut(&conn).unwrap();
                c.delack_armed = true;
                c.delack_gen += 1;
                c.delack_gen
            };
            let delay = stack.borrow().delack_delay;
            let stack2 = stack.clone();
            sim.schedule_in(delay, move |sim| {
                let fire = {
                    let mut s = stack2.borrow_mut();
                    match s.conns.get_mut(&conn) {
                        Some(c) if c.delack_armed && c.delack_gen == generation => {
                            c.delack_armed = false;
                            c.delack_count = 0;
                            true
                        }
                        _ => false,
                    }
                };
                if fire {
                    Self::send_ack(&stack2, sim, conn);
                }
            });
        }
        Self::satisfy_readers(stack, sim, conn);
    }

    fn send_ack(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let (peer, seg) = {
            let mut s = stack.borrow_mut();
            let rwnd = s.rwnd;
            let Some(c) = s.conns.get_mut(&conn) else {
                return;
            };
            let seg = Segment {
                src_port: c.local_port,
                dst_port: c.peer_port,
                seq: c.snd_nxt,
                ack: c.rcv_nxt,
                flags: tcpflags::ACK,
                window: (rwnd.min(u16::MAX as usize)) as u16,
            };
            s.stats.acks_tx += 1;
            (s.conns.get(&conn).unwrap().peer_ip, seg)
        };
        Self::emit_data(stack, sim, peer, seg, Bytes::new(), 0);
    }

    /// Hand buffered in-order bytes to blocked readers, charging the
    /// kernel→user copy and the wakeup.
    fn satisfy_readers(stack: &Rc<RefCell<TcpStack>>, sim: &mut Sim, conn: ConnId) {
        let kernel = Self::kernel_of(stack);
        loop {
            let ready = {
                let mut s = stack.borrow_mut();
                let Some(c) = s.conns.get_mut(&conn) else {
                    return;
                };
                match c.readers.front() {
                    Some(&(len, _)) if c.recv_buf_bytes >= len => {
                        let (len, cont) = c.readers.pop_front().unwrap();
                        let mut out = BytesMut::with_capacity(len);
                        while out.len() < len {
                            let mut head = c.recv_buf.pop_front().unwrap();
                            let need = len - out.len();
                            if head.len() <= need {
                                out.put_slice(&head);
                            } else {
                                out.put_slice(&head.slice(..need));
                                head = head.slice(need..);
                                c.recv_buf.push_front(head);
                            }
                        }
                        c.recv_buf_bytes -= len;
                        Some((out.freeze(), cont, c.pid))
                    }
                    _ => None,
                }
            };
            let Some((data, cont, pid)) = ready else {
                return;
            };
            let copy_cost = kernel.borrow().costs.copy.cost_observed(sim, data.len());
            let kernel2 = kernel.clone();
            Kernel::cpu_task(&kernel, sim, copy_cost, move |sim| match pid {
                Some(pid) => Kernel::wake(&kernel2, sim, pid, move |sim| cont(sim, data)),
                None => cont(sim, data),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_compare_wraps() {
        assert!(seq_ge(5, 5));
        assert!(seq_gt(6, 5));
        assert!(!seq_gt(5, 6));
        // Across the wrap point.
        assert!(seq_gt(2, u32::MAX - 2));
        assert!(!seq_gt(u32::MAX - 2, 2));
    }

    #[test]
    fn segment_roundtrip_with_checksum() {
        let src = IpAddr::for_node(1);
        let dst = IpAddr::for_node(2);
        let seg = Segment {
            src_port: 1234,
            dst_port: 80,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: tcpflags::ACK,
            window: 4096,
        };
        let wire = seg.encode(src, dst, b"payload");
        let (parsed, data) = Segment::decode(src, dst, &wire).unwrap();
        assert_eq!(parsed, seg);
        assert_eq!(&data[..], b"payload");
    }

    #[test]
    fn corrupted_segment_rejected() {
        let src = IpAddr::for_node(1);
        let dst = IpAddr::for_node(2);
        let seg = Segment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: tcpflags::SYN,
            window: 100,
        };
        let wire = seg.encode(src, dst, b"x");
        let mut bad = wire.to_vec();
        bad[20] ^= 0x40; // flip the payload byte
        assert!(Segment::decode(src, dst, &bad).is_none());
        // Wrong pseudo-header (different src IP) must also fail.
        assert!(Segment::decode(IpAddr::for_node(9), dst, &wire).is_none());
    }

    #[test]
    fn empty_payload_segment_roundtrip() {
        let src = IpAddr::for_node(1);
        let dst = IpAddr::for_node(2);
        let seg = Segment {
            src_port: 9,
            dst_port: 10,
            seq: 1,
            ack: 2,
            flags: tcpflags::SYN | tcpflags::ACK,
            window: 0,
        };
        let wire = seg.encode(src, dst, b"");
        let (parsed, data) = Segment::decode(src, dst, &wire).unwrap();
        assert_eq!(parsed, seg);
        assert!(data.is_empty());
    }
}
