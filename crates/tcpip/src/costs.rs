//! The TCP/IP processing tax.
//!
//! §1 of the paper: "protocols such as TCP/IP cause an overhead that
//! represents an important amount of the communication cost", and on Fast
//! Ethernet "it is possible to get 90 % of the maximum bandwidth with a
//! 15–20 % CPU use; having a similar situation in networks with 1 Gb/s
//! bandwidths would require almost 100 % of the processor power".
//!
//! These constants model per-layer costs of a Linux 2.4 stack on the
//! 1.5 GHz testbed; they are inputs (see DESIGN.md §5) and the TCP curves
//! of Figures 5–6 are outputs.

use clic_sim::SimDuration;

/// Per-layer CPU costs for the baseline stack.
#[derive(Debug, Clone, Copy)]
pub struct TcpIpCosts {
    /// IP header build + route lookup per outgoing packet.
    pub ip_tx: SimDuration,
    /// IP parse + checksum verify + demux per incoming packet.
    pub ip_rx: SimDuration,
    /// TCP segment build, timers, window bookkeeping (send side).
    pub tcp_tx_per_segment: SimDuration,
    /// TCP receive processing: sequence checks, ACK generation, socket
    /// queue management.
    pub tcp_rx_per_segment: SimDuration,
    /// Software checksum bandwidth (the CPU touches every payload byte on
    /// both sides — the era's NICs in this testbed did not offload TCP
    /// checksums).
    pub checksum_bytes_per_sec: u64,
    /// UDP per-datagram processing.
    pub udp_per_datagram: SimDuration,
}

impl TcpIpCosts {
    /// Calibrated Linux-2.4-on-1.5 GHz defaults.
    pub fn era_2002() -> TcpIpCosts {
        TcpIpCosts {
            ip_tx: SimDuration::from_ns(1_500),
            ip_rx: SimDuration::from_ns(3_000),
            tcp_tx_per_segment: SimDuration::from_ns(5_000),
            tcp_rx_per_segment: SimDuration::from_ns(10_000),
            checksum_bytes_per_sec: 140_000_000,
            udp_per_datagram: SimDuration::from_ns(3_000),
        }
    }

    /// CPU time to checksum `bytes` of payload.
    pub fn checksum_cost(&self, bytes: usize) -> SimDuration {
        SimDuration::for_bytes(bytes as u64, self.checksum_bytes_per_sec * 8)
    }
}

impl Default for TcpIpCosts {
    fn default() -> Self {
        Self::era_2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_scales_with_bytes() {
        let c = TcpIpCosts::era_2002();
        let one = c.checksum_cost(1500);
        let six = c.checksum_cost(9000);
        // Equal up to per-call ceil rounding (6 calls x <=1 ns).
        let diff = (six.as_ns() as i64 - (one * 6).as_ns() as i64).abs();
        assert!(diff <= 6, "six={six} one*6={}", one * 6);
        // 1500 B at 140 MB/s is ~10.7 us.
        assert!((SimDuration::from_us(8)..SimDuration::from_us(13)).contains(&one));
    }

    #[test]
    fn tcp_costs_exceed_clic_scale() {
        // The entire point of CLIC: a TCP/IP segment costs several times a
        // CLIC packet in per-packet CPU terms.
        let c = TcpIpCosts::era_2002();
        let per_segment = c.ip_rx + c.tcp_rx_per_segment;
        assert!(per_segment >= SimDuration::from_us(8));
    }
}
