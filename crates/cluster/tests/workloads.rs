//! Workload-driver tests: every stack through ping-pong and both stream
//! flavours, plus cross-stack sanity orderings.

use clic_cluster::builder::{Cluster, ClusterConfig};
use clic_cluster::workload::{
    ping_pong, request_reply_cycles, stream, stream_pipelined, StackKind,
};
use clic_cluster::{CostModel, NodeConfig};
use clic_sim::Sim;

fn cfg_for(stack: StackKind) -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = match stack {
        StackKind::Clic | StackKind::MpiClic => NodeConfig::clic_default(&model),
        StackKind::Tcp | StackKind::MpiTcp | StackKind::PvmTcp => NodeConfig::tcp_default(&model),
        StackKind::Gamma => NodeConfig::gamma_default(&model),
    };
    cfg
}

#[test]
fn ping_pong_works_on_every_stack() {
    for stack in [
        StackKind::Clic,
        StackKind::Tcp,
        StackKind::MpiClic,
        StackKind::MpiTcp,
        StackKind::Gamma,
    ] {
        let cluster = Cluster::build(&cfg_for(stack));
        let mut sim = Sim::new(1);
        let res = ping_pong(&cluster, &mut sim, stack, 256, 5);
        assert_eq!(res.rtt.count(), 5, "{stack:?}");
        let one_way = res.one_way().as_us_f64();
        assert!(
            (3.0..500.0).contains(&one_way),
            "{stack:?} one-way {one_way} us out of band"
        );
    }
}

#[test]
fn synchronous_stream_works_on_every_stack() {
    for stack in [
        StackKind::Clic,
        StackKind::Tcp,
        StackKind::MpiClic,
        StackKind::MpiTcp,
        StackKind::PvmTcp,
        StackKind::Gamma,
    ] {
        let cluster = Cluster::build(&cfg_for(stack));
        let mut sim = Sim::new(2);
        let res = stream(&cluster, &mut sim, stack, 16_384, 6);
        assert_eq!(res.msgs, 6, "{stack:?}");
        assert!(res.mbps() > 1.0, "{stack:?} bandwidth {:.1}", res.mbps());
        assert!(res.mbps() < 1_000.0, "{stack:?} exceeds the wire");
    }
}

#[test]
fn pipelined_stream_beats_synchronous() {
    // Offered load pipelines messages; the paper's synchronous benchmark
    // pays a round trip per message — the pipelined result must dominate.
    for stack in [StackKind::Clic, StackKind::Tcp] {
        let sync_mbps = {
            let cluster = Cluster::build(&cfg_for(stack));
            let mut sim = Sim::new(3);
            stream(&cluster, &mut sim, stack, 8_192, 12).mbps()
        };
        let pipe_mbps = {
            let cluster = Cluster::build(&cfg_for(stack));
            let mut sim = Sim::new(3);
            stream_pipelined(&cluster, &mut sim, stack, 8_192, 12).mbps()
        };
        assert!(
            pipe_mbps > sync_mbps,
            "{stack:?}: pipelined {pipe_mbps:.0} <= synchronous {sync_mbps:.0}"
        );
    }
}

#[test]
fn latency_ordering_matches_paper() {
    // GAMMA < CLIC < MPI-CLIC < MPI-TCP for small messages.
    let lat = |stack: StackKind| {
        let mut cfg = cfg_for(stack);
        if stack == StackKind::Clic || stack == StackKind::MpiClic {
            cfg.node.nic = CostModel::era_2002().nic_low_latency(false);
        }
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(4);
        ping_pong(&cluster, &mut sim, stack, 0, 8)
            .one_way()
            .as_us_f64()
    };
    let gamma = lat(StackKind::Gamma);
    let clic = lat(StackKind::Clic);
    let mpi_clic = lat(StackKind::MpiClic);
    let mpi_tcp = lat(StackKind::MpiTcp);
    assert!(gamma < clic, "GAMMA {gamma} < CLIC {clic}");
    assert!(clic < mpi_clic, "CLIC {clic} < MPI-CLIC {mpi_clic}");
    assert!(
        mpi_clic < mpi_tcp,
        "MPI-CLIC {mpi_clic} < MPI-TCP {mpi_tcp}"
    );
}

#[test]
fn request_reply_cycle_times_scale_with_size() {
    let cluster = Cluster::build(&cfg_for(StackKind::Clic));
    let mut sim = Sim::new(5);
    let small = request_reply_cycles(&cluster, &mut sim, StackKind::Clic, 64, 4, 4)
        .mean()
        .unwrap();
    let cluster = Cluster::build(&cfg_for(StackKind::Clic));
    let mut sim = Sim::new(5);
    let large = request_reply_cycles(&cluster, &mut sim, StackKind::Clic, 262_144, 4, 4)
        .mean()
        .unwrap();
    assert!(
        large > small * 10,
        "256 KB cycle {large} must dwarf 64 B cycle {small}"
    );
}

#[test]
fn stream_reports_cpu_utilisation() {
    let cluster = Cluster::build(&cfg_for(StackKind::Clic));
    let mut sim = Sim::new(6);
    let res = stream_pipelined(&cluster, &mut sim, StackKind::Clic, 65_536, 32);
    assert!(res.sender_cpu > 0.0 && res.sender_cpu <= 1.5);
    assert!(res.receiver_cpu > 0.05, "receiver must be visibly busy");
    // Receiver does more work per byte than the sender under CLIC 0-copy.
    assert!(res.receiver_cpu > res.sender_cpu);
}
