//! Smoke tests: every experiment function runs on a tiny grid and returns
//! structurally sound results (the full grids are exercised by the
//! `figures` binary and Criterion benches).

use clic_cluster::experiments::{self, Series};

fn tiny() -> Vec<usize> {
    vec![1_024, 65_536]
}

fn check_series(series: &[Series], expected_labels: &[&str], sizes: usize) {
    assert_eq!(series.len(), expected_labels.len());
    for (s, label) in series.iter().zip(expected_labels) {
        assert_eq!(&s.label, label);
        assert_eq!(s.points.len(), sizes);
        for p in &s.points {
            assert!(p.mbps.is_finite() && p.mbps > 0.0, "{label} @{}", p.size);
            assert!(p.mbps < 1_000.0, "{label} exceeds the wire");
        }
        // Bandwidth grows with message size on this grid.
        assert!(s.points[0].mbps < s.points[1].mbps, "{label} must rise");
    }
}

#[test]
fn fig4_structure() {
    let series = experiments::fig4(&tiny());
    check_series(
        &series,
        &[
            "0-copy MTU 9000",
            "0-copy MTU 1500",
            "1-copy MTU 9000",
            "1-copy MTU 1500",
        ],
        2,
    );
    // 0-copy beats 1-copy at the large point, per MTU.
    assert!(series[0].points[1].mbps > series[2].points[1].mbps);
    assert!(series[1].points[1].mbps > series[3].points[1].mbps);
}

#[test]
fn fig5_structure() {
    let series = experiments::fig5(&tiny());
    check_series(
        &series,
        &["CLIC 9000", "CLIC 1500", "TCP 9000", "TCP 1500"],
        2,
    );
}

#[test]
fn fig6_structure() {
    let series = experiments::fig6(&tiny());
    check_series(&series, &["CLIC", "MPI-CLIC", "MPI-TCP", "PVM-TCP"], 2);
    // The paper's stack ordering at the large point.
    let at = |i: usize| series[i].points[1].mbps;
    assert!(at(0) >= at(1) * 0.98, "CLIC >= MPI-CLIC (within noise)");
    assert!(at(1) > at(2), "MPI-CLIC > MPI-TCP");
    assert!(at(2) > at(3), "MPI-TCP > PVM-TCP");
}

#[test]
fn fig7_structure() {
    for direct in [false, true] {
        let rows = experiments::fig7(direct);
        assert!(rows.iter().any(|r| r.stage == "driver_rx"));
        assert!(rows.iter().any(|r| r.stage == "syscall"));
        assert!(rows.iter().all(|r| r.us >= 0.0 && r.us < 100.0));
        let has_bh = rows.iter().any(|r| r.stage == "bottom_half");
        assert_eq!(has_bh, !direct, "direct call skips the bottom half");
    }
}

#[test]
fn gamma_table_structure() {
    let rows = experiments::gamma_table(&tiny());
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].protocol, "CLIC");
    assert!(rows[1].protocol.starts_with("GAMMA"));
    assert!(rows[1].latency_us < rows[0].latency_us, "GAMMA is faster");
    assert!(rows[1].bandwidth_mbps > rows[0].bandwidth_mbps);
}

#[test]
fn coalescing_rows_trade_latency_for_interrupt_rate() {
    let rows = experiments::ablation_coalescing();
    assert!(rows.len() >= 4);
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    assert!(
        last.latency_us > first.latency_us * 2.0,
        "coalescing delays singles"
    );
    assert!(
        last.irqs_per_kframe < first.irqs_per_kframe,
        "but batches interrupts"
    );
}

#[test]
fn bonding_scales_only_with_the_fast_bus() {
    let rows = experiments::ablation_bonding();
    assert_eq!(rows.len(), 3);
    // Paper-era PCI: flat (within 10 %).
    assert!(rows[2].mbps_pci33 > rows[0].mbps_pci33 * 0.85);
    assert!(rows[2].mbps_pci33 < rows[0].mbps_pci33 * 1.15);
    // Fast bus: clearly scales.
    assert!(rows[2].mbps_pci66 > rows[0].mbps_pci66 * 1.5);
}

#[test]
fn syscall_rows_close_together() {
    let rows = experiments::ablation_syscall();
    assert_eq!(rows.len(), 2);
    let diff = (rows[0].latency_us - rows[1].latency_us).abs();
    assert!(diff < 2.0, "the syscall tax is sub-2 us: {diff}");
}

#[test]
fn loss_rows_monotone() {
    let rows = experiments::ablation_loss();
    for w in rows.windows(2) {
        assert!(w[1].mbps < w[0].mbps, "goodput falls with loss");
        assert!(w[1].retx_per_kpkt >= w[0].retx_per_kpkt);
    }
}

#[test]
fn cpu_rows_reproduce_section2() {
    let rows = experiments::ablation_cpu();
    let find = |stack: &str, link: u64| {
        rows.iter()
            .find(|r| r.stack == stack && r.link_mbps == link)
            .unwrap()
    };
    let tcp_fe = find("TCP", 100);
    let tcp_ge = find("TCP", 1000);
    assert!(tcp_fe.pct_of_wire > 80.0, "Fast Ethernet nearly saturated");
    assert!(tcp_ge.pct_of_wire < 40.0, "gigabit nowhere near the wire");
    assert!(tcp_ge.receiver_cpu > 0.8, "receiver pinned at gigabit");
}

#[test]
fn path_rows_reproduce_figure1_story() {
    let rows = experiments::ablation_paths();
    let find = |path: u8, link: u64| {
        rows.iter()
            .find(|r| r.path == path && r.link_mbps == link)
            .unwrap()
            .mbps
    };
    // Fast Ethernet: all paths within 10 %.
    assert!(find(4, 100) > find(2, 100) * 0.9);
    // Gigabit: path 4 clearly behind path 2.
    assert!(find(4, 1000) < find(2, 1000) * 0.7);
}

#[test]
fn scaling_rows_grow_aggregate() {
    let rows = experiments::ablation_scaling();
    assert_eq!(rows.len(), 3);
    assert!(rows[1].aggregate_mbps > rows[0].aggregate_mbps * 1.4);
    assert!(rows[2].aggregate_mbps > rows[1].aggregate_mbps * 1.4);
    // Per-node throughput stays in the same band (receiver-bound).
    for r in &rows {
        assert!((150.0..500.0).contains(&r.per_node_mbps), "{r:?}");
    }
}
