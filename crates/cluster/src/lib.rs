//! # clic-cluster — cluster assembly, workloads and paper experiments
//!
//! Puts the pieces together into simulated clusters and drives the
//! workloads that regenerate every figure of the paper's evaluation:
//!
//! * [`calibration`] — the single place all cost-model constants come
//!   from, with their paper provenance.
//! * [`node`] — one host: CPU + kernel + PCI + NIC(s) + any of the CLIC /
//!   TCP-IP / GAMMA stacks.
//! * [`builder`] — two-node back-to-back or N-node switched clusters,
//!   optional channel bonding and loss injection.
//! * [`lifecycle`] — schedulable node crash-stop / crash-restart and link
//!   flap: the fault actuators behind the chaos-soak harness.
//! * [`workload`] — ping-pong latency and unidirectional streaming
//!   bandwidth drivers for every stack (raw CLIC, TCP, MPI-CLIC, MPI-TCP,
//!   PVM-TCP, GAMMA), plus the chaos-soak and incast robustness
//!   workloads.
//! * [`jobs`] — the unit of experiment execution: every figure point is a
//!   self-contained, named [`jobs::JobSpec`] that builds its own cluster,
//!   runs one measurement and returns a flat [`jobs::Measurement`]. Jobs
//!   are pure and `Send`, so any scheduler (serial, thread pool, cached)
//!   can run them.
//! * [`experiments`] — one function per paper figure/table plus the
//!   ablations listed in DESIGN.md §4: per-figure job builders and
//!   order-independent assemblers, returning structured rows the
//!   `clic-bench` harness prints.
//! * [`observe`] — traced pipeline runs for the observability tooling:
//!   Chrome trace-event JSON, per-stage breakdowns for any message size
//!   and MTU, and merged per-node metric registries.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod calibration;
pub mod experiments;
pub mod jobs;
pub mod lifecycle;
pub mod node;
pub mod observe;
pub mod workload;

pub use builder::{Cluster, ClusterConfig, Topology};
pub use calibration::CostModel;
pub use node::{Node, NodeConfig};
pub use observe::{
    run_collective_trace, run_pipeline_trace, CollectiveTrace, PipelineTrace, TraceScenario,
};
pub use workload::{
    collective_scale, mpi_all, ping_pong, stream, CollScaleResult, PingPongResult, StackKind,
    StreamResult,
};
