//! Cluster construction.

use crate::calibration::CostModel;
use crate::node::{Node, NodeConfig};
use clic_ethernet::{Fabric, FabricSpec, FaultPlan, Link, LinkEnd, LossModel, MacAddr, Switch};
use clic_tcpip::IpAddr;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Physical layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Two nodes wired NIC-to-NIC (supports channel bonding: one direct
    /// link per NIC pair). The paper's measurement setup.
    BackToBack,
    /// A star around one store-and-forward switch (single NIC per node).
    Switched,
    /// A two-tier leaf–spine fabric sized for the node count
    /// ([`FabricSpec::leaf_spine_for`]): hosts on leaves, every leaf
    /// trunked to every spine, deterministic ECMP across spines.
    LeafSpine,
    /// A three-tier fat-tree fabric sized for the node count
    /// ([`FabricSpec::fat_tree_for`]): edge/aggregation pods under a core
    /// layer.
    FatTree,
}

impl Topology {
    /// True for the multi-switch fabric layouts.
    pub fn is_fabric(self) -> bool {
        matches!(self, Topology::LeafSpine | Topology::FatTree)
    }
}

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Layout.
    pub topology: Topology,
    /// Per-node stack configuration.
    pub node: NodeConfig,
    /// Loss model applied to every link (both directions). Kept as the
    /// simple historical knob; ignored when `faults` installs its own
    /// loss model.
    pub loss: LossModel,
    /// Full fault plan applied to every link, both directions (loss,
    /// corruption, duplication, reordering, outages). When its loss model
    /// is `LossModel::None`, the legacy `loss` field fills it in.
    pub faults: FaultPlan,
    /// Optional distinct fault plan for the reverse direction (towards
    /// the lower-numbered node: node1→node0 back-to-back, node→switch
    /// uplinks when switched). `None` applies `faults` symmetrically.
    pub faults_reverse: Option<FaultPlan>,
    /// ECN-style mark threshold (frames) armed on every switch output
    /// queue: a CLIC data frame enqueued at or above this backlog gets its
    /// congestion-experienced bit set ([`Switch::try_set_mark_threshold`]).
    /// `None` (the default everywhere) leaves the fabric drop-only.
    /// Meaningless for [`Topology::BackToBack`].
    pub mark_threshold: Option<usize>,
    /// Cost model (link speed, TCP costs...).
    pub model: CostModel,
}

impl ClusterConfig {
    /// The paper's measurement pair: two CLIC nodes back to back.
    pub fn paper_pair() -> ClusterConfig {
        let model = CostModel::era_2002();
        ClusterConfig {
            nodes: 2,
            topology: Topology::BackToBack,
            node: NodeConfig::clic_default(&model),
            loss: LossModel::None,
            faults: FaultPlan::default(),
            faults_reverse: None,
            mark_threshold: None,
            model,
        }
    }
}

/// A built cluster.
pub struct Cluster {
    /// The nodes, indexed by id.
    pub nodes: Vec<Node>,
    /// The switch (switched topology only).
    pub switch: Option<Rc<RefCell<Switch>>>,
    /// The multi-switch fabric (leaf–spine / fat-tree topologies only).
    pub fabric: Option<Fabric>,
    /// All access links, for loss/statistics access.
    pub links: Vec<Rc<RefCell<Link>>>,
}

impl Cluster {
    /// Build a cluster per `config`.
    pub fn build(config: &ClusterConfig) -> Cluster {
        let mut neighbors: BTreeMap<IpAddr, MacAddr> = BTreeMap::new();
        for id in 0..config.nodes as u32 {
            neighbors.insert(IpAddr::for_node(id), MacAddr::for_node(id, 0));
        }
        let mk_link = || {
            let link = Link::new(config.model.link_bps, config.model.propagation);
            // The forward plan covers LinkEnd::A (the lower-numbered node,
            // or the node side of a switch uplink); the legacy `loss`
            // field backfills a plan that doesn't set its own loss model.
            let mut forward = config.faults.clone();
            if forward.loss == LossModel::None {
                forward.loss = config.loss;
            }
            let reverse = match &config.faults_reverse {
                Some(plan) => plan.clone(),
                None => forward.clone(),
            };
            link.borrow_mut().set_faults(LinkEnd::A, forward);
            link.borrow_mut().set_faults(LinkEnd::B, reverse);
            link
        };
        match config.topology {
            Topology::BackToBack => {
                assert_eq!(config.nodes, 2, "back-to-back means two nodes");
                let width = config.node.nics;
                let links: Vec<_> = (0..width).map(|_| mk_link()).collect();
                let a = Node::build(
                    0,
                    &config.node,
                    links.iter().map(|l| (l.clone(), LinkEnd::A)).collect(),
                    &neighbors,
                    config.model.tcpip,
                );
                let b = Node::build(
                    1,
                    &config.node,
                    links.iter().map(|l| (l.clone(), LinkEnd::B)).collect(),
                    &neighbors,
                    config.model.tcpip,
                );
                Cluster {
                    nodes: vec![a, b],
                    switch: None,
                    fabric: None,
                    links,
                }
            }
            Topology::Switched => {
                assert_eq!(
                    config.node.nics, 1,
                    "bonding through a switch is unsupported"
                );
                let switch = Switch::gigabit_default();
                if let Some(t) = config.mark_threshold {
                    if let Err(e) = switch.borrow_mut().try_set_mark_threshold(t) {
                        panic!("{e}");
                    }
                }
                let mut nodes = Vec::new();
                let mut links = Vec::new();
                for id in 0..config.nodes as u32 {
                    let link = mk_link();
                    Switch::attach_port(&switch, link.clone(), LinkEnd::B);
                    nodes.push(Node::build(
                        id,
                        &config.node,
                        vec![(link.clone(), LinkEnd::A)],
                        &neighbors,
                        config.model.tcpip,
                    ));
                    links.push(link);
                }
                Cluster {
                    nodes,
                    switch: Some(switch),
                    fabric: None,
                    links,
                }
            }
            Topology::LeafSpine | Topology::FatTree => {
                assert_eq!(
                    config.node.nics, 1,
                    "bonding through a fabric is unsupported"
                );
                let mut nodes = Vec::new();
                let mut links = Vec::new();
                let mut hosts = Vec::new();
                for id in 0..config.nodes as u32 {
                    let link = mk_link();
                    nodes.push(Node::build(
                        id,
                        &config.node,
                        vec![(link.clone(), LinkEnd::A)],
                        &neighbors,
                        config.model.tcpip,
                    ));
                    hosts.push((MacAddr::for_node(id, 0), link.clone(), LinkEnd::B));
                    links.push(link);
                }
                let spec = match config.topology {
                    Topology::LeafSpine => FabricSpec::leaf_spine_for(config.nodes),
                    _ => FabricSpec::fat_tree_for(config.nodes),
                };
                let fabric = Fabric::build(&spec, &hosts);
                if let Some(t) = config.mark_threshold {
                    for sw in fabric.switches() {
                        if let Err(e) = sw.borrow_mut().try_set_mark_threshold(t) {
                            panic!("{e}");
                        }
                    }
                }
                Cluster {
                    nodes,
                    switch: None,
                    fabric: Some(fabric),
                    links,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pair_builds() {
        let cluster = Cluster::build(&ClusterConfig::paper_pair());
        assert_eq!(cluster.nodes.len(), 2);
        assert!(cluster.nodes[0].clic.is_some());
        assert!(cluster.nodes[0].tcp.is_none());
        assert!(cluster.switch.is_none());
        assert_eq!(cluster.links.len(), 1);
    }

    #[test]
    fn switched_cluster_builds() {
        let model = CostModel::era_2002();
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = 4;
        cfg.topology = Topology::Switched;
        cfg.node = NodeConfig::tcp_default(&model);
        let cluster = Cluster::build(&cfg);
        assert_eq!(cluster.nodes.len(), 4);
        assert!(cluster.nodes[0].tcp.is_some());
        assert!(cluster.switch.is_some());
        assert_eq!(cluster.switch.as_ref().unwrap().borrow().port_count(), 4);
    }

    #[test]
    fn bonded_pair_builds() {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.node.nics = 3;
        let cluster = Cluster::build(&cfg);
        assert_eq!(cluster.links.len(), 3);
        assert_eq!(cluster.nodes[0].kernel.borrow().device_count(), 3);
        // Bonded NICs share the station MAC.
        let k = cluster.nodes[0].kernel.borrow();
        let macs: Vec<_> = (0..3).map(|d| k.device(d).borrow().mac()).collect();
        assert!(macs.iter().all(|&m| m == cluster.nodes[0].mac));
    }

    #[test]
    fn fault_plans_reach_the_links() {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.loss = LossModel::EveryNth(5);
        cfg.faults.corrupt = 0.25;
        cfg.faults_reverse = Some(FaultPlan::default());
        let cluster = Cluster::build(&cfg);
        let link = cluster.links[0].borrow();
        // Forward (node0→node1): legacy loss backfilled + corruption.
        assert_eq!(link.faults(LinkEnd::A).loss, LossModel::EveryNth(5));
        assert_eq!(link.faults(LinkEnd::A).corrupt, 0.25);
        // Reverse overridden to clean.
        assert_eq!(*link.faults(LinkEnd::B), FaultPlan::default());
    }

    #[test]
    fn mark_threshold_reaches_every_switch() {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = 8;
        cfg.topology = Topology::LeafSpine;
        cfg.mark_threshold = Some(16);
        let cluster = Cluster::build(&cfg);
        let fabric = cluster.fabric.as_ref().unwrap();
        assert!(
            fabric.switches().len() > 1,
            "leaf-spine has several switches"
        );
        for sw in fabric.switches() {
            assert_eq!(sw.borrow().mark_threshold(), Some(16));
        }
        cfg.topology = Topology::Switched;
        let cluster = Cluster::build(&cfg);
        let sw = cluster.switch.as_ref().unwrap();
        assert_eq!(sw.borrow().mark_threshold(), Some(16));
    }

    #[test]
    #[should_panic(expected = "queue_limit")]
    fn mark_threshold_above_capacity_panics_at_build() {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = 4;
        cfg.topology = Topology::Switched;
        cfg.mark_threshold = Some(128); // gigabit_default queue_limit
        Cluster::build(&cfg);
    }

    #[test]
    #[should_panic(expected = "two nodes")]
    fn back_to_back_requires_two() {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = 3;
        Cluster::build(&cfg);
    }
}
