//! One simulated host.

use crate::calibration::CostModel;
use clic_core::{ClicConfig, ClicModule};
use clic_ethernet::{Link, LinkEnd, MacAddr};
use clic_gamma::GammaModule;
use clic_hw::{Nic, NicConfig, PciBus};
use clic_os::{Kernel, OsCosts};
use clic_tcpip::{IpAddr, IpLayer, TcpStack, UdpStack};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which protocol stacks to install on a node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// NIC configuration (MTU, rings, coalescing, offloads).
    pub nic: NicConfig,
    /// Kernel cost model.
    pub os: OsCosts,
    /// Install CLIC with this configuration.
    pub clic: Option<ClicConfig>,
    /// Install the TCP/IP baseline.
    pub tcpip: bool,
    /// Install the GAMMA-like baseline (forces direct dispatch and GAMMA's
    /// tuned driver/NIC settings).
    pub gamma: bool,
    /// Number of NICs (channel bonding when > 1; all share the bond MAC).
    pub nics: usize,
    /// Figure 8b: drivers call protocol modules directly from the IRQ.
    pub direct_dispatch: bool,
    /// Use a 66 MHz/64-bit PCI bus instead of the testbed's 33/32 one.
    pub fast_pci: bool,
}

impl NodeConfig {
    /// CLIC-only node per the paper's default evaluation setup.
    pub fn clic_default(model: &CostModel) -> NodeConfig {
        NodeConfig {
            nic: model.nic_standard(),
            os: model.os,
            clic: Some(model.clic.clone()),
            tcpip: false,
            gamma: false,
            nics: 1,
            direct_dispatch: false,
            fast_pci: false,
        }
    }

    /// TCP/IP-only node.
    pub fn tcp_default(model: &CostModel) -> NodeConfig {
        NodeConfig {
            clic: None,
            tcpip: true,
            ..Self::clic_default(model)
        }
    }

    /// GAMMA-only node with GAMMA's tuned driver and NIC settings.
    pub fn gamma_default(_model: &CostModel) -> NodeConfig {
        NodeConfig {
            nic: GammaModule::tuned_nic_config(),
            os: GammaModule::tuned_os_costs(),
            clic: None,
            tcpip: false,
            gamma: true,
            nics: 1,
            direct_dispatch: true,
            fast_pci: false,
        }
    }
}

/// A built host.
pub struct Node {
    /// Node id (also its rank in workloads).
    pub id: u32,
    /// The kernel.
    pub kernel: Rc<RefCell<Kernel>>,
    /// CLIC module, when installed.
    pub clic: Option<Rc<RefCell<ClicModule>>>,
    /// IP layer, when TCP/IP is installed.
    pub ip_layer: Option<Rc<RefCell<IpLayer>>>,
    /// TCP, when installed.
    pub tcp: Option<Rc<RefCell<TcpStack>>>,
    /// UDP, when installed.
    pub udp: Option<Rc<RefCell<UdpStack>>>,
    /// GAMMA module, when installed.
    pub gamma: Option<Rc<RefCell<GammaModule>>>,
    /// Station address (bond MAC when multiple NICs).
    pub mac: MacAddr,
    /// IP address (when TCP/IP installed).
    pub ip: IpAddr,
    /// The NICs themselves (one per link), for features driven from the
    /// NIC rather than through the kernel — e.g. arming the NIC-resident
    /// collective engine.
    pub nics: Vec<Rc<RefCell<Nic>>>,
}

impl Node {
    /// Build a node attached to `links` (one NIC per link; all NICs share
    /// the node's MAC so channel bonding presents one station).
    pub fn build(
        id: u32,
        config: &NodeConfig,
        links: Vec<(Rc<RefCell<Link>>, LinkEnd)>,
        neighbors: &BTreeMap<IpAddr, MacAddr>,
        tcpip_costs: clic_tcpip::TcpIpCosts,
    ) -> Node {
        assert_eq!(links.len(), config.nics, "one link per NIC");
        let kernel = Kernel::new(id, config.os);
        kernel.borrow_mut().direct_dispatch = config.direct_dispatch;
        let pci = if config.fast_pci {
            PciBus::pci_66mhz_64bit()
        } else {
            PciBus::pci_33mhz_32bit()
        };
        let mac = MacAddr::for_node(id, 0);
        let mut devs = Vec::new();
        let mut nics = Vec::new();
        for (link, end) in links {
            let nic = Nic::new(mac, config.nic.clone(), pci.clone(), link, end);
            Nic::attach_to_link(&nic);
            nics.push(nic.clone());
            devs.push(Kernel::add_device(&kernel, nic));
        }
        let clic = config
            .clic
            .as_ref()
            .map(|cfg| ClicModule::install(&kernel, devs.clone(), cfg.clone()));
        let ip = IpAddr::for_node(id);
        let (ip_layer, tcp, udp) = if config.tcpip {
            let layer = IpLayer::install(&kernel, devs[0], ip, neighbors.clone(), tcpip_costs);
            let tcp = TcpStack::install(&kernel, &layer);
            let udp = UdpStack::install(&kernel, &layer);
            (Some(layer), Some(tcp), Some(udp))
        } else {
            (None, None, None)
        };
        let gamma = if config.gamma {
            Some(GammaModule::install(&kernel, devs[0]))
        } else {
            None
        };
        Node {
            id,
            kernel,
            clic,
            ip_layer,
            tcp,
            udp,
            gamma,
            mac,
            ip,
            nics,
        }
    }

    /// The node's (first) NIC — the one collectives are offloaded to.
    pub fn nic(&self) -> Rc<RefCell<Nic>> {
        self.nics[0].clone()
    }

    /// CLIC module (panics when not installed).
    pub fn clic(&self) -> Rc<RefCell<ClicModule>> {
        self.clic.clone().expect("CLIC not installed on this node")
    }

    /// TCP stack (panics when not installed).
    pub fn tcp(&self) -> Rc<RefCell<TcpStack>> {
        self.tcp.clone().expect("TCP/IP not installed on this node")
    }

    /// GAMMA module (panics when not installed).
    pub fn gamma(&self) -> Rc<RefCell<GammaModule>> {
        self.gamma
            .clone()
            .expect("GAMMA not installed on this node")
    }
}
