//! Cross-layer observability: traced pipeline runs, breakdown reports
//! and per-node metric collection.
//!
//! [`run_pipeline_trace`] drives one traced message of any size through a
//! two-node cluster at any MTU and returns everything the `figures trace`
//! subcommand needs: Chrome trace-event JSON (load it in Perfetto or
//! `chrome://tracing`), a per-stage breakdown table, and the merged
//! metrics registry. With the defaults (`fig7a`, 1400 bytes, MTU 1500)
//! the span durations are exactly Figure 7a's stage timings.

use crate::builder::{Cluster, ClusterConfig, Topology};
use crate::calibration::CostModel;
use crate::experiments::{
    chaos_pair, clic_pair, congestion_cluster, incast_cluster, reliability_loss, tcp_pair,
};
use crate::workload::{chaos_clic, incast_clic, request_reply_cycles, ChaosPlan, StackKind};
use bytes::Bytes;
use clic_sim::{Metrics, Sim, SimDuration, StageSpan, TimelineRecorder};
use clic_tcpip::TcpStack;

/// Trace id carried by the instrumented message (0 means untraced, so any
/// non-zero constant works; 42 matches the Figure 7 experiment).
pub const TRACE_ID: u64 = 42;

/// Which pipeline the traced message crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceScenario {
    /// CLIC with the portable interrupt + bottom-half receive path
    /// (Figure 7a).
    Fig7a,
    /// CLIC with direct dispatch from the IRQ and host-memory rings
    /// (the Figure 8b improvement; Figure 7b).
    Fig7b,
    /// The Figure 7a pipeline over a lossy forward link (every 4th frame
    /// dropped, clean reverse path, aggressive fast retransmit) — shows
    /// the recovery machinery (`rto` / `fast_retransmit` instants) in the
    /// trace.
    Fig7aLossy,
    /// The TCP/IP baseline on the same latency-tuned hardware.
    Tcp,
}

impl TraceScenario {
    /// Every scenario, in display order.
    pub const ALL: [TraceScenario; 4] = [
        TraceScenario::Fig7a,
        TraceScenario::Fig7b,
        TraceScenario::Fig7aLossy,
        TraceScenario::Tcp,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            TraceScenario::Fig7a => "fig7a",
            TraceScenario::Fig7b => "fig7b",
            TraceScenario::Fig7aLossy => "fig7a-lossy",
            TraceScenario::Tcp => "tcp",
        }
    }

    /// Parse a CLI spelling (`fig7a`/`7a`, `fig7b`/`7b`, `fig7a-lossy`/
    /// `lossy`, `tcp`).
    pub fn parse(s: &str) -> Option<TraceScenario> {
        match s {
            "fig7a" | "7a" | "clic" => Some(TraceScenario::Fig7a),
            "fig7b" | "7b" | "direct" => Some(TraceScenario::Fig7b),
            "fig7a-lossy" | "lossy" => Some(TraceScenario::Fig7aLossy),
            "tcp" => Some(TraceScenario::Tcp),
            _ => None,
        }
    }
}

/// One row of the pipeline-breakdown report: a `(layer, stage)` pair
/// aggregated over every span the traced message produced (fragmented
/// messages cross a stage once per packet).
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Emitting layer's display name.
    pub layer: &'static str,
    /// Stage name.
    pub stage: &'static str,
    /// Spans aggregated into this row.
    pub count: u64,
    /// Summed span duration, µs.
    pub total_us: f64,
}

impl BreakdownRow {
    /// Mean span duration, µs.
    pub fn mean_us(&self) -> f64 {
        self.total_us / self.count as f64
    }
}

/// Everything one traced pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineTrace {
    /// The scenario that ran.
    pub scenario: TraceScenario,
    /// Message size, bytes.
    pub size: usize,
    /// Device MTU, bytes.
    pub mtu: usize,
    /// Chrome trace-event JSON of the whole run (all layers, all ids).
    pub chrome_json: String,
    /// The traced message's spans, in pipeline order (strict: the run
    /// panics on unmatched begin/end marks).
    pub spans: Vec<StageSpan>,
    /// Per-stage aggregation of `spans`, in first-appearance order.
    pub breakdown: Vec<BreakdownRow>,
    /// Live metrics merged with per-node `n{id}.`-prefixed stat snapshots.
    pub metrics: Metrics,
}

fn trace_config(scenario: TraceScenario, mtu: usize) -> ClusterConfig {
    let model = CostModel::era_2002();
    let jumbo = mtu > 1500;
    let mut cfg = match scenario {
        TraceScenario::Fig7a | TraceScenario::Fig7b | TraceScenario::Fig7aLossy => {
            clic_pair(&model, jumbo, true)
        }
        TraceScenario::Tcp => tcp_pair(&model, jumbo),
    };
    cfg.node.nic = model.nic_low_latency(jumbo);
    cfg.node.nic.mtu = mtu;
    if scenario == TraceScenario::Fig7b {
        cfg.node.direct_dispatch = true;
        cfg.node.nic.host_rings = true;
    }
    if scenario == TraceScenario::Fig7aLossy {
        // Deterministic loss on the data direction only (ACKs come back
        // clean), and a hair-trigger fast retransmit so a short trace
        // shows both recovery paths.
        cfg.faults.loss = clic_ethernet::LossModel::EveryNth(4);
        cfg.faults_reverse = Some(clic_ethernet::FaultPlan::default());
        if let Some(clic) = &mut cfg.node.clic {
            clic.fast_retransmit_dupacks = 2;
        }
    }
    cfg
}

fn send_clic(cluster: &Cluster, sim: &mut Sim, size: usize) {
    const CH: u16 = 100;
    let a = &cluster.nodes[0];
    let b = &cluster.nodes[1];
    let pid_a = a.kernel.borrow_mut().processes.spawn("tx");
    let pid_b = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = clic_core::ClicPort::bind(&a.clic(), pid_a, CH);
    let rx = clic_core::ClicPort::bind(&b.clic(), pid_b, CH);
    rx.recv(sim, |_s, _m| {});
    let data = Bytes::from(vec![0x55u8; size]);
    tx.send_traced(sim, b.mac, CH, data, TRACE_ID);
}

fn send_tcp(cluster: &Cluster, sim: &mut Sim, size: usize) {
    const PORT: u16 = 9000;
    let a = cluster.nodes[0].tcp();
    let b = cluster.nodes[1].tcp();
    let b2 = b.clone();
    b.borrow_mut().listen(PORT, move |sim, conn| {
        TcpStack::recv(&b2, sim, conn, size, |_s, _m| {});
    });
    let dst = cluster.nodes[1].ip;
    TcpStack::connect(&a.clone(), sim, dst, PORT, move |sim, conn| {
        let data = Bytes::from(vec![0x55u8; size]);
        TcpStack::send_traced(&a, sim, conn, data, TRACE_ID);
    });
}

/// Run one traced `size`-byte message through `scenario`'s pipeline at
/// device MTU `mtu`. The run is deterministic for a given `seed`: the
/// returned JSON, breakdown and metrics dump are byte-stable.
pub fn run_pipeline_trace(
    scenario: TraceScenario,
    size: usize,
    mtu: usize,
    seed: u64,
) -> PipelineTrace {
    assert!(size >= 1, "traced message must carry at least one byte");
    assert!((128..=9_000).contains(&mtu), "MTU {mtu} outside 128..=9000");
    // Cold-start the buffer pool so the metrics dump's `sim.pool.*` lines
    // are a pure function of this trace run.
    bytes::pool::reset();
    let config = trace_config(scenario, mtu);
    let cluster = Cluster::build(&config);
    let mut sim = Sim::new(seed);
    sim.trace = clic_sim::Trace::enabled();
    sim.metrics = Metrics::enabled();
    match scenario {
        TraceScenario::Fig7a | TraceScenario::Fig7b | TraceScenario::Fig7aLossy => {
            send_clic(&cluster, &mut sim, size)
        }
        TraceScenario::Tcp => send_tcp(&cluster, &mut sim, size),
    }
    sim.run();
    let spans = sim
        .trace
        .spans_for(TRACE_ID)
        .expect("traced run left unmatched begin/end marks");
    debug_assert!(
        sim.trace.uncataloged_stages().is_empty(),
        "stages missing from crates/sim/src/catalog.rs: {:?}",
        sim.trace.uncataloged_stages()
    );
    let breakdown = breakdown_rows(&spans);
    let metrics = collect_metrics(&cluster, &sim);
    PipelineTrace {
        scenario,
        size,
        mtu,
        chrome_json: sim.trace.chrome_trace_json(),
        spans,
        breakdown,
        metrics,
    }
}

/// Everything one traced NIC-collective run produces.
#[derive(Debug, Clone)]
pub struct CollectiveTrace {
    /// Participating nodes.
    pub nodes: usize,
    /// Chrome trace-event JSON of the whole barrier: the engines'
    /// `nic_coll_up` / `nic_coll_down` instants plus the wire spans of
    /// every control frame crossing the fabric.
    pub chrome_json: String,
    /// Live metrics merged with per-node stat snapshots.
    pub metrics: Metrics,
}

/// Run one traced NIC-offloaded barrier across a `nodes`-host leaf–spine
/// fabric and return the Chrome trace. Every engine message carries
/// [`TRACE_ID`], so the up-phase combining and the single multicast
/// release are visible as instant events per NIC. Deterministic for a
/// given `seed`: the JSON is byte-stable (golden-file tested).
pub fn run_collective_trace(nodes: usize, seed: u64) -> CollectiveTrace {
    use clic_hw::coll::CollConfig;
    use clic_hw::Nic;

    assert!(nodes >= 2, "a barrier needs at least two ranks");
    bytes::pool::reset();
    let model = CostModel::era_2002();
    let config =
        crate::experiments::scale_cluster(&model, nodes, crate::builder::Topology::LeafSpine);
    let cluster = Cluster::build(&config);
    let mut sim = Sim::new(seed);
    sim.trace = clic_sim::Trace::enabled();
    sim.metrics = Metrics::enabled();

    let members: Vec<_> = cluster.nodes.iter().map(|n| n.mac).collect();
    let released = std::rc::Rc::new(std::cell::RefCell::new(0usize));
    for (rank, node) in cluster.nodes.iter().enumerate() {
        let nic = node.nic();
        let mut coll = CollConfig::new(1, members.clone(), rank);
        coll.trace = TRACE_ID;
        Nic::enable_collectives(&nic, coll);
        let r = released.clone();
        Nic::coll_barrier(&nic, &mut sim, move |_sim| *r.borrow_mut() += 1);
    }
    sim.run();
    assert_eq!(*released.borrow(), nodes, "every rank must be released");
    let metrics = collect_metrics(&cluster, &sim);
    CollectiveTrace {
        nodes,
        chrome_json: sim.trace.chrome_trace_json(),
        metrics,
    }
}

/// Which scenario a timeline run replays. Each is a fixed, fully
/// parameterised cell from an existing figure family, so the recorded
/// series are directly comparable with the corresponding figure rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineScenario {
    /// One 64 KiB traced CLIC message through the Figure 7a pipeline at
    /// MTU 1500 — the window/in-flight ramp of a single fragmented send.
    Fig7a,
    /// 32 request/reply cycles of 64 KiB over a 2 % uniform-loss link —
    /// retransmission stalls show up as plateaus in the in-flight series.
    Reliability,
    /// The 5-node budget-bounded incast cell: four senders into one
    /// consumer-paced receiver. Switch queue depth and receiver buffer
    /// occupancy are the headline series.
    Incast,
    /// A lossy chaos soak (crash/restart plus link flaps), recorded in
    /// flight-recorder mode: only the last [`CHAOS_FLIGHT_BUCKETS`]
    /// buckets per series survive, as a crash-dump recorder would keep.
    Chaos,
    /// The ECN-enabled 8→1 incast cell from the congestion figure family:
    /// eight full-window senders into one leaf–spine receiver with switch
    /// marking armed and the DCTCP-flavoured congestion window active.
    /// The cwnd sawtooth (`clic.cwnd`), `clic.ssthresh` and the fabric's
    /// `eth.switch.ecn_marks` rate are the headline series.
    Congestion,
}

/// Ring capacity (sealed buckets per series) for the chaos scenario's
/// flight-recorder mode.
pub const CHAOS_FLIGHT_BUCKETS: usize = 512;

impl TimelineScenario {
    /// Every scenario, in display order.
    pub const ALL: [TimelineScenario; 5] = [
        TimelineScenario::Fig7a,
        TimelineScenario::Reliability,
        TimelineScenario::Incast,
        TimelineScenario::Chaos,
        TimelineScenario::Congestion,
    ];

    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            TimelineScenario::Fig7a => "fig7a",
            TimelineScenario::Reliability => "reliability",
            TimelineScenario::Incast => "incast",
            TimelineScenario::Chaos => "chaos",
            TimelineScenario::Congestion => "congestion",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<TimelineScenario> {
        match s {
            "fig7a" | "7a" => Some(TimelineScenario::Fig7a),
            "reliability" | "loss" => Some(TimelineScenario::Reliability),
            "incast" => Some(TimelineScenario::Incast),
            "chaos" => Some(TimelineScenario::Chaos),
            "congestion" | "cwnd" => Some(TimelineScenario::Congestion),
            _ => None,
        }
    }

    /// Ring capacity the scenario runs with by default: the chaos soak
    /// demonstrates flight-recorder mode, the rest keep full history.
    pub fn default_flight(self) -> Option<usize> {
        match self {
            TimelineScenario::Chaos => Some(CHAOS_FLIGHT_BUCKETS),
            _ => None,
        }
    }
}

/// Everything one timeline replay produces.
#[derive(Debug, Clone)]
pub struct TimelineRun {
    /// The scenario that ran.
    pub scenario: TimelineScenario,
    /// Bucket width used for sampling.
    pub bucket: SimDuration,
    /// Deterministic CSV dump of every recorded series
    /// ([`TimelineRecorder::dump`]).
    pub csv: String,
    /// Chrome trace-event JSON: the run's stage spans plus one counter
    /// track (`"ph": "C"`) per timeline series. Loadable in Perfetto.
    pub chrome_json: String,
    /// Number of recorded series.
    pub series: usize,
}

/// Replay `scenario` with the timeline recorder sampling into
/// `bucket`-wide bins, and return the plottable output. `flight` bounds
/// each series to its last N sealed buckets (ring mode); `None` keeps
/// full history. The run is single-simulation and seeded, so the CSV and
/// JSON are byte-stable regardless of how many worker threads the
/// calling harness uses.
pub fn run_timeline(
    scenario: TimelineScenario,
    bucket: SimDuration,
    flight: Option<usize>,
) -> TimelineRun {
    assert!(bucket.as_ns() > 0, "bucket width must be positive");
    // Cold-start the buffer pool for parity with the traced runs: the
    // timeline output must be a pure function of this replay.
    bytes::pool::reset();
    let model = CostModel::era_2002();
    let (config, seed) = match scenario {
        TimelineScenario::Fig7a => (trace_config(TraceScenario::Fig7a, 1500), 0),
        TimelineScenario::Reliability => {
            let mut cfg = clic_pair(&model, false, true);
            cfg.faults.loss = reliability_loss(0.02, false);
            (cfg, 21)
        }
        TimelineScenario::Incast => (incast_cluster(&model, 5, Some(64 * 1024)), 9),
        TimelineScenario::Chaos => (chaos_pair(&model, 0.5), 2),
        TimelineScenario::Congestion => {
            (congestion_cluster(&model, 9, Topology::LeafSpine, true), 11)
        }
    };
    let cluster = Cluster::build(&config);
    let mut sim = Sim::new(seed);
    sim.trace = clic_sim::Trace::enabled();
    sim.metrics = Metrics::enabled();
    sim.timeline = match flight {
        Some(n) => TimelineRecorder::flight_recorder(bucket, n),
        None => TimelineRecorder::enabled(bucket),
    };
    match scenario {
        TimelineScenario::Fig7a => send_clic(&cluster, &mut sim, 64 * 1024),
        TimelineScenario::Reliability => {
            request_reply_cycles(&cluster, &mut sim, StackKind::Clic, 65_536, 4, 32);
        }
        TimelineScenario::Incast => {
            incast_clic(&cluster, &mut sim, 8_192, 8, SimDuration::from_us(150));
        }
        TimelineScenario::Chaos => {
            let plan = ChaosPlan::draw(seed, 2, 2);
            chaos_clic(&cluster, &mut sim, 2_048, 40, &plan);
        }
        TimelineScenario::Congestion => {
            // Full-speed consumer: the fabric, not the application, is
            // the bottleneck, so marking drives the cwnd sawtooth.
            incast_clic(&cluster, &mut sim, 8_192, 12, SimDuration::ZERO);
        }
    }
    // Fig7a posts and returns; the workload runners drain the queue
    // themselves, in which case this is a no-op.
    sim.run();
    sim.timeline.finish(sim.now());
    let rows = sim.timeline.chrome_counter_rows();
    TimelineRun {
        scenario,
        bucket,
        csv: sim.timeline.dump(),
        chrome_json: sim.trace.chrome_trace_json_with(&rows),
        series: sim.timeline.series_count(),
    }
}

/// Aggregate spans into per-`(layer, stage)` rows, ordered by each
/// stage's first appearance (spans arrive sorted by begin time).
pub fn breakdown_rows(spans: &[StageSpan]) -> Vec<BreakdownRow> {
    let mut rows: Vec<BreakdownRow> = Vec::new();
    for s in spans {
        let us = s.duration().as_us_f64();
        match rows
            .iter_mut()
            .find(|r| r.stage == s.stage && r.layer == s.layer.name())
        {
            Some(r) => {
                // lint:allow(time-overflow, reason="span tally for a report row, not a timestamp; cannot plausibly wrap")
                r.count += 1;
                // lint:allow(time-overflow, reason="f64 accumulation of span microseconds; floats saturate, they do not wrap")
                r.total_us += us;
            }
            None => rows.push(BreakdownRow {
                layer: s.layer.name(),
                stage: s.stage,
                count: 1,
                total_us: us,
            }),
        }
    }
    rows
}

/// Render breakdown rows as the fixed-width table `figures trace` prints.
pub fn breakdown_table(rows: &[BreakdownRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:<6} {:>5} {:>10} {:>9}",
        "stage", "layer", "count", "total us", "mean us"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<16} {:<6} {:>5} {:>10.2} {:>9.2}",
            r.stage,
            r.layer,
            r.count,
            r.total_us,
            r.mean_us()
        )
        .unwrap();
    }
    out
}

/// Merge the simulation's live metrics with per-node counter snapshots
/// (kernel, NIC and CLIC stats under an `n{id}.` prefix, switch counters
/// under `eth.switch.`), yielding one registry whose [`Metrics::dump`]
/// is the `--metrics` report.
pub fn collect_metrics(cluster: &Cluster, sim: &Sim) -> Metrics {
    let mut reg = Metrics::enabled();
    reg.merge(&sim.metrics);
    for node in &cluster.nodes {
        let p = |name: &str| format!("n{}.{name}", node.id);
        let kernel = node.kernel.borrow();
        let ks = kernel.stats();
        reg.counter_add(&p("os.syscalls"), ks.syscalls);
        reg.counter_add(&p("os.lightweight_calls"), ks.lightweight_calls);
        reg.counter_add(&p("os.irqs"), ks.irqs);
        reg.counter_add(&p("os.bottom_halves"), ks.bhs);
        reg.counter_add(&p("os.context_switches"), ks.context_switches);
        reg.counter_add(&p("os.frames_received"), ks.frames_received);
        for dev in 0..kernel.device_count() {
            let ns = kernel.device(dev).borrow().stats();
            reg.counter_add(&p("hw.nic.tx_frames"), ns.tx_frames);
            reg.counter_add(&p("hw.nic.rx_frames"), ns.rx_frames);
            reg.counter_add(&p("hw.nic.tx_ring_full"), ns.tx_ring_full);
            reg.counter_add(&p("hw.nic.rx_no_buffer"), ns.rx_no_buffer);
            reg.counter_add(&p("hw.nic.rx_fcs_errors"), ns.rx_fcs_errors);
            reg.counter_add(&p("hw.nic.irqs"), ns.irqs);
        }
        drop(kernel);
        if let Some(clic) = &node.clic {
            let cs = clic.borrow().stats();
            reg.counter_add(&p("clic.msgs_sent"), cs.msgs_sent);
            reg.counter_add(&p("clic.msgs_received"), cs.msgs_received);
            reg.counter_add(&p("clic.packets_sent"), cs.packets_sent);
            reg.counter_add(&p("clic.packets_received"), cs.packets_received);
            reg.counter_add(&p("clic.retransmits"), cs.retransmits);
            reg.counter_add(&p("clic.fast_retransmits"), cs.fast_retransmits);
            reg.counter_add(&p("clic.flow_failures"), cs.flow_failures);
            reg.counter_add(&p("clic.staged_copies"), cs.staged_copies);
            reg.counter_add(&p("clic.drops.backlog"), cs.backlog_drops);
            reg.counter_add(&p("clic.drops.duplicate"), cs.duplicates);
            reg.counter_add(&p("clic.drops.ooo"), cs.ooo_drops);
            reg.counter_add(&p("clic.drops.stale_epoch"), cs.stale_epoch_drops);
            reg.counter_add(&p("clic.drops.expired"), cs.expired_drops);
            reg.counter_add(
                &p("clic.flow_failures.max_retries"),
                cs.flow_failures_max_retries,
            );
            reg.counter_add(
                &p("clic.flow_failures.peer_dead"),
                cs.flow_failures_peer_dead,
            );
            reg.counter_add(
                &p("clic.flow_failures.stale_epoch"),
                cs.flow_failures_stale_epoch,
            );
            reg.counter_add(&p("clic.keepalive_probes"), cs.keepalive_probes);
        }
    }
    if let Some(sw) = &cluster.switch {
        let sw = sw.borrow();
        reg.counter_add("eth.switch.frames_forwarded", sw.frames_forwarded());
        reg.counter_add("eth.switch.frames_flooded", sw.frames_flooded());
        reg.counter_add("eth.switch.frames_dropped", sw.frames_dropped());
    }
    // Packet-buffer pool traffic since the run's `bytes::pool::reset()`.
    let ps = bytes::pool::stats();
    reg.counter_add("sim.pool.recycled", ps.recycled);
    reg.counter_add("sim.pool.alloc_misses", ps.misses);
    reg.counter_add("sim.pool.returned", ps.returned);
    reg.counter_add("sim.pool.discarded", ps.discarded);
    reg.counter_add("sim.pool.oversize", ps.oversize);
    debug_assert!(
        reg.uncataloged().is_empty(),
        "metrics missing from crates/sim/src/catalog.rs: {:?}",
        reg.uncataloged()
    );
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for s in TraceScenario::ALL {
            assert_eq!(TraceScenario::parse(s.name()), Some(s));
        }
        assert_eq!(TraceScenario::parse("7b"), Some(TraceScenario::Fig7b));
        assert_eq!(TraceScenario::parse("nope"), None);
    }

    #[test]
    fn fig7a_trace_covers_the_pipeline() {
        let t = run_pipeline_trace(TraceScenario::Fig7a, 1400, 1500, 0);
        let stages: Vec<&str> = t.breakdown.iter().map(|r| r.stage).collect();
        for want in [
            "syscall",
            "clic_module_tx",
            "driver_tx",
            "nic_tx_dma",
            "wire",
            "driver_rx",
            "bottom_half",
            "clic_module_rx",
            "copy_to_user",
        ] {
            assert!(stages.contains(&want), "missing stage {want}: {stages:?}");
        }
        // One 1400-byte packet: every stage crossed exactly once.
        assert!(
            t.breakdown.iter().all(|r| r.count == 1),
            "{:?}",
            t.breakdown
        );
        assert!(t.chrome_json.contains("\"traceEvents\""));
        assert!(t.metrics.counter("n0.os.syscalls") > 0);
        assert!(t.metrics.counter("n1.clic.packets_received") > 0);
    }

    #[test]
    fn fig7b_adds_the_bus_master_rx_dma_stage() {
        // Host rings (the Figure 8b receive path) DMA the frame into host
        // memory before the interrupt — a stage 7a doesn't have.
        let t = run_pipeline_trace(TraceScenario::Fig7b, 1400, 1500, 0);
        assert!(
            t.breakdown.iter().any(|r| r.stage == "nic_rx_dma"),
            "{:?}",
            t.breakdown
        );
    }

    #[test]
    fn large_message_fragments_across_stages() {
        let t = run_pipeline_trace(TraceScenario::Fig7a, 64 * 1024, 9_000, 0);
        let dma = t
            .breakdown
            .iter()
            .find(|r| r.stage == "nic_tx_dma")
            .expect("nic_tx_dma row");
        assert!(dma.count > 1, "64 KiB at MTU 9000 must fragment: {dma:?}");
        assert!((dma.mean_us() - dma.total_us / dma.count as f64).abs() < 1e-12);
    }

    #[test]
    fn tcp_scenario_traces_the_baseline_stack() {
        let t = run_pipeline_trace(TraceScenario::Tcp, 1400, 1500, 0);
        let stages: Vec<&str> = t.breakdown.iter().map(|r| r.stage).collect();
        for want in ["tcp_tx", "ip_tx", "ip_rx", "wire"] {
            assert!(stages.contains(&want), "missing stage {want}: {stages:?}");
        }
    }

    #[test]
    fn lossy_trace_shows_the_recovery_machinery() {
        let t = run_pipeline_trace(TraceScenario::Fig7aLossy, 14_000, 1500, 0);
        assert!(
            t.chrome_json.contains("fast_retransmit"),
            "expected a fast_retransmit instant in the lossy trace"
        );
        assert!(t.metrics.counter("n0.clic.retransmits") > 0);
        // The reverse path is clean, so every loss is a forward data loss.
        assert!(t.metrics.counter("eth.link.frames_lost") > 0);
    }

    #[test]
    fn trace_is_deterministic() {
        let a = run_pipeline_trace(TraceScenario::Fig7b, 5_000, 1500, 7);
        let b = run_pipeline_trace(TraceScenario::Fig7b, 5_000, 1500, 7);
        assert_eq!(a.chrome_json, b.chrome_json);
        assert_eq!(a.metrics.dump(), b.metrics.dump());
        assert_eq!(a.breakdown, b.breakdown);
    }

    #[test]
    fn timeline_scenario_names_round_trip() {
        for s in TimelineScenario::ALL {
            assert_eq!(TimelineScenario::parse(s.name()), Some(s));
        }
        assert_eq!(TimelineScenario::parse("nope"), None);
        assert_eq!(
            TimelineScenario::Chaos.default_flight(),
            Some(CHAOS_FLIGHT_BUCKETS)
        );
        assert_eq!(TimelineScenario::Incast.default_flight(), None);
    }

    #[test]
    fn incast_timeline_records_the_headline_series() {
        let t = run_timeline(TimelineScenario::Incast, SimDuration::from_us(10), None);
        for series in [
            "eth.switch.queue_depth",
            "clic.recv_buffer_bytes",
            "eth.link.tx_bytes",
        ] {
            assert!(t.csv.contains(series), "missing series {series}");
        }
        // Each series becomes a Chrome counter track; Perfetto needs at
        // least the three headline ones.
        let tracks: std::collections::BTreeSet<&str> = t
            .chrome_json
            .lines()
            .filter(|l| l.contains("\"ph\": \"C\""))
            .filter_map(|l| l.split("\"name\": \"").nth(1))
            .filter_map(|rest| rest.split('"').next())
            .collect();
        assert!(tracks.len() >= 3, "counter tracks: {tracks:?}");
        assert!(t.series >= 3);
        assert!(t.chrome_json.contains("\"traceEvents\""));
    }

    #[test]
    fn congestion_timeline_records_the_cwnd_sawtooth() {
        let t = run_timeline(TimelineScenario::Congestion, SimDuration::from_us(50), None);
        for series in ["clic.cwnd", "clic.ssthresh", "eth.switch.ecn_marks"] {
            assert!(t.csv.contains(series), "missing series {series}");
        }
        assert!(t.series >= 3);
        // The marking fabric must actually have marked something, or the
        // scenario degenerates into the plain incast cell.
        let marked = t
            .csv
            .lines()
            .filter(|l| l.starts_with("eth.switch.ecn_marks"))
            .count();
        assert!(marked > 0, "no ecn_marks buckets recorded");
    }

    #[test]
    fn timeline_replay_is_deterministic() {
        let a = run_timeline(TimelineScenario::Incast, SimDuration::from_us(10), None);
        let b = run_timeline(TimelineScenario::Incast, SimDuration::from_us(10), None);
        assert_eq!(a.csv, b.csv);
        assert_eq!(a.chrome_json, b.chrome_json);
    }

    #[test]
    fn chaos_flight_recorder_keeps_only_the_tail() {
        let full = run_timeline(TimelineScenario::Chaos, SimDuration::from_us(20), None);
        let ring = run_timeline(TimelineScenario::Chaos, SimDuration::from_us(20), Some(8));
        // Per-series bucket counts: the ring keeps at most 8 + the open
        // bucket; the full run keeps everything.
        let counts = |csv: &str| {
            let mut m = std::collections::BTreeMap::<String, usize>::new();
            for line in csv.lines().filter(|l| !l.starts_with('#')) {
                if let Some(series) = line.split(',').next() {
                    if series != "series" {
                        *m.entry(series.to_string()).or_default() += 1;
                    }
                }
            }
            m
        };
        let ring_counts = counts(&ring.csv);
        assert!(ring_counts.values().all(|&n| n <= 9), "{ring_counts:?}");
        assert!(
            counts(&full.csv).values().any(|&n| n > 9),
            "chaos soak too short to exercise the ring"
        );
        // Ring rows are the tail of the full dump: every ring row exists
        // verbatim in the unbounded run.
        let full_rows: std::collections::BTreeSet<&str> = full.csv.lines().collect();
        for line in ring.csv.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                full_rows.contains(line),
                "ring row not in full dump: {line}"
            );
        }
    }

    #[test]
    fn collective_trace_shows_both_phases_and_no_host_work() {
        let t = run_collective_trace(8, 0);
        assert_eq!(t.nodes, 8);
        // Up-phase unicasts and the multicast release both leave instants.
        assert!(t.chrome_json.contains("nic_coll_up"), "no up-phase marks");
        assert!(t.chrome_json.contains("nic_coll_down"), "no release marks");
        // The barrier runs entirely in NIC firmware: no host interrupts.
        assert_eq!(t.metrics.counter("n0.os.irqs"), 0);
        assert!(t.metrics.counter("hw.nic.coll.msgs_rx") > 0);
        // Byte-stable for the golden-file contract.
        let again = run_collective_trace(8, 0);
        assert_eq!(t.chrome_json, again.chrome_json);
    }

    #[test]
    fn breakdown_table_renders_every_row() {
        let t = run_pipeline_trace(TraceScenario::Fig7a, 1400, 1500, 0);
        let table = breakdown_table(&t.breakdown);
        for r in &t.breakdown {
            assert!(table.contains(r.stage));
        }
        assert!(table.starts_with("stage"));
    }
}
