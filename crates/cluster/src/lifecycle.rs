//! Node lifecycle: schedulable crash-stop, crash-restart and link flap.
//!
//! A *crash* halts the node's kernel (pending bottom halves are
//! discarded, frames arriving afterwards are drained and dropped at the
//! driver) and crash-stops its CLIC module, losing every outbound flow,
//! receive-side buffer, port binding and learned peer epoch — exactly
//! what a kernel panic loses. A *restart* resumes the kernel and brings
//! CLIC back under a fresh session epoch, so peers still holding
//! pre-crash sequence space get session resets instead of silent
//! acceptance. A *flap* takes one link dark in both directions for a
//! window — the cable-pull / switch-port-reset fault.
//!
//! These helpers are the building blocks of the chaos-soak harness in
//! [`crate::workload`] (see `figures chaos`), and are deliberately thin:
//! all protocol-visible behaviour lives in `clic-core` / `clic-os` /
//! `clic-ethernet`.

use crate::builder::Cluster;
use clic_sim::{Sim, SimTime};

/// Schedule a crash-stop of `cluster.nodes[node]` at `at`: the kernel
/// halts (dropping its deferred work) and the CLIC module, when
/// installed, loses all in-flight state. Frames arriving while crashed
/// are dropped at the driver.
pub fn schedule_crash(cluster: &Cluster, sim: &mut Sim, node: usize, at: SimTime) {
    let kernel = cluster.nodes[node].kernel.clone();
    let clic = cluster.nodes[node].clic.clone();
    sim.schedule_at(at, move |_sim| {
        kernel.borrow_mut().halt();
        if let Some(clic) = &clic {
            clic.borrow_mut().crash();
        }
    });
}

/// Schedule a restart of `cluster.nodes[node]` at `at`: the kernel
/// resumes and the CLIC module, when installed, comes back empty under a
/// new session epoch (its incarnation number increments).
pub fn schedule_restart(cluster: &Cluster, sim: &mut Sim, node: usize, at: SimTime) {
    let kernel = cluster.nodes[node].kernel.clone();
    let clic = cluster.nodes[node].clic.clone();
    sim.schedule_at(at, move |_sim| {
        kernel.borrow_mut().resume();
        if let Some(clic) = &clic {
            clic.borrow_mut().restart();
        }
    });
}

/// Take `cluster.links[link]` dark in both directions over
/// `[start, end)`. Installed on the link's fault plan immediately (the
/// plan is consulted per frame), so this can be called before the run
/// starts; frames already in flight on the wire still arrive.
pub fn flap_link(cluster: &Cluster, link: usize, start: SimTime, end: SimTime) {
    cluster.links[link].borrow_mut().flap(start, end);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClusterConfig;
    use bytes::Bytes;
    use clic_core::{ClicError, ClicPort};
    use clic_sim::{SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn robust_pair() -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_pair();
        let clic = cfg.node.clic.as_mut().unwrap();
        clic.keepalive_interval = Some(SimDuration::from_us(500));
        clic.peer_dead_timeout = SimDuration::from_ms(10);
        clic.epoch_guard = true;
        cfg
    }

    #[test]
    fn crash_restart_bumps_epoch_and_resumes_kernel() {
        let cluster = Cluster::build(&robust_pair());
        let mut sim = Sim::new(1);
        schedule_crash(&cluster, &mut sim, 1, SimTime::from_us(10));
        schedule_restart(&cluster, &mut sim, 1, SimTime::from_us(20));
        sim.run();
        assert!(!cluster.nodes[1].kernel.borrow().is_halted());
        let clic = cluster.nodes[1].clic();
        let clic = clic.borrow();
        assert!(!clic.is_crashed());
        assert_eq!(clic.epoch(), 2);
    }

    #[test]
    fn flap_installs_outages_both_directions() {
        let cluster = Cluster::build(&ClusterConfig::paper_pair());
        flap_link(&cluster, 0, SimTime::from_us(100), SimTime::from_us(300));
        let link = cluster.links[0].borrow();
        for end in [clic_ethernet::LinkEnd::A, clic_ethernet::LinkEnd::B] {
            assert_eq!(
                link.faults(end).outages,
                vec![(SimTime::from_us(100), SimTime::from_us(300))]
            );
        }
    }

    /// A receiver that crash-restarts mid-transfer forces the sender's
    /// flow into a typed teardown (StaleEpoch once the new epoch is
    /// heard, or PeerDead if the keepalive deadline fires first) — it
    /// never hangs and never silently succeeds with lost state.
    #[test]
    fn crash_restart_mid_transfer_surfaces_typed_error() {
        let cluster = Cluster::build(&robust_pair());
        let mut sim = Sim::new(3);
        let errors: Rc<RefCell<Vec<ClicError>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let errors = errors.clone();
            cluster.nodes[0]
                .clic()
                .borrow_mut()
                .set_error_handler(Rc::new(move |_s, e| errors.borrow_mut().push(e)));
        }
        let pid = cluster.nodes[0].kernel.borrow_mut().processes.spawn("tx");
        let tx = ClicPort::bind(&cluster.nodes[0].clic(), pid, 9);
        // Large enough that the transfer straddles the crash window.
        tx.send(
            &mut sim,
            cluster.nodes[1].mac,
            9,
            Bytes::from(vec![7u8; 512 * 1024]),
        );
        schedule_crash(&cluster, &mut sim, 1, SimTime::from_us(300));
        schedule_restart(&cluster, &mut sim, 1, SimTime::from_us(900));
        sim.set_event_limit(50_000_000);
        sim.run();
        assert!(sim.events_executed() < 50_000_000, "never quiesced");
        let errors = errors.borrow();
        assert!(
            errors
                .iter()
                .any(|e| matches!(e, ClicError::StaleEpoch { .. } | ClicError::PeerDead { .. })),
            "expected a typed teardown, got {errors:?}"
        );
    }
}
