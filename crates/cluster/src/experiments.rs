//! One function per paper figure/table, plus the DESIGN.md ablations.
//!
//! Every experiment builds fresh clusters (deterministic seeds) and
//! returns structured rows; the `clic-bench` harness prints them. Sweeps
//! run points in parallel threads — each simulation is single-threaded and
//! independent.

use crate::builder::{Cluster, ClusterConfig};
use crate::calibration::CostModel;
use crate::node::NodeConfig;
use crate::workload::{ping_pong, request_reply_cycles_with_background, stream, stream_count, stream_pipelined, StackKind};
use clic_core::ClicConfig;
use clic_ethernet::LossModel;
use clic_sim::{Sim, SimDuration};
use serde::Serialize;

/// A bandwidth point.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesPoint {
    /// Message size in bytes (the x axis).
    pub size: usize,
    /// Delivered bandwidth in Mb/s (the y axis).
    pub mbps: f64,
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, ascending in size.
    pub points: Vec<SeriesPoint>,
}

/// The message sizes of the paper's x axis (10^1 .. 4·10^6, log-spaced).
pub fn paper_sizes() -> Vec<usize> {
    vec![
        16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 131_072,
        262_144, 524_288, 1_048_576, 2_097_152, 4_194_304,
    ]
}

/// A reduced size set for quick runs and tests.
pub fn quick_sizes() -> Vec<usize> {
    vec![64, 1_024, 4_096, 65_536, 1_048_576]
}

/// Run a bandwidth sweep for one (cluster config, stack) pair. Points run
/// in parallel threads; each point uses its own simulator.
pub fn bandwidth_sweep(
    label: &str,
    config: &ClusterConfig,
    stack: StackKind,
    sizes: &[usize],
) -> Series {
    let mut points: Vec<SeriesPoint> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = sizes
            .iter()
            .map(|&size| {
                let config = config.clone();
                scope.spawn(move |_| {
                    let cluster = Cluster::build(&config);
                    let mut sim = Sim::new(size as u64);
                    let result = stream(&cluster, &mut sim, stack, size, stream_count(size));
                    SeriesPoint {
                        size,
                        mbps: result.mbps(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
    .unwrap();
    points.sort_by_key(|p| p.size);
    Series {
        label: label.to_string(),
        points,
    }
}

fn clic_pair(model: &CostModel, jumbo: bool, zero_copy: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(model);
    cfg.node.nic = if jumbo {
        model.nic_jumbo()
    } else {
        model.nic_standard()
    };
    cfg.node.clic = Some(if zero_copy {
        ClicConfig::paper_default()
    } else {
        ClicConfig::one_copy()
    });
    cfg
}

fn tcp_pair(model: &CostModel, jumbo: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::tcp_default(model);
    cfg.node.nic = if jumbo {
        model.nic_jumbo()
    } else {
        model.nic_standard()
    };
    cfg
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 4: CLIC bandwidth for MTU {1500, 9000} × {0-copy, 1-copy}.
pub fn fig4(sizes: &[usize]) -> Vec<Series> {
    let model = CostModel::era_2002();
    [
        ("0-copy MTU 9000", true, true),
        ("0-copy MTU 1500", false, true),
        ("1-copy MTU 9000", true, false),
        ("1-copy MTU 1500", false, false),
    ]
    .into_iter()
    .map(|(label, jumbo, zc)| {
        bandwidth_sweep(label, &clic_pair(&model, jumbo, zc), StackKind::Clic, sizes)
    })
    .collect()
}

/// Figure 5: CLIC vs TCP/IP for MTU {1500, 9000}, all 0-copy.
pub fn fig5(sizes: &[usize]) -> Vec<Series> {
    let model = CostModel::era_2002();
    vec![
        bandwidth_sweep(
            "CLIC 9000",
            &clic_pair(&model, true, true),
            StackKind::Clic,
            sizes,
        ),
        bandwidth_sweep(
            "CLIC 1500",
            &clic_pair(&model, false, true),
            StackKind::Clic,
            sizes,
        ),
        bandwidth_sweep("TCP 9000", &tcp_pair(&model, true), StackKind::Tcp, sizes),
        bandwidth_sweep("TCP 1500", &tcp_pair(&model, false), StackKind::Tcp, sizes),
    ]
}

/// Figure 6: CLIC, MPI-CLIC, MPI-TCP, PVM-TCP (jumbo frames, 0-copy).
pub fn fig6(sizes: &[usize]) -> Vec<Series> {
    let model = CostModel::era_2002();
    vec![
        bandwidth_sweep(
            "CLIC",
            &clic_pair(&model, true, true),
            StackKind::Clic,
            sizes,
        ),
        bandwidth_sweep(
            "MPI-CLIC",
            &clic_pair(&model, true, true),
            StackKind::MpiClic,
            sizes,
        ),
        bandwidth_sweep(
            "MPI-TCP",
            &tcp_pair(&model, true),
            StackKind::MpiTcp,
            sizes,
        ),
        bandwidth_sweep(
            "PVM-TCP",
            &tcp_pair(&model, true),
            StackKind::PvmTcp,
            sizes,
        ),
    ]
}

/// One pipeline stage of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct StageRow {
    /// Stage name, in pipeline order.
    pub stage: String,
    /// Stage duration in microseconds.
    pub us: f64,
}

/// Figure 7: per-stage timing of a 1400-byte packet through the CLIC
/// pipeline. `direct_call` selects the Figure 8b improvement (7b vs 7a).
pub fn fig7(direct_call: bool) -> Vec<StageRow> {
    let model = CostModel::era_2002();
    let mut cfg = clic_pair(&model, false, true);
    cfg.node.nic = model.nic_low_latency(false);
    cfg.node.direct_dispatch = direct_call;
    // The proposed improvement also assumes a bus-master receive path
    // (frames in host memory before the interrupt) — the driver change the
    // portable CLIC deliberately avoided.
    cfg.node.nic.host_rings = direct_call;
    let cluster = Cluster::build(&cfg);
    let mut sim = Sim::new(0);
    sim.trace = clic_sim::Trace::enabled();

    const CH: u16 = 100;
    let a = &cluster.nodes[0];
    let b = &cluster.nodes[1];
    let pid_a = a.kernel.borrow_mut().processes.spawn("tx");
    let pid_b = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = clic_core::ClicPort::bind(&a.clic(), pid_a, CH);
    let rx = clic_core::ClicPort::bind(&b.clic(), pid_b, CH);
    rx.recv(&mut sim, |_s, _m| {});
    let data = bytes::Bytes::from(vec![0x55u8; 1400]);
    tx.send_traced(&mut sim, b.mac, CH, data, 42);
    sim.run();

    let spans = sim.trace.spans_for(42);
    let span = |name: &str| spans.iter().find(|s| s.stage == name);
    let mut rows = Vec::new();
    let mut push = |stage: &str, d: Option<SimDuration>| {
        if let Some(d) = d {
            rows.push(StageRow {
                stage: stage.to_string(),
                us: d.as_us_f64(),
            });
        }
    };
    push("syscall", span("syscall").map(|s| s.duration()));
    push("clic_module_tx", span("clic_module_tx").map(|s| s.duration()));
    push("driver_tx", span("driver_tx").map(|s| s.duration()));
    push("nic_tx_dma", span("nic_tx_dma").map(|s| s.duration()));
    // Flight + interrupt wait: from the TX DMA completing to the receive
    // driver starting on the frame (wire + coalescing + IRQ entry).
    let flight = match (span("nic_tx_dma"), span("driver_rx")) {
        (Some(tx), Some(rx)) => rx.begin.checked_since(tx.end),
        _ => None,
    };
    push("flight+irq", flight);
    push("driver_rx", span("driver_rx").map(|s| s.duration()));
    push("bottom_half", span("bottom_half").map(|s| s.duration()));
    push("clic_module_rx", span("clic_module_rx").map(|s| s.duration()));
    push("copy_to_user", span("copy_to_user").map(|s| s.duration()));
    rows
}

// ---------------------------------------------------------------------
// Scalar results (§4 prose)
// ---------------------------------------------------------------------

/// The headline scalars of §4/§5.
#[derive(Debug, Clone, Serialize)]
pub struct Scalars {
    /// One-way 0-byte latency, µs (paper: 36 µs).
    pub zero_byte_latency_us: f64,
    /// Asymptotic CLIC bandwidth at MTU 9000, Mb/s (paper: ≈ 600).
    pub clic_asymptote_9000_mbps: f64,
    /// Asymptotic CLIC bandwidth at MTU 1500, Mb/s (paper: ≈ 450).
    pub clic_asymptote_1500_mbps: f64,
    /// Best TCP asymptote (MTU 9000), Mb/s (paper: CLIC > 2× this).
    pub tcp_asymptote_9000_mbps: f64,
    /// Message size reaching 50 % of CLIC's peak on the MTU 1500 curve,
    /// bytes (paper: ≈ 4 KB).
    pub clic_half_bandwidth_bytes_1500: usize,
    /// Same for the MTU 9000 curve (jumbo store-and-forward granularity
    /// pushes this out; see EXPERIMENTS.md).
    pub clic_half_bandwidth_bytes_9000: usize,
    /// Message size reaching 50 % of TCP's peak, bytes (paper: ≈ 16 KB).
    pub tcp_half_bandwidth_bytes: usize,
}

fn half_bandwidth_point(series: &Series) -> usize {
    let peak = series
        .points
        .iter()
        .map(|p| p.mbps)
        .fold(0.0f64, f64::max);
    series
        .points
        .iter()
        .find(|p| p.mbps >= peak / 2.0)
        .map(|p| p.size)
        .unwrap_or(usize::MAX)
}

/// Compute the §4 scalars.
pub fn scalars(sizes: &[usize]) -> Scalars {
    let model = CostModel::era_2002();
    // Latency: ping-pong with the latency-tuned NIC, as the paper's
    // latency figure uses the NICs' adjustable coalescing.
    let mut lat_cfg = clic_pair(&model, false, true);
    lat_cfg.node.nic = model.nic_low_latency(false);
    let cluster = Cluster::build(&lat_cfg);
    let mut sim = Sim::new(1);
    let pp = ping_pong(&cluster, &mut sim, StackKind::Clic, 0, 20);
    let zero_byte_latency_us = pp.one_way().as_us_f64();

    let clic_9000 = bandwidth_sweep("c9000", &clic_pair(&model, true, true), StackKind::Clic, sizes);
    let clic_1500 = bandwidth_sweep("c1500", &clic_pair(&model, false, true), StackKind::Clic, sizes);
    let tcp_9000 = bandwidth_sweep("t9000", &tcp_pair(&model, true), StackKind::Tcp, sizes);
    let peak = |s: &Series| s.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    Scalars {
        zero_byte_latency_us,
        clic_asymptote_9000_mbps: peak(&clic_9000),
        clic_asymptote_1500_mbps: peak(&clic_1500),
        tcp_asymptote_9000_mbps: peak(&tcp_9000),
        clic_half_bandwidth_bytes_1500: half_bandwidth_point(&clic_1500),
        clic_half_bandwidth_bytes_9000: half_bandwidth_point(&clic_9000),
        tcp_half_bandwidth_bytes: half_bandwidth_point(&tcp_9000),
    }
}

// ---------------------------------------------------------------------
// §5 comparison table (CLIC vs GAMMA)
// ---------------------------------------------------------------------

/// One row of the §5 comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Protocol name.
    pub protocol: String,
    /// One-way 0-byte latency, µs.
    pub latency_us: f64,
    /// Peak bandwidth, Mb/s.
    pub bandwidth_mbps: f64,
}

/// CLIC vs the GAMMA-like baseline.
pub fn gamma_table(sizes: &[usize]) -> Vec<ComparisonRow> {
    let model = CostModel::era_2002();
    let mut rows = Vec::new();
    // CLIC row.
    {
        let mut cfg = clic_pair(&model, false, true);
        cfg.node.nic = model.nic_low_latency(false);
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(1);
        let pp = ping_pong(&cluster, &mut sim, StackKind::Clic, 0, 20);
        let bw = bandwidth_sweep("clic", &clic_pair(&model, true, true), StackKind::Clic, sizes);
        rows.push(ComparisonRow {
            protocol: "CLIC".into(),
            latency_us: pp.one_way().as_us_f64(),
            bandwidth_mbps: bw.points.iter().map(|p| p.mbps).fold(0.0, f64::max),
        });
    }
    // GAMMA row.
    {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.node = NodeConfig::gamma_default(&model);
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(1);
        let pp = ping_pong(&cluster, &mut sim, StackKind::Gamma, 0, 20);
        let mut bw_cfg = ClusterConfig::paper_pair();
        bw_cfg.node = NodeConfig::gamma_default(&model);
        let bw = bandwidth_sweep("gamma", &bw_cfg, StackKind::Gamma, sizes);
        rows.push(ComparisonRow {
            protocol: "GAMMA (model)".into(),
            latency_us: pp.one_way().as_us_f64(),
            bandwidth_mbps: bw.points.iter().map(|p| p.mbps).fold(0.0, f64::max),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Ablation A row: interrupt coalescing setting vs delivered bandwidth,
/// interrupt rate and small-message latency.
#[derive(Debug, Clone, Serialize)]
pub struct CoalescingRow {
    /// Coalescing timer, µs.
    pub usecs: u64,
    /// Coalescing frame threshold.
    pub frames: u32,
    /// Streaming bandwidth at MTU 1500, Mb/s.
    pub mbps: f64,
    /// Receiver interrupts per 1000 delivered frames.
    pub irqs_per_kframe: f64,
    /// 0-byte one-way latency, µs.
    pub latency_us: f64,
}

/// Ablation A: sweep interrupt coalescing (§2's ~12 µs/interrupt claim).
pub fn ablation_coalescing() -> Vec<CoalescingRow> {
    let model = CostModel::era_2002();
    let settings: &[(u64, u32)] = &[(0, 1), (5, 1), (30, 8), (70, 16), (200, 64)];
    settings
        .iter()
        .map(|&(usecs, frames)| {
            let mut cfg = clic_pair(&model, false, true);
            cfg.node.nic.coalesce_usecs = usecs;
            cfg.node.nic.coalesce_frames = frames;
            // Bandwidth + interrupt rate.
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(2);
            let size = 262_144;
            let res = stream(&cluster, &mut sim, StackKind::Clic, size, stream_count(size));
            let rx_kernel = cluster.nodes[1].kernel.borrow();
            let irqs = rx_kernel.stats().irqs as f64;
            let frames_rx = rx_kernel.stats().frames_received.max(1) as f64;
            drop(rx_kernel);
            // Latency.
            let cluster2 = Cluster::build(&cfg);
            let mut sim2 = Sim::new(3);
            let pp = ping_pong(&cluster2, &mut sim2, StackKind::Clic, 0, 10);
            CoalescingRow {
                usecs,
                frames,
                mbps: res.mbps(),
                irqs_per_kframe: irqs / frames_rx * 1000.0,
                latency_us: pp.one_way().as_us_f64(),
            }
        })
        .collect()
}

/// Ablation B: NIC TX/RX fragmentation offload (the paper's future work).
pub fn ablation_fragmentation(sizes: &[usize]) -> Vec<Series> {
    let model = CostModel::era_2002();
    let base = clic_pair(&model, false, true);
    let mut offload = base.clone();
    offload.node.nic.tx_frag_offload = true;
    offload.node.nic.rx_frag_offload = true;
    // With offload the module can hand the NIC super-packets; emulate the
    // Alteon firmware's limit of 255 fragments.
    if let Some(clic) = &mut offload.node.clic {
        clic.mtu_override = Some(64 * 1024);
    }
    vec![
        bandwidth_sweep("no offload (MTU 1500)", &base, StackKind::Clic, sizes),
        bandwidth_sweep("frag offload (64K super-packets)", &offload, StackKind::Clic, sizes),
    ]
}

/// Ablation C row: channel bonding width vs bandwidth.
#[derive(Debug, Clone, Serialize)]
pub struct BondingRow {
    /// Number of bonded NICs/links.
    pub width: usize,
    /// Bandwidth on the paper's 33 MHz/32-bit PCI, Mb/s.
    pub mbps_pci33: f64,
    /// Bandwidth with a 66 MHz/64-bit PCI and bus-master receive — shows
    /// bonding scales once the I/O bus stops being the bottleneck (the
    /// very bottleneck §1 calls out).
    pub mbps_pci66: f64,
}

/// Ablation C: channel bonding scaling (§5 feature list).
pub fn ablation_bonding() -> Vec<BondingRow> {
    let model = CostModel::era_2002();
    let run = |width: usize, fast: bool| {
        let mut cfg = clic_pair(&model, true, true);
        cfg.node.nics = width;
        cfg.node.fast_pci = fast;
        if fast {
            cfg.node.nic.host_rings = true;
        }
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(4);
        let size = 1 << 20;
        let res = stream(&cluster, &mut sim, StackKind::Clic, size, stream_count(size));
        res.mbps()
    };
    (1..=3)
        .map(|width| BondingRow {
            width,
            mbps_pci33: run(width, false),
            mbps_pci66: run(width, true),
        })
        .collect()
}

/// Ablation D row: system-call flavour vs latency.
#[derive(Debug, Clone, Serialize)]
pub struct SyscallRow {
    /// "standard" (INT 80h + scheduler) or "lightweight" (GAMMA-style).
    pub flavour: String,
    /// 0-byte one-way latency, µs.
    pub latency_us: f64,
}

/// Ablation D: the §3.2 discussion — how much does the standard system
/// call actually cost CLIC versus GAMMA-style lightweight calls?
pub fn ablation_syscall() -> Vec<SyscallRow> {
    let model = CostModel::era_2002();
    let mut rows = Vec::new();
    for (flavour, lightweight) in [("standard", false), ("lightweight", true)] {
        let mut cfg = clic_pair(&model, false, true);
        cfg.node.nic = model.nic_low_latency(false);
        if lightweight {
            cfg.node.os.syscall = cfg.node.os.lightweight_call;
        }
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(5);
        let pp = ping_pong(&cluster, &mut sim, StackKind::Clic, 0, 10);
        rows.push(SyscallRow {
            flavour: flavour.into(),
            latency_us: pp.one_way().as_us_f64(),
        });
    }
    rows
}

/// Ablation E row: loss rate vs CLIC goodput and retransmissions.
#[derive(Debug, Clone, Serialize)]
pub struct LossRow {
    /// Bernoulli frame-loss probability.
    pub loss: f64,
    /// Delivered goodput, Mb/s (64 KB messages, MTU 1500).
    pub mbps: f64,
    /// Retransmitted packets per 1000 first transmissions.
    pub retx_per_kpkt: f64,
}

/// Ablation E: reliability under injected loss.
pub fn ablation_loss() -> Vec<LossRow> {
    let model = CostModel::era_2002();
    [0.0, 0.001, 0.005, 0.02]
        .into_iter()
        .map(|loss| {
            let mut cfg = clic_pair(&model, false, true);
            cfg.loss = if loss == 0.0 {
                LossModel::None
            } else {
                LossModel::Bernoulli(loss)
            };
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(6);
            let size = 65_536;
            let res = stream(&cluster, &mut sim, StackKind::Clic, size, stream_count(size));
            let stats = cluster.nodes[0].clic().borrow().stats();
            LossRow {
                loss,
                mbps: res.mbps(),
                retx_per_kpkt: stats.retransmits as f64 / stats.packets_sent.max(1) as f64
                    * 1000.0,
            }
        })
        .collect()
}

/// Ablation F row: offered-load bandwidth and CPU cost per stack and link
/// speed.
#[derive(Debug, Clone, Serialize)]
pub struct CpuRow {
    /// Stack under test.
    pub stack: String,
    /// Link speed, Mb/s.
    pub link_mbps: u64,
    /// Delivered bandwidth, Mb/s.
    pub mbps: f64,
    /// Delivered bandwidth as % of the link rate.
    pub pct_of_wire: f64,
    /// Sender CPU busy fraction.
    pub sender_cpu: f64,
    /// Receiver CPU busy fraction.
    pub receiver_cpu: f64,
}

/// Ablation F — §2's scaling claim: "in Fast Ethernet ... 90 % of the
/// maximum bandwidth with a 15–20 % CPU use. Having a similar situation in
/// networks with 1 Gb/s bandwidths would require almost 100 % of the
/// processor power." Offered-load streaming, 256 KB messages.
pub fn ablation_cpu() -> Vec<CpuRow> {
    let model = CostModel::era_2002();
    let mut rows = Vec::new();
    let cases: &[(&str, bool, u64)] = &[
        ("TCP", false, 100_000_000),
        ("TCP", false, 1_000_000_000),
        ("CLIC", true, 100_000_000),
        ("CLIC", true, 1_000_000_000),
    ];
    for &(name, is_clic, bps) in cases {
        let mut cfg = if is_clic {
            clic_pair(&model, false, true)
        } else {
            tcp_pair(&model, false)
        };
        cfg.model.link_bps = bps;
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(8);
        let size = 262_144;
        let res = stream_pipelined(
            &cluster,
            &mut sim,
            if is_clic { StackKind::Clic } else { StackKind::Tcp },
            size,
            stream_count(size),
        );
        rows.push(CpuRow {
            stack: name.to_string(),
            link_mbps: bps / 1_000_000,
            mbps: res.mbps(),
            pct_of_wire: res.mbps() / (bps as f64 / 1e6) * 100.0,
            sender_cpu: res.sender_cpu,
            receiver_cpu: res.receiver_cpu,
        });
    }
    rows
}

/// Ablation H row: one of Figure 1's data paths, measured on one link.
#[derive(Debug, Clone, Serialize)]
pub struct PathRow {
    /// Which Figure 1 path (2, 3, or 4).
    pub path: u8,
    /// Human description.
    pub description: String,
    /// Link speed, Mb/s.
    pub link_mbps: u64,
    /// Delivered bandwidth at 256 KB messages, Mb/s.
    pub mbps: f64,
}

/// Ablation H — Figure 1's data-path taxonomy: path 2 (scatter-gather DMA
/// from user memory, the Gigabit CLIC), path 3 (CPU copy to a kernel
/// buffer, DMA from there), and path 4 (kernel copy + DMA to the NIC
/// output buffer + the NIC processor's internal copy — the Fast Ethernet
/// CLIC). At 100 Mb/s the wire hides the difference, which is why the
/// first CLIC shipped path 4; at 1 Gb/s it no longer does.
pub fn ablation_paths() -> Vec<PathRow> {
    let model = CostModel::era_2002();
    let mut rows = Vec::new();
    for link_bps in [100_000_000u64, 1_000_000_000] {
        for path in [2u8, 3, 4] {
            let mut cfg = clic_pair(&model, false, path == 2);
            cfg.model.link_bps = link_bps;
            if path == 4 {
                // An older NIC: frames cross its internal buffer at a rate
                // comparable to the era's on-NIC processors.
                cfg.node.nic.internal_copy_bytes_per_sec = Some(60_000_000);
            }
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(12);
            let size = 262_144;
            let res = stream(&cluster, &mut sim, StackKind::Clic, size, stream_count(size));
            rows.push(PathRow {
                path,
                description: match path {
                    2 => "0-copy: DMA from user memory".into(),
                    3 => "1-copy: kernel staging + DMA".into(),
                    _ => "1-copy + NIC internal copy (Fast Ethernet CLIC)".into(),
                },
                link_mbps: link_bps / 1_000_000,
                mbps: res.mbps(),
            });
        }
    }
    rows
}

/// Ablation G row: small-message latency with and without competing bulk
/// traffic.
#[derive(Debug, Clone, Serialize)]
pub struct LoadedLatencyRow {
    /// Stack under test.
    pub stack: String,
    /// Whether a bulk transfer was running concurrently.
    pub loaded: bool,
    /// Minimum one-way latency, µs.
    pub min_us: f64,
    /// Mean one-way latency, µs.
    pub mean_us: f64,
    /// 99th-percentile one-way latency, µs.
    pub p99_us: f64,
}

/// Ablation G — §3.2's multiprogramming argument: CLIC keeps standard
/// system calls so the scheduler can service pending messages promptly
/// even when other traffic loads the node. Measure 64-byte request/reply
/// latency while a bulk transfer saturates the same pair of nodes.
pub fn ablation_latency_under_load() -> Vec<LoadedLatencyRow> {
    use bytes::Bytes;
    let model = CostModel::era_2002();
    let mut rows = Vec::new();
    for (name, is_clic) in [("CLIC", true), ("TCP", false)] {
        for loaded in [false, true] {
            let cfg = if is_clic {
                clic_pair(&model, false, true)
            } else {
                tcp_pair(&model, false)
            };
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(10);
            let post_bulk = move |sim: &mut Sim, cluster: &Cluster| {
                // Background bulk: node 0 -> node 1, separate channel/port.
                if is_clic {
                    let a = &cluster.nodes[0];
                    let b = &cluster.nodes[1];
                    let pid_a = a.kernel.borrow_mut().processes.spawn("bulk-tx");
                    let pid_b = b.kernel.borrow_mut().processes.spawn("bulk-rx");
                    let tx = clic_core::ClicPort::bind(&a.clic(), pid_a, 200);
                    let rx =
                        std::rc::Rc::new(clic_core::ClicPort::bind(&b.clic(), pid_b, 200));
                    fn drain(
                        port: std::rc::Rc<clic_core::ClicPort>,
                        sim: &mut Sim,
                        left: usize,
                    ) {
                        if left == 0 {
                            return;
                        }
                        let p = port.clone();
                        port.recv(sim, move |sim, _| drain(p.clone(), sim, left - 1));
                    }
                    let n_msgs = 24;
                    drain(rx, sim, n_msgs);
                    let dst = b.mac;
                    let bulk = Bytes::from(vec![0xBBu8; 512 * 1024]);
                    for _ in 0..n_msgs {
                        tx.send(sim, dst, 200, bulk.clone());
                    }
                } else {
                    use clic_tcpip::TcpStack;
                    let a = cluster.nodes[0].tcp();
                    let b = cluster.nodes[1].tcp();
                    let b2 = b.clone();
                    b.borrow_mut().listen(9100, move |sim, conn| {
                        fn drain(
                            stack: std::rc::Rc<std::cell::RefCell<TcpStack>>,
                            sim: &mut Sim,
                            conn: clic_tcpip::ConnId,
                            left: usize,
                        ) {
                            if left == 0 {
                                return;
                            }
                            let s2 = stack.clone();
                            TcpStack::recv(&stack, sim, conn, 512 * 1024, move |sim, _| {
                                drain(s2.clone(), sim, conn, left - 1);
                            });
                        }
                        drain(b2.clone(), sim, conn, 24);
                    });
                    let a2 = a.clone();
                    TcpStack::connect(
                        &a,
                        sim,
                        cluster.nodes[1].ip,
                        9100,
                        move |sim, conn| {
                            let bulk = Bytes::from(vec![0xBBu8; 512 * 1024]);
                            for _ in 0..24 {
                                TcpStack::send(&a2, sim, conn, bulk.clone());
                            }
                        },
                    );
                }
            };
            // Foreground: 64-byte request/reply cycles, sampled while the
            // bulk transfer (if any) is in flight (the hook runs after the
            // foreground connection establishes).
            let stack = if is_clic { StackKind::Clic } else { StackKind::Tcp };
            let cluster_ref = &cluster;
            let cycles = request_reply_cycles_with_background(
                &cluster,
                &mut sim,
                stack,
                64,
                4,
                30,
                move |sim| {
                    if loaded {
                        post_bulk(sim, cluster_ref);
                    }
                },
            );
            let one_way = |d: Option<clic_sim::SimDuration>| {
                d.map(|d| d.as_us_f64() / 2.0).unwrap_or(f64::NAN)
            };
            rows.push(LoadedLatencyRow {
                stack: name.to_string(),
                loaded,
                min_us: one_way(cycles.min()),
                mean_us: one_way(cycles.mean()),
                p99_us: one_way(cycles.percentile(0.99)),
            });
        }
    }
    rows
}

/// Ablation I row: all-to-all exchange scaling on a switched cluster.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Cluster size.
    pub nodes: usize,
    /// Aggregate delivered bandwidth, Mb/s (64 KB per pair).
    pub aggregate_mbps: f64,
    /// Aggregate bandwidth per node, Mb/s.
    pub per_node_mbps: f64,
}

/// Ablation I (extension): CLIC all-to-all on switched clusters of
/// growing size — the cluster-computing workload the paper positions CLIC
/// for, beyond its two-node testbed.
pub fn ablation_scaling() -> Vec<ScalingRow> {
    use crate::builder::Topology;
    let model = CostModel::era_2002();
    [2usize, 4, 8]
        .into_iter()
        .map(|nodes| {
            let mut cfg = clic_pair(&model, true, true);
            cfg.nodes = nodes;
            cfg.topology = Topology::Switched;
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(14);
            let res = crate::workload::all_to_all_clic(&cluster, &mut sim, 65_536);
            ScalingRow {
                nodes,
                aggregate_mbps: res.aggregate_mbps(),
                per_node_mbps: res.aggregate_mbps() / nodes as f64,
            }
        })
        .collect()
}

/// One verifiable claim from the paper.
#[derive(Debug, Clone, Serialize)]
pub struct ClaimRow {
    /// Identifier (C1, C2, ...).
    pub id: String,
    /// The claim, paraphrased from the paper.
    pub claim: String,
    /// What the simulation measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
}

/// Evaluate the paper's headline claims against the simulation — the
/// executable form of EXPERIMENTS.md. Runs on a reduced grid; a few
/// minutes of CPU.
pub fn claims() -> Vec<ClaimRow> {
    let sizes = vec![
        4_096usize, 8_192, 16_384, 32_768, 65_536, 262_144, 1_048_576, 4_194_304,
    ];
    let mut rows = Vec::new();
    let mut check = |id: &str, claim: &str, measured: String, pass: bool| {
        rows.push(ClaimRow {
            id: id.into(),
            claim: claim.into(),
            measured,
            pass,
        });
    };

    let s = scalars(&sizes);
    check(
        "C1",
        "0-byte one-way latency is 36 us",
        format!("{:.1} us", s.zero_byte_latency_us),
        (25.0..48.0).contains(&s.zero_byte_latency_us),
    );
    check(
        "C2",
        "asymptotic bandwidth ~600 Mb/s at MTU 9000",
        format!("{:.0} Mb/s", s.clic_asymptote_9000_mbps),
        (500.0..700.0).contains(&s.clic_asymptote_9000_mbps),
    );
    check(
        "C3",
        "asymptotic bandwidth ~450 Mb/s at MTU 1500",
        format!("{:.0} Mb/s", s.clic_asymptote_1500_mbps),
        (380.0..550.0).contains(&s.clic_asymptote_1500_mbps),
    );
    check(
        "C4",
        "CLIC more than ~2x TCP at TCP's best MTU",
        format!(
            "{:.2}x",
            s.clic_asymptote_9000_mbps / s.tcp_asymptote_9000_mbps
        ),
        s.clic_asymptote_9000_mbps / s.tcp_asymptote_9000_mbps > 1.7,
    );
    check(
        "C5",
        "TCP reaches 50% of its peak around 16 KB",
        format!("{} B", s.tcp_half_bandwidth_bytes),
        (8_192..=32_768).contains(&s.tcp_half_bandwidth_bytes),
    );

    let f4 = fig4(&sizes);
    let peak = |series: &Series| series.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    let zc9000 = peak(&f4[0]);
    let zc1500 = peak(&f4[1]);
    let oc9000 = peak(&f4[2]);
    let oc1500 = peak(&f4[3]);
    check(
        "C6",
        "jumbo frames and 0-copy both improve bandwidth",
        format!("jumbo {zc1500:.0}->{zc9000:.0}, 0-copy {oc9000:.0}->{zc9000:.0}"),
        zc9000 > zc1500 && zc9000 > oc9000 && zc1500 > oc1500,
    );
    check(
        "C7",
        "the jumbo-frame improvement exceeds the 0-copy improvement",
        format!(
            "jumbo +{:.0} vs 0-copy +{:.0} Mb/s",
            zc9000 - zc1500,
            zc9000 - oc9000
        ),
        (zc9000 - zc1500) > (zc9000 - oc9000),
    );

    let f6 = fig6(&sizes);
    let last = |i: usize| f6[i].points.last().unwrap().mbps;
    check(
        "C8",
        "ordering CLIC >= MPI-CLIC > MPI-TCP > PVM-TCP",
        format!(
            "{:.0} >= {:.0} > {:.0} > {:.0}",
            last(0),
            last(1),
            last(2),
            last(3)
        ),
        last(0) >= last(1) * 0.98 && last(1) > last(2) && last(2) > last(3),
    );
    check(
        "C9",
        "MPI-CLIC at least 1.5x MPI-TCP for long messages",
        format!("{:.2}x", last(1) / last(2)),
        last(1) / last(2) > 1.5,
    );

    let f7a = fig7(false);
    let f7b = fig7(true);
    let stage = |rows: &[StageRow], name: &str| {
        rows.iter().find(|r| r.stage == name).map(|r| r.us).unwrap_or(0.0)
    };
    let rx_total = |rows: &[StageRow]| {
        ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
            .iter()
            .map(|n| stage(rows, n))
            .sum::<f64>()
    };
    check(
        "C10",
        "the receiver driver stage dominates the pipeline (~15 us @1400 B)",
        format!("{:.1} us", stage(&f7a, "driver_rx")),
        (10.0..25.0).contains(&stage(&f7a, "driver_rx")),
    );
    check(
        "C11",
        "the direct-call improvement shrinks the receive path ~20 -> ~5 us",
        format!("{:.1} -> {:.1} us", rx_total(&f7a), rx_total(&f7b)),
        rx_total(&f7b) < rx_total(&f7a) / 2.0 && rx_total(&f7b) < 10.0,
    );

    let g = gamma_table(&sizes);
    check(
        "C12",
        "GAMMA has lower latency and higher bandwidth; CLIC keeps the services",
        format!(
            "GAMMA {:.1} us/{:.0} Mb/s vs CLIC {:.1} us/{:.0} Mb/s",
            g[1].latency_us, g[1].bandwidth_mbps, g[0].latency_us, g[0].bandwidth_mbps
        ),
        g[1].latency_us < g[0].latency_us && g[1].bandwidth_mbps > g[0].bandwidth_mbps,
    );

    let cpu = ablation_cpu();
    let tcp_fe = cpu.iter().find(|r| r.stack == "TCP" && r.link_mbps == 100).unwrap();
    let tcp_ge = cpu
        .iter()
        .find(|r| r.stack == "TCP" && r.link_mbps == 1000)
        .unwrap();
    check(
        "C13",
        "TCP nearly saturates Fast Ethernet at modest CPU; gigabit pins the CPU",
        format!(
            "FE {:.0}% of wire @{:.0}% CPU; GbE {:.0}% of wire @{:.0}% CPU",
            tcp_fe.pct_of_wire,
            tcp_fe.receiver_cpu * 100.0,
            tcp_ge.pct_of_wire,
            tcp_ge.receiver_cpu * 100.0
        ),
        tcp_fe.pct_of_wire > 80.0 && tcp_ge.receiver_cpu > 0.8 && tcp_ge.pct_of_wire < 40.0,
    );

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_ascend() {
        let s = paper_sizes();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(quick_sizes().iter().all(|x| s.contains(x)));
    }

    #[test]
    fn half_bandwidth_point_finds_crossing() {
        let series = Series {
            label: "x".into(),
            points: vec![
                SeriesPoint { size: 1, mbps: 10.0 },
                SeriesPoint { size: 2, mbps: 40.0 },
                SeriesPoint { size: 4, mbps: 100.0 },
            ],
        };
        assert_eq!(half_bandwidth_point(&series), 4);
    }
}
