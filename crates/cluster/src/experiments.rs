//! One function per paper figure/table, plus the DESIGN.md ablations.
//!
//! Every figure is decomposed into independent, named [`JobSpec`]s (see
//! [`crate::jobs`]): `<figure>_jobs(..)` lists the grid points and
//! `<figure>_from(..)` assembles the figure from a [`ResultMap`] keyed by
//! job id — so assembly is independent of the order jobs completed in,
//! and the whole grid can be executed by any scheduler (the parallel
//! runner with its result cache lives in `clic-bench`). The plain
//! `fig4(..)`-style functions are convenience wrappers that run their own
//! jobs serially in-process.

use crate::builder::{ClusterConfig, Topology};
use crate::calibration::CostModel;
use crate::jobs::{sweep_point, JobKind, JobSpec, Measurement};
use crate::node::NodeConfig;
use crate::workload::StackKind;
use clic_core::{ClicConfig, CongestionConfig};
use clic_ethernet::LossModel;
use clic_sim::SimDuration;
use std::collections::BTreeMap;

/// Job results keyed by job id. Deterministically ordered, so iteration
/// (and therefore everything assembled from it) is reproducible.
pub type ResultMap = BTreeMap<String, Measurement>;

/// Run a job set serially on the calling thread. The reference executor:
/// the parallel runner in `clic-bench` must produce bit-identical maps.
pub fn run_serial(specs: &[JobSpec]) -> ResultMap {
    specs
        .iter()
        .map(|spec| (spec.id.clone(), spec.run()))
        .collect()
}

/// A bandwidth point.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Message size in bytes (the x axis).
    pub size: usize,
    /// Delivered bandwidth in Mb/s (the y axis).
    pub mbps: f64,
}

/// One labelled curve of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, ascending in size.
    pub points: Vec<SeriesPoint>,
}

/// The message sizes of the paper's x axis (10^1 .. 4·10^6, log-spaced).
pub fn paper_sizes() -> Vec<usize> {
    vec![
        16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 16_384, 32_768, 65_536, 131_072,
        262_144, 524_288, 1_048_576, 2_097_152, 4_194_304,
    ]
}

/// A reduced size set for quick runs and tests.
pub fn quick_sizes() -> Vec<usize> {
    vec![64, 1_024, 4_096, 65_536, 1_048_576]
}

/// The jobs of one bandwidth sweep: one standard stream job per size,
/// with ids `"<prefix>/<label>/size=<n>"`.
pub fn sweep_jobs(
    prefix: &str,
    label: &str,
    config: &ClusterConfig,
    stack: StackKind,
    sizes: &[usize],
) -> Vec<JobSpec> {
    sizes
        .iter()
        .map(|&size| {
            sweep_point(
                format!("{prefix}/{label}/size={size}"),
                config.clone(),
                stack,
                size,
            )
        })
        .collect()
}

/// Assemble one sweep's [`Series`] from its job results.
pub fn sweep_from(results: &ResultMap, prefix: &str, label: &str, sizes: &[usize]) -> Series {
    let points = sizes
        .iter()
        .map(|&size| SeriesPoint {
            size,
            mbps: results[&format!("{prefix}/{label}/size={size}")].require("mbps"),
        })
        .collect();
    Series {
        label: label.to_string(),
        points,
    }
}

/// Run a bandwidth sweep for one (cluster config, stack) pair, serially
/// in-process. Convenience wrapper over [`sweep_jobs`]/[`sweep_from`].
pub fn bandwidth_sweep(
    label: &str,
    config: &ClusterConfig,
    stack: StackKind,
    sizes: &[usize],
) -> Series {
    let specs = sweep_jobs("sweep", label, config, stack, sizes);
    sweep_from(&run_serial(&specs), "sweep", label, sizes)
}

/// The paper's two-node CLIC testbed config: standard or jumbo MTU,
/// zero-copy or one-copy module.
pub fn clic_pair(model: &CostModel, jumbo: bool, zero_copy: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::clic_default(model);
    cfg.node.nic = if jumbo {
        model.nic_jumbo()
    } else {
        model.nic_standard()
    };
    cfg.node.clic = Some(if zero_copy {
        ClicConfig::paper_default()
    } else {
        ClicConfig::one_copy()
    });
    cfg
}

/// The TCP/IP baseline config on the same hardware.
pub fn tcp_pair(model: &CostModel, jumbo: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::tcp_default(model);
    cfg.node.nic = if jumbo {
        model.nic_jumbo()
    } else {
        model.nic_standard()
    };
    cfg
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 4's four (label, jumbo, zero-copy) sweeps.
fn fig4_cases() -> Vec<(&'static str, bool, bool)> {
    vec![
        ("0-copy MTU 9000", true, true),
        ("0-copy MTU 1500", false, true),
        ("1-copy MTU 9000", true, false),
        ("1-copy MTU 1500", false, false),
    ]
}

/// Figure 4 jobs: CLIC bandwidth for MTU {1500, 9000} × {0-copy, 1-copy}.
pub fn fig4_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    fig4_cases()
        .into_iter()
        .flat_map(|(label, jumbo, zc)| {
            sweep_jobs(
                "fig4",
                label,
                &clic_pair(&model, jumbo, zc),
                StackKind::Clic,
                sizes,
            )
        })
        .collect()
}

/// Assemble Figure 4 from job results.
pub fn fig4_from(results: &ResultMap, sizes: &[usize]) -> Vec<Series> {
    fig4_cases()
        .into_iter()
        .map(|(label, _, _)| sweep_from(results, "fig4", label, sizes))
        .collect()
}

/// Figure 4: CLIC bandwidth for MTU {1500, 9000} × {0-copy, 1-copy}.
pub fn fig4(sizes: &[usize]) -> Vec<Series> {
    fig4_from(&run_serial(&fig4_jobs(sizes)), sizes)
}

/// Figure 5's four (label, config, stack) sweeps.
fn fig5_cases() -> Vec<(&'static str, ClusterConfig, StackKind)> {
    let model = CostModel::era_2002();
    vec![
        ("CLIC 9000", clic_pair(&model, true, true), StackKind::Clic),
        ("CLIC 1500", clic_pair(&model, false, true), StackKind::Clic),
        ("TCP 9000", tcp_pair(&model, true), StackKind::Tcp),
        ("TCP 1500", tcp_pair(&model, false), StackKind::Tcp),
    ]
}

/// Figure 5 jobs: CLIC vs TCP/IP for MTU {1500, 9000}, all 0-copy.
pub fn fig5_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    fig5_cases()
        .into_iter()
        .flat_map(|(label, cfg, stack)| sweep_jobs("fig5", label, &cfg, stack, sizes))
        .collect()
}

/// Assemble Figure 5 from job results.
pub fn fig5_from(results: &ResultMap, sizes: &[usize]) -> Vec<Series> {
    fig5_cases()
        .into_iter()
        .map(|(label, _, _)| sweep_from(results, "fig5", label, sizes))
        .collect()
}

/// Figure 5: CLIC vs TCP/IP for MTU {1500, 9000}, all 0-copy.
pub fn fig5(sizes: &[usize]) -> Vec<Series> {
    fig5_from(&run_serial(&fig5_jobs(sizes)), sizes)
}

/// Figure 6's four middleware sweeps.
fn fig6_cases() -> Vec<(&'static str, ClusterConfig, StackKind)> {
    let model = CostModel::era_2002();
    vec![
        ("CLIC", clic_pair(&model, true, true), StackKind::Clic),
        (
            "MPI-CLIC",
            clic_pair(&model, true, true),
            StackKind::MpiClic,
        ),
        ("MPI-TCP", tcp_pair(&model, true), StackKind::MpiTcp),
        ("PVM-TCP", tcp_pair(&model, true), StackKind::PvmTcp),
    ]
}

/// Figure 6 jobs: CLIC, MPI-CLIC, MPI-TCP, PVM-TCP (jumbo, 0-copy).
pub fn fig6_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    fig6_cases()
        .into_iter()
        .flat_map(|(label, cfg, stack)| sweep_jobs("fig6", label, &cfg, stack, sizes))
        .collect()
}

/// Assemble Figure 6 from job results.
pub fn fig6_from(results: &ResultMap, sizes: &[usize]) -> Vec<Series> {
    fig6_cases()
        .into_iter()
        .map(|(label, _, _)| sweep_from(results, "fig6", label, sizes))
        .collect()
}

/// Figure 6: CLIC, MPI-CLIC, MPI-TCP, PVM-TCP (jumbo frames, 0-copy).
pub fn fig6(sizes: &[usize]) -> Vec<Series> {
    fig6_from(&run_serial(&fig6_jobs(sizes)), sizes)
}

/// One pipeline stage of Figure 7.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage name, in pipeline order.
    pub stage: String,
    /// Stage duration in microseconds.
    pub us: f64,
}

/// The Figure 7 cluster config: latency-tuned NIC; `direct_call` selects
/// the Figure 8b improvement (7b vs 7a), which also assumes a bus-master
/// receive path (frames in host memory before the interrupt) — the driver
/// change the portable CLIC deliberately avoided.
fn fig7_config(direct_call: bool) -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = clic_pair(&model, false, true);
    cfg.node.nic = model.nic_low_latency(false);
    cfg.node.direct_dispatch = direct_call;
    cfg.node.nic.host_rings = direct_call;
    cfg
}

/// Figure 7 jobs: one traced 1400-byte packet per variant (7a, 7b).
pub fn fig7_jobs() -> Vec<JobSpec> {
    [false, true]
        .into_iter()
        .map(|direct_call| {
            JobSpec::new(
                format!("fig7/{}", if direct_call { "7b" } else { "7a" }),
                JobKind::StageTrace {
                    cluster: fig7_config(direct_call),
                    seed: 0,
                },
            )
        })
        .collect()
}

/// Assemble one Figure 7 variant from job results.
pub fn fig7_from(results: &ResultMap, direct_call: bool) -> Vec<StageRow> {
    let id = format!("fig7/{}", if direct_call { "7b" } else { "7a" });
    results[&id]
        .values
        .iter()
        .filter(|(stage, _)| !stage.starts_with(crate::jobs::METRIC_KEY_PREFIX))
        .map(|(stage, us)| StageRow {
            stage: stage.clone(),
            us: *us,
        })
        .collect()
}

/// Figure 7: per-stage timing of a 1400-byte packet through the CLIC
/// pipeline. `direct_call` selects the Figure 8b improvement (7b vs 7a).
pub fn fig7(direct_call: bool) -> Vec<StageRow> {
    fig7_from(&run_serial(&fig7_jobs()), direct_call)
}

// ---------------------------------------------------------------------
// Scalar results (§4 prose)
// ---------------------------------------------------------------------

/// The headline scalars of §4/§5.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalars {
    /// One-way 0-byte latency, µs (paper: 36 µs).
    pub zero_byte_latency_us: f64,
    /// Asymptotic CLIC bandwidth at MTU 9000, Mb/s (paper: ≈ 600).
    pub clic_asymptote_9000_mbps: f64,
    /// Asymptotic CLIC bandwidth at MTU 1500, Mb/s (paper: ≈ 450).
    pub clic_asymptote_1500_mbps: f64,
    /// Best TCP asymptote (MTU 9000), Mb/s (paper: CLIC > 2× this).
    pub tcp_asymptote_9000_mbps: f64,
    /// Message size reaching 50 % of CLIC's peak on the MTU 1500 curve,
    /// bytes (paper: ≈ 4 KB).
    pub clic_half_bandwidth_bytes_1500: usize,
    /// Same for the MTU 9000 curve (jumbo store-and-forward granularity
    /// pushes this out; see EXPERIMENTS.md).
    pub clic_half_bandwidth_bytes_9000: usize,
    /// Message size reaching 50 % of TCP's peak, bytes (paper: ≈ 16 KB).
    pub tcp_half_bandwidth_bytes: usize,
}

fn half_bandwidth_point(series: &Series) -> usize {
    let peak = series.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    series
        .points
        .iter()
        .find(|p| p.mbps >= peak / 2.0)
        .map(|p| p.size)
        .unwrap_or(usize::MAX)
}

/// The latency-measurement config: ping-pong with the latency-tuned NIC,
/// as the paper's latency figure uses the NICs' adjustable coalescing.
fn latency_config() -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = clic_pair(&model, false, true);
    cfg.node.nic = model.nic_low_latency(false);
    cfg
}

/// Scalars jobs: a latency ping-pong plus three bandwidth sweeps.
pub fn scalars_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    let mut specs = vec![JobSpec::new(
        "scalars/latency",
        JobKind::PingPong {
            cluster: latency_config(),
            stack: StackKind::Clic,
            size: 0,
            rounds: 20,
            seed: 1,
        },
    )];
    specs.extend(sweep_jobs(
        "scalars",
        "c9000",
        &clic_pair(&model, true, true),
        StackKind::Clic,
        sizes,
    ));
    specs.extend(sweep_jobs(
        "scalars",
        "c1500",
        &clic_pair(&model, false, true),
        StackKind::Clic,
        sizes,
    ));
    specs.extend(sweep_jobs(
        "scalars",
        "t9000",
        &tcp_pair(&model, true),
        StackKind::Tcp,
        sizes,
    ));
    specs
}

/// Assemble the §4 scalars from job results.
pub fn scalars_from(results: &ResultMap, sizes: &[usize]) -> Scalars {
    let clic_9000 = sweep_from(results, "scalars", "c9000", sizes);
    let clic_1500 = sweep_from(results, "scalars", "c1500", sizes);
    let tcp_9000 = sweep_from(results, "scalars", "t9000", sizes);
    let peak = |s: &Series| s.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    Scalars {
        zero_byte_latency_us: results["scalars/latency"].require("one_way_us"),
        clic_asymptote_9000_mbps: peak(&clic_9000),
        clic_asymptote_1500_mbps: peak(&clic_1500),
        tcp_asymptote_9000_mbps: peak(&tcp_9000),
        clic_half_bandwidth_bytes_1500: half_bandwidth_point(&clic_1500),
        clic_half_bandwidth_bytes_9000: half_bandwidth_point(&clic_9000),
        tcp_half_bandwidth_bytes: half_bandwidth_point(&tcp_9000),
    }
}

/// Compute the §4 scalars.
pub fn scalars(sizes: &[usize]) -> Scalars {
    scalars_from(&run_serial(&scalars_jobs(sizes)), sizes)
}

// ---------------------------------------------------------------------
// §5 comparison table (CLIC vs GAMMA)
// ---------------------------------------------------------------------

/// One row of the §5 comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// Protocol name.
    pub protocol: String,
    /// One-way 0-byte latency, µs.
    pub latency_us: f64,
    /// Peak bandwidth, Mb/s.
    pub bandwidth_mbps: f64,
}

fn gamma_config() -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = ClusterConfig::paper_pair();
    cfg.node = NodeConfig::gamma_default(&model);
    cfg
}

/// Gamma-table jobs: per protocol, a latency ping-pong plus a sweep.
pub fn gamma_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    let mut specs = vec![JobSpec::new(
        "gamma/clic/latency",
        JobKind::PingPong {
            cluster: latency_config(),
            stack: StackKind::Clic,
            size: 0,
            rounds: 20,
            seed: 1,
        },
    )];
    specs.extend(sweep_jobs(
        "gamma",
        "clic",
        &clic_pair(&model, true, true),
        StackKind::Clic,
        sizes,
    ));
    specs.push(JobSpec::new(
        "gamma/gamma/latency",
        JobKind::PingPong {
            cluster: gamma_config(),
            stack: StackKind::Gamma,
            size: 0,
            rounds: 20,
            seed: 1,
        },
    ));
    specs.extend(sweep_jobs(
        "gamma",
        "gamma",
        &gamma_config(),
        StackKind::Gamma,
        sizes,
    ));
    specs
}

/// Assemble the §5 comparison from job results.
pub fn gamma_from(results: &ResultMap, sizes: &[usize]) -> Vec<ComparisonRow> {
    let peak = |s: &Series| s.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    vec![
        ComparisonRow {
            protocol: "CLIC".into(),
            latency_us: results["gamma/clic/latency"].require("one_way_us"),
            bandwidth_mbps: peak(&sweep_from(results, "gamma", "clic", sizes)),
        },
        ComparisonRow {
            protocol: "GAMMA (model)".into(),
            latency_us: results["gamma/gamma/latency"].require("one_way_us"),
            bandwidth_mbps: peak(&sweep_from(results, "gamma", "gamma", sizes)),
        },
    ]
}

/// CLIC vs the GAMMA-like baseline.
pub fn gamma_table(sizes: &[usize]) -> Vec<ComparisonRow> {
    gamma_from(&run_serial(&gamma_jobs(sizes)), sizes)
}

// ---------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------

/// Ablation A row: interrupt coalescing setting vs delivered bandwidth,
/// interrupt rate and small-message latency.
#[derive(Debug, Clone, PartialEq)]
pub struct CoalescingRow {
    /// Coalescing timer, µs.
    pub usecs: u64,
    /// Coalescing frame threshold.
    pub frames: u32,
    /// Streaming bandwidth at MTU 1500, Mb/s.
    pub mbps: f64,
    /// Receiver interrupts per 1000 delivered frames.
    pub irqs_per_kframe: f64,
    /// 0-byte one-way latency, µs.
    pub latency_us: f64,
}

/// The coalescing settings swept by Ablation A.
fn coalescing_settings() -> &'static [(u64, u32)] {
    &[(0, 1), (5, 1), (30, 8), (70, 16), (200, 64)]
}

/// Ablation A jobs: per setting, a 256 KB stream and a 0-byte ping-pong.
pub fn coalescing_jobs() -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    let mut specs = Vec::new();
    for &(usecs, frames) in coalescing_settings() {
        let mut cfg = clic_pair(&model, false, true);
        cfg.node.nic.coalesce_usecs = usecs;
        cfg.node.nic.coalesce_frames = frames;
        let size = 262_144;
        specs.push(JobSpec::new(
            format!("coalescing/u{usecs}f{frames}/stream"),
            JobKind::Stream {
                cluster: cfg.clone(),
                stack: StackKind::Clic,
                size,
                count: crate::workload::stream_count(size),
                seed: 2,
                pipelined: false,
            },
        ));
        specs.push(JobSpec::new(
            format!("coalescing/u{usecs}f{frames}/latency"),
            JobKind::PingPong {
                cluster: cfg,
                stack: StackKind::Clic,
                size: 0,
                rounds: 10,
                seed: 3,
            },
        ));
    }
    specs
}

/// Assemble Ablation A from job results.
pub fn coalescing_from(results: &ResultMap) -> Vec<CoalescingRow> {
    coalescing_settings()
        .iter()
        .map(|&(usecs, frames)| {
            let stream = &results[&format!("coalescing/u{usecs}f{frames}/stream")];
            let latency = &results[&format!("coalescing/u{usecs}f{frames}/latency")];
            CoalescingRow {
                usecs,
                frames,
                mbps: stream.require("mbps"),
                irqs_per_kframe: stream.require("rx_irqs") / stream.require("rx_frames").max(1.0)
                    // lint:allow(time-overflow, reason="f64 rate arithmetic; the nearby _us field name is incidental")
                    * 1000.0,
                latency_us: latency.require("one_way_us"),
            }
        })
        .collect()
}

/// Ablation A: sweep interrupt coalescing (§2's ~12 µs/interrupt claim).
pub fn ablation_coalescing() -> Vec<CoalescingRow> {
    coalescing_from(&run_serial(&coalescing_jobs()))
}

/// Ablation B's two configurations: baseline vs NIC fragmentation
/// offload. With offload the module can hand the NIC super-packets;
/// emulate the Alteon firmware's limit of 255 fragments.
fn fragmentation_cases() -> Vec<(&'static str, ClusterConfig)> {
    let model = CostModel::era_2002();
    let base = clic_pair(&model, false, true);
    let mut offload = base.clone();
    offload.node.nic.tx_frag_offload = true;
    offload.node.nic.rx_frag_offload = true;
    if let Some(clic) = &mut offload.node.clic {
        clic.mtu_override = Some(64 * 1024);
    }
    vec![
        ("no offload (MTU 1500)", base),
        ("frag offload (64K super-packets)", offload),
    ]
}

/// Ablation B jobs: both sweeps.
pub fn fragmentation_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    fragmentation_cases()
        .into_iter()
        .flat_map(|(label, cfg)| sweep_jobs("fragmentation", label, &cfg, StackKind::Clic, sizes))
        .collect()
}

/// Assemble Ablation B from job results.
pub fn fragmentation_from(results: &ResultMap, sizes: &[usize]) -> Vec<Series> {
    fragmentation_cases()
        .into_iter()
        .map(|(label, _)| sweep_from(results, "fragmentation", label, sizes))
        .collect()
}

/// Ablation B: NIC TX/RX fragmentation offload (the paper's future work).
pub fn ablation_fragmentation(sizes: &[usize]) -> Vec<Series> {
    fragmentation_from(&run_serial(&fragmentation_jobs(sizes)), sizes)
}

/// Ablation C row: channel bonding width vs bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct BondingRow {
    /// Number of bonded NICs/links.
    pub width: usize,
    /// Bandwidth on the paper's 33 MHz/32-bit PCI, Mb/s.
    pub mbps_pci33: f64,
    /// Bandwidth with a 66 MHz/64-bit PCI and bus-master receive — shows
    /// bonding scales once the I/O bus stops being the bottleneck (the
    /// very bottleneck §1 calls out).
    pub mbps_pci66: f64,
}

fn bonding_config(width: usize, fast: bool) -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = clic_pair(&model, true, true);
    cfg.node.nics = width;
    cfg.node.fast_pci = fast;
    if fast {
        cfg.node.nic.host_rings = true;
    }
    cfg
}

/// Ablation C jobs: width {1, 2, 3} × PCI {33/32, 66/64}.
pub fn bonding_jobs() -> Vec<JobSpec> {
    let size = 1 << 20;
    (1..=3)
        .flat_map(|width| {
            [(false, "pci33"), (true, "pci66")]
                .into_iter()
                .map(move |(fast, tag)| {
                    JobSpec::new(
                        format!("bonding/w{width}/{tag}"),
                        JobKind::Stream {
                            cluster: bonding_config(width, fast),
                            stack: StackKind::Clic,
                            size,
                            count: crate::workload::stream_count(size),
                            seed: 4,
                            pipelined: false,
                        },
                    )
                })
        })
        .collect()
}

/// Assemble Ablation C from job results.
pub fn bonding_from(results: &ResultMap) -> Vec<BondingRow> {
    (1..=3)
        .map(|width| BondingRow {
            width,
            mbps_pci33: results[&format!("bonding/w{width}/pci33")].require("mbps"),
            mbps_pci66: results[&format!("bonding/w{width}/pci66")].require("mbps"),
        })
        .collect()
}

/// Ablation C: channel bonding scaling (§5 feature list).
pub fn ablation_bonding() -> Vec<BondingRow> {
    bonding_from(&run_serial(&bonding_jobs()))
}

/// Ablation D row: system-call flavour vs latency.
#[derive(Debug, Clone, PartialEq)]
pub struct SyscallRow {
    /// "standard" (INT 80h + scheduler) or "lightweight" (GAMMA-style).
    pub flavour: String,
    /// 0-byte one-way latency, µs.
    pub latency_us: f64,
}

/// Ablation D jobs: one ping-pong per system-call flavour.
pub fn syscall_jobs() -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    [("standard", false), ("lightweight", true)]
        .into_iter()
        .map(|(flavour, lightweight)| {
            let mut cfg = clic_pair(&model, false, true);
            cfg.node.nic = model.nic_low_latency(false);
            if lightweight {
                cfg.node.os.syscall = cfg.node.os.lightweight_call;
            }
            JobSpec::new(
                format!("syscall/{flavour}"),
                JobKind::PingPong {
                    cluster: cfg,
                    stack: StackKind::Clic,
                    size: 0,
                    rounds: 10,
                    seed: 5,
                },
            )
        })
        .collect()
}

/// Assemble Ablation D from job results.
pub fn syscall_from(results: &ResultMap) -> Vec<SyscallRow> {
    ["standard", "lightweight"]
        .into_iter()
        .map(|flavour| SyscallRow {
            flavour: flavour.into(),
            latency_us: results[&format!("syscall/{flavour}")].require("one_way_us"),
        })
        .collect()
}

/// Ablation D: the §3.2 discussion — how much does the standard system
/// call actually cost CLIC versus GAMMA-style lightweight calls?
pub fn ablation_syscall() -> Vec<SyscallRow> {
    syscall_from(&run_serial(&syscall_jobs()))
}

/// Ablation E row: loss rate vs CLIC goodput and retransmissions.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Bernoulli frame-loss probability.
    pub loss: f64,
    /// Delivered goodput, Mb/s (64 KB messages, MTU 1500).
    pub mbps: f64,
    /// Retransmitted packets per 1000 first transmissions.
    pub retx_per_kpkt: f64,
}

/// The loss probabilities swept by Ablation E.
fn loss_rates() -> [f64; 4] {
    [0.0, 0.001, 0.005, 0.02]
}

/// Ablation E jobs: one 64 KB stream per loss rate.
pub fn loss_jobs() -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    loss_rates()
        .into_iter()
        .map(|loss| {
            let mut cfg = clic_pair(&model, false, true);
            cfg.loss = if loss == 0.0 {
                LossModel::None
            } else {
                LossModel::Bernoulli(loss)
            };
            let size = 65_536;
            JobSpec::new(
                format!("loss/p{loss}"),
                JobKind::Stream {
                    cluster: cfg,
                    stack: StackKind::Clic,
                    size,
                    count: crate::workload::stream_count(size),
                    seed: 6,
                    pipelined: false,
                },
            )
        })
        .collect()
}

/// Assemble Ablation E from job results.
pub fn loss_from(results: &ResultMap) -> Vec<LossRow> {
    loss_rates()
        .into_iter()
        .map(|loss| {
            let m = &results[&format!("loss/p{loss}")];
            LossRow {
                loss,
                mbps: m.require("mbps"),
                retx_per_kpkt: m.require("retransmits") / m.require("packets_sent").max(1.0)
                    * 1000.0,
            }
        })
        .collect()
}

/// Ablation E: reliability under injected loss.
pub fn ablation_loss() -> Vec<LossRow> {
    loss_from(&run_serial(&loss_jobs()))
}

/// Ablation F row: offered-load bandwidth and CPU cost per stack and link
/// speed.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuRow {
    /// Stack under test.
    pub stack: String,
    /// Link speed, Mb/s.
    pub link_mbps: u64,
    /// Delivered bandwidth, Mb/s.
    pub mbps: f64,
    /// Delivered bandwidth as % of the link rate.
    pub pct_of_wire: f64,
    /// Sender CPU busy fraction.
    pub sender_cpu: f64,
    /// Receiver CPU busy fraction.
    pub receiver_cpu: f64,
}

/// The (stack, is_clic, link) grid of Ablation F.
fn cpu_cases() -> &'static [(&'static str, bool, u64)] {
    &[
        ("TCP", false, 100_000_000),
        ("TCP", false, 1_000_000_000),
        ("CLIC", true, 100_000_000),
        ("CLIC", true, 1_000_000_000),
    ]
}

/// Ablation F jobs: one pipelined 256 KB stream per (stack, link speed).
pub fn cpu_jobs() -> Vec<JobSpec> {
    let model = CostModel::era_2002();
    cpu_cases()
        .iter()
        .map(|&(name, is_clic, bps)| {
            let mut cfg = if is_clic {
                clic_pair(&model, false, true)
            } else {
                tcp_pair(&model, false)
            };
            cfg.model.link_bps = bps;
            let size = 262_144;
            JobSpec::new(
                format!("cpu/{name}/l{}", bps / 1_000_000),
                JobKind::Stream {
                    cluster: cfg,
                    stack: if is_clic {
                        StackKind::Clic
                    } else {
                        StackKind::Tcp
                    },
                    size,
                    count: crate::workload::stream_count(size),
                    seed: 8,
                    pipelined: true,
                },
            )
        })
        .collect()
}

/// Assemble Ablation F from job results.
pub fn cpu_from(results: &ResultMap) -> Vec<CpuRow> {
    cpu_cases()
        .iter()
        .map(|&(name, _, bps)| {
            let m = &results[&format!("cpu/{name}/l{}", bps / 1_000_000)];
            let mbps = m.require("mbps");
            CpuRow {
                stack: name.to_string(),
                link_mbps: bps / 1_000_000,
                mbps,
                pct_of_wire: mbps / (bps as f64 / 1e6) * 100.0,
                sender_cpu: m.require("sender_cpu"),
                receiver_cpu: m.require("receiver_cpu"),
            }
        })
        .collect()
}

/// Ablation F — §2's scaling claim: "in Fast Ethernet ... 90 % of the
/// maximum bandwidth with a 15–20 % CPU use. Having a similar situation in
/// networks with 1 Gb/s bandwidths would require almost 100 % of the
/// processor power." Offered-load streaming, 256 KB messages.
pub fn ablation_cpu() -> Vec<CpuRow> {
    cpu_from(&run_serial(&cpu_jobs()))
}

/// Ablation H row: one of Figure 1's data paths, measured on one link.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRow {
    /// Which Figure 1 path (2, 3, or 4).
    pub path: u8,
    /// Human description.
    pub description: String,
    /// Link speed, Mb/s.
    pub link_mbps: u64,
    /// Delivered bandwidth at 256 KB messages, Mb/s.
    pub mbps: f64,
}

fn path_config(path: u8, link_bps: u64) -> ClusterConfig {
    let model = CostModel::era_2002();
    let mut cfg = clic_pair(&model, false, path == 2);
    cfg.model.link_bps = link_bps;
    if path == 4 {
        // An older NIC: frames cross its internal buffer at a rate
        // comparable to the era's on-NIC processors.
        cfg.node.nic.internal_copy_bytes_per_sec = Some(60_000_000);
    }
    cfg
}

/// Ablation H jobs: paths {2, 3, 4} × links {100 Mb/s, 1 Gb/s}.
pub fn paths_jobs() -> Vec<JobSpec> {
    let size = 262_144;
    [100_000_000u64, 1_000_000_000]
        .into_iter()
        .flat_map(|link_bps| {
            [2u8, 3, 4].into_iter().map(move |path| {
                JobSpec::new(
                    format!("paths/p{path}/l{}", link_bps / 1_000_000),
                    JobKind::Stream {
                        cluster: path_config(path, link_bps),
                        stack: StackKind::Clic,
                        size,
                        count: crate::workload::stream_count(size),
                        seed: 12,
                        pipelined: false,
                    },
                )
            })
        })
        .collect()
}

/// Assemble Ablation H from job results.
pub fn paths_from(results: &ResultMap) -> Vec<PathRow> {
    let mut rows = Vec::new();
    for link_bps in [100_000_000u64, 1_000_000_000] {
        for path in [2u8, 3, 4] {
            let m = &results[&format!("paths/p{path}/l{}", link_bps / 1_000_000)];
            rows.push(PathRow {
                path,
                description: match path {
                    2 => "0-copy: DMA from user memory".into(),
                    3 => "1-copy: kernel staging + DMA".into(),
                    _ => "1-copy + NIC internal copy (Fast Ethernet CLIC)".into(),
                },
                link_mbps: link_bps / 1_000_000,
                mbps: m.require("mbps"),
            });
        }
    }
    rows
}

/// Ablation H — Figure 1's data-path taxonomy: path 2 (scatter-gather DMA
/// from user memory, the Gigabit CLIC), path 3 (CPU copy to a kernel
/// buffer, DMA from there), and path 4 (kernel copy + DMA to the NIC
/// output buffer + the NIC processor's internal copy — the Fast Ethernet
/// CLIC). At 100 Mb/s the wire hides the difference, which is why the
/// first CLIC shipped path 4; at 1 Gb/s it no longer does.
pub fn ablation_paths() -> Vec<PathRow> {
    paths_from(&run_serial(&paths_jobs()))
}

/// Ablation G row: small-message latency with and without competing bulk
/// traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedLatencyRow {
    /// Stack under test.
    pub stack: String,
    /// Whether a bulk transfer was running concurrently.
    pub loaded: bool,
    /// Minimum one-way latency, µs.
    pub min_us: f64,
    /// Mean one-way latency, µs.
    pub mean_us: f64,
    /// 99th-percentile one-way latency, µs.
    pub p99_us: f64,
}

/// Ablation G jobs: {CLIC, TCP} × {idle, loaded}.
pub fn load_jobs() -> Vec<JobSpec> {
    [("CLIC", true), ("TCP", false)]
        .into_iter()
        .flat_map(|(name, clic)| {
            [false, true].into_iter().map(move |loaded| {
                JobSpec::new(
                    format!("load/{name}/{}", if loaded { "loaded" } else { "idle" }),
                    JobKind::LoadedLatency { clic, loaded },
                )
            })
        })
        .collect()
}

/// Assemble Ablation G from job results.
pub fn load_from(results: &ResultMap) -> Vec<LoadedLatencyRow> {
    let mut rows = Vec::new();
    for (name, _) in [("CLIC", true), ("TCP", false)] {
        for loaded in [false, true] {
            let m = &results[&format!("load/{name}/{}", if loaded { "loaded" } else { "idle" })];
            rows.push(LoadedLatencyRow {
                stack: name.to_string(),
                loaded,
                min_us: m.require("min_us"),
                mean_us: m.require("mean_us"),
                p99_us: m.require("p99_us"),
            });
        }
    }
    rows
}

/// Ablation G — §3.2's multiprogramming argument: CLIC keeps standard
/// system calls so the scheduler can service pending messages promptly
/// even when other traffic loads the node. Measure 64-byte request/reply
/// latency while a bulk transfer saturates the same pair of nodes.
pub fn ablation_latency_under_load() -> Vec<LoadedLatencyRow> {
    load_from(&run_serial(&load_jobs()))
}

/// One cell of the reliability-under-loss family: a (stack, MTU, loss
/// model) combination exercised with 64 KB request / 4-byte reply cycles
/// over a faulty link.
#[derive(Debug, Clone, PartialEq)]
pub struct ReliabilityRow {
    /// Stack under test.
    pub stack: String,
    /// Device MTU, bytes.
    pub mtu: usize,
    /// Mean frame-loss probability, percent (applied in both directions).
    pub loss_pct: f64,
    /// Bursty (Gilbert–Elliott) rather than uniform (Bernoulli) loss.
    pub bursty: bool,
    /// Delivered goodput, Mb/s (request bytes per mean cycle).
    pub mbps: f64,
    /// Mean request/reply cycle time, µs.
    pub mean_us: f64,
    /// 99th-percentile cycle time, µs.
    pub p99_us: f64,
    /// Retransmitted packets, totalled across both stacks' counters.
    pub retx: f64,
    /// Dropped frames/packets, totalled across every layer.
    pub drops: f64,
}

/// The loss model of one reliability cell. Bursty cells use a
/// Gilbert–Elliott chain tuned to the same mean loss `p`: the burst state
/// drops everything, lasts 4 frames on average (`p_exit = 0.25`), and is
/// entered at the rate that makes the stationary loss equal `p`.
pub(crate) fn reliability_loss(p: f64, bursty: bool) -> LossModel {
    if p == 0.0 {
        LossModel::None
    } else if bursty {
        LossModel::GilbertElliott {
            p_enter_burst: 0.25 * p / (1.0 - p),
            p_exit_burst: 0.25,
            loss_good: 0.0,
            loss_bad: 1.0,
        }
    } else {
        LossModel::Bernoulli(p)
    }
}

/// The reliability grid: `(id, stack, label, mtu, loss_pct, bursty)`.
/// Quick runs keep MTU 1500 and the extreme loss cells only.
fn reliability_cases(quick: bool) -> Vec<(String, StackKind, &'static str, usize, f64, bool)> {
    let mtus: &[usize] = if quick { &[1500] } else { &[1500, 9000] };
    let losses: &[(f64, bool)] = if quick {
        &[(0.0, false), (2.0, false), (2.0, true)]
    } else {
        &[
            (0.0, false),
            (0.5, false),
            (0.5, true),
            (2.0, false),
            (2.0, true),
        ]
    };
    let mut cases = Vec::new();
    for (stack, label) in [(StackKind::Clic, "CLIC"), (StackKind::Tcp, "TCP")] {
        for &mtu in mtus {
            for &(pct, bursty) in losses {
                let kind = if bursty { "burst" } else { "uniform" };
                cases.push((
                    format!("reliability/{label}/mtu{mtu}/loss{pct}/{kind}"),
                    stack,
                    label,
                    mtu,
                    pct,
                    bursty,
                ));
            }
        }
    }
    cases
}

/// Reliability jobs: CLIC vs TCP × MTU × (loss rate, burstiness), one
/// [`JobKind::Reliability`] each. `sizes` only selects quick vs full (as
/// for the sweeps, a reduced size grid means a reduced reliability grid).
pub fn reliability_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let quick = sizes.len() <= quick_sizes().len();
    let rounds = if quick { 32 } else { 128 };
    let model = CostModel::era_2002();
    reliability_cases(quick)
        .into_iter()
        .map(|(id, stack, _, mtu, pct, bursty)| {
            let jumbo = mtu == 9000;
            let mut cfg = match stack {
                StackKind::Clic => clic_pair(&model, jumbo, true),
                _ => tcp_pair(&model, jumbo),
            };
            cfg.faults.loss = reliability_loss(pct / 100.0, bursty);
            JobSpec::new(
                id,
                JobKind::Reliability {
                    cluster: cfg,
                    stack,
                    size: 65_536,
                    rounds,
                    seed: 21,
                },
            )
        })
        .collect()
}

/// Assemble the reliability rows from job results.
pub fn reliability_from(results: &ResultMap, sizes: &[usize]) -> Vec<ReliabilityRow> {
    let quick = sizes.len() <= quick_sizes().len();
    reliability_cases(quick)
        .into_iter()
        .map(|(id, _, label, mtu, pct, bursty)| {
            let m = &results[&id];
            ReliabilityRow {
                stack: label.to_string(),
                mtu,
                loss_pct: pct,
                bursty,
                mbps: m.require("mbps"),
                mean_us: m.require("mean_us"),
                p99_us: m.require("p99_us"),
                retx: m.require("m.retransmits"),
                drops: m.require("m.drops"),
            }
        })
        .collect()
}

/// The reliability-under-loss family: goodput, tail latency and
/// retransmission cost of CLIC vs TCP as the link degrades — the §1
/// "networks have finite buffering and lose frames" scenario the paper's
/// clean testbed never exercises.
pub fn reliability(sizes: &[usize]) -> Vec<ReliabilityRow> {
    reliability_from(&run_serial(&reliability_jobs(sizes)), sizes)
}

/// Ablation I row: all-to-all exchange scaling on a switched cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Cluster size.
    pub nodes: usize,
    /// Aggregate delivered bandwidth, Mb/s (64 KB per pair).
    pub aggregate_mbps: f64,
    /// Aggregate bandwidth per node, Mb/s.
    pub per_node_mbps: f64,
}

/// Ablation I jobs: all-to-all on switched clusters of 2, 4 and 8 nodes.
pub fn scaling_jobs() -> Vec<JobSpec> {
    use crate::builder::Topology;
    let model = CostModel::era_2002();
    [2usize, 4, 8]
        .into_iter()
        .map(|nodes| {
            let mut cfg = clic_pair(&model, true, true);
            cfg.nodes = nodes;
            cfg.topology = Topology::Switched;
            JobSpec::new(
                format!("scaling/n{nodes}"),
                JobKind::AllToAll {
                    cluster: cfg,
                    size: 65_536,
                    seed: 14,
                },
            )
        })
        .collect()
}

/// Assemble Ablation I from job results.
pub fn scaling_from(results: &ResultMap) -> Vec<ScalingRow> {
    [2usize, 4, 8]
        .into_iter()
        .map(|nodes| {
            let aggregate_mbps = results[&format!("scaling/n{nodes}")].require("aggregate_mbps");
            ScalingRow {
                nodes,
                aggregate_mbps,
                per_node_mbps: aggregate_mbps / nodes as f64,
            }
        })
        .collect()
}

/// Ablation I (extension): CLIC all-to-all on switched clusters of
/// growing size — the cluster-computing workload the paper positions CLIC
/// for, beyond its two-node testbed.
pub fn ablation_scaling() -> Vec<ScalingRow> {
    scaling_from(&run_serial(&scaling_jobs()))
}

// ---------------------------------------------------------------------
// Chaos soak + incast backpressure (the robustness family)
// ---------------------------------------------------------------------

/// One chaos-soak cell: a seeded crash/restart/flap/loss schedule driven
/// through [`crate::workload::chaos_clic`], which asserts the robustness
/// invariants; the row reports the accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Schedule seed.
    pub seed: u64,
    /// Mean frame-loss probability, percent.
    pub loss_pct: f64,
    /// Receiver crash/restart cycles.
    pub crashes: usize,
    /// Link flaps.
    pub flaps: usize,
    /// Messages posted by the application.
    pub posted: f64,
    /// Messages confirmed delivered by the protocol.
    pub confirmed: f64,
    /// Messages written off by a typed flow failure.
    pub failed: f64,
    /// Messages the receiving application drained.
    pub delivered: f64,
    /// Teardowns: keepalive declared the peer dead.
    pub err_peer_dead: f64,
    /// Teardowns: the peer restarted into a new epoch.
    pub err_stale_epoch: f64,
    /// Teardowns: retransmission retries exhausted.
    pub err_max_retries: f64,
    /// Flow generations used (1 + teardowns).
    pub eras: f64,
    /// Stale-epoch packets the restarted receiver rejected.
    pub stale_epoch_drops: f64,
    /// Packets retransmitted.
    pub retx: f64,
}

/// One incast cell: N→1 into a slow consumer, with or without the
/// advertised-window receive budget.
#[derive(Debug, Clone, PartialEq)]
pub struct IncastRow {
    /// Receive budget in bytes (`None` = unthrottled).
    pub budget: Option<usize>,
    /// Concurrent senders.
    pub senders: usize,
    /// Messages delivered.
    pub delivered: f64,
    /// Mean post-to-delivery completion, µs.
    pub mean_us: f64,
    /// 99th-percentile completion, µs.
    pub p99_us: f64,
    /// Peak receive-side buffered bytes.
    pub peak_buffered_bytes: f64,
    /// First post to last delivery, µs.
    pub elapsed_us: f64,
}

/// The soak grid: `(id, seed, loss_pct, crashes, flaps)`. Quick runs keep
/// one clean-link and one lossy schedule; full runs sweep three seeds.
fn chaos_soak_cases(quick: bool) -> Vec<(String, u64, f64, usize, usize)> {
    let cells: &[(u64, f64, usize, usize)] = if quick {
        &[(1, 0.0, 1, 1), (2, 0.5, 2, 2)]
    } else {
        &[
            (1, 0.0, 1, 1),
            (1, 0.5, 1, 2),
            (1, 1.0, 2, 2),
            (2, 0.0, 1, 1),
            (2, 0.5, 1, 2),
            (2, 1.0, 2, 2),
            (3, 0.5, 2, 1),
            (3, 1.0, 2, 2),
        ]
    };
    cells
        .iter()
        .map(|&(seed, pct, crashes, flaps)| {
            (
                format!("chaos/soak/s{seed}/loss{pct}/c{crashes}f{flaps}"),
                seed,
                pct,
                crashes,
                flaps,
            )
        })
        .collect()
}

/// The incast grid: `(id, budget_bytes)`.
fn chaos_incast_cases() -> Vec<(String, Option<usize>)> {
    vec![
        ("chaos/incast/unbounded".to_string(), None),
        ("chaos/incast/budget64k".to_string(), Some(64 * 1024)),
    ]
}

/// A two-node CLIC pair with the robustness machinery enabled: keepalive
/// liveness, epoch guarding, and `loss_pct` percent uniform frame loss.
pub(crate) fn chaos_pair(model: &CostModel, loss_pct: f64) -> ClusterConfig {
    let mut cfg = clic_pair(model, false, true);
    let clic = cfg.node.clic.as_mut().expect("clic_pair configures CLIC");
    clic.keepalive_interval = Some(SimDuration::from_us(500));
    clic.peer_dead_timeout = SimDuration::from_ms(5);
    clic.epoch_guard = true;
    // Uniform loss only: duplication/reorder models would legitimately
    // break the workload's strict-order invariant across flow eras.
    cfg.faults.loss = reliability_loss(loss_pct / 100.0, false);
    cfg
}

/// The incast cluster: `nodes`-node star, node 0 the receiver, with a
/// modest send window (so the pre-first-ACK burst does not dwarf the
/// budget) and the given receive budget.
pub(crate) fn incast_cluster(
    model: &CostModel,
    nodes: usize,
    budget: Option<usize>,
) -> ClusterConfig {
    let mut cfg = clic_pair(model, false, true);
    cfg.nodes = nodes;
    cfg.topology = Topology::Switched;
    let clic = cfg.node.clic.as_mut().expect("clic_pair configures CLIC");
    clic.window = 16;
    clic.recv_budget_bytes = budget;
    cfg
}

/// Chaos jobs: the soak grid plus the incast pair. `sizes` only selects
/// quick vs full, as for the other families.
pub fn chaos_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let quick = sizes.len() <= quick_sizes().len();
    let nmsgs = if quick { 40 } else { 120 };
    let per_sender = if quick { 8 } else { 32 };
    let model = CostModel::era_2002();
    let mut jobs: Vec<JobSpec> = chaos_soak_cases(quick)
        .into_iter()
        .map(|(id, seed, pct, crashes, flaps)| {
            JobSpec::new(
                id,
                JobKind::Chaos {
                    cluster: chaos_pair(&model, pct),
                    size: 2_048,
                    nmsgs,
                    crashes,
                    flaps,
                    seed,
                },
            )
        })
        .collect();
    jobs.extend(chaos_incast_cases().into_iter().map(|(id, budget)| {
        JobSpec::new(
            id,
            JobKind::Incast {
                cluster: incast_cluster(&model, 5, budget),
                size: 8_192,
                per_sender,
                consume_delay_us: 150,
                seed: 9,
            },
        )
    }));
    jobs
}

/// Assemble the chaos rows from job results.
pub fn chaos_from(results: &ResultMap, sizes: &[usize]) -> (Vec<ChaosRow>, Vec<IncastRow>) {
    let quick = sizes.len() <= quick_sizes().len();
    let soak = chaos_soak_cases(quick)
        .into_iter()
        .map(|(id, seed, pct, crashes, flaps)| {
            let m = &results[&id];
            ChaosRow {
                seed,
                loss_pct: pct,
                crashes,
                flaps,
                posted: m.require("posted"),
                confirmed: m.require("confirmed"),
                failed: m.require("failed"),
                delivered: m.require("delivered"),
                err_peer_dead: m.require("err_peer_dead"),
                err_stale_epoch: m.require("err_stale_epoch"),
                err_max_retries: m.require("err_max_retries"),
                eras: m.require("eras"),
                stale_epoch_drops: m.require("stale_epoch_drops"),
                retx: m.require("m.retransmits"),
            }
        })
        .collect();
    let incast = chaos_incast_cases()
        .into_iter()
        .map(|(id, budget)| {
            let m = &results[&id];
            IncastRow {
                budget,
                senders: 4,
                delivered: m.require("delivered"),
                mean_us: m.require("mean_us"),
                p99_us: m.require("p99_us"),
                peak_buffered_bytes: m.require("peak_buffered_bytes"),
                elapsed_us: m.require("elapsed_us"),
            }
        })
        .collect();
    (soak, incast)
}

/// The chaos-soak + incast robustness family: crash-recovery accounting
/// under seeded fault schedules, and receive-buffer behaviour under 4→1
/// incast with and without backpressure.
pub fn chaos(sizes: &[usize]) -> (Vec<ChaosRow>, Vec<IncastRow>) {
    chaos_from(&run_serial(&chaos_jobs(sizes)), sizes)
}

// ---------------------------------------------------------------------
// Cluster scaling: fabrics × node count × collective backend
// ---------------------------------------------------------------------

/// One cluster-scaling cell: whole-cluster barrier + all-reduce latency
/// for a node count on a fabric, host-based or NIC-offloaded.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// Fabric kind ("leaf-spine" or "fat-tree").
    pub fabric: &'static str,
    /// Nodes in the cluster.
    pub nodes: usize,
    /// Collective backend ("host" or "nic").
    pub backend: &'static str,
    /// Barrier enter-to-release latency, µs.
    pub barrier_us: f64,
    /// All-reduce contribute-to-total latency, µs.
    pub allreduce_us: f64,
    /// Switches in the fabric.
    pub switches: f64,
    /// Switch-to-switch trunk links.
    pub trunks: f64,
    /// Collective control frames consumed by NIC engines (0 on host runs).
    pub coll_msgs: f64,
    /// Host interrupts taken across the cluster during the collectives.
    pub host_irqs: f64,
}

/// The scaling grid: `(id, nodes, topology, fabric name, offload)`.
fn scale_cases(quick: bool) -> Vec<(String, usize, Topology, &'static str, bool)> {
    let counts: &[usize] = if quick {
        &[8, 16]
    } else {
        &[8, 16, 64, 128, 256]
    };
    let fabrics = [
        (Topology::LeafSpine, "leaf-spine"),
        (Topology::FatTree, "fat-tree"),
    ];
    let mut cases = Vec::new();
    for &nodes in counts {
        for (topology, fabric) in fabrics {
            for offload in [false, true] {
                let backend = if offload { "nic" } else { "host" };
                cases.push((
                    format!("scale/{fabric}/n{nodes}/{backend}"),
                    nodes,
                    topology,
                    fabric,
                    offload,
                ));
            }
        }
    }
    cases
}

/// A CLIC cluster of `nodes` hosts on the given fabric topology.
pub(crate) fn scale_cluster(model: &CostModel, nodes: usize, topology: Topology) -> ClusterConfig {
    let mut cfg = clic_pair(model, false, true);
    cfg.nodes = nodes;
    cfg.topology = topology;
    cfg
}

/// Cluster-scaling jobs. `sizes` only selects quick (8–16 nodes) vs full
/// (8–256 nodes), as for the other families.
pub fn scale_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let quick = sizes.len() <= quick_sizes().len();
    let model = CostModel::era_2002();
    scale_cases(quick)
        .into_iter()
        .map(|(id, nodes, topology, _fabric, offload)| {
            JobSpec::new(
                id,
                JobKind::ScaleCollective {
                    cluster: scale_cluster(&model, nodes, topology),
                    offload,
                    seed: 5,
                },
            )
        })
        .collect()
}

/// Assemble the scaling rows from job results.
pub fn scale_from(results: &ResultMap, sizes: &[usize]) -> Vec<ScaleRow> {
    let quick = sizes.len() <= quick_sizes().len();
    scale_cases(quick)
        .into_iter()
        .map(|(id, nodes, _topology, fabric, offload)| {
            let m = &results[&id];
            ScaleRow {
                fabric,
                nodes,
                backend: if offload { "nic" } else { "host" },
                barrier_us: m.require("barrier_us"),
                allreduce_us: m.require("allreduce_us"),
                switches: m.require("switches"),
                trunks: m.require("trunks"),
                coll_msgs: m.require("coll_msgs"),
                host_irqs: m.require("host_irqs"),
            }
        })
        .collect()
}

/// The cluster-scaling family: barrier/all-reduce latency vs node count on
/// leaf–spine and fat-tree fabrics, host-based vs NIC-offloaded.
pub fn scale(sizes: &[usize]) -> Vec<ScaleRow> {
    scale_from(&run_serial(&scale_jobs(sizes)), sizes)
}

// ---------------------------------------------------------------------
// Fabric congestion: ECN marking + mark-driven cwnd (the congestion family)
// ---------------------------------------------------------------------

/// One fabric-congestion cell: an incast or all-to-all shuffle on a
/// multi-switch fabric, run either with a fixed send window (drop-only
/// congestion signal) or with switch ECN marking driving the per-flow
/// congestion window.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionRow {
    /// Workload ("incast" or "shuffle").
    pub workload: &'static str,
    /// Fabric kind ("leaf-spine" or "fat-tree").
    pub fabric: &'static str,
    /// Concurrent senders (incast) or nodes (shuffle).
    pub senders: usize,
    /// Control scheme ("fixed" or "ecn").
    pub control: &'static str,
    /// Receiver goodput (incast) or aggregate bandwidth (shuffle), Mb/s.
    pub goodput_mbps: f64,
    /// 99th-percentile post-to-delivery completion, µs (incast only; NaN
    /// for the shuffle, which has no per-message completion sample).
    pub p99_us: f64,
    /// Frames/packets dropped across every layer (tail drops dominate).
    pub drops: f64,
    /// Switch congestion marks applied.
    pub marks: f64,
    /// Marks echoed back to senders on ACKs.
    pub echoes: f64,
    /// Packets retransmitted.
    pub retx: f64,
    /// Peak switch output-queue depth, frames.
    pub peak_queue: f64,
}

/// One point of the congestion grid.
struct CongestionCase {
    id: String,
    workload: &'static str,
    fabric: &'static str,
    topology: Topology,
    nodes: usize,
    ecn: bool,
}

/// The congestion grid. Quick runs keep an 8→1 incast and an 8-node
/// shuffle on leaf–spine; full runs sweep 16→1 and 64→1 incast plus
/// 24-node shuffles on both fabrics — each cell fixed-window vs
/// ECN-cwnd. 24 hosts overflow one 16-port leaf/edge switch, so the
/// shuffle genuinely exercises the trunk tier (4 parallel spines on
/// leaf–spine, the 2-agg pod mesh on fat-tree) instead of degenerating
/// into a single-switch star.
fn congestion_cases(quick: bool) -> Vec<CongestionCase> {
    let fabrics = |t: Topology| match t {
        Topology::FatTree => "fat-tree",
        _ => "leaf-spine",
    };
    let cells: &[(&'static str, Topology, usize)] = if quick {
        &[
            ("incast", Topology::LeafSpine, 9),
            ("shuffle", Topology::LeafSpine, 8),
        ]
    } else {
        &[
            ("incast", Topology::LeafSpine, 17),
            ("incast", Topology::LeafSpine, 65),
            ("shuffle", Topology::LeafSpine, 24),
            ("shuffle", Topology::FatTree, 24),
        ]
    };
    let mut cases = Vec::new();
    for &(workload, topology, nodes) in cells {
        let fabric = fabrics(topology);
        let senders = if workload == "incast" {
            nodes - 1
        } else {
            nodes
        };
        for ecn in [false, true] {
            let control = if ecn { "ecn" } else { "fixed" };
            cases.push(CongestionCase {
                id: format!("congestion/{workload}/{fabric}/s{senders}/{control}"),
                workload,
                fabric,
                topology,
                nodes,
                ecn,
            });
        }
    }
    cases
}

/// A CLIC cluster on a fabric for the congestion cells. The fixed-window
/// variant keeps an aggressive 64-packet window and no marking — the
/// drop-only baseline — with retries raised so tail-drop storms read as
/// congestion collapse (slow goodput), never as flow failure. The ECN
/// variant arms switch marking at a DCTCP-style shallow K (8 frames, a
/// sixteenth of the 128-frame output queue — early enough that marks,
/// not drops, are the dominant congestion signal even on the fat-tree's
/// 2-agg pod mesh) and gives every flow the DCTCP-flavoured congestion
/// window.
pub(crate) fn congestion_cluster(
    model: &CostModel,
    nodes: usize,
    topology: Topology,
    ecn: bool,
) -> ClusterConfig {
    let mut cfg = clic_pair(model, false, true);
    cfg.nodes = nodes;
    cfg.topology = topology;
    let clic = cfg.node.clic.as_mut().expect("clic_pair configures CLIC");
    clic.window = 64;
    clic.max_retries = 64;
    if ecn {
        cfg.mark_threshold = Some(8);
        clic.congestion = Some(CongestionConfig::dctcp());
    }
    cfg
}

/// Congestion jobs: incast cells via [`JobKind::Incast`] (consumer drains
/// at full speed — the fabric, not the application, is the bottleneck)
/// and shuffle cells via [`JobKind::AllToAll`]. `sizes` only selects
/// quick vs full, as for the other families.
pub fn congestion_jobs(sizes: &[usize]) -> Vec<JobSpec> {
    let quick = sizes.len() <= quick_sizes().len();
    let per_sender = if quick { 6 } else { 16 };
    let model = CostModel::era_2002();
    congestion_cases(quick)
        .into_iter()
        .map(|case| {
            let cluster = congestion_cluster(&model, case.nodes, case.topology, case.ecn);
            let kind = match case.workload {
                "incast" => JobKind::Incast {
                    cluster,
                    size: 8_192,
                    per_sender,
                    consume_delay_us: 0,
                    seed: 11,
                },
                _ => JobKind::AllToAll {
                    cluster,
                    size: 32_768,
                    seed: 11,
                },
            };
            JobSpec::new(case.id, kind)
        })
        .collect()
}

/// Assemble the congestion rows from job results.
pub fn congestion_from(results: &ResultMap, sizes: &[usize]) -> Vec<CongestionRow> {
    let quick = sizes.len() <= quick_sizes().len();
    congestion_cases(quick)
        .into_iter()
        .map(|case| {
            let m = &results[&case.id];
            let (goodput_mbps, p99_us) = if case.workload == "incast" {
                (m.require("goodput_mbps"), m.require("p99_us"))
            } else {
                (m.require("aggregate_mbps"), f64::NAN)
            };
            CongestionRow {
                workload: case.workload,
                fabric: case.fabric,
                senders: if case.workload == "incast" {
                    case.nodes - 1
                } else {
                    case.nodes
                },
                control: if case.ecn { "ecn" } else { "fixed" },
                goodput_mbps,
                p99_us,
                drops: m.require("m.drops"),
                marks: m.require("m.ecn_marks"),
                echoes: m.require("m.ecn_echoes"),
                retx: m.require("m.retransmits"),
                peak_queue: m.require("m.peak_switch_queue_depth"),
            }
        })
        .collect()
}

/// The fabric-congestion family: fixed-window vs ECN-cwnd under incast
/// and all-to-all shuffle on multi-switch fabrics.
pub fn congestion(sizes: &[usize]) -> Vec<CongestionRow> {
    congestion_from(&run_serial(&congestion_jobs(sizes)), sizes)
}

// ---------------------------------------------------------------------
// Figure registry
// ---------------------------------------------------------------------

/// Every runnable figure/table/ablation, for CLI dispatch and the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureKind {
    /// Figure 4: CLIC bandwidth, MTU × copy path.
    Fig4,
    /// Figure 5: CLIC vs TCP/IP.
    Fig5,
    /// Figure 6: middleware comparison.
    Fig6,
    /// Figure 7: packet pipeline stage breakdown.
    Fig7,
    /// §4 headline scalars.
    Scalars,
    /// §5 CLIC vs GAMMA table.
    Gamma,
    /// Ablation A: interrupt coalescing.
    Coalescing,
    /// Ablation B: NIC fragmentation offload.
    Fragmentation,
    /// Ablation C: channel bonding.
    Bonding,
    /// Ablation D: system-call flavour.
    Syscall,
    /// Ablation E: goodput under loss.
    Loss,
    /// Ablation F: CPU utilisation vs link speed.
    Cpu,
    /// Ablation G: latency under bulk load.
    Load,
    /// Ablation H: Figure 1 data paths.
    Paths,
    /// Ablation I: all-to-all scaling.
    Scaling,
    /// Reliability under loss: CLIC vs TCP across loss rate × burstiness
    /// × MTU.
    Reliability,
    /// Chaos soak (crash/restart/flap/loss schedules) plus incast
    /// backpressure. Not part of [`FigureKind::ALL`]: its fault schedules
    /// target the robustness machinery rather than a paper figure, so it
    /// runs only when named explicitly (`figures chaos`).
    Chaos,
    /// Cluster scaling: barrier/all-reduce vs node count on multi-switch
    /// fabrics, host-based vs NIC-offloaded. Not part of
    /// [`FigureKind::ALL`]: it measures the scale-out extension rather
    /// than a paper figure, so it runs only when named explicitly
    /// (`figures scale`).
    Scale,
    /// Fabric congestion: fixed-window vs ECN-cwnd under incast and
    /// all-to-all shuffle on multi-switch fabrics. Not part of
    /// [`FigureKind::ALL`]: it measures the congestion-control extension
    /// rather than a paper figure, so it runs only when named explicitly
    /// (`figures congestion`).
    Congestion,
}

/// The result of one assembled figure, ready for rendering.
#[derive(Debug, Clone)]
pub enum FigureOutput {
    /// Bandwidth curves (figures 4, 5, 6 and Ablation B).
    Series(Vec<Series>),
    /// Figure 7's two stage breakdowns (7a, 7b).
    Stages {
        /// Without the direct-call improvement.
        a: Vec<StageRow>,
        /// With the direct-call improvement (Fig. 8b).
        b: Vec<StageRow>,
    },
    /// The §4 scalars.
    Scalars(Scalars),
    /// The §5 comparison rows.
    Gamma(Vec<ComparisonRow>),
    /// Ablation A rows.
    Coalescing(Vec<CoalescingRow>),
    /// Ablation C rows.
    Bonding(Vec<BondingRow>),
    /// Ablation D rows.
    Syscall(Vec<SyscallRow>),
    /// Ablation E rows.
    Loss(Vec<LossRow>),
    /// Ablation F rows.
    Cpu(Vec<CpuRow>),
    /// Ablation G rows.
    Load(Vec<LoadedLatencyRow>),
    /// Ablation H rows.
    Paths(Vec<PathRow>),
    /// Ablation I rows.
    Scaling(Vec<ScalingRow>),
    /// Reliability-under-loss rows.
    Reliability(Vec<ReliabilityRow>),
    /// Chaos-soak and incast rows.
    Chaos {
        /// The soak grid.
        soak: Vec<ChaosRow>,
        /// The incast pair.
        incast: Vec<IncastRow>,
    },
    /// Cluster-scaling rows.
    Scale(Vec<ScaleRow>),
    /// Fabric-congestion rows.
    Congestion(Vec<CongestionRow>),
}

impl FigureKind {
    /// Every figure, in the order `figures all` runs them.
    pub const ALL: [FigureKind; 16] = [
        FigureKind::Fig4,
        FigureKind::Fig5,
        FigureKind::Fig6,
        FigureKind::Fig7,
        FigureKind::Scalars,
        FigureKind::Gamma,
        FigureKind::Coalescing,
        FigureKind::Fragmentation,
        FigureKind::Bonding,
        FigureKind::Syscall,
        FigureKind::Loss,
        FigureKind::Cpu,
        FigureKind::Load,
        FigureKind::Paths,
        FigureKind::Scaling,
        FigureKind::Reliability,
    ];

    /// The CLI name (`figures <name>`).
    pub fn name(self) -> &'static str {
        match self {
            FigureKind::Fig4 => "fig4",
            FigureKind::Fig5 => "fig5",
            FigureKind::Fig6 => "fig6",
            FigureKind::Fig7 => "fig7",
            FigureKind::Scalars => "scalars",
            FigureKind::Gamma => "gamma",
            FigureKind::Coalescing => "coalescing",
            FigureKind::Fragmentation => "fragmentation",
            FigureKind::Bonding => "bonding",
            FigureKind::Syscall => "syscall",
            FigureKind::Loss => "loss",
            FigureKind::Cpu => "cpu",
            FigureKind::Load => "load",
            FigureKind::Paths => "paths",
            FigureKind::Scaling => "scaling",
            FigureKind::Reliability => "reliability",
            FigureKind::Chaos => "chaos",
            FigureKind::Scale => "scale",
            FigureKind::Congestion => "congestion",
        }
    }

    /// Parse a CLI name. Accepts the opt-in [`FigureKind::Chaos`] family
    /// too, even though `ALL` (and thus `figures all`) excludes it.
    pub fn from_name(name: &str) -> Option<FigureKind> {
        if name == FigureKind::Chaos.name() {
            return Some(FigureKind::Chaos);
        }
        if name == FigureKind::Scale.name() {
            return Some(FigureKind::Scale);
        }
        if name == FigureKind::Congestion.name() {
            return Some(FigureKind::Congestion);
        }
        FigureKind::ALL.into_iter().find(|f| f.name() == name)
    }

    /// The jobs of this figure on the given size grid (figures that don't
    /// sweep sizes ignore it).
    pub fn jobs(self, sizes: &[usize]) -> Vec<JobSpec> {
        match self {
            FigureKind::Fig4 => fig4_jobs(sizes),
            FigureKind::Fig5 => fig5_jobs(sizes),
            FigureKind::Fig6 => fig6_jobs(sizes),
            FigureKind::Fig7 => fig7_jobs(),
            FigureKind::Scalars => scalars_jobs(sizes),
            FigureKind::Gamma => gamma_jobs(sizes),
            FigureKind::Coalescing => coalescing_jobs(),
            FigureKind::Fragmentation => fragmentation_jobs(sizes),
            FigureKind::Bonding => bonding_jobs(),
            FigureKind::Syscall => syscall_jobs(),
            FigureKind::Loss => loss_jobs(),
            FigureKind::Cpu => cpu_jobs(),
            FigureKind::Load => load_jobs(),
            FigureKind::Paths => paths_jobs(),
            FigureKind::Scaling => scaling_jobs(),
            FigureKind::Reliability => reliability_jobs(sizes),
            FigureKind::Chaos => chaos_jobs(sizes),
            FigureKind::Scale => scale_jobs(sizes),
            FigureKind::Congestion => congestion_jobs(sizes),
        }
    }

    /// Assemble this figure's output from job results (which must contain
    /// every id listed by [`FigureKind::jobs`] for the same `sizes`).
    pub fn assemble(self, results: &ResultMap, sizes: &[usize]) -> FigureOutput {
        match self {
            FigureKind::Fig4 => FigureOutput::Series(fig4_from(results, sizes)),
            FigureKind::Fig5 => FigureOutput::Series(fig5_from(results, sizes)),
            FigureKind::Fig6 => FigureOutput::Series(fig6_from(results, sizes)),
            FigureKind::Fig7 => FigureOutput::Stages {
                a: fig7_from(results, false),
                b: fig7_from(results, true),
            },
            FigureKind::Scalars => FigureOutput::Scalars(scalars_from(results, sizes)),
            FigureKind::Gamma => FigureOutput::Gamma(gamma_from(results, sizes)),
            FigureKind::Coalescing => FigureOutput::Coalescing(coalescing_from(results)),
            FigureKind::Fragmentation => FigureOutput::Series(fragmentation_from(results, sizes)),
            FigureKind::Bonding => FigureOutput::Bonding(bonding_from(results)),
            FigureKind::Syscall => FigureOutput::Syscall(syscall_from(results)),
            FigureKind::Loss => FigureOutput::Loss(loss_from(results)),
            FigureKind::Cpu => FigureOutput::Cpu(cpu_from(results)),
            FigureKind::Load => FigureOutput::Load(load_from(results)),
            FigureKind::Paths => FigureOutput::Paths(paths_from(results)),
            FigureKind::Scaling => FigureOutput::Scaling(scaling_from(results)),
            FigureKind::Reliability => FigureOutput::Reliability(reliability_from(results, sizes)),
            FigureKind::Chaos => {
                let (soak, incast) = chaos_from(results, sizes);
                FigureOutput::Chaos { soak, incast }
            }
            FigureKind::Scale => FigureOutput::Scale(scale_from(results, sizes)),
            FigureKind::Congestion => FigureOutput::Congestion(congestion_from(results, sizes)),
        }
    }

    /// The figure's display title, as printed by the `figures` binary.
    pub fn title(self) -> &'static str {
        match self {
            FigureKind::Fig4 => "Figure 4: CLIC bandwidth, MTU x copy-path",
            FigureKind::Fig5 => "Figure 5: CLIC vs TCP/IP, MTU 9000/1500",
            FigureKind::Fig6 => "Figure 6: CLIC, MPI-CLIC, MPI-TCP, PVM-TCP",
            FigureKind::Fig7 => "Figure 7: 1400-byte packet pipeline stages",
            FigureKind::Scalars => "Headline scalars (paper Section 4/5)",
            FigureKind::Gamma => "Section 5 comparison: CLIC vs GAMMA",
            FigureKind::Coalescing => "Ablation A: interrupt coalescing",
            FigureKind::Fragmentation => {
                "Ablation B: NIC fragmentation offload (paper future work)"
            }
            FigureKind::Bonding => "Ablation C: channel bonding",
            FigureKind::Syscall => "Ablation D: system-call flavour (Section 3.2)",
            FigureKind::Loss => "Ablation E: CLIC goodput under frame loss",
            FigureKind::Cpu => "Ablation F: CPU utilisation vs link speed (Section 2 claim)",
            FigureKind::Load => "Ablation G: 64-byte latency under bulk load",
            FigureKind::Paths => "Ablation H: Figure 1 data paths",
            FigureKind::Scaling => "Ablation I: CLIC all-to-all scaling on a switch",
            FigureKind::Reliability => {
                "Reliability under loss: CLIC vs TCP, loss rate x burstiness x MTU"
            }
            FigureKind::Chaos => {
                "Chaos soak: crash/restart/flap/loss schedules + incast backpressure"
            }
            FigureKind::Scale => {
                "Cluster scaling: collectives vs node count, fabrics, host vs NIC offload"
            }
            FigureKind::Congestion => {
                "Fabric congestion: fixed window vs ECN-driven cwnd, incast + shuffle"
            }
        }
    }
}

// ---------------------------------------------------------------------
// Paper-claim checklist
// ---------------------------------------------------------------------

/// One verifiable claim from the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimRow {
    /// Identifier (C1, C2, ...).
    pub id: String,
    /// The claim, paraphrased from the paper.
    pub claim: String,
    /// What the simulation measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub pass: bool,
}

/// Evaluate the paper's headline claims against the simulation — the
/// executable form of EXPERIMENTS.md. Runs on a reduced grid; a few
/// minutes of CPU.
pub fn claims() -> Vec<ClaimRow> {
    let sizes = vec![
        4_096usize, 8_192, 16_384, 32_768, 65_536, 262_144, 1_048_576, 4_194_304,
    ];
    let mut rows = Vec::new();
    let mut check = |id: &str, claim: &str, measured: String, pass: bool| {
        rows.push(ClaimRow {
            id: id.into(),
            claim: claim.into(),
            measured,
            pass,
        });
    };

    let s = scalars(&sizes);
    check(
        "C1",
        "0-byte one-way latency is 36 us",
        format!("{:.1} us", s.zero_byte_latency_us),
        (25.0..48.0).contains(&s.zero_byte_latency_us),
    );
    check(
        "C2",
        "asymptotic bandwidth ~600 Mb/s at MTU 9000",
        format!("{:.0} Mb/s", s.clic_asymptote_9000_mbps),
        (500.0..700.0).contains(&s.clic_asymptote_9000_mbps),
    );
    check(
        "C3",
        "asymptotic bandwidth ~450 Mb/s at MTU 1500",
        format!("{:.0} Mb/s", s.clic_asymptote_1500_mbps),
        (380.0..550.0).contains(&s.clic_asymptote_1500_mbps),
    );
    check(
        "C4",
        "CLIC more than ~2x TCP at TCP's best MTU",
        format!(
            "{:.2}x",
            s.clic_asymptote_9000_mbps / s.tcp_asymptote_9000_mbps
        ),
        s.clic_asymptote_9000_mbps / s.tcp_asymptote_9000_mbps > 1.7,
    );
    check(
        "C5",
        "TCP reaches 50% of its peak around 16 KB",
        format!("{} B", s.tcp_half_bandwidth_bytes),
        (8_192..=32_768).contains(&s.tcp_half_bandwidth_bytes),
    );

    let f4 = fig4(&sizes);
    let peak = |series: &Series| series.points.iter().map(|p| p.mbps).fold(0.0f64, f64::max);
    let zc9000 = peak(&f4[0]);
    let zc1500 = peak(&f4[1]);
    let oc9000 = peak(&f4[2]);
    let oc1500 = peak(&f4[3]);
    check(
        "C6",
        "jumbo frames and 0-copy both improve bandwidth",
        format!("jumbo {zc1500:.0}->{zc9000:.0}, 0-copy {oc9000:.0}->{zc9000:.0}"),
        zc9000 > zc1500 && zc9000 > oc9000 && zc1500 > oc1500,
    );
    check(
        "C7",
        "the jumbo-frame improvement exceeds the 0-copy improvement",
        format!(
            "jumbo +{:.0} vs 0-copy +{:.0} Mb/s",
            zc9000 - zc1500,
            zc9000 - oc9000
        ),
        (zc9000 - zc1500) > (zc9000 - oc9000),
    );

    let f6 = fig6(&sizes);
    let last = |i: usize| f6[i].points.last().unwrap().mbps;
    check(
        "C8",
        "ordering CLIC >= MPI-CLIC > MPI-TCP > PVM-TCP",
        format!(
            "{:.0} >= {:.0} > {:.0} > {:.0}",
            last(0),
            last(1),
            last(2),
            last(3)
        ),
        last(0) >= last(1) * 0.98 && last(1) > last(2) && last(2) > last(3),
    );
    check(
        "C9",
        "MPI-CLIC at least 1.5x MPI-TCP for long messages",
        format!("{:.2}x", last(1) / last(2)),
        last(1) / last(2) > 1.5,
    );

    let f7a = fig7(false);
    let f7b = fig7(true);
    let stage = |rows: &[StageRow], name: &str| {
        rows.iter()
            .find(|r| r.stage == name)
            .map(|r| r.us)
            .unwrap_or(0.0)
    };
    let rx_total = |rows: &[StageRow]| {
        ["driver_rx", "bottom_half", "clic_module_rx", "copy_to_user"]
            .iter()
            .map(|n| stage(rows, n))
            .sum::<f64>()
    };
    check(
        "C10",
        "the receiver driver stage dominates the pipeline (~15 us @1400 B)",
        format!("{:.1} us", stage(&f7a, "driver_rx")),
        (10.0..25.0).contains(&stage(&f7a, "driver_rx")),
    );
    check(
        "C11",
        "the direct-call improvement shrinks the receive path ~20 -> ~5 us",
        format!("{:.1} -> {:.1} us", rx_total(&f7a), rx_total(&f7b)),
        rx_total(&f7b) < rx_total(&f7a) / 2.0 && rx_total(&f7b) < 10.0,
    );

    let g = gamma_table(&sizes);
    check(
        "C12",
        "GAMMA has lower latency and higher bandwidth; CLIC keeps the services",
        format!(
            "GAMMA {:.1} us/{:.0} Mb/s vs CLIC {:.1} us/{:.0} Mb/s",
            g[1].latency_us, g[1].bandwidth_mbps, g[0].latency_us, g[0].bandwidth_mbps
        ),
        g[1].latency_us < g[0].latency_us && g[1].bandwidth_mbps > g[0].bandwidth_mbps,
    );

    let cpu = ablation_cpu();
    let tcp_fe = cpu
        .iter()
        .find(|r| r.stack == "TCP" && r.link_mbps == 100)
        .unwrap();
    let tcp_ge = cpu
        .iter()
        .find(|r| r.stack == "TCP" && r.link_mbps == 1000)
        .unwrap();
    check(
        "C13",
        "TCP nearly saturates Fast Ethernet at modest CPU; gigabit pins the CPU",
        format!(
            "FE {:.0}% of wire @{:.0}% CPU; GbE {:.0}% of wire @{:.0}% CPU",
            tcp_fe.pct_of_wire,
            tcp_fe.receiver_cpu * 100.0,
            tcp_ge.pct_of_wire,
            tcp_ge.receiver_cpu * 100.0
        ),
        tcp_fe.pct_of_wire > 80.0 && tcp_ge.receiver_cpu > 0.8 && tcp_ge.pct_of_wire < 40.0,
    );

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_ascend() {
        let s = paper_sizes();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(quick_sizes().iter().all(|x| s.contains(x)));
    }

    #[test]
    fn half_bandwidth_point_finds_crossing() {
        let series = Series {
            label: "x".into(),
            points: vec![
                SeriesPoint {
                    size: 1,
                    mbps: 10.0,
                },
                SeriesPoint {
                    size: 2,
                    mbps: 40.0,
                },
                SeriesPoint {
                    size: 4,
                    mbps: 100.0,
                },
            ],
        };
        assert_eq!(half_bandwidth_point(&series), 4);
    }

    #[test]
    fn registry_names_roundtrip() {
        for kind in FigureKind::ALL {
            assert_eq!(FigureKind::from_name(kind.name()), Some(kind));
        }
        // The opt-in chaos/scale/congestion families parse by name but
        // stay out of ALL.
        assert_eq!(FigureKind::from_name("chaos"), Some(FigureKind::Chaos));
        assert!(!FigureKind::ALL.contains(&FigureKind::Chaos));
        assert_eq!(FigureKind::from_name("scale"), Some(FigureKind::Scale));
        assert!(!FigureKind::ALL.contains(&FigureKind::Scale));
        assert_eq!(
            FigureKind::from_name("congestion"),
            Some(FigureKind::Congestion)
        );
        assert!(!FigureKind::ALL.contains(&FigureKind::Congestion));
        assert_eq!(FigureKind::from_name("nope"), None);
    }

    #[test]
    fn job_ids_are_unique_across_all_figures() {
        let sizes = quick_sizes();
        let mut seen = std::collections::BTreeSet::new();
        for kind in FigureKind::ALL.into_iter().chain([
            FigureKind::Chaos,
            FigureKind::Scale,
            FigureKind::Congestion,
        ]) {
            for spec in kind.jobs(&sizes) {
                assert!(seen.insert(spec.id.clone()), "duplicate job id {}", spec.id);
            }
        }
        assert!(seen.len() > 100, "expected a substantial grid");
    }

    #[test]
    fn sweep_assembly_matches_direct_run() {
        let model = CostModel::era_2002();
        let sizes = [1_024usize, 65_536];
        let cfg = clic_pair(&model, false, true);
        let series = bandwidth_sweep("x", &cfg, StackKind::Clic, &sizes);
        assert_eq!(series.points.len(), 2);
        assert!(series.points[0].size < series.points[1].size);
        assert!(series.points.iter().all(|p| p.mbps > 0.0));
    }
}
