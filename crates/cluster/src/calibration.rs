//! The calibrated cost model.
//!
//! Every constant the simulation charges lives behind this struct. The
//! constants are **inputs** chosen from the scalars the paper publishes
//! (and era-typical hardware data); the bandwidth curves, latency totals
//! and stage breakdowns are **outputs** — see DESIGN.md §5 and
//! EXPERIMENTS.md.
//!
//! Paper provenance:
//! * syscall 0.65 µs — §3.1 ("approximately 0.65 µs in a PC running at
//!   1.5 GHz").
//! * receive interrupt path ≈ 20 µs for 1400 B — §3.2(b) and Figure 7a.
//! * 33 MHz / 32-bit PCI — §4 ("The PCI buses of the connected computers
//!   are 33 MHz 32 bits buses").
//! * MTU 1500/9000, coalesced interrupts on — §4.
//! * one interrupt ≈ every 12 µs at MTU 1500 wire rate — §2.

use clic_core::ClicConfig;
use clic_hw::NicConfig;
use clic_os::OsCosts;
use clic_sim::SimDuration;
use clic_tcpip::TcpIpCosts;

/// Bundle of every calibrated constant.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Kernel-path costs.
    pub os: OsCosts,
    /// TCP/IP stack costs.
    pub tcpip: TcpIpCosts,
    /// CLIC protocol configuration (0-copy by default).
    pub clic: ClicConfig,
    /// Link bandwidth, bits per second.
    pub link_bps: u64,
    /// Link propagation delay.
    pub propagation: SimDuration,
}

impl CostModel {
    /// The paper's testbed.
    pub fn era_2002() -> CostModel {
        CostModel {
            os: OsCosts::era_2002(),
            tcpip: TcpIpCosts::era_2002(),
            clic: ClicConfig::paper_default(),
            link_bps: 1_000_000_000,
            propagation: SimDuration::from_ns(500),
        }
    }

    /// NIC at the standard Ethernet MTU with the era's coalescing defaults.
    pub fn nic_standard(&self) -> NicConfig {
        NicConfig::gigabit_standard()
    }

    /// NIC with jumbo frames enabled.
    pub fn nic_jumbo(&self) -> NicConfig {
        NicConfig::gigabit_jumbo()
    }

    /// NIC tuned for latency measurements: short coalescing timer, as the
    /// paper's drivers allowed adjusting dynamically (§2).
    pub fn nic_low_latency(&self, mtu_jumbo: bool) -> NicConfig {
        let mut cfg = if mtu_jumbo {
            NicConfig::gigabit_jumbo()
        } else {
            NicConfig::gigabit_standard()
        };
        cfg.coalesce_usecs = 5;
        cfg.coalesce_frames = 8;
        cfg
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::era_2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scalars_present() {
        let m = CostModel::era_2002();
        assert_eq!(m.os.syscall, SimDuration::from_ns(650));
        assert_eq!(m.link_bps, 1_000_000_000);
        assert!(m.clic.zero_copy);
        assert_eq!(m.nic_standard().mtu, 1500);
        assert_eq!(m.nic_jumbo().mtu, 9000);
        let ll = m.nic_low_latency(false);
        assert!(ll.coalesce_usecs <= 5);
    }
}
