//! Self-contained experiment jobs.
//!
//! Every point of every figure/ablation grid is a [`JobSpec`]: a stable
//! string id plus a [`JobKind`] describing one deterministic simulation.
//! A job is **pure** — it builds its own cluster and simulator from plain
//! configuration data, runs to completion, and returns a flat
//! [`Measurement`] — and `Send`, so a job set can be executed on any
//! number of worker threads (each job keeps its whole `Rc`/`RefCell`
//! simulation on the thread that runs it). The figure-level assembly in
//! [`crate::experiments`] consumes job results by id, so output never
//! depends on completion order.
//!
//! Job results are also cache-friendly: [`JobSpec::fingerprint`] hashes
//! the id, the full job configuration, and the calibrated cost-model
//! constants, so a content-addressed result cache (see `clic-bench`)
//! invalidates itself automatically when any of those change.

use crate::builder::{Cluster, ClusterConfig};
use crate::calibration::CostModel;
use crate::workload::{
    ping_pong, request_reply_cycles, request_reply_cycles_with_background, stream, stream_count,
    stream_pipelined, StackKind,
};
use clic_sim::{EngineProbe, Sim, SimDuration};
use std::sync::Mutex;

/// Bump when the measurement schema changes (new/renamed value keys), so
/// stale cache entries from older binaries are never reused.
///
/// v2: every job also reports `m.`-prefixed per-run metric totals (drops,
/// retransmits, peak switch queue depth) from the [`clic_sim::Metrics`]
/// registry.
///
/// v3: the reliability figure family ([`JobKind::Reliability`]); the
/// drop total also counts FCS-discarded frames and the retransmit total
/// counts CLIC fast retransmits.
///
/// v4: the chaos/incast robustness family ([`JobKind::Chaos`],
/// [`JobKind::Incast`]).
///
/// v5: every job also reports `m.events` (simulator events executed), the
/// denominator of the `figures bench` events-per-second report.
///
/// v6: the cluster-scaling family ([`JobKind::ScaleCollective`]): barrier
/// and all-reduce latency on multi-switch fabrics, host-based vs
/// NIC-offloaded.
///
/// v7: the fabric-congestion family (`figures congestion`): every job also
/// reports `m.ecn_marks` (switch congestion marks) and `m.ecn_echoes`
/// (marks echoed on CLIC ACKs), and incast jobs report `goodput_mbps`.
pub const MEASUREMENT_SCHEMA_VERSION: u32 = 7;

/// The flat result of one job: named scalar values, in a stable,
/// job-defined order (stage breakdowns rely on the order).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Measurement {
    /// `(name, value)` pairs, e.g. `("mbps", 461.8)`.
    pub values: Vec<(String, f64)>,
}

impl Measurement {
    fn push(&mut self, name: &str, value: f64) {
        self.values.push((name.to_string(), value));
    }

    /// Look up a value by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a value by name, panicking with a diagnostic if absent
    /// (indicates a job/assembly mismatch, i.e. a bug).
    pub fn require(&self, name: &str) -> f64 {
        self.get(name)
            .unwrap_or_else(|| panic!("measurement has no value named {name:?}: {self:?}"))
    }
}

/// One deterministic simulation, described entirely by plain data.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// Unidirectional message stream; reports bandwidth, CPU fractions,
    /// receiver interrupt counts and (for CLIC) retransmission counters.
    Stream {
        /// Cluster under test.
        cluster: ClusterConfig,
        /// Stack under test.
        stack: StackKind,
        /// Message size in bytes.
        size: usize,
        /// Message count (`stream_count(size)` for the standard sweeps).
        count: usize,
        /// Simulator seed.
        seed: u64,
        /// Use the offered-load (pipelined) sender of Ablation F.
        pipelined: bool,
    },
    /// Ping-pong latency; reports the one-way time.
    PingPong {
        /// Cluster under test.
        cluster: ClusterConfig,
        /// Stack under test.
        stack: StackKind,
        /// Message size in bytes.
        size: usize,
        /// Number of round trips averaged.
        rounds: usize,
        /// Simulator seed.
        seed: u64,
    },
    /// Figure 7: trace one 1400-byte CLIC packet and report the per-stage
    /// breakdown of the send/receive pipeline, in pipeline order.
    StageTrace {
        /// Cluster under test (CLIC, latency-tuned NIC).
        cluster: ClusterConfig,
        /// Simulator seed.
        seed: u64,
    },
    /// Ablation G: 64-byte request/reply latency, optionally while a bulk
    /// transfer saturates the same node pair.
    LoadedLatency {
        /// CLIC when true, the TCP baseline when false.
        clic: bool,
        /// Whether the competing bulk transfer runs.
        loaded: bool,
    },
    /// Reliability under loss: request/reply cycles over a faulty link
    /// (the cluster's [`ClusterConfig::faults`] plan); reports goodput,
    /// mean and p99 cycle latency, and the per-run retransmit/drop totals.
    Reliability {
        /// Cluster under test (carries the fault plan).
        cluster: ClusterConfig,
        /// Stack under test.
        stack: StackKind,
        /// Request size in bytes (replies are 4 bytes).
        size: usize,
        /// Number of request/reply cycles measured.
        rounds: usize,
        /// Simulator seed.
        seed: u64,
    },
    /// Ablation I: all-to-all exchange on a switched cluster; reports
    /// aggregate bandwidth.
    AllToAll {
        /// Cluster under test.
        cluster: ClusterConfig,
        /// Per-pair message size in bytes.
        size: usize,
        /// Simulator seed.
        seed: u64,
    },
    /// Chaos soak: stream tagged messages through crash/restart windows,
    /// link flaps and loss ([`crate::workload::chaos_clic`]); the workload
    /// asserts the robustness invariants and this job reports the
    /// accounting (confirmed/failed split, teardown causes, eras).
    Chaos {
        /// Cluster under test (two nodes, robustness knobs enabled,
        /// optionally lossy). Duplication/reorder fault models are not
        /// composed here — they would break the strict-order invariant.
        cluster: ClusterConfig,
        /// Message size in bytes (≥ 8; carries the order tag).
        size: usize,
        /// Messages streamed.
        nmsgs: usize,
        /// Crash/restart cycles of the receiver node.
        crashes: usize,
        /// Link flaps.
        flaps: usize,
        /// Simulator seed; the fault schedule derives from it too.
        seed: u64,
    },
    /// Cluster scaling: whole-cluster barrier + u64 all-reduce latency
    /// ([`crate::workload::collective_scale`]) on a multi-switch fabric,
    /// either host-based (linear MPI algorithms) or offloaded to the NIC
    /// combining-tree engine.
    ScaleCollective {
        /// Cluster under test (a fabric topology, CLIC nodes).
        cluster: ClusterConfig,
        /// Run on the NIC engine instead of the host MPI layer.
        offload: bool,
        /// Simulator seed.
        seed: u64,
    },
    /// N→1 incast into a slow consumer ([`crate::workload::incast_clic`]);
    /// reports completion latency and the receive-buffer peak, with or
    /// without an advertised-window budget.
    Incast {
        /// Cluster under test (switched, ≥ 3 nodes; node 0 receives).
        cluster: ClusterConfig,
        /// Message size in bytes.
        size: usize,
        /// Messages each sender posts.
        per_sender: usize,
        /// Consumer think time per message, µs.
        consume_delay_us: u64,
        /// Simulator seed.
        seed: u64,
    },
}

/// A named, self-contained experiment job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Stable identifier, e.g. `"fig4/0-copy MTU 9000/size=65536"`. Also
    /// the key of the job's result in a [`crate::experiments::ResultMap`].
    pub id: String,
    /// What to simulate.
    pub kind: JobKind,
}

impl JobSpec {
    /// Build a job.
    pub fn new(id: impl Into<String>, kind: JobKind) -> JobSpec {
        JobSpec {
            id: id.into(),
            kind,
        }
    }

    /// Run the simulation described by this job. Pure: same spec, same
    /// [`Measurement`], bit for bit, on any thread.
    pub fn run(&self) -> Measurement {
        self.kind.run()
    }

    /// Content hash of everything the result depends on: the job id, the
    /// full job configuration (including any embedded [`ClusterConfig`]
    /// and its cost model), the calibrated-era constants used by jobs
    /// that build their configs internally, and the measurement schema
    /// version. Changing any constant in `calibration.rs` therefore
    /// changes the fingerprint and invalidates cached results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.id.as_bytes());
        h.write(format!("{:?}", self.kind).as_bytes());
        h.write(format!("{:?}", CostModel::era_2002()).as_bytes());
        h.write(&MEASUREMENT_SCHEMA_VERSION.to_le_bytes());
        h.finish()
    }
}

/// 64-bit FNV-1a. Stable across platforms and Rust versions (unlike
/// `DefaultHasher`), which the on-disk cache relies on.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separator so concatenations can't collide field boundaries.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

impl JobKind {
    /// Execute the simulation. See [`JobSpec::run`].
    pub fn run(&self) -> Measurement {
        // Cold-start the packet-buffer pool so the run's allocator
        // behaviour (and its `sim.pool.*` counters) depend only on this
        // job, never on what ran earlier on the worker thread.
        bytes::pool::reset();
        match self {
            JobKind::Stream {
                cluster,
                stack,
                size,
                count,
                seed,
                pipelined,
            } => run_stream(cluster, *stack, *size, *count, *seed, *pipelined),
            JobKind::PingPong {
                cluster,
                stack,
                size,
                rounds,
                seed,
            } => run_ping_pong(cluster, *stack, *size, *rounds, *seed),
            JobKind::StageTrace { cluster, seed } => run_stage_trace(cluster, *seed),
            JobKind::LoadedLatency { clic, loaded } => run_loaded_latency(*clic, *loaded),
            JobKind::Reliability {
                cluster,
                stack,
                size,
                rounds,
                seed,
            } => run_reliability(cluster, *stack, *size, *rounds, *seed),
            JobKind::AllToAll {
                cluster,
                size,
                seed,
            } => run_all_to_all(cluster, *size, *seed),
            JobKind::Chaos {
                cluster,
                size,
                nmsgs,
                crashes,
                flaps,
                seed,
            } => run_chaos(cluster, *size, *nmsgs, *crashes, *flaps, *seed),
            JobKind::Incast {
                cluster,
                size,
                per_sender,
                consume_delay_us,
                seed,
            } => run_incast(cluster, *size, *per_sender, *consume_delay_us, *seed),
            JobKind::ScaleCollective {
                cluster,
                offload,
                seed,
            } => run_scale_collective(cluster, *offload, *seed),
        }
    }
}

/// Prefix of the per-run metric totals every job appends (schema v2).
/// Figure assemblies that iterate a [`Measurement`] positionally must skip
/// keys carrying this prefix.
pub const METRIC_KEY_PREFIX: &str = "m.";

/// Optional engine-probe factory consulted by every job's simulator.
///
/// `None` (the default) leaves the engine's unprofiled fast path
/// untouched. The `figures bench` self-profiler installs a factory — a
/// plain `fn` pointer so it can cross worker threads — before replaying
/// the grid, and each job then runs with its own probe instance. Probes
/// observe dispatch, they cannot schedule or touch the clock, so
/// measurements stay bit-identical with and without one installed.
static PROBE_FACTORY: Mutex<Option<ProbeFactory>> = Mutex::new(None);

/// A probe constructor: a plain `fn` pointer, so it is `Send + Sync` and
/// can build one probe per job on any worker thread.
pub type ProbeFactory = fn() -> Box<dyn EngineProbe>;

/// Install (or, with `None`, remove) the per-job engine-probe factory.
/// Affects every [`JobSpec::run`] in the process until changed; callers
/// profiling one job set at a time should reset it afterwards.
pub fn set_job_probe_factory(factory: Option<ProbeFactory>) {
    *PROBE_FACTORY.lock().expect("probe factory lock") = factory;
}

/// A job's simulator: seeded, metrics on, and carrying a probe when the
/// self-profiler has installed a factory.
fn job_sim(seed: u64) -> Sim {
    let mut sim = Sim::new(seed);
    sim.metrics = clic_sim::Metrics::enabled();
    if let Some(f) = *PROBE_FACTORY.lock().expect("probe factory lock") {
        sim.set_probe(f());
    }
    sim
}

/// Append the per-run observability totals to `m`: dropped frames/packets
/// across every layer, retransmissions across both stacks, and the peak
/// switch output-queue depth. Zero-valued when the run had no such events
/// (or, for the queue depth, no switch), so the schema is stable.
fn push_metric_totals(m: &mut Measurement, sim: &Sim) {
    let drops = sim.metrics.sum_counters("clic.drops.backlog")
        + sim.metrics.sum_counters("clic.drops.duplicate")
        + sim.metrics.sum_counters("clic.drops.ooo")
        + sim.metrics.sum_counters("eth.switch.drops")
        + sim.metrics.sum_counters("eth.link.frames_lost")
        + sim.metrics.sum_counters("hw.nic.rx_no_buffer")
        + sim.metrics.sum_counters("hw.nic.rx_fcs_errors");
    let retransmits = sim.metrics.sum_counters("clic.retransmits")
        + sim.metrics.sum_counters("tcp.retransmits")
        + sim.metrics.sum_counters("tcp.fast_retransmits");
    m.push("m.drops", drops as f64);
    m.push("m.retransmits", retransmits as f64);
    m.push(
        "m.peak_switch_queue_depth",
        sim.metrics.max_gauge_peak("eth.switch.queue_depth") as f64,
    );
    m.push(
        "m.ecn_marks",
        sim.metrics.sum_counters("eth.switch.ecn_marks") as f64,
    );
    m.push(
        "m.ecn_echoes",
        sim.metrics.sum_counters("clic.ecn_echoes") as f64,
    );
    m.push("m.events", sim.events_executed() as f64);
}

fn run_stream(
    config: &ClusterConfig,
    stack: StackKind,
    size: usize,
    count: usize,
    seed: u64,
    pipelined: bool,
) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let res = if pipelined {
        stream_pipelined(&cluster, &mut sim, stack, size, count)
    } else {
        stream(&cluster, &mut sim, stack, size, count)
    };
    let mut m = Measurement::default();
    m.push("mbps", res.mbps());
    m.push("sender_cpu", res.sender_cpu);
    m.push("receiver_cpu", res.receiver_cpu);
    let rx_kernel = cluster.nodes[1].kernel.borrow();
    m.push("rx_irqs", rx_kernel.stats().irqs as f64);
    m.push("rx_frames", rx_kernel.stats().frames_received as f64);
    drop(rx_kernel);
    if matches!(stack, StackKind::Clic) {
        let stats = cluster.nodes[0].clic().borrow().stats();
        m.push("retransmits", stats.retransmits as f64);
        m.push("packets_sent", stats.packets_sent as f64);
    }
    push_metric_totals(&mut m, &sim);
    m
}

fn run_ping_pong(
    config: &ClusterConfig,
    stack: StackKind,
    size: usize,
    rounds: usize,
    seed: u64,
) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let pp = ping_pong(&cluster, &mut sim, stack, size, rounds);
    let mut m = Measurement::default();
    m.push("one_way_us", pp.one_way().as_us_f64());
    push_metric_totals(&mut m, &sim);
    m
}

fn run_stage_trace(config: &ClusterConfig, seed: u64) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    sim.trace = clic_sim::Trace::enabled();

    const CH: u16 = 100;
    let a = &cluster.nodes[0];
    let b = &cluster.nodes[1];
    let pid_a = a.kernel.borrow_mut().processes.spawn("tx");
    let pid_b = b.kernel.borrow_mut().processes.spawn("rx");
    let tx = clic_core::ClicPort::bind(&a.clic(), pid_a, CH);
    let rx = clic_core::ClicPort::bind(&b.clic(), pid_b, CH);
    rx.recv(&mut sim, |_s, _m| {});
    let data = bytes::Bytes::from(vec![0x55u8; 1400]);
    tx.send_traced(&mut sim, b.mac, CH, data, 42);
    sim.run();

    let spans = sim
        .trace
        .spans_for(42)
        .expect("stage trace left unmatched begin/end marks");
    let span = |name: &str| spans.iter().find(|s| s.stage == name);
    let mut m = Measurement::default();
    let mut push = |stage: &str, d: Option<SimDuration>| {
        if let Some(d) = d {
            m.push(stage, d.as_us_f64());
        }
    };
    push("syscall", span("syscall").map(|s| s.duration()));
    push(
        "clic_module_tx",
        span("clic_module_tx").map(|s| s.duration()),
    );
    push("driver_tx", span("driver_tx").map(|s| s.duration()));
    push("nic_tx_dma", span("nic_tx_dma").map(|s| s.duration()));
    // Flight + interrupt wait: from the TX DMA completing to the receive
    // driver starting on the frame (wire + coalescing + IRQ entry).
    let flight = match (span("nic_tx_dma"), span("driver_rx")) {
        (Some(tx), Some(rx)) => rx.begin.checked_since(tx.end),
        _ => None,
    };
    push("flight+irq", flight);
    push("driver_rx", span("driver_rx").map(|s| s.duration()));
    push("bottom_half", span("bottom_half").map(|s| s.duration()));
    push(
        "clic_module_rx",
        span("clic_module_rx").map(|s| s.duration()),
    );
    push("copy_to_user", span("copy_to_user").map(|s| s.duration()));
    push_metric_totals(&mut m, &sim);
    m
}

fn run_loaded_latency(is_clic: bool, loaded: bool) -> Measurement {
    use bytes::Bytes;
    let model = CostModel::era_2002();
    let cfg = if is_clic {
        crate::experiments::clic_pair(&model, false, true)
    } else {
        crate::experiments::tcp_pair(&model, false)
    };
    let cluster = Cluster::build(&cfg);
    let mut sim = job_sim(10);
    let post_bulk = move |sim: &mut Sim, cluster: &Cluster| {
        // Background bulk: node 0 -> node 1, separate channel/port.
        if is_clic {
            let a = &cluster.nodes[0];
            let b = &cluster.nodes[1];
            let pid_a = a.kernel.borrow_mut().processes.spawn("bulk-tx");
            let pid_b = b.kernel.borrow_mut().processes.spawn("bulk-rx");
            let tx = clic_core::ClicPort::bind(&a.clic(), pid_a, 200);
            let rx = std::rc::Rc::new(clic_core::ClicPort::bind(&b.clic(), pid_b, 200));
            fn drain(port: std::rc::Rc<clic_core::ClicPort>, sim: &mut Sim, left: usize) {
                if left == 0 {
                    return;
                }
                let p = port.clone();
                port.recv(sim, move |sim, _| drain(p.clone(), sim, left - 1));
            }
            let n_msgs = 24;
            drain(rx, sim, n_msgs);
            let dst = b.mac;
            let bulk = Bytes::from(vec![0xBBu8; 512 * 1024]);
            for _ in 0..n_msgs {
                tx.send(sim, dst, 200, bulk.clone());
            }
        } else {
            use clic_tcpip::TcpStack;
            let a = cluster.nodes[0].tcp();
            let b = cluster.nodes[1].tcp();
            let b2 = b.clone();
            b.borrow_mut().listen(9100, move |sim, conn| {
                fn drain(
                    stack: std::rc::Rc<std::cell::RefCell<TcpStack>>,
                    sim: &mut Sim,
                    conn: clic_tcpip::ConnId,
                    left: usize,
                ) {
                    if left == 0 {
                        return;
                    }
                    let s2 = stack.clone();
                    TcpStack::recv(&stack, sim, conn, 512 * 1024, move |sim, _| {
                        drain(s2.clone(), sim, conn, left - 1);
                    });
                }
                drain(b2.clone(), sim, conn, 24);
            });
            let a2 = a.clone();
            TcpStack::connect(&a, sim, cluster.nodes[1].ip, 9100, move |sim, conn| {
                let bulk = Bytes::from(vec![0xBBu8; 512 * 1024]);
                for _ in 0..24 {
                    TcpStack::send(&a2, sim, conn, bulk.clone());
                }
            });
        }
    };
    // Foreground: 64-byte request/reply cycles, sampled while the bulk
    // transfer (if any) is in flight (the hook runs after the foreground
    // connection establishes).
    let stack = if is_clic {
        StackKind::Clic
    } else {
        StackKind::Tcp
    };
    let cluster_ref = &cluster;
    let cycles =
        request_reply_cycles_with_background(&cluster, &mut sim, stack, 64, 4, 30, move |sim| {
            if loaded {
                post_bulk(sim, cluster_ref);
            }
        });
    let one_way = |d: Option<SimDuration>| d.map(|d| d.as_us_f64() / 2.0).unwrap_or(f64::NAN);
    let mut m = Measurement::default();
    m.push("min_us", one_way(cycles.min()));
    m.push("mean_us", one_way(cycles.mean()));
    m.push("p99_us", one_way(cycles.percentile(0.99)));
    push_metric_totals(&mut m, &sim);
    m
}

fn run_reliability(
    config: &ClusterConfig,
    stack: StackKind,
    size: usize,
    rounds: usize,
    seed: u64,
) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let cycles = request_reply_cycles(&cluster, &mut sim, stack, size, 4, rounds);
    let mut m = Measurement::default();
    // Goodput: request bytes delivered per mean cycle. Derived from the
    // cycle times rather than the final sim clock so trailing timer drain
    // (stale RTOs, TCP TIME-WAIT) cannot skew it.
    let mbps = cycles
        .mean()
        .map(|d| (size as f64 * 8.0 * 1_000.0) / d.as_ns() as f64)
        .unwrap_or(0.0);
    let us = |d: Option<SimDuration>| d.map(|d| d.as_us_f64()).unwrap_or(f64::NAN);
    m.push("mbps", mbps);
    m.push("mean_us", us(cycles.mean()));
    m.push("p99_us", us(cycles.percentile(0.99)));
    push_metric_totals(&mut m, &sim);
    m
}

fn run_chaos(
    config: &ClusterConfig,
    size: usize,
    nmsgs: usize,
    crashes: usize,
    flaps: usize,
    seed: u64,
) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let plan = crate::workload::ChaosPlan::draw(seed, crashes, flaps);
    let out = crate::workload::chaos_clic(&cluster, &mut sim, size, nmsgs, &plan);
    let mut m = Measurement::default();
    m.push("posted", out.posted as f64);
    m.push("confirmed", out.confirmed as f64);
    m.push("failed", out.failed as f64);
    m.push("delivered", out.delivered as f64);
    m.push("err_max_retries", out.errors_max_retries as f64);
    m.push("err_peer_dead", out.errors_peer_dead as f64);
    m.push("err_stale_epoch", out.errors_stale_epoch as f64);
    m.push("eras", out.eras as f64);
    m.push("last_delivery_us", out.last_delivery.as_us_f64());
    m.push(
        "stale_epoch_drops",
        sim.metrics.sum_counters("clic.drops.stale_epoch") as f64,
    );
    m.push(
        "expired_drops",
        sim.metrics.sum_counters("clic.drops.expired") as f64,
    );
    push_metric_totals(&mut m, &sim);
    m
}

fn run_incast(
    config: &ClusterConfig,
    size: usize,
    per_sender: usize,
    consume_delay_us: u64,
    seed: u64,
) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let out = crate::workload::incast_clic(
        &cluster,
        &mut sim,
        size,
        per_sender,
        SimDuration::from_us(consume_delay_us),
    );
    let us = |d: Option<SimDuration>| d.map(|d| d.as_us_f64()).unwrap_or(f64::NAN);
    let mut m = Measurement::default();
    m.push("delivered", out.delivered as f64);
    m.push("mean_us", us(out.completion.mean()));
    m.push("p99_us", us(out.completion.percentile(0.99)));
    // The peak is the larger of the workload's per-delivery samples and
    // the gauge the module updates at every ACK.
    let peak =
        (out.peak_buffered_bytes as i64).max(sim.metrics.max_gauge_peak("clic.recv_buffer_bytes"));
    m.push("peak_buffered_bytes", peak as f64);
    m.push("elapsed_us", out.elapsed.as_us_f64());
    // Receiver goodput over the whole incast: delivered payload bits per
    // elapsed microsecond = Mb/s.
    let elapsed_us = out.elapsed.as_us_f64();
    let goodput = if elapsed_us > 0.0 {
        (out.delivered as f64 * size as f64 * 8.0) / elapsed_us
    } else {
        0.0
    };
    m.push("goodput_mbps", goodput);
    push_metric_totals(&mut m, &sim);
    m
}

fn run_scale_collective(config: &ClusterConfig, offload: bool, seed: u64) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let res = crate::workload::collective_scale(&cluster, &mut sim, offload);
    let mut m = Measurement::default();
    m.push("barrier_us", res.barrier.as_us_f64());
    m.push("allreduce_us", res.allreduce.as_us_f64());
    if let Some(fabric) = &cluster.fabric {
        m.push("switches", fabric.switch_count() as f64);
        m.push("trunks", fabric.trunk_count() as f64);
        m.push("flood_pruned", fabric.total_flood_pruned() as f64);
    }
    m.push(
        "coll_msgs",
        sim.metrics.sum_counters("hw.nic.coll.msgs_rx") as f64,
    );
    m.push(
        "host_irqs",
        cluster
            .nodes
            .iter()
            .map(|n| n.kernel.borrow().stats().irqs)
            .sum::<u64>() as f64,
    );
    push_metric_totals(&mut m, &sim);
    m
}

fn run_all_to_all(config: &ClusterConfig, size: usize, seed: u64) -> Measurement {
    let cluster = Cluster::build(config);
    let mut sim = job_sim(seed);
    let res = crate::workload::all_to_all_clic(&cluster, &mut sim, size);
    let mut m = Measurement::default();
    m.push("aggregate_mbps", res.aggregate_mbps());
    push_metric_totals(&mut m, &sim);
    m
}

/// Convenience: a standard-sweep stream job (`stream_count(size)`
/// messages, seed = size, not pipelined — exactly the historical
/// `bandwidth_sweep` point).
pub fn sweep_point(
    id: impl Into<String>,
    cluster: ClusterConfig,
    stack: StackKind,
    size: usize,
) -> JobSpec {
    JobSpec::new(
        id,
        JobKind::Stream {
            cluster,
            stack,
            size,
            count: stream_count(size),
            seed: size as u64,
            pipelined: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;

    #[test]
    fn fingerprint_is_stable_and_config_sensitive() {
        let model = CostModel::era_2002();
        let mk = |size: usize| {
            sweep_point(
                "t/x",
                experiments::clic_pair(&model, true, true),
                StackKind::Clic,
                size,
            )
        };
        assert_eq!(mk(1024).fingerprint(), mk(1024).fingerprint());
        assert_ne!(mk(1024).fingerprint(), mk(2048).fingerprint());
        // Same config, different id: distinct cache entries.
        let mut renamed = mk(1024);
        renamed.id = "t/y".into();
        assert_ne!(renamed.fingerprint(), mk(1024).fingerprint());
        // Config changes invalidate.
        let mut tweaked = mk(1024);
        if let JobKind::Stream { cluster, .. } = &mut tweaked.kind {
            cluster.model.link_bps += 1;
        }
        assert_ne!(tweaked.fingerprint(), mk(1024).fingerprint());
    }

    #[test]
    fn jobs_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<JobSpec>();
        assert_send::<Measurement>();
    }

    #[test]
    fn measurement_lookup() {
        let mut m = Measurement::default();
        m.push("a", 1.0);
        m.push("b", 2.0);
        assert_eq!(m.get("b"), Some(2.0));
        assert_eq!(m.get("c"), None);
        assert_eq!(m.require("a"), 1.0);
    }

    #[test]
    fn stream_job_runs_and_reports() {
        let model = CostModel::era_2002();
        let spec = sweep_point(
            "t/stream",
            experiments::clic_pair(&model, false, true),
            StackKind::Clic,
            4096,
        );
        let m = spec.run();
        assert!(m.require("mbps") > 0.0);
        assert!(m.get("retransmits").is_some());
        // Re-running is bit-identical (purity).
        let m2 = spec.run();
        assert_eq!(
            m.values
                .iter()
                .map(|(n, v)| (n.clone(), v.to_bits()))
                .collect::<Vec<_>>(),
            m2.values
                .iter()
                .map(|(n, v)| (n.clone(), v.to_bits()))
                .collect::<Vec<_>>(),
        );
    }
}
