//! Workload drivers: ping-pong latency and streaming bandwidth for every
//! stack the paper evaluates, plus the robustness workloads (chaos soak,
//! incast backpressure) behind `figures chaos`.

use crate::builder::Cluster;
use bytes::Bytes;
use clic_core::{ClicError, ClicModule, ClicPort, SendOptions};
use clic_ethernet::MacAddr;
use clic_gamma::GammaModule;
use clic_mpi::transport::{ClicTransport, TcpTransport, Transport};
use clic_mpi::{Mpi, Pvm};
use clic_sim::stats::LatencyStats;
use clic_sim::{Sim, SimDuration, SimRng, SimTime};
use clic_tcpip::TcpStack;
use std::cell::RefCell;
use std::rc::Rc;

/// Which stack a workload runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackKind {
    /// Raw CLIC messages.
    Clic,
    /// Raw TCP stream (message = fixed-size record).
    Tcp,
    /// MPI-like layer over CLIC.
    MpiClic,
    /// MPI-like layer over TCP.
    MpiTcp,
    /// PVM-like layer over TCP.
    PvmTcp,
    /// GAMMA-like active ports (best effort).
    Gamma,
}

impl StackKind {
    /// Label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            StackKind::Clic => "CLIC",
            StackKind::Tcp => "TCP",
            StackKind::MpiClic => "MPI-CLIC",
            StackKind::MpiTcp => "MPI-TCP",
            StackKind::PvmTcp => "PVM-TCP",
            StackKind::Gamma => "GAMMA",
        }
    }
}

/// Ping-pong outcome.
#[derive(Debug)]
pub struct PingPongResult {
    /// Round-trip samples.
    pub rtt: LatencyStats,
}

impl PingPongResult {
    /// One-way latency: half the minimum round trip (the paper's metric).
    pub fn one_way(&self) -> SimDuration {
        self.rtt.min().expect("no samples") / 2
    }
}

/// Streaming outcome.
#[derive(Debug)]
pub struct StreamResult {
    /// Payload bytes delivered to the receiving process.
    pub bytes: u64,
    /// Messages fully delivered.
    pub msgs: u64,
    /// First-send to last-delivery span.
    pub elapsed: SimDuration,
    /// Sender CPU busy fraction over `elapsed`.
    pub sender_cpu: f64,
    /// Receiver CPU busy fraction over `elapsed`.
    pub receiver_cpu: f64,
}

impl StreamResult {
    /// Delivered bandwidth in Mb/s (the paper's y-axis).
    pub fn mbps(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.bytes as f64 * 8.0 / self.elapsed.as_secs_f64() / 1e6
    }
}

fn payload(n: usize) -> Bytes {
    Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
}

/// How many messages to stream for a given size: enough to reach steady
/// state, bounded so sweeps stay fast.
pub fn stream_count(size: usize) -> usize {
    ((8 << 20) / size.max(1)).clamp(8, 600)
}

// ---------------------------------------------------------------------
// Ping-pong
// ---------------------------------------------------------------------

/// Run `iters` ping-pong round trips of `size` bytes between nodes 0 and 1
/// of `cluster` over `stack`. The echo side reflects the full payload.
pub fn ping_pong(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    size: usize,
    iters: usize,
) -> PingPongResult {
    let rtt = request_reply_cycles(cluster, sim, stack, size, size, iters);
    PingPongResult { rtt }
}

/// Run `iters` request/reply cycles (`req_size` bytes out, `reply_size`
/// bytes back) and return the cycle-time samples. This is the primitive
/// under both [`ping_pong`] (symmetric) and [`stream`] (tiny reply): the
/// paper's bandwidth benchmark completes each message before sending the
/// next, which is what makes its curves reach 50 % of peak only at 4 KB
/// (CLIC) / 16 KB (TCP).
pub fn request_reply_cycles(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    req_size: usize,
    reply_size: usize,
    iters: usize,
) -> LatencyStats {
    request_reply_cycles_with_background(cluster, sim, stack, req_size, reply_size, iters, |_| {})
}

/// [`request_reply_cycles`] with a `background` hook invoked right before
/// the measured cycles start (after any connection establishment the stack
/// needs) — used to inject competing traffic for latency-under-load
/// experiments.
pub fn request_reply_cycles_with_background(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    req_size: usize,
    reply_size: usize,
    iters: usize,
    background: impl FnOnce(&mut Sim),
) -> LatencyStats {
    assert!(iters > 0);
    let samples: Rc<RefCell<LatencyStats>> = Rc::new(RefCell::new(LatencyStats::new()));
    match stack {
        StackKind::Clic => {
            background(sim);
            pingpong_clic(cluster, sim, req_size, reply_size, iters, &samples);
        }
        StackKind::Tcp => {
            // Establishment happens inside; the hook runs after it so
            // injected traffic is not drained by the setup run.
            pingpong_tcp(
                cluster, sim, req_size, reply_size, iters, &samples, background,
            );
        }
        StackKind::Gamma => {
            background(sim);
            pingpong_gamma(cluster, sim, req_size, reply_size, iters, &samples);
        }
        StackKind::MpiClic | StackKind::MpiTcp => {
            pingpong_mpi(
                cluster, sim, stack, req_size, reply_size, iters, &samples, background,
            );
        }
        StackKind::PvmTcp => {
            pingpong_pvm(
                cluster, sim, req_size, reply_size, iters, &samples, background,
            );
        }
    }
    sim.run();
    let rtt = samples.borrow().clone();
    assert_eq!(rtt.count(), iters, "not all iterations completed");
    rtt
}

fn pingpong_clic(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    reply_size: usize,
    iters: usize,
    samples: &Rc<RefCell<LatencyStats>>,
) {
    const CH: u16 = 100;
    let a = &cluster.nodes[0];
    let b = &cluster.nodes[1];
    let pid_a = a.kernel.borrow_mut().processes.spawn("pp-a");
    let pid_b = b.kernel.borrow_mut().processes.spawn("pp-b");
    let port_a = Rc::new(ClicPort::bind(&a.clic(), pid_a, CH));
    let port_b = Rc::new(ClicPort::bind(&b.clic(), pid_b, CH));
    let a_mac = a.mac;
    let b_mac = b.mac;

    // Echo side: perpetual recv -> reply.
    fn echo(
        port: Rc<ClicPort>,
        sim: &mut Sim,
        peer: clic_ethernet::MacAddr,
        reply_size: usize,
        left: usize,
    ) {
        if left == 0 {
            return;
        }
        let p2 = port.clone();
        port.recv(sim, move |sim, msg| {
            let reply = if reply_size == msg.data.len() {
                msg.data
            } else {
                payload(reply_size)
            };
            p2.send(sim, peer, 100, reply);
            echo(p2.clone(), sim, peer, reply_size, left - 1);
        });
    }
    echo(port_b, sim, a_mac, reply_size, iters);

    // Initiator: send, await echo, sample, repeat.
    struct St {
        port: Rc<ClicPort>,
        peer: clic_ethernet::MacAddr,
        size: usize,
        samples: Rc<RefCell<LatencyStats>>,
    }
    fn iterate(st: Rc<St>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        let t0 = sim.now();
        st.port.send(sim, st.peer, 100, payload(st.size));
        let st2 = st.clone();
        st.port.recv(sim, move |sim, _msg| {
            st2.samples.borrow_mut().record(sim.now() - t0);
            iterate(st2.clone(), sim, left - 1);
        });
    }
    iterate(
        Rc::new(St {
            port: port_a,
            peer: b_mac,
            size,
            samples: samples.clone(),
        }),
        sim,
        iters,
    );
}

fn pingpong_tcp(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    reply_size: usize,
    iters: usize,
    samples: &Rc<RefCell<LatencyStats>>,
    background: impl FnOnce(&mut Sim),
) {
    // TCP cannot carry zero-length records; a 0-byte "message" becomes the
    // 1-byte minimum, as latency benchmarks over sockets actually do.
    let size = size.max(1);
    let reply_size = reply_size.max(1);
    let a = cluster.nodes[0].tcp();
    let b = cluster.nodes[1].tcp();
    let b_ip = cluster.nodes[1].ip;
    let server_conn: Rc<RefCell<Option<clic_tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let sc = server_conn.clone();
    b.borrow_mut()
        .listen(9000, move |_s, id| *sc.borrow_mut() = Some(id));
    let client_conn: Rc<RefCell<Option<clic_tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let cc = client_conn.clone();
    TcpStack::connect(&a, sim, b_ip, 9000, move |_s, id| {
        *cc.borrow_mut() = Some(id)
    });
    sim.run();
    let client = client_conn.borrow().expect("connect failed");
    let server = server_conn.borrow().expect("accept failed");
    background(sim);

    fn echo(
        stack: Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: clic_tcpip::ConnId,
        size: usize,
        reply_size: usize,
        left: usize,
    ) {
        if left == 0 {
            return;
        }
        let s2 = stack.clone();
        TcpStack::recv(&stack, sim, conn, size, move |sim, data| {
            let reply = if reply_size == data.len() {
                data
            } else {
                payload(reply_size)
            };
            TcpStack::send(&s2, sim, conn, reply);
            echo(s2.clone(), sim, conn, size, reply_size, left - 1);
        });
    }
    echo(b, sim, server, size, reply_size, iters);

    struct St {
        stack: Rc<RefCell<TcpStack>>,
        conn: clic_tcpip::ConnId,
        size: usize,
        reply_size: usize,
        samples: Rc<RefCell<LatencyStats>>,
    }
    fn iterate(st: Rc<St>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        let t0 = sim.now();
        TcpStack::send(&st.stack, sim, st.conn, payload(st.size));
        let st2 = st.clone();
        TcpStack::recv(
            &st.stack.clone(),
            sim,
            st.conn,
            st.reply_size,
            move |sim, _| {
                st2.samples.borrow_mut().record(sim.now() - t0);
                iterate(st2.clone(), sim, left - 1);
            },
        );
    }
    iterate(
        Rc::new(St {
            stack: a,
            conn: client,
            size,
            reply_size,
            samples: samples.clone(),
        }),
        sim,
        iters,
    );
}

fn pingpong_gamma(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    reply_size: usize,
    iters: usize,
    samples: &Rc<RefCell<LatencyStats>>,
) {
    const PORT: u16 = 50;
    let a = cluster.nodes[0].gamma();
    let b = cluster.nodes[1].gamma();
    let a_mac = cluster.nodes[0].mac;
    let b_mac = cluster.nodes[1].mac;
    // Echo side.
    let b2 = b.clone();
    b.borrow_mut().register_port(PORT, move |sim, msg| {
        let reply = if reply_size == msg.data.len() {
            msg.data
        } else {
            payload(reply_size)
        };
        GammaModule::send(&b2, sim, msg.src, PORT, reply);
    });
    // Initiator: handler drives the next iteration.
    let state: Rc<RefCell<(usize, SimTime)>> = Rc::new(RefCell::new((iters, SimTime::ZERO)));
    let a2 = a.clone();
    let samples2 = samples.clone();
    let st = state.clone();
    a.borrow_mut().register_port(PORT, move |sim, _msg| {
        let (left, t0) = *st.borrow();
        samples2.borrow_mut().record(sim.now() - t0);
        if left > 1 {
            *st.borrow_mut() = (left - 1, sim.now());
            GammaModule::send(&a2, sim, b_mac, PORT, payload(size));
        } else {
            st.borrow_mut().0 = 0;
        }
    });
    let _ = a_mac;
    state.borrow_mut().1 = sim.now();
    GammaModule::send(&a, sim, b_mac, PORT, payload(size));
}

#[allow(clippy::too_many_arguments)]
fn pingpong_mpi(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    size: usize,
    reply_size: usize,
    iters: usize,
    samples: &Rc<RefCell<LatencyStats>>,
    background: impl FnOnce(&mut Sim),
) {
    let (m0, m1) = mpi_pair(cluster, sim, stack);
    background(sim);
    // Echo side.
    fn echo(mpi: Rc<Mpi>, sim: &mut Sim, reply_size: usize, left: usize) {
        if left == 0 {
            return;
        }
        let m2 = mpi.clone();
        mpi.recv(sim, 0, 1, move |sim, msg| {
            let reply = if reply_size == msg.data.len() {
                msg.data
            } else {
                payload(reply_size)
            };
            m2.send(sim, 0, 2, reply);
            echo(m2.clone(), sim, reply_size, left - 1);
        });
    }
    echo(m1, sim, reply_size, iters);
    struct St {
        mpi: Rc<Mpi>,
        size: usize,
        samples: Rc<RefCell<LatencyStats>>,
    }
    fn iterate(st: Rc<St>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        let t0 = sim.now();
        st.mpi.send(sim, 1, 1, payload(st.size));
        let st2 = st.clone();
        st.mpi.recv(sim, 1, 2, move |sim, _| {
            st2.samples.borrow_mut().record(sim.now() - t0);
            iterate(st2.clone(), sim, left - 1);
        });
    }
    iterate(
        Rc::new(St {
            mpi: m0,
            size,
            samples: samples.clone(),
        }),
        sim,
        iters,
    );
}

fn pingpong_pvm(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    reply_size: usize,
    iters: usize,
    samples: &Rc<RefCell<LatencyStats>>,
    background: impl FnOnce(&mut Sim),
) {
    let (t0, t1) = tcp_transport_pair(cluster, sim);
    background(sim);
    let p0 = Pvm::new(&cluster.nodes[0].kernel, t0);
    let p1 = Pvm::new(&cluster.nodes[1].kernel, t1);
    // Echo side: recv -> pack -> send.
    fn echo(pvm: Rc<Pvm>, sim: &mut Sim, reply_size: usize, left: usize) {
        if left == 0 {
            return;
        }
        let p2 = pvm.clone();
        pvm.recv(sim, -1, 1, move |sim, _msg| {
            let p3 = p2.clone();
            p2.clone().pack(sim, payload(reply_size), move |sim| {
                p3.send(sim, 0, 2);
                echo(p3.clone(), sim, reply_size, left - 1);
            });
        });
    }
    echo(p1, sim, reply_size, iters);
    struct St {
        pvm: Rc<Pvm>,
        size: usize,
        samples: Rc<RefCell<LatencyStats>>,
    }
    fn iterate(st: Rc<St>, sim: &mut Sim, left: usize) {
        if left == 0 {
            return;
        }
        let t0 = sim.now();
        let st2 = st.clone();
        st.pvm.clone().pack(sim, payload(st.size), move |sim| {
            st2.pvm.send(sim, 1, 1);
            let st3 = st2.clone();
            st2.pvm.clone().recv(sim, 1, 2, move |sim, _| {
                st3.samples.borrow_mut().record(sim.now() - t0);
                iterate(st3.clone(), sim, left - 1);
            });
        });
    }
    iterate(
        Rc::new(St {
            pvm: p0,
            size,
            samples: samples.clone(),
        }),
        sim,
        iters,
    );
}

/// Build the MPI endpoints for nodes 0 and 1 over the requested backend.
fn mpi_pair(cluster: &Cluster, sim: &mut Sim, stack: StackKind) -> (Rc<Mpi>, Rc<Mpi>) {
    match stack {
        StackKind::MpiClic => {
            let peers = vec![cluster.nodes[0].mac, cluster.nodes[1].mac];
            let mk = |i: usize, sim: &mut Sim| {
                let node = &cluster.nodes[i];
                let pid = node.kernel.borrow_mut().processes.spawn("mpi");
                let t = ClicTransport::new(sim, &node.clic(), pid, i, peers.clone());
                Mpi::new(&node.kernel, t)
            };
            let m0 = mk(0, sim);
            let m1 = mk(1, sim);
            (m0, m1)
        }
        StackKind::MpiTcp => {
            let (t0, t1) = tcp_transport_pair(cluster, sim);
            (
                Mpi::new(&cluster.nodes[0].kernel, t0),
                Mpi::new(&cluster.nodes[1].kernel, t1),
            )
        }
        _ => panic!("not an MPI stack"),
    }
}

fn tcp_transport_pair(cluster: &Cluster, sim: &mut Sim) -> (Rc<dyn Transport>, Rc<dyn Transport>) {
    let ips = vec![cluster.nodes[0].ip, cluster.nodes[1].ip];
    let t0 = TcpTransport::new(sim, &cluster.nodes[0].tcp(), 0, ips.clone());
    let t1 = TcpTransport::new(sim, &cluster.nodes[1].tcp(), 1, ips);
    sim.run();
    assert!(t0.ready() && t1.ready(), "TCP transport mesh failed");
    (t0, t1)
}

// ---------------------------------------------------------------------
// Streaming
// ---------------------------------------------------------------------

/// The paper's bandwidth benchmark: `count` synchronous message cycles of
/// `size` bytes from node 0 to node 1 (each message is completed — a tiny
/// application-level reply returns — before the next is sent).
pub fn stream(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    size: usize,
    count: usize,
) -> StreamResult {
    let start = sim.now();
    let cycles = request_reply_cycles(cluster, sim, stack, size.max(1), 4, count);
    let elapsed = sim.now().saturating_since(start);
    let window = elapsed.max(SimDuration::from_ns(1));
    let sender_cpu = cluster.nodes[0]
        .kernel
        .borrow()
        .cpu
        .borrow()
        .utilization(window);
    let receiver_cpu = cluster.nodes[1]
        .kernel
        .borrow()
        .cpu
        .borrow()
        .utilization(window);
    // Goodput counts the request payloads over the sum of cycle times
    // (excluding the post-run settling the simulator does after the last
    // reply).
    let total: SimDuration = (0..cycles.count()).map(|_| SimDuration::ZERO).sum();
    let _ = total;
    let sum_cycles: SimDuration = {
        // LatencyStats has no iterator; reconstruct from mean * count.
        cycles.mean().expect("cycles") * cycles.count() as u64
    };
    StreamResult {
        bytes: (size * count) as u64,
        msgs: count as u64,
        elapsed: sum_cycles,
        sender_cpu,
        receiver_cpu,
    }
}

/// Offered-load streaming: node 0 posts all `count` messages of `size`
/// bytes at once and the stacks pipeline them as their windows allow.
/// Measures the capability limit rather than the paper's synchronous
/// benchmark; used by the ablations.
pub fn stream_pipelined(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    size: usize,
    count: usize,
) -> StreamResult {
    assert!(size > 0 && count > 0);
    // (delivered bytes, delivered msgs, last delivery time)
    let progress: Rc<RefCell<(u64, u64, SimTime)>> = Rc::new(RefCell::new((0, 0, SimTime::ZERO)));
    let start = match stack {
        StackKind::Clic => stream_clic(cluster, sim, size, count, &progress),
        StackKind::Tcp => stream_tcp(cluster, sim, size, count, &progress),
        StackKind::Gamma => stream_gamma(cluster, sim, size, count, &progress),
        StackKind::MpiClic | StackKind::MpiTcp => {
            stream_mpi(cluster, sim, stack, size, count, &progress)
        }
        StackKind::PvmTcp => stream_pvm(cluster, sim, size, count, &progress),
    };
    sim.set_event_limit(sim.events_executed() + 400_000_000);
    sim.run();
    let (bytes, msgs, last) = *progress.borrow();
    assert!(msgs > 0, "stream delivered nothing");
    let elapsed = last.saturating_since(start);
    let window = elapsed.max(SimDuration::from_ns(1));
    let sender_cpu = cluster.nodes[0]
        .kernel
        .borrow()
        .cpu
        .borrow()
        .utilization(window);
    let receiver_cpu = cluster.nodes[1]
        .kernel
        .borrow()
        .cpu
        .borrow()
        .utilization(window);
    StreamResult {
        bytes,
        msgs,
        elapsed,
        sender_cpu,
        receiver_cpu,
    }
}

type Progress = Rc<RefCell<(u64, u64, SimTime)>>;

fn note(progress: &Progress, now: SimTime, bytes: usize) {
    let mut p = progress.borrow_mut();
    p.0 += bytes as u64;
    p.1 += 1;
    p.2 = p.2.max(now);
}

fn stream_clic(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    count: usize,
    progress: &Progress,
) -> SimTime {
    const CH: u16 = 200;
    let a = &cluster.nodes[0];
    let b = &cluster.nodes[1];
    let pid_a = a.kernel.borrow_mut().processes.spawn("stream-tx");
    let pid_b = b.kernel.borrow_mut().processes.spawn("stream-rx");
    let tx = Rc::new(ClicPort::bind(&a.clic(), pid_a, CH));
    let rx = Rc::new(ClicPort::bind(&b.clic(), pid_b, CH));
    fn sink(port: Rc<ClicPort>, sim: &mut Sim, progress: Progress, left: usize) {
        if left == 0 {
            return;
        }
        let p2 = port.clone();
        port.recv(sim, move |sim, msg| {
            note(&progress, sim.now(), msg.data.len());
            sink(p2.clone(), sim, progress, left - 1);
        });
    }
    sink(rx, sim, progress.clone(), count);
    let start = sim.now();
    let data = payload(size);
    for _ in 0..count {
        tx.send(sim, b.mac, CH, data.clone());
    }
    start
}

fn stream_tcp(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    count: usize,
    progress: &Progress,
) -> SimTime {
    let a = cluster.nodes[0].tcp();
    let b = cluster.nodes[1].tcp();
    let b_ip = cluster.nodes[1].ip;
    let server_conn: Rc<RefCell<Option<clic_tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let sc = server_conn.clone();
    b.borrow_mut()
        .listen(9100, move |_s, id| *sc.borrow_mut() = Some(id));
    let client_conn: Rc<RefCell<Option<clic_tcpip::ConnId>>> = Rc::new(RefCell::new(None));
    let cc = client_conn.clone();
    TcpStack::connect(&a, sim, b_ip, 9100, move |_s, id| {
        *cc.borrow_mut() = Some(id)
    });
    sim.run();
    let client = client_conn.borrow().expect("connect failed");
    let server = server_conn.borrow().expect("accept failed");
    fn sink(
        stack: Rc<RefCell<TcpStack>>,
        sim: &mut Sim,
        conn: clic_tcpip::ConnId,
        size: usize,
        progress: Progress,
        left: usize,
    ) {
        if left == 0 {
            return;
        }
        let s2 = stack.clone();
        TcpStack::recv(&stack, sim, conn, size, move |sim, data| {
            note(&progress, sim.now(), data.len());
            sink(s2.clone(), sim, conn, size, progress, left - 1);
        });
    }
    sink(b, sim, server, size, progress.clone(), count);
    let start = sim.now();
    let data = payload(size);
    for _ in 0..count {
        TcpStack::send(&a, sim, client, data.clone());
    }
    start
}

fn stream_gamma(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    count: usize,
    progress: &Progress,
) -> SimTime {
    const PORT: u16 = 60;
    let a = cluster.nodes[0].gamma();
    let b = cluster.nodes[1].gamma();
    let b_mac = cluster.nodes[1].mac;
    let p = progress.clone();
    b.borrow_mut().register_port(PORT, move |sim, msg| {
        note(&p, sim.now(), msg.data.len());
    });
    let start = sim.now();
    let data = payload(size);
    for _ in 0..count {
        GammaModule::send(&a, sim, b_mac, PORT, data.clone());
    }
    start
}

fn stream_mpi(
    cluster: &Cluster,
    sim: &mut Sim,
    stack: StackKind,
    size: usize,
    count: usize,
    progress: &Progress,
) -> SimTime {
    let (m0, m1) = mpi_pair(cluster, sim, stack);
    fn sink(mpi: Rc<Mpi>, sim: &mut Sim, progress: Progress, left: usize) {
        if left == 0 {
            return;
        }
        let m2 = mpi.clone();
        mpi.recv(sim, 0, 1, move |sim, msg| {
            note(&progress, sim.now(), msg.data.len());
            sink(m2.clone(), sim, progress, left - 1);
        });
    }
    sink(m1, sim, progress.clone(), count);
    let start = sim.now();
    let data = payload(size);
    for _ in 0..count {
        m0.send(sim, 1, 1, data.clone());
    }
    start
}

fn stream_pvm(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    count: usize,
    progress: &Progress,
) -> SimTime {
    let (t0, t1) = tcp_transport_pair(cluster, sim);
    let p0 = Pvm::new(&cluster.nodes[0].kernel, t0);
    let p1 = Pvm::new(&cluster.nodes[1].kernel, t1);
    fn sink(pvm: Rc<Pvm>, sim: &mut Sim, progress: Progress, left: usize) {
        if left == 0 {
            return;
        }
        let p2 = pvm.clone();
        pvm.recv(sim, -1, 1, move |sim, msg| {
            note(&progress, sim.now(), msg.data.len());
            sink(p2.clone(), sim, progress, left - 1);
        });
    }
    sink(p1, sim, progress.clone(), count);
    let start = sim.now();
    // PVM sends serialize: pack -> send -> pack the next.
    fn pump(pvm: Rc<Pvm>, sim: &mut Sim, data: Bytes, left: usize) {
        if left == 0 {
            return;
        }
        let p2 = pvm.clone();
        let d2 = data.clone();
        pvm.clone().pack(sim, data, move |sim| {
            p2.send(sim, 1, 1);
            pump(p2.clone(), sim, d2, left - 1);
        });
    }
    pump(p0, sim, payload(size), count);
    start
}

// ---------------------------------------------------------------------
// All-to-all exchange (N-node clusters)
// ---------------------------------------------------------------------

/// Outcome of an all-to-all exchange.
#[derive(Debug)]
pub struct AllToAllResult {
    /// Nodes participating.
    pub nodes: usize,
    /// Bytes each node sent to each other node.
    pub bytes_per_pair: usize,
    /// Start of the exchange to the last delivery anywhere.
    pub elapsed: SimDuration,
}

impl AllToAllResult {
    /// Aggregate delivered bandwidth across the cluster, Mb/s.
    pub fn aggregate_mbps(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        let total = self.bytes_per_pair as f64 * (self.nodes * (self.nodes - 1)) as f64;
        total * 8.0 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Every node sends `size` bytes to every other node (CLIC only; the
/// switched cluster's scalability workload).
pub fn all_to_all_clic(cluster: &Cluster, sim: &mut Sim, size: usize) -> AllToAllResult {
    const CH: u16 = 300;
    let n = cluster.nodes.len();
    assert!(n >= 2);
    let finished: Rc<RefCell<(usize, SimTime)>> = Rc::new(RefCell::new((0, SimTime::ZERO)));
    // Receivers: each node expects n-1 messages.
    for node in &cluster.nodes {
        let pid = node.kernel.borrow_mut().processes.spawn("a2a");
        let port = Rc::new(ClicPort::bind(&node.clic(), pid, CH));
        fn sink(
            port: Rc<ClicPort>,
            sim: &mut Sim,
            finished: Rc<RefCell<(usize, SimTime)>>,
            left: usize,
        ) {
            if left == 0 {
                return;
            }
            let p = port.clone();
            port.recv(sim, move |sim, _msg| {
                {
                    let mut f = finished.borrow_mut();
                    f.0 += 1;
                    f.1 = f.1.max(sim.now());
                }
                sink(p.clone(), sim, finished, left - 1);
            });
        }
        sink(port, sim, finished.clone(), n - 1);
    }
    // Senders: each node fires at every peer.
    let start = sim.now();
    let data = payload(size);
    for (i, node) in cluster.nodes.iter().enumerate() {
        let pid = node.kernel.borrow_mut().processes.spawn("a2a-tx");
        let port = ClicPort::bind(&node.clic(), pid, CH + 1);
        for (j, peer) in cluster.nodes.iter().enumerate() {
            if i != j {
                port.send(sim, peer.mac, CH, data.clone());
            }
        }
    }
    sim.set_event_limit(sim.events_executed() + 400_000_000);
    sim.run();
    let (count, last) = *finished.borrow();
    assert_eq!(count, n * (n - 1), "every pairwise message must arrive");
    AllToAllResult {
        nodes: n,
        bytes_per_pair: size,
        elapsed: last.saturating_since(start),
    }
}

// ---------------------------------------------------------------------
// Cluster-scale collectives (host-based vs NIC-offloaded)
// ---------------------------------------------------------------------

/// Outcome of one cluster-wide collective-latency measurement.
#[derive(Debug)]
pub struct CollScaleResult {
    /// Participating nodes.
    pub nodes: usize,
    /// Enter-to-release latency of one full barrier (first entry to the
    /// last rank's release).
    pub barrier: SimDuration,
    /// Contribute-to-total latency of one u64 all-reduce.
    pub allreduce: SimDuration,
    /// The all-reduce total (sanity: `n*(n+1)/2` for contributions `1..=n`).
    pub allreduce_value: u64,
}

/// Build MPI endpoints over CLIC on every node of the cluster.
pub fn mpi_all(cluster: &Cluster, sim: &mut Sim) -> Vec<Rc<Mpi>> {
    let peers: Vec<MacAddr> = cluster.nodes.iter().map(|n| n.mac).collect();
    cluster
        .nodes
        .iter()
        .enumerate()
        .map(|(rank, node)| {
            let pid = node.kernel.borrow_mut().processes.spawn("mpi");
            let t = ClicTransport::new(sim, &node.clic(), pid, rank, peers.clone());
            Mpi::new(&node.kernel, t)
        })
        .collect()
}

/// Measure whole-cluster barrier and all-reduce latency, either host-based
/// (linear algorithms over MPI point-to-point, every message through the
/// full OS stack) or NIC-offloaded (`offload = true`: the firmware
/// combining tree of [`clic_hw::coll`], release by Ethernet multicast).
/// Works on any topology; on the fabric topologies the collective traffic
/// crosses the multi-switch network on its static ECMP routes.
pub fn collective_scale(cluster: &Cluster, sim: &mut Sim, offload: bool) -> CollScaleResult {
    use clic_hw::coll::CollConfig;
    use clic_hw::Nic;
    use clic_mpi::collectives::{allreduce_sum_on, barrier_on, CollBackend};

    let n = cluster.nodes.len();
    assert!(n >= 2);
    let backends: Vec<CollBackend> = if offload {
        let members: Vec<MacAddr> = cluster.nodes.iter().map(|node| node.mac).collect();
        cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(rank, node)| {
                let nic = node.nic();
                Nic::enable_collectives(&nic, CollConfig::new(1, members.clone(), rank));
                CollBackend::NicOffload(nic)
            })
            .collect()
    } else {
        mpi_all(cluster, sim)
            .into_iter()
            .map(CollBackend::Host)
            .collect()
    };

    // One settled barrier first would hide cold-start asymmetries; the
    // paper-style measurement is the cold one, so measure directly — both
    // backends start equally cold.
    let finished: Rc<RefCell<(usize, SimTime)>> = Rc::new(RefCell::new((0, SimTime::ZERO)));
    let start = sim.now();
    for backend in &backends {
        let f = finished.clone();
        barrier_on(backend, sim, move |sim| {
            let mut f = f.borrow_mut();
            f.0 += 1;
            f.1 = f.1.max(sim.now());
        });
    }
    sim.set_event_limit(sim.events_executed() + 400_000_000);
    sim.run();
    let (count, last) = *finished.borrow();
    assert_eq!(count, n, "every rank must be released from the barrier");
    let barrier = last.saturating_since(start);

    let reduced: Rc<RefCell<(usize, SimTime, u64)>> = Rc::new(RefCell::new((0, SimTime::ZERO, 0)));
    let start = sim.now();
    for (rank, backend) in backends.iter().enumerate() {
        let r = reduced.clone();
        allreduce_sum_on(backend, sim, rank as u64 + 1, move |sim, total| {
            let mut r = r.borrow_mut();
            r.0 += 1;
            r.1 = r.1.max(sim.now());
            r.2 = total;
        });
    }
    sim.set_event_limit(sim.events_executed() + 400_000_000);
    sim.run();
    let (count, last, total) = *reduced.borrow();
    assert_eq!(count, n, "every rank must receive the all-reduce total");
    assert_eq!(total, (n as u64 * (n as u64 + 1)) / 2);
    CollScaleResult {
        nodes: n,
        barrier,
        allreduce: last.saturating_since(start),
        allreduce_value: total,
    }
}

// ---------------------------------------------------------------------
// Chaos soak (crash / restart / flap / loss) and incast backpressure
// ---------------------------------------------------------------------

/// Randomized-but-seeded fault schedule for one chaos-soak run. Drawn up
/// front from its own deterministic generator (never the simulator's
/// event-driven one), so a schedule depends only on its seed — not on
/// event interleaving — and the whole run stays byte-reproducible.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Receiver crash windows `(crash_at, restart_at)`, ascending and
    /// non-overlapping: the node crash-stops at the first time and
    /// restarts under a fresh epoch at the second.
    pub crashes: Vec<(SimTime, SimTime)>,
    /// Link-flap windows `(start, end)`, ascending and non-overlapping
    /// (they may overlap crash windows).
    pub flaps: Vec<(SimTime, SimTime)>,
}

impl ChaosPlan {
    /// Draw a schedule with `crashes` crash/restart cycles and `flaps`
    /// link flaps from `seed`.
    pub fn draw(seed: u64, crashes: usize, flaps: usize) -> ChaosPlan {
        // Domain-separated from the simulator seed so a chaos job's link
        // faults and its schedule are independent draws.
        let mut rng = SimRng::new(seed ^ 0x0C4A_05EE_D0DD_BA11);
        let mut windows = Vec::new();
        let mut t = 300u64; // µs
        for _ in 0..crashes {
            let at = t + rng.gen_range_u64(200..2_500);
            let back = at + rng.gen_range_u64(150..1_500);
            windows.push((SimTime::from_us(at), SimTime::from_us(back)));
            t = back + rng.gen_range_u64(2_000..6_000);
        }
        let mut flap_windows = Vec::new();
        let mut ft = 150u64;
        for _ in 0..flaps {
            let start = ft + rng.gen_range_u64(100..3_000);
            let end = start + rng.gen_range_u64(50..400);
            flap_windows.push((SimTime::from_us(start), SimTime::from_us(end)));
            ft = end + rng.gen_range_u64(1_000..4_000);
        }
        ChaosPlan {
            crashes: windows,
            flaps: flap_windows,
        }
    }
}

/// Outcome of one chaos-soak run. The hard invariants (exactly-once
/// in-order delivery or a typed error, no stranded buffers, quiescent
/// timers, full accounting) are asserted inside [`chaos_clic`]; this
/// carries the numbers worth reporting.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// Messages the application posted.
    pub posted: usize,
    /// Messages whose delivery the protocol confirmed (ACKed).
    pub confirmed: usize,
    /// Messages covered by a typed flow failure (never re-posted).
    pub failed: usize,
    /// Messages the receiving application actually drained. May exceed
    /// `confirmed` (ACK lost before teardown) or fall short of it (the
    /// receiver crashed after ACKing but before the application read —
    /// the end-to-end argument in action).
    pub delivered: usize,
    /// Flow teardowns by cause.
    pub errors_max_retries: usize,
    /// Keepalive declared the (crashed or flapped-away) peer dead.
    pub errors_peer_dead: usize,
    /// The peer restarted into a new session epoch mid-flow.
    pub errors_stale_epoch: usize,
    /// Flow generations used (1 + number of typed teardowns).
    pub eras: usize,
    /// Time of the last application-level delivery.
    pub last_delivery: SimDuration,
    /// The run ended because the event queue drained, not the limit.
    pub quiesced: bool,
}

/// Per-message sender bookkeeping of one chaos run.
struct ChaosTxState {
    next_tag: usize,
    outstanding: std::collections::BTreeSet<usize>,
    confirmed: usize,
    failed: usize,
    era: usize,
    err_mr: usize,
    err_pd: usize,
    err_se: usize,
}

/// Receiver-side delivery log of one chaos run.
struct ChaosLog {
    seen: std::collections::BTreeSet<usize>,
    duplicates: usize,
    order_violations: usize,
    corrupt: usize,
    last_tag: Option<usize>,
    last_at: SimTime,
}

struct ChaosCtx {
    sender: Rc<RefCell<clic_core::ClicModule>>,
    receiver: Rc<RefCell<clic_core::ClicModule>>,
    dst: MacAddr,
    size: usize,
    total: usize,
    state: RefCell<ChaosTxState>,
    log: RefCell<ChaosLog>,
    /// Channels with a live receive chain (cleared on receiver crash).
    installed: RefCell<std::collections::BTreeSet<u16>>,
}

const CHAOS_CH_BASE: u16 = 400;
/// Application-level messages kept in flight by the chaos sender.
const CHAOS_WINDOW: usize = 4;

fn chaos_payload(tag: usize, size: usize) -> Bytes {
    let mut v = Vec::with_capacity(size);
    v.extend_from_slice(&(tag as u64).to_be_bytes());
    v.extend((8..size).map(|i| (i % 251) as u8));
    Bytes::from(v)
}

/// Post messages until the application window is full or all are posted.
fn chaos_pump(ctx: &Rc<ChaosCtx>, sim: &mut Sim) {
    loop {
        let (tag, channel) = {
            let mut s = ctx.state.borrow_mut();
            if s.next_tag >= ctx.total || s.outstanding.len() >= CHAOS_WINDOW {
                return;
            }
            let tag = s.next_tag;
            s.next_tag += 1;
            s.outstanding.insert(tag);
            (tag, CHAOS_CH_BASE + s.era as u16)
        };
        let mut opts = SendOptions::data(ctx.dst, channel);
        let ctx2 = ctx.clone();
        opts.confirm = Some(Box::new(move |sim| {
            {
                let mut s = ctx2.state.borrow_mut();
                if s.outstanding.remove(&tag) {
                    s.confirmed += 1;
                }
            }
            chaos_pump(&ctx2, sim);
        }));
        ClicModule::send(&ctx.sender, sim, opts, chaos_payload(tag, ctx.size));
    }
}

/// Install (idempotently) an endless receive chain on `channel` of the
/// chaos receiver, logging every delivered message.
fn chaos_drain(ctx: &Rc<ChaosCtx>, sim: &mut Sim, channel: u16) {
    if !ctx.installed.borrow_mut().insert(channel) {
        return;
    }
    fn chain(ctx: Rc<ChaosCtx>, sim: &mut Sim, channel: u16) {
        let module = ctx.receiver.clone();
        ClicModule::recv(&module, sim, channel, move |sim, msg| {
            {
                let mut log = ctx.log.borrow_mut();
                let tag = u64::from_be_bytes(msg.data[..8].try_into().unwrap()) as usize;
                if !ctx.log_delivery_ok(&msg.data) {
                    log.corrupt += 1;
                }
                if !log.seen.insert(tag) {
                    log.duplicates += 1;
                }
                if log.last_tag.is_some_and(|last| tag <= last) {
                    log.order_violations += 1;
                }
                log.last_tag = Some(tag);
                log.last_at = sim.now();
            }
            chain(ctx, sim, channel);
        });
    }
    chain(ctx.clone(), sim, channel);
}

impl ChaosCtx {
    /// Byte-exact check of the filler pattern behind the tag prefix.
    fn log_delivery_ok(&self, data: &Bytes) -> bool {
        data.len() == self.size
            && data[8..]
                .iter()
                .enumerate()
                .all(|(i, &b)| b == ((i + 8) % 251) as u8)
    }
}

/// The chaos-soak workload: stream `nmsgs` tagged messages of `size`
/// bytes from node 0 to node 1 of a two-node CLIC `cluster` while the
/// receiver crash-restarts and the link flaps per `plan` (compose link
/// loss via the cluster's fault plan — but not duplication or
/// reordering, which would legitimately break the strict-order check).
///
/// The sender keeps [`CHAOS_WINDOW`] messages in flight, confirms each
/// via protocol ACK, and on a typed flow failure writes off everything
/// outstanding and continues on a fresh channel (a new application-level
/// flow) — it never re-posts, so every tag is unique for the whole run.
///
/// Asserts the robustness invariants the `figures chaos` harness is
/// about: the run quiesces (all timers die), every posted message is
/// either confirmed or written off by a typed error, delivery is
/// duplicate-free and strictly in posting order, payloads arrive intact,
/// and no receive-side buffer is left holding bytes at quiescence.
///
/// The cluster's CLIC config must enable the robustness machinery
/// (`keepalive_interval`, `epoch_guard`) — without it a crashed peer
/// strands the flow forever and the quiescence assert fires.
pub fn chaos_clic(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    nmsgs: usize,
    plan: &ChaosPlan,
) -> ChaosOutcome {
    assert_eq!(cluster.nodes.len(), 2, "chaos soak runs on a pair");
    assert!(size >= 8, "chaos payloads carry an 8-byte tag");
    let ctx = Rc::new(ChaosCtx {
        sender: cluster.nodes[0].clic(),
        receiver: cluster.nodes[1].clic(),
        dst: cluster.nodes[1].mac,
        size,
        total: nmsgs,
        state: RefCell::new(ChaosTxState {
            next_tag: 0,
            outstanding: Default::default(),
            confirmed: 0,
            failed: 0,
            era: 0,
            err_mr: 0,
            err_pd: 0,
            err_se: 0,
        }),
        log: RefCell::new(ChaosLog {
            seen: Default::default(),
            duplicates: 0,
            order_violations: 0,
            corrupt: 0,
            last_tag: None,
            last_at: SimTime::ZERO,
        }),
        installed: RefCell::new(Default::default()),
    });

    // Typed teardown: write off everything outstanding, advance to a
    // fresh channel (flow keys must not be reused — the failed flow's
    // receive window may survive a sender-side-only teardown) and keep
    // going.
    {
        let ctx2 = ctx.clone();
        ctx.sender
            .borrow_mut()
            .set_error_handler(Rc::new(move |sim, e| {
                {
                    let mut s = ctx2.state.borrow_mut();
                    match &e {
                        ClicError::MaxRetriesExceeded { .. } => s.err_mr += 1,
                        ClicError::PeerDead { .. } => s.err_pd += 1,
                        ClicError::StaleEpoch { .. } => s.err_se += 1,
                        other => panic!("unexpected chaos error: {other:?}"),
                    }
                    let written_off = s.outstanding.len();
                    s.failed += written_off;
                    s.outstanding.clear();
                    s.era += 1;
                }
                let ctx3 = ctx2.clone();
                // Continue outside the teardown path.
                sim.schedule_now(move |sim| {
                    let ch = CHAOS_CH_BASE + ctx3.state.borrow().era as u16;
                    chaos_drain(&ctx3, sim, ch);
                    chaos_pump(&ctx3, sim);
                });
            }));
    }

    // Fault actuators.
    for &(at, back) in &plan.crashes {
        crate::lifecycle::schedule_crash(cluster, sim, 1, at);
        crate::lifecycle::schedule_restart(cluster, sim, 1, back);
        // A crash kills the receive chains (port state is kernel memory);
        // forget them, then re-install for the current era on restart.
        let ctx2 = ctx.clone();
        sim.schedule_at(at + SimDuration::from_ns(1), move |_sim| {
            ctx2.installed.borrow_mut().clear();
        });
        let ctx2 = ctx.clone();
        sim.schedule_at(back + SimDuration::from_ns(1), move |sim| {
            let ch = CHAOS_CH_BASE + ctx2.state.borrow().era as u16;
            chaos_drain(&ctx2, sim, ch);
        });
    }
    for &(start, end) in &plan.flaps {
        crate::lifecycle::flap_link(cluster, 0, start, end);
    }

    chaos_drain(&ctx, sim, CHAOS_CH_BASE);
    chaos_pump(&ctx, sim);
    let limit = sim.events_executed() + 400_000_000;
    sim.set_event_limit(limit);
    sim.run();
    let quiesced = sim.events_executed() < limit;

    let state = ctx.state.borrow();
    let log = ctx.log.borrow();
    // The invariants. Quiescence first: every later check assumes the
    // run actually finished.
    assert!(quiesced, "chaos run never quiesced (leaked timers?)");
    assert_eq!(state.next_tag, nmsgs, "every message must be posted");
    assert!(
        state.outstanding.is_empty() && state.confirmed + state.failed == nmsgs,
        "every message must be confirmed or written off by a typed error \
         (confirmed {} + failed {} != posted {})",
        state.confirmed,
        state.failed,
        nmsgs
    );
    assert_eq!(log.duplicates, 0, "a message reached the application twice");
    assert_eq!(log.order_violations, 0, "deliveries left posting order");
    assert_eq!(
        log.corrupt, 0,
        "a corrupted payload reached the application"
    );
    assert!(log.seen.len() <= nmsgs);
    for module in [&ctx.sender, &ctx.receiver] {
        assert_eq!(
            module.borrow().buffered_bytes(),
            0,
            "receive-side buffers stranded after quiescence"
        );
    }
    ChaosOutcome {
        posted: nmsgs,
        confirmed: state.confirmed,
        failed: state.failed,
        delivered: log.seen.len(),
        errors_max_retries: state.err_mr,
        errors_peer_dead: state.err_pd,
        errors_stale_epoch: state.err_se,
        eras: state.era + 1,
        last_delivery: log.last_at.saturating_since(SimTime::ZERO),
        quiesced,
    }
}

/// Outcome of an incast run ([`incast_clic`]).
#[derive(Debug)]
pub struct IncastOutcome {
    /// Concurrent senders.
    pub senders: usize,
    /// Messages delivered (always equals the message count posted — the
    /// workload asserts nothing is lost).
    pub delivered: usize,
    /// Per-message completion time (post → application delivery).
    pub completion: LatencyStats,
    /// Peak receive-side buffered bytes observed at the receiver module,
    /// sampled at every delivery.
    pub peak_buffered_bytes: usize,
    /// First post to last delivery.
    pub elapsed: SimDuration,
}

/// The N→1 incast workload: every node but node 0 posts `per_sender`
/// messages of `size` bytes to node 0 at the same instant, and the
/// receiving application is deliberately slow (`consume_delay` per
/// message), so arrivals pile up in the receiver's CLIC buffers. With a
/// `recv_budget_bytes` configured, the advertised window on ACKs pushes
/// back on the senders and the pile-up stays bounded; without it, the
/// backlog is limited only by `max_pending_bytes` drops and retransmits.
pub fn incast_clic(
    cluster: &Cluster,
    sim: &mut Sim,
    size: usize,
    per_sender: usize,
    consume_delay: SimDuration,
) -> IncastOutcome {
    const CH: u16 = 500;
    let n = cluster.nodes.len();
    assert!(n >= 3, "incast needs at least two senders");
    let expected = (n - 1) * per_sender;
    let receiver = &cluster.nodes[0];
    let pid = receiver.kernel.borrow_mut().processes.spawn("incast-rx");
    let port = Rc::new(ClicPort::bind(&receiver.clic(), pid, CH));
    // (delivered, last delivery time, completion stats, peak buffer).
    struct RxState {
        delivered: usize,
        last: SimTime,
        completion: LatencyStats,
        peak: usize,
    }
    let rx: Rc<RefCell<RxState>> = Rc::new(RefCell::new(RxState {
        delivered: 0,
        last: SimTime::ZERO,
        completion: LatencyStats::new(),
        peak: 0,
    }));
    let start = sim.now();
    fn sink(
        port: Rc<ClicPort>,
        module: Rc<RefCell<clic_core::ClicModule>>,
        sim: &mut Sim,
        rx: Rc<RefCell<RxState>>,
        start: SimTime,
        delay: SimDuration,
        left: usize,
    ) {
        if left == 0 {
            return;
        }
        let p = port.clone();
        port.recv(sim, move |sim, _msg| {
            {
                let mut r = rx.borrow_mut();
                r.delivered += 1;
                r.last = sim.now();
                r.completion.record(sim.now().saturating_since(start));
                r.peak = r.peak.max(module.borrow().buffered_bytes());
            }
            // The slow consumer: digest before asking for the next one.
            sim.schedule_in(delay, move |sim| {
                sink(p, module, sim, rx, start, delay, left - 1)
            });
        });
    }
    sink(
        port,
        receiver.clic(),
        sim,
        rx.clone(),
        start,
        consume_delay,
        expected,
    );
    let data = payload(size);
    let dst = receiver.mac;
    for node in &cluster.nodes[1..] {
        let pid = node.kernel.borrow_mut().processes.spawn("incast-tx");
        let tx = ClicPort::bind(&node.clic(), pid, CH + 1);
        for _ in 0..per_sender {
            tx.send(sim, dst, CH, data.clone());
        }
    }
    let limit = sim.events_executed() + 400_000_000;
    sim.set_event_limit(limit);
    sim.run();
    assert!(sim.events_executed() < limit, "incast run never quiesced");
    let rx = rx.borrow();
    assert_eq!(rx.delivered, expected, "incast must deliver everything");
    IncastOutcome {
        senders: n - 1,
        delivered: rx.delivered,
        completion: rx.completion.clone(),
        peak_buffered_bytes: rx.peak,
        elapsed: rx.last.saturating_since(start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClusterConfig, Topology};
    use clic_ethernet::LossModel;

    fn chaos_pair(loss: f64) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.loss = if loss > 0.0 {
            LossModel::Bernoulli(loss)
        } else {
            LossModel::None
        };
        let clic = cfg.node.clic.as_mut().unwrap();
        clic.keepalive_interval = Some(SimDuration::from_us(500));
        clic.peer_dead_timeout = SimDuration::from_ms(5);
        clic.epoch_guard = true;
        cfg
    }

    #[test]
    fn chaos_soak_exactly_once_or_typed_error() {
        let cfg = chaos_pair(0.005);
        let cluster = Cluster::build(&cfg);
        let mut sim = Sim::new(11);
        let plan = ChaosPlan::draw(11, 2, 2);
        let out = chaos_clic(&cluster, &mut sim, 2048, 60, &plan);
        // The hard invariants are asserted inside chaos_clic; check the
        // schedule actually exercised the machinery.
        assert_eq!(out.posted, 60);
        assert_eq!(out.confirmed + out.failed, 60);
        assert!(out.quiesced);
        assert!(
            out.eras > 1,
            "two crash windows should force at least one typed teardown: {out:?}"
        );
        assert!(out.errors_peer_dead + out.errors_stale_epoch > 0);
    }

    #[test]
    fn chaos_soak_invariants_hold_with_congestion_control() {
        // The PR 5 invariants (confirmed+failed==posted with typed errors
        // only, exactly-once in-order delivery per era, timers quiesce,
        // buffered_bytes()==0 — all asserted inside chaos_clic) must
        // survive the congestion window being active. Route the pair
        // through a marking switch so the full mark→echo→cwnd loop runs
        // inside the crash/flap/loss schedule, not just the
        // loss-as-congestion fallback.
        let mut cfg = chaos_pair(0.005);
        cfg.topology = Topology::Switched;
        cfg.mark_threshold = Some(1);
        cfg.node.clic.as_mut().unwrap().congestion = Some(clic_core::CongestionConfig::dctcp());
        let run = || {
            let cluster = Cluster::build(&cfg);
            let mut sim = Sim::new(11);
            sim.metrics = clic_sim::Metrics::enabled();
            let plan = ChaosPlan::draw(11, 2, 2);
            let out = chaos_clic(&cluster, &mut sim, 2048, 60, &plan);
            assert_eq!(out.posted, 60);
            assert_eq!(out.confirmed + out.failed, 60);
            assert!(out.quiesced);
            // The congestion machinery must actually have engaged: the
            // switch marked and the sender processed echoes.
            assert!(
                sim.metrics.counter("eth.switch.ecn_marks") > 0,
                "switch never marked"
            );
            assert!(
                sim.metrics.counter("clic.ecn_echoes") > 0,
                "sender never saw an echo"
            );
            format!("{out:?}")
        };
        // And the soak stays bit-deterministic with cwnd active.
        assert_eq!(run(), run());
    }

    #[test]
    fn chaos_soak_is_deterministic() {
        let run = || {
            let cluster = Cluster::build(&chaos_pair(0.01));
            let mut sim = Sim::new(7);
            let plan = ChaosPlan::draw(7, 1, 1);
            format!("{:?}", chaos_clic(&cluster, &mut sim, 1024, 40, &plan))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn chaos_clean_run_confirms_everything() {
        // No faults at all: every message confirms, one era, no errors.
        let cluster = Cluster::build(&chaos_pair(0.0));
        let mut sim = Sim::new(5);
        let plan = ChaosPlan {
            crashes: vec![],
            flaps: vec![],
        };
        let out = chaos_clic(&cluster, &mut sim, 4096, 30, &plan);
        assert_eq!(out.confirmed, 30);
        assert_eq!(out.failed, 0);
        assert_eq!(out.delivered, 30);
        assert_eq!(out.eras, 1);
    }

    fn incast_config(nodes: usize, budget: Option<usize>) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = nodes;
        cfg.topology = Topology::Switched;
        let clic = cfg.node.clic.as_mut().unwrap();
        // A modest send window so the initial (pre-first-ACK) burst does
        // not dwarf the budget under test.
        clic.window = 16;
        clic.recv_budget_bytes = budget;
        cfg
    }

    #[test]
    fn incast_budget_bounds_receiver_buffer() {
        const BUDGET: usize = 64 * 1024;
        // 4 senders × 256 KiB into one deliberately slow consumer.
        let run = |budget| {
            let cluster = Cluster::build(&incast_config(5, budget));
            let mut sim = Sim::new(9);
            incast_clic(&cluster, &mut sim, 8 * 1024, 32, SimDuration::from_us(150))
        };
        let unbounded = run(None);
        let bounded = run(Some(BUDGET));
        assert_eq!(unbounded.delivered, 128);
        assert_eq!(bounded.delivered, 128);
        assert!(
            2 * bounded.peak_buffered_bytes < unbounded.peak_buffered_bytes,
            "budget must push back: bounded {} vs unbounded {}",
            bounded.peak_buffered_bytes,
            unbounded.peak_buffered_bytes
        );
        // The budget is a soft bound: packets already in flight when the
        // buffer crosses it still land, so allow a window per sender.
        assert!(
            bounded.peak_buffered_bytes <= BUDGET + 4 * 16 * 1500,
            "peak {} exceeds budget + in-flight slack",
            bounded.peak_buffered_bytes
        );
    }

    fn fabric_cfg(nodes: usize, topology: Topology) -> ClusterConfig {
        let mut cfg = ClusterConfig::paper_pair();
        cfg.nodes = nodes;
        cfg.topology = topology;
        cfg
    }

    #[test]
    fn collective_scale_host_vs_nic_on_leaf_spine() {
        let cluster = Cluster::build(&fabric_cfg(16, Topology::LeafSpine));
        let mut sim = Sim::new(3);
        let host = collective_scale(&cluster, &mut sim, false);
        let cluster = Cluster::build(&fabric_cfg(16, Topology::LeafSpine));
        let mut sim = Sim::new(3);
        let nic = collective_scale(&cluster, &mut sim, true);
        assert_eq!(host.nodes, 16);
        assert_eq!(host.allreduce_value, 136);
        assert_eq!(nic.allreduce_value, 136);
        assert!(
            nic.barrier < host.barrier,
            "NIC tree barrier {:?} must beat the linear host barrier {:?}",
            nic.barrier,
            host.barrier
        );
        assert!(nic.allreduce < host.allreduce);
    }

    #[test]
    fn collective_scale_works_on_fat_tree() {
        let cluster = Cluster::build(&fabric_cfg(64, Topology::FatTree));
        let fabric = cluster.fabric.as_ref().unwrap();
        assert_eq!(fabric.kind_name(), "fat-tree");
        assert!(fabric.switch_count() > 1);
        let mut sim = Sim::new(4);
        let nic = collective_scale(&cluster, &mut sim, true);
        assert_eq!(nic.allreduce_value, 64 * 65 / 2);
        assert_eq!(fabric.total_switch_drops(), 0, "no tail drops at this load");
    }

    #[test]
    fn collective_scale_is_deterministic() {
        let run = || {
            let cluster = Cluster::build(&fabric_cfg(32, Topology::LeafSpine));
            let mut sim = Sim::new(9);
            format!("{:?}", collective_scale(&cluster, &mut sim, true))
        };
        assert_eq!(run(), run());
    }
}
