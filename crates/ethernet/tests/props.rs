//! Property-based tests for frames and links.

use bytes::Bytes;
use clic_ethernet::{EtherType, Frame, Link, LinkEnd, MacAddr, ETH_MIN_PAYLOAD};
use clic_sim::Sim;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    (any::<u32>(), any::<u8>()).prop_map(|(node, nic)| MacAddr::for_node(node, nic))
}

proptest! {
    /// Serialization roundtrip preserves header fields and payload for any
    /// payload at least the Ethernet minimum (shorter ones gain padding by
    /// design).
    #[test]
    fn frame_roundtrip(
        dst in arb_mac(),
        src in arb_mac(),
        ethertype in 0x0600u16..=0xffff,
        payload in proptest::collection::vec(any::<u8>(), ETH_MIN_PAYLOAD..4000),
    ) {
        let f = Frame::new(dst, src, EtherType(ethertype), Bytes::from(payload));
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        prop_assert_eq!(parsed, f);
    }

    /// Short payloads come back zero-padded to the minimum, prefix intact.
    #[test]
    fn short_frame_padding(payload in proptest::collection::vec(any::<u8>(), 0..ETH_MIN_PAYLOAD)) {
        let f = Frame::new(
            MacAddr::for_node(1, 0),
            MacAddr::for_node(2, 0),
            EtherType::CLIC,
            Bytes::from(payload.clone()),
        );
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        prop_assert_eq!(parsed.payload.len(), ETH_MIN_PAYLOAD);
        prop_assert_eq!(&parsed.payload[..payload.len()], &payload[..]);
        prop_assert!(parsed.payload[payload.len()..].iter().all(|&b| b == 0));
    }

    /// Wire size is strictly larger than the payload and at least the
    /// 84-byte minimum wire occupancy.
    #[test]
    fn wire_size_bounds(len in 0usize..9_000) {
        let f = Frame::new(
            MacAddr::for_node(1, 0),
            MacAddr::for_node(2, 0),
            EtherType::IPV4,
            Bytes::from(vec![0u8; len]),
        );
        prop_assert!(f.wire_bytes() >= 84);
        prop_assert!(f.wire_bytes() > len);
        prop_assert_eq!(f.wire_bytes(), f.frame_bytes() + 20);
    }

    /// A lossless link delivers every frame exactly once, in order,
    /// regardless of sizes and inter-send gaps.
    #[test]
    fn link_delivers_all_in_order(
        sizes in proptest::collection::vec(1usize..1500, 1..40),
        gaps in proptest::collection::vec(0u64..20_000, 1..40),
    ) {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        let got: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        link.borrow_mut().attach(LinkEnd::B, Rc::new(move |_s: &mut Sim, f: Frame| {
            g.borrow_mut().push(f.trace as usize);
        }));
        let n = sizes.len();
        for (i, &size) in sizes.iter().enumerate() {
            let link2 = link.clone();
            let delay = gaps.get(i).copied().unwrap_or(0) * i as u64;
            let f = Frame::new(
                MacAddr::for_node(2, 0),
                MacAddr::for_node(1, 0),
                EtherType::CLIC,
                Bytes::from(vec![0u8; size]),
            )
            .with_trace(i as u64 + 1);
            sim.schedule_at(clic_sim::SimTime::from_ns(delay), move |s| {
                Link::transmit(&link2, s, LinkEnd::A, f);
            });
        }
        sim.run();
        let got = got.borrow();
        prop_assert_eq!(got.len(), n);
        // FIFO per direction: traces are the (sorted-by-send-time) order.
        let mut expected: Vec<(u64, usize)> = (0..n)
            .map(|i| (gaps.get(i).copied().unwrap_or(0) * i as u64, i + 1))
            .collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let expected: Vec<usize> = expected.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(&*got, &expected[..]);
    }
}
