//! Store-and-forward Ethernet switch.
//!
//! Learns source MACs, forwards unicast to the learned port, floods
//! broadcast/multicast/unknown destinations, and tail-drops when an output
//! port's transmit backlog exceeds its queue limit. A fixed forwarding
//! latency models the lookup + store-and-forward pipeline of the early-2000s
//! GbE switches in the paper's testbed.
//!
//! For multi-switch fabrics (see [`crate::topology`]) the switch also
//! supports statically *programmed* routes ([`Switch::program_mac`]) that
//! take precedence over learning, a restricted flood membership
//! ([`Switch::set_flood_ports`]) so broadcast/multicast follow a loop-free
//! spanning tree instead of storming redundant trunks, and trunk-port
//! marking ([`Switch::mark_trunk`]) feeding the `eth.fabric.*` counters.
//! None of these change behaviour until a fabric builder calls them — a
//! standalone switch forwards exactly as before.
//!
//! The switch can additionally mark congestion instead of only dropping:
//! [`Switch::try_set_mark_threshold`] arms an ECN-style scheme where a CLIC
//! frame enqueued while the output backlog is at or above the threshold has
//! its congestion-experienced bit set (bit 7 of the first payload byte, the
//! high bit of the CLIC packet-type octet) rather than being dropped. Off by
//! default — an unarmed switch forwards frames byte-identically.

use crate::frame::Frame;
use crate::link::{Link, LinkEnd};
use crate::mac::{EtherType, MacAddr};
use bytes::Bytes;
use clic_sim::catalog::{counter_id, gauge_id, histogram_id};
use clic_sim::{Layer, MetricId, Sim, SimDuration};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::rc::Rc;

/// Interned metric ids — the forwarding path records per frame, so names
/// are resolved against the catalog at compile time.
const M_QUEUE_DEPTH_G: MetricId = gauge_id("eth.switch.queue_depth");
const M_QUEUE_DEPTH_H: MetricId = histogram_id("eth.switch.queue_depth");
const M_DROPS: MetricId = counter_id("eth.switch.drops");
const M_ECN_MARKS: MetricId = counter_id("eth.switch.ecn_marks");
const M_TRUNK_TX: MetricId = counter_id("eth.fabric.trunk_tx_frames");
const M_FLOOD_PRUNED: MetricId = counter_id("eth.fabric.flood_pruned");

/// Congestion-experienced bit: the high bit of the CLIC packet-type octet
/// (payload byte 0 of a CLIC-EtherType frame). Mirrors `clic_core::CE_BIT`;
/// the ethernet crate sits below clic-core in the dependency graph, so the
/// wire-format constant is restated here rather than imported.
const CE_BIT: u8 = 0x80;

/// Switch configuration rejected at set-time.
///
/// The ethernet layer's analogue of `ClicError::Config`: construction-time
/// validation so a nonsensical fabric fails loudly instead of silently
/// never marking (threshold above capacity means every would-be mark is a
/// tail drop first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchConfigError(String);

impl fmt::Display for SwitchConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "switch config: {}", self.0)
    }
}

impl std::error::Error for SwitchConfigError {}

struct Port {
    link: Rc<RefCell<Link>>,
    end: LinkEnd,
}

/// A learning, flooding, tail-dropping switch.
pub struct Switch {
    ports: Vec<Port>,
    table: BTreeMap<MacAddr, usize>,
    static_table: BTreeMap<MacAddr, usize>,
    flood_ports: Option<BTreeSet<usize>>,
    trunk_ports: BTreeSet<usize>,
    forwarding_delay: SimDuration,
    queue_limit: usize,
    mark_threshold: Option<usize>,
    frames_forwarded: u64,
    frames_flooded: u64,
    frames_dropped: u64,
    frames_marked: u64,
    flood_pruned: u64,
}

impl Switch {
    /// Create a switch. `forwarding_delay` is charged per forwarded frame;
    /// `queue_limit` bounds each output port's transmit backlog (frames).
    pub fn new(forwarding_delay: SimDuration, queue_limit: usize) -> Rc<RefCell<Switch>> {
        assert!(queue_limit > 0);
        Rc::new(RefCell::new(Switch {
            ports: Vec::new(),
            table: BTreeMap::new(),
            static_table: BTreeMap::new(),
            flood_ports: None,
            trunk_ports: BTreeSet::new(),
            forwarding_delay,
            queue_limit,
            mark_threshold: None,
            frames_forwarded: 0,
            frames_flooded: 0,
            frames_dropped: 0,
            frames_marked: 0,
            flood_pruned: 0,
        }))
    }

    /// Typical early-2000s GbE store-and-forward switch: ~4 µs forwarding,
    /// 128-frame output queues.
    pub fn gigabit_default() -> Rc<RefCell<Switch>> {
        Self::new(SimDuration::from_us(4), 128)
    }

    /// Attach the switch to `end` of `link` and return the port index. The
    /// switch registers itself as that link end's receive handler.
    pub fn attach_port(
        switch: &Rc<RefCell<Switch>>,
        link: Rc<RefCell<Link>>,
        end: LinkEnd,
    ) -> usize {
        let idx = switch.borrow().ports.len();
        let sw = switch.clone();
        link.borrow_mut().attach(
            end,
            Rc::new(move |sim: &mut Sim, frame: Frame| {
                Switch::on_frame(&sw, sim, idx, frame);
            }),
        );
        switch.borrow_mut().ports.push(Port { link, end });
        idx
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Frames forwarded to a single learned port.
    pub fn frames_forwarded(&self) -> u64 {
        self.frames_forwarded
    }

    /// Frames flooded to all-but-ingress ports.
    pub fn frames_flooded(&self) -> u64 {
        self.frames_flooded
    }

    /// Frames dropped at full output queues.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Arm ECN-style marking: a CLIC frame enqueued while the output backlog
    /// is at or above `threshold` frames gets its congestion-experienced bit
    /// set instead of passing through untouched. The threshold must leave
    /// room below the queue limit — marking a frame the queue is about to
    /// tail-drop anyway signals nothing.
    pub fn try_set_mark_threshold(&mut self, threshold: usize) -> Result<(), SwitchConfigError> {
        if threshold == 0 {
            return Err(SwitchConfigError(
                "mark_threshold must be at least 1 (0 would mark every frame)".into(),
            ));
        }
        if threshold >= self.queue_limit {
            return Err(SwitchConfigError(format!(
                "mark_threshold ({threshold}) must be below queue_limit ({}): \
                 at or above the limit the frame is tail-dropped, never marked",
                self.queue_limit
            )));
        }
        self.mark_threshold = Some(threshold);
        Ok(())
    }

    /// Configured ECN mark threshold, if armed.
    pub fn mark_threshold(&self) -> Option<usize> {
        self.mark_threshold
    }

    /// CLIC frames that had their congestion-experienced bit set.
    pub fn frames_marked(&self) -> u64 {
        self.frames_marked
    }

    /// Learned location of a MAC, if any.
    pub fn learned_port(&self, mac: MacAddr) -> Option<usize> {
        self.table.get(&mac).copied()
    }

    /// Install a static forwarding entry: unicast frames for `mac` egress
    /// `port`, regardless of anything source-MAC learning picks up. Fabric
    /// builders program the whole host table up front so forwarding is a
    /// pure function of the topology (deterministic ECMP), never of traffic
    /// history.
    pub fn program_mac(&mut self, mac: MacAddr, port: usize) {
        assert!(port < self.ports.len(), "program_mac: no such port");
        assert!(mac.is_unicast(), "static routes are per-station");
        self.static_table.insert(mac, port);
    }

    /// Statically programmed route for a MAC, if any.
    pub fn static_route(&self, mac: MacAddr) -> Option<usize> {
        self.static_table.get(&mac).copied()
    }

    /// Restrict flooding (broadcast/multicast/unknown unicast) to `ports`.
    /// A fabric builder passes the host ports plus the trunk ports on a
    /// spanning tree of the switch graph, which makes flooding loop-free by
    /// construction — redundant trunks never replicate a flood. Copies that
    /// the membership suppresses are counted in [`Switch::flood_pruned`].
    pub fn set_flood_ports(&mut self, ports: &[usize]) {
        assert!(
            ports.iter().all(|&p| p < self.ports.len()),
            "set_flood_ports: no such port"
        );
        self.flood_ports = Some(ports.iter().copied().collect());
    }

    /// Mark `port` as a switch-to-switch trunk so fabric traffic shows up
    /// in the `eth.fabric.trunk_tx_frames` counter.
    pub fn mark_trunk(&mut self, port: usize) {
        assert!(port < self.ports.len(), "mark_trunk: no such port");
        self.trunk_ports.insert(port);
    }

    /// Flood copies suppressed by the restricted flood membership.
    pub fn flood_pruned(&self) -> u64 {
        self.flood_pruned
    }

    fn on_frame(switch: &Rc<RefCell<Switch>>, sim: &mut Sim, ingress: usize, frame: Frame) {
        let delay = {
            let mut sw = switch.borrow_mut();
            sw.table.insert(frame.src, ingress);
            sw.forwarding_delay
        };
        let sw2 = switch.clone();
        sim.schedule_in(delay, move |sim| {
            Switch::forward(&sw2, sim, ingress, frame);
        });
    }

    fn forward(switch: &Rc<RefCell<Switch>>, sim: &mut Sim, ingress: usize, frame: Frame) {
        enum Decision {
            Unicast(usize),
            Flood(Vec<usize>),
            Drop,
        }
        let (decision, pruned) = {
            let sw = switch.borrow();
            let flood = || {
                let eligible: Vec<usize> = (0..sw.ports.len())
                    .filter(|&p| {
                        p != ingress && sw.flood_ports.as_ref().is_none_or(|set| set.contains(&p))
                    })
                    .collect();
                let pruned = sw.ports.len() - 1 - eligible.len();
                (Decision::Flood(eligible), pruned as u64)
            };
            if frame.dst.is_unicast() {
                // Statically programmed routes (fabric provisioning) win
                // over anything learned from traffic.
                let port = sw
                    .static_table
                    .get(&frame.dst)
                    .or_else(|| sw.table.get(&frame.dst))
                    .copied();
                match port {
                    Some(p) if p == ingress => (Decision::Drop, 0),
                    Some(p) => (Decision::Unicast(p), 0),
                    None => flood(),
                }
            } else {
                flood()
            }
        };
        if pruned > 0 {
            switch.borrow_mut().flood_pruned += pruned;
            sim.metrics.counter_add_id(M_FLOOD_PRUNED, pruned);
        }
        match decision {
            Decision::Drop => {}
            Decision::Unicast(p) => {
                switch.borrow_mut().frames_forwarded += 1;
                Switch::egress(switch, sim, p, frame);
            }
            Decision::Flood(ports) => {
                switch.borrow_mut().frames_flooded += 1;
                for p in ports {
                    Switch::egress(switch, sim, p, frame.clone());
                }
            }
        }
    }

    fn egress(switch: &Rc<RefCell<Switch>>, sim: &mut Sim, port: usize, frame: Frame) {
        let (link, end, depth, full, trunk, mark) = {
            let sw = switch.borrow();
            let p = &sw.ports[port];
            let depth = p.link.borrow().tx_backlog(p.end);
            (
                p.link.clone(),
                p.end,
                depth,
                depth >= sw.queue_limit,
                sw.trunk_ports.contains(&port),
                sw.mark_threshold.is_some_and(|t| depth >= t),
            )
        };
        if trunk {
            sim.metrics.counter_inc_id(M_TRUNK_TX);
        }
        // Queue occupancy at the instant of the forwarding decision: the
        // peak gauge is the congestion headline, the histogram its shape,
        // and the timeline series its trajectory over simulated time.
        sim.metrics.gauge_set_id(M_QUEUE_DEPTH_G, depth as i64);
        sim.metrics.observe_id(M_QUEUE_DEPTH_H, depth as u64);
        sim.timeline.gauge(sim.now(), M_QUEUE_DEPTH_G, depth as i64);
        if full {
            switch.borrow_mut().frames_dropped += 1;
            sim.metrics.counter_inc_id(M_DROPS);
            sim.trace
                .instant(sim.now(), Layer::Eth, "switch_drop", frame.trace);
            return;
        }
        let frame = if mark && Switch::markable(&frame) {
            switch.borrow_mut().frames_marked += 1;
            sim.metrics.counter_inc_id(M_ECN_MARKS);
            sim.timeline.counter(sim.now(), M_ECN_MARKS, 1);
            sim.trace
                .instant(sim.now(), Layer::Eth, "switch_mark", frame.trace);
            Switch::set_ce(frame)
        } else {
            frame
        };
        Link::transmit(&link, sim, end, frame);
    }

    /// Whether the frame is a data-bearing CLIC packet the marking scheme
    /// applies to. ACKs (ptype 2) are the feedback channel itself and
    /// node-internal packets (ptype 5) never cross a switch in earnest, so
    /// neither carries a mark; everything else CLIC does.
    fn markable(frame: &Frame) -> bool {
        if frame.ethertype != EtherType::CLIC {
            return false;
        }
        matches!(
            frame.payload.first().map(|b| b & !CE_BIT),
            Some(1 | 3 | 4 | 6)
        )
    }

    /// Return the frame with its congestion-experienced bit set. Ethernet
    /// payloads are immutable shared buffers, so a marked frame pays one
    /// payload copy — the simulated analogue of the store-and-forward
    /// switch rewriting the octet as it serializes the frame out.
    fn set_ce(mut frame: Frame) -> Frame {
        let mut bytes = frame.payload.to_vec();
        bytes[0] |= CE_BIT;
        frame.payload = Bytes::from(bytes);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::EtherType;
    use bytes::Bytes;
    use clic_sim::SimTime;

    /// Three stations on a switch; station i is end A of link i, the switch
    /// holds end B.
    struct Net {
        links: Vec<Rc<RefCell<Link>>>,
        switch: Rc<RefCell<Switch>>,
        rx: Vec<Rc<RefCell<Vec<(SimTime, Frame)>>>>,
    }

    fn mk_net(n: usize) -> Net {
        let switch = Switch::new(SimDuration::from_us(4), 4);
        let mut links = Vec::new();
        let mut rx = Vec::new();
        for _ in 0..n {
            let link = Link::new(1_000_000_000, SimDuration::ZERO);
            let log: Rc<RefCell<Vec<(SimTime, Frame)>>> = Rc::new(RefCell::new(Vec::new()));
            let l = log.clone();
            link.borrow_mut().attach(
                LinkEnd::A,
                Rc::new(move |sim: &mut Sim, f: Frame| {
                    l.borrow_mut().push((sim.now(), f));
                }),
            );
            Switch::attach_port(&switch, link.clone(), LinkEnd::B);
            links.push(link);
            rx.push(log);
        }
        Net { links, switch, rx }
    }

    fn station(i: usize) -> MacAddr {
        MacAddr::for_node(i as u32, 0)
    }

    fn send(net: &Net, sim: &mut Sim, from: usize, dst: MacAddr, tag: u8) {
        let f = Frame::new(
            dst,
            station(from),
            EtherType::CLIC,
            Bytes::from(vec![tag; 100]),
        );
        Link::transmit(&net.links[from], sim, LinkEnd::A, f);
    }

    #[test]
    fn unknown_unicast_floods_then_learns() {
        let mut sim = Sim::new(0);
        let net = mk_net(3);
        // 0 -> 1: dst unknown, flood to 1 and 2.
        send(&net, &mut sim, 0, station(1), 1);
        sim.run();
        assert_eq!(net.rx[1].borrow().len(), 1);
        assert_eq!(net.rx[2].borrow().len(), 1);
        assert_eq!(net.rx[0].borrow().len(), 0);
        assert_eq!(net.switch.borrow().learned_port(station(0)), Some(0));

        // 1 -> 0: dst learned, unicast only to port 0.
        send(&net, &mut sim, 1, station(0), 2);
        sim.run();
        assert_eq!(net.rx[0].borrow().len(), 1);
        assert_eq!(net.rx[2].borrow().len(), 1, "no second flood to 2");
        assert_eq!(net.switch.borrow().frames_forwarded(), 1);
        assert_eq!(net.switch.borrow().frames_flooded(), 1);
    }

    #[test]
    fn broadcast_floods_all_but_ingress() {
        let mut sim = Sim::new(0);
        let net = mk_net(4);
        send(&net, &mut sim, 2, MacAddr::BROADCAST, 9);
        sim.run();
        for (i, log) in net.rx.iter().enumerate() {
            let expect = usize::from(i != 2);
            assert_eq!(log.borrow().len(), expect, "port {i}");
        }
    }

    #[test]
    fn multicast_floods() {
        let mut sim = Sim::new(0);
        let net = mk_net(3);
        send(&net, &mut sim, 0, MacAddr::multicast_group(5), 3);
        sim.run();
        assert_eq!(net.rx[1].borrow().len(), 1);
        assert_eq!(net.rx[2].borrow().len(), 1);
    }

    #[test]
    fn frame_to_ingress_port_is_dropped() {
        let mut sim = Sim::new(0);
        let net = mk_net(2);
        // Teach the switch where station 0 lives.
        send(&net, &mut sim, 0, station(1), 1);
        sim.run();
        // Station 0 sends to itself (hairpin): learned on same port — drop.
        send(&net, &mut sim, 0, station(0), 2);
        sim.run();
        assert_eq!(net.rx[0].borrow().len(), 0);
    }

    #[test]
    fn forwarding_delay_applied() {
        let mut sim = Sim::new(0);
        let net = mk_net(2);
        send(&net, &mut sim, 0, station(1), 1);
        sim.run();
        // 100 B payload -> 138 wire bytes = 1104 ns per hop; store-and-
        // forward: arrive at 1104, +4000 forwarding, +1104 egress = 6208.
        assert_eq!(net.rx[1].borrow()[0].0, SimTime::from_ns(6_208));
    }

    #[test]
    fn payload_integrity_through_switch() {
        let mut sim = Sim::new(0);
        let net = mk_net(2);
        let payload = Bytes::from((0..=255u8).collect::<Vec<_>>());
        let f = Frame::new(station(1), station(0), EtherType::CLIC, payload.clone());
        Link::transmit(&net.links[0], &mut sim, LinkEnd::A, f);
        sim.run();
        assert_eq!(net.rx[1].borrow()[0].1.payload, payload);
    }

    #[test]
    fn static_route_beats_learning() {
        let mut sim = Sim::new(0);
        let net = mk_net(3);
        // Learning says station 1 is on port 1 …
        send(&net, &mut sim, 1, station(2), 1);
        sim.run();
        assert_eq!(net.switch.borrow().learned_port(station(1)), Some(1));
        // … but a static entry pins it to port 2: the frame follows the
        // programmed route, not the learned one.
        net.switch.borrow_mut().program_mac(station(1), 2);
        assert_eq!(net.switch.borrow().static_route(station(1)), Some(2));
        send(&net, &mut sim, 0, station(1), 2);
        sim.run();
        assert_eq!(net.rx[2].borrow().len(), 2, "flood + static route");
        assert_eq!(net.rx[1].borrow().len(), 0);
    }

    #[test]
    fn flood_membership_prunes_ports() {
        let mut sim = Sim::new(0);
        let net = mk_net(4);
        // Only ports 1 and 2 may flood.
        net.switch.borrow_mut().set_flood_ports(&[1, 2]);
        send(&net, &mut sim, 0, MacAddr::BROADCAST, 7);
        sim.run();
        assert_eq!(net.rx[1].borrow().len(), 1);
        assert_eq!(net.rx[2].borrow().len(), 1);
        assert_eq!(net.rx[3].borrow().len(), 0, "pruned port stays silent");
        assert_eq!(net.switch.borrow().flood_pruned(), 1);
    }

    /// Occupy the switch→station direction of `link` with `n` jumbo frames.
    /// Each takes 72.3 µs to serialize, so a 100 B test frame egressing at
    /// ~5.1 µs sees an output backlog of exactly `n` — a deterministic way
    /// to pin the queue depth at the instant of the marking decision.
    fn preload_egress(net: &Net, sim: &mut Sim, port: usize, n: usize) {
        for _ in 0..n {
            let jumbo = Frame::new(
                station(port),
                station(9),
                EtherType::CLIC,
                Bytes::from(vec![0u8; 9000]),
            );
            Link::transmit(&net.links[port], sim, LinkEnd::B, jumbo);
        }
    }

    /// The single 100 B test frame out of a receive log that also holds
    /// preloaded jumbos.
    fn test_frame(net: &Net, port: usize) -> Option<Frame> {
        let log = net.rx[port].borrow();
        let mut hits = log.iter().filter(|(_, f)| f.payload.len() == 100);
        let found = hits.next().map(|(_, f)| f.clone());
        assert!(hits.next().is_none(), "expected at most one test frame");
        found
    }

    #[test]
    fn mark_boundary_is_depth_at_least_threshold() {
        // queue_limit 4, threshold 2: depth 1 passes clean, depth 2 (exactly
        // the threshold) marks, depth 3 still marks.
        for (preload, expect_marked) in [(1usize, false), (2, true), (3, true)] {
            let mut sim = Sim::new(0);
            let net = mk_net(2);
            net.switch.borrow_mut().try_set_mark_threshold(2).unwrap();
            preload_egress(&net, &mut sim, 1, preload);
            send(&net, &mut sim, 0, station(1), 1); // ptype 1 = Data
            sim.run();
            let f = test_frame(&net, 1).expect("frame delivered");
            assert_eq!(f.payload[0] & 0x80 != 0, expect_marked, "preload={preload}");
            assert_eq!(
                net.switch.borrow().frames_marked(),
                u64::from(expect_marked),
                "preload={preload}"
            );
        }
    }

    #[test]
    fn tail_drop_at_exactly_capacity_beats_marking() {
        // Depth 4 == queue_limit: the frame is dropped, never marked — the
        // off-by-one between "mark zone" [threshold, limit) and the drop at
        // the limit itself.
        let mut sim = Sim::new(0);
        let net = mk_net(2);
        net.switch.borrow_mut().try_set_mark_threshold(2).unwrap();
        preload_egress(&net, &mut sim, 1, 4);
        send(&net, &mut sim, 0, station(1), 1);
        sim.run();
        assert_eq!(net.switch.borrow().frames_dropped(), 1);
        assert_eq!(net.switch.borrow().frames_marked(), 0);
        assert!(test_frame(&net, 1).is_none(), "dropped frame not delivered");
    }

    #[test]
    fn acks_cross_congested_queue_unmarked() {
        // ptype 2 (Ack) is the feedback channel — it rides through the mark
        // zone untouched so echoes are never self-suppressed.
        let mut sim = Sim::new(0);
        let net = mk_net(2);
        net.switch.borrow_mut().try_set_mark_threshold(2).unwrap();
        preload_egress(&net, &mut sim, 1, 3);
        send(&net, &mut sim, 0, station(1), 2); // ptype 2 = Ack
        sim.run();
        let f = test_frame(&net, 1).expect("ack delivered");
        assert_eq!(f.payload[0], 2, "ack payload untouched");
        assert_eq!(net.switch.borrow().frames_marked(), 0);
    }

    #[test]
    fn mark_threshold_rejects_degenerate_values() {
        let sw = Switch::new(SimDuration::from_us(4), 4);
        assert!(sw.borrow_mut().try_set_mark_threshold(0).is_err());
        let at_limit = sw.borrow_mut().try_set_mark_threshold(4).unwrap_err();
        assert!(at_limit.to_string().contains("queue_limit"));
        assert!(sw.borrow_mut().try_set_mark_threshold(5).is_err());
        assert_eq!(
            sw.borrow().mark_threshold(),
            None,
            "rejected sets leave it unarmed"
        );
        sw.borrow_mut().try_set_mark_threshold(3).unwrap();
        assert_eq!(sw.borrow().mark_threshold(), Some(3));
    }

    #[test]
    fn output_queue_tail_drop() {
        let mut sim = Sim::new(0);
        let net = mk_net(3); // queue_limit = 4
                             // Teach the switch all locations first.
        for i in 0..3 {
            send(&net, &mut sim, i, station((i + 1) % 3), 0);
        }
        sim.run();
        let before = net.rx[1].borrow().len();
        // Two ingress ports blast the same egress port at twice its drain
        // rate: the 4-frame output queue overflows.
        for _ in 0..20 {
            for &src in &[0usize, 2] {
                let f = Frame::new(
                    station(1),
                    station(src),
                    EtherType::CLIC,
                    Bytes::from(vec![1u8; 1500]),
                );
                Link::transmit(&net.links[src], &mut sim, LinkEnd::A, f);
            }
        }
        sim.run();
        let delivered = (net.rx[1].borrow().len() - before) as u64;
        let dropped = net.switch.borrow().frames_dropped();
        assert_eq!(delivered + dropped, 40);
        assert!(dropped > 0, "expected tail drops, delivered={delivered}");
    }
}
