//! Multi-switch fabric topologies.
//!
//! Composes the existing [`Switch`] + [`Link`] machinery into the two
//! fabric shapes production clusters actually deploy:
//!
//! * **leaf–spine** — every leaf (top-of-rack) switch trunks to every
//!   spine; any host pair is at most `leaf → spine → leaf` apart,
//! * **fat-tree** — the 3-tier Clos variant (edge → aggregation → core)
//!   that scales past what a single spine tier can port out.
//!
//! Both shapes have redundant switch-to-switch paths, which plain learning
//! Ethernet cannot tolerate: flooding a frame over a cyclic switch graph
//! replicates it forever (a frame storm). The builder therefore provisions
//! the fabric the way a fabric controller would:
//!
//! * **unicast** is *statically routed*: for every host MAC, every switch
//!   gets a [`Switch::program_mac`] entry along a shortest path, choosing
//!   among equal-cost trunks with the deterministic [`FlowHash`] selector
//!   from [`crate::bonding`] (ECMP keyed on destination MAC + deciding
//!   switch, so the choice is a pure function of the topology);
//! * **flooding** (broadcast/multicast/unknown) is restricted with
//!   [`Switch::set_flood_ports`] to host ports plus the trunks of one
//!   spanning tree of the switch graph — loop-free by construction, and
//!   every host still receives exactly one copy.
//!
//! Each hop strictly decreases the remaining distance to the destination
//! switch, so programmed unicast paths cannot loop either. Nothing here
//! draws randomness and nothing depends on traffic history: two builds of
//! the same spec produce byte-identical forwarding state, which is what
//! keeps the `figures scale` family reproducible at any `--jobs N`.

use crate::bonding::FlowHash;
use crate::link::{Link, LinkEnd};
use crate::mac::MacAddr;
use crate::switch::Switch;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Parameterized fabric shape.
///
/// ```
/// use clic_ethernet::topology::FabricSpec;
///
/// // 256 hosts on 16-port leaves with 4 spines…
/// let ls = FabricSpec::leaf_spine_for(256);
/// assert!(ls.capacity() >= 256);
/// assert_eq!(ls.kind_name(), "leaf-spine");
///
/// // …or on a 3-tier fat-tree of 32-host pods.
/// let ft = FabricSpec::fat_tree_for(256);
/// assert!(ft.capacity() >= 256);
/// assert_eq!(ft.kind_name(), "fat-tree");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricSpec {
    /// Two-tier Clos: `leaves × spines`, every leaf trunked to every spine.
    LeafSpine {
        /// Spine switches (equal-cost paths between any two leaves).
        spines: usize,
        /// Host ports per leaf switch.
        leaf_downlinks: usize,
    },
    /// Three-tier Clos: pods of edge + aggregation switches under a core
    /// tier. Aggregation switch `j` of every pod uplinks to the core block
    /// `j * cores/aggs_per_pod ..`, the classic fat-tree wiring.
    FatTree {
        /// Number of pods.
        pods: usize,
        /// Edge (host-facing) switches per pod.
        edges_per_pod: usize,
        /// Aggregation switches per pod.
        aggs_per_pod: usize,
        /// Core switches (must divide evenly among the aggregation tier).
        cores: usize,
        /// Host ports per edge switch.
        edge_downlinks: usize,
    },
}

impl FabricSpec {
    /// A leaf–spine spec sized for `hosts` stations: 16-host leaves under
    /// 4 spines (the defaults used by the `figures scale` family).
    pub fn leaf_spine_for(hosts: usize) -> FabricSpec {
        assert!(hosts >= 1);
        FabricSpec::LeafSpine {
            spines: 4,
            leaf_downlinks: 16,
        }
    }

    /// A fat-tree spec sized for `hosts` stations: 32-host pods (two
    /// 16-port edge switches + two aggregation switches each) under four
    /// cores, with at least two pods so the core tier is exercised.
    pub fn fat_tree_for(hosts: usize) -> FabricSpec {
        assert!(hosts >= 1);
        let pods = hosts.div_ceil(32).max(2);
        FabricSpec::FatTree {
            pods,
            edges_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            edge_downlinks: 16,
        }
    }

    /// Maximum hosts the spec can attach. For a leaf–spine this is
    /// unbounded in principle; the builder grows the leaf tier to fit, so
    /// capacity reports what one leaf tier of up to 64 leaves offers.
    pub fn capacity(&self) -> usize {
        match *self {
            FabricSpec::LeafSpine { leaf_downlinks, .. } => 64 * leaf_downlinks,
            FabricSpec::FatTree {
                pods,
                edges_per_pod,
                edge_downlinks,
                ..
            } => pods * edges_per_pod * edge_downlinks,
        }
    }

    /// Short name for tables and job ids: `"leaf-spine"` or `"fat-tree"`.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FabricSpec::LeafSpine { .. } => "leaf-spine",
            FabricSpec::FatTree { .. } => "fat-tree",
        }
    }
}

/// One switch-to-switch trunk: switches `a`/`b` joined by `link`, with the
/// port each side attached it on.
struct Trunk {
    a: usize,
    b: usize,
    port_a: usize,
    port_b: usize,
    link: Rc<RefCell<Link>>,
}

/// A built fabric: the switches, their trunk links, and where each host
/// landed. Produced by [`Fabric::build`]; afterwards the fabric is inert —
/// frames flow through the programmed switches on their own.
///
/// ```
/// use bytes::Bytes;
/// use clic_ethernet::topology::{Fabric, FabricSpec};
/// use clic_ethernet::{EtherType, Frame, Link, LinkEnd, MacAddr};
/// use clic_sim::Sim;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// // Four hosts on a 2-spine leaf-spine fabric with 2-host leaves.
/// let spec = FabricSpec::LeafSpine { spines: 2, leaf_downlinks: 2 };
/// let mut sim = Sim::new(0);
/// let hosts: Vec<(MacAddr, Rc<RefCell<Link>>, LinkEnd)> = (0..4)
///     .map(|i| (MacAddr::for_node(i, 0), Link::gigabit(), LinkEnd::B))
///     .collect();
/// let fabric = Fabric::build(&spec, &hosts);
/// assert_eq!(fabric.switch_count(), 4); // 2 leaves + 2 spines
///
/// // Host 3 listens on its link; host 0 sends across the fabric.
/// let got = Rc::new(RefCell::new(0u32));
/// let g = got.clone();
/// hosts[3].1.borrow_mut().attach(
///     LinkEnd::A,
///     Rc::new(move |_sim: &mut Sim, f: Frame| {
///         assert_eq!(f.dst, MacAddr::for_node(3, 0));
///         *g.borrow_mut() += 1;
///     }),
/// );
/// let frame = Frame::new(
///     MacAddr::for_node(3, 0),
///     MacAddr::for_node(0, 0),
///     EtherType::CLIC,
///     Bytes::from_static(b"hi"),
/// );
/// Link::transmit(&hosts[0].1, &mut sim, LinkEnd::A, frame);
/// sim.run();
/// assert_eq!(*got.borrow(), 1);
/// ```
pub struct Fabric {
    kind: &'static str,
    switches: Vec<Rc<RefCell<Switch>>>,
    trunk_links: Vec<Rc<RefCell<Link>>>,
    host_attach: Vec<(usize, usize)>,
}

impl Fabric {
    /// Build the fabric described by `spec` and attach every host in
    /// `hosts` (its MAC, its access link, and which end of that link the
    /// *switch* should hold). Creates the switches and trunk links,
    /// attaches everything, programs static ECMP routes for every host
    /// MAC, and restricts flooding to a spanning tree.
    ///
    /// Panics if `hosts` exceeds the spec's port budget.
    pub fn build(spec: &FabricSpec, hosts: &[(MacAddr, Rc<RefCell<Link>>, LinkEnd)]) -> Fabric {
        let (switch_count, wiring, host_of) = plan(spec, hosts.len());
        let switches: Vec<Rc<RefCell<Switch>>> = (0..switch_count)
            .map(|_| Switch::gigabit_default())
            .collect();

        // Trunks first, hosts second: port numbering is then a pure
        // function of the spec, independent of host count ordering.
        let mut trunks: Vec<Trunk> = Vec::new();
        for &(a, b) in &wiring {
            let link = Link::gigabit();
            let port_a = Switch::attach_port(&switches[a], link.clone(), LinkEnd::A);
            let port_b = Switch::attach_port(&switches[b], link.clone(), LinkEnd::B);
            switches[a].borrow_mut().mark_trunk(port_a);
            switches[b].borrow_mut().mark_trunk(port_b);
            trunks.push(Trunk {
                a,
                b,
                port_a,
                port_b,
                link,
            });
        }
        let mut host_attach = Vec::with_capacity(hosts.len());
        for (h, (_, link, end)) in hosts.iter().enumerate() {
            let sw = host_of[h];
            let port = Switch::attach_port(&switches[sw], link.clone(), *end);
            host_attach.push((sw, port));
        }

        // Adjacency over the trunk list (undirected).
        let mut adj: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); switch_count];
        for (t, trunk) in trunks.iter().enumerate() {
            adj[trunk.a].push((trunk.b, trunk.port_a, t));
            adj[trunk.b].push((trunk.a, trunk.port_b, t));
        }

        // Static ECMP unicast routes: shortest-path next hops, tie-broken
        // by hashing (destination MAC, deciding switch).
        for (h, (mac, _, _)) in hosts.iter().enumerate() {
            let (target, host_port) = host_attach[h];
            let dist = bfs_distances(&adj, target);
            for s in 0..switch_count {
                if s == target {
                    switches[s].borrow_mut().program_mac(*mac, host_port);
                    continue;
                }
                let here = dist[s];
                assert!(here != usize::MAX, "fabric graph is disconnected");
                let mut candidates: Vec<usize> = adj[s]
                    .iter()
                    .filter(|&&(n, _, _)| dist[n] + 1 == here)
                    .map(|&(_, port, _)| port)
                    .collect();
                candidates.sort_unstable();
                let mut key = [0u8; 10];
                key[..6].copy_from_slice(&mac.0);
                key[6..].copy_from_slice(&(s as u32).to_be_bytes());
                let pick = FlowHash::new(candidates.len()).index(&key);
                switches[s].borrow_mut().program_mac(*mac, candidates[pick]);
            }
        }

        // Loop-free flooding: BFS spanning tree from switch 0; each
        // switch floods only on host ports + its tree trunks.
        let tree = spanning_tree(&adj, switch_count);
        for (s, switch) in switches.iter().enumerate() {
            let mut flood: Vec<usize> = host_attach
                .iter()
                .filter(|&&(sw, _)| sw == s)
                .map(|&(_, port)| port)
                .collect();
            for &t in &tree {
                if trunks[t].a == s {
                    flood.push(trunks[t].port_a);
                } else if trunks[t].b == s {
                    flood.push(trunks[t].port_b);
                }
            }
            switch.borrow_mut().set_flood_ports(&flood);
        }

        Fabric {
            kind: spec.kind_name(),
            trunk_links: trunks.into_iter().map(|t| t.link).collect(),
            switches,
            host_attach,
        }
    }

    /// Short fabric-kind name (`"leaf-spine"` / `"fat-tree"`).
    pub fn kind_name(&self) -> &'static str {
        self.kind
    }

    /// Number of switches in the fabric.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Number of switch-to-switch trunk links.
    pub fn trunk_count(&self) -> usize {
        self.trunk_links.len()
    }

    /// The fabric's switches (leaves/edges first, then upper tiers).
    pub fn switches(&self) -> &[Rc<RefCell<Switch>>] {
        &self.switches
    }

    /// Which switch host `h` attaches to.
    pub fn host_switch(&self, h: usize) -> usize {
        self.host_attach[h].0
    }

    /// Lifetime tail-drops summed over every switch in the fabric.
    pub fn total_switch_drops(&self) -> u64 {
        self.switches
            .iter()
            .map(|s| s.borrow().frames_dropped())
            .sum()
    }

    /// Flood copies suppressed by the spanning-tree flood membership,
    /// summed over the fabric (nonzero on any redundant topology — proof
    /// the loop-free restriction is doing work).
    pub fn total_flood_pruned(&self) -> u64 {
        self.switches
            .iter()
            .map(|s| s.borrow().flood_pruned())
            .sum()
    }
}

/// Expand a spec into (switch count, trunk wiring, host→switch placement).
fn plan(spec: &FabricSpec, hosts: usize) -> (usize, Vec<(usize, usize)>, Vec<usize>) {
    match *spec {
        FabricSpec::LeafSpine {
            spines,
            leaf_downlinks,
        } => {
            assert!(spines >= 1 && leaf_downlinks >= 1);
            let leaves = hosts.div_ceil(leaf_downlinks).max(1);
            let count = leaves + spines;
            let mut wiring = Vec::new();
            for l in 0..leaves {
                for s in 0..spines {
                    wiring.push((l, leaves + s));
                }
            }
            let host_of = (0..hosts).map(|h| h / leaf_downlinks).collect();
            (count, wiring, host_of)
        }
        FabricSpec::FatTree {
            pods,
            edges_per_pod,
            aggs_per_pod,
            cores,
            edge_downlinks,
        } => {
            assert!(pods >= 1 && edges_per_pod >= 1 && aggs_per_pod >= 1 && cores >= 1);
            assert!(
                cores % aggs_per_pod == 0,
                "cores must divide evenly among the aggregation tier"
            );
            assert!(
                hosts <= pods * edges_per_pod * edge_downlinks,
                "fat-tree spec has ports for {} hosts, got {}",
                pods * edges_per_pod * edge_downlinks,
                hosts
            );
            let edges = pods * edges_per_pod;
            let aggs = pods * aggs_per_pod;
            let agg_base = edges;
            let core_base = edges + aggs;
            let count = edges + aggs + cores;
            let mut wiring = Vec::new();
            // Intra-pod full mesh: every edge to every agg of its pod.
            for p in 0..pods {
                for e in 0..edges_per_pod {
                    for a in 0..aggs_per_pod {
                        wiring.push((p * edges_per_pod + e, agg_base + p * aggs_per_pod + a));
                    }
                }
            }
            // Agg j of each pod uplinks to its core block.
            let block = cores / aggs_per_pod;
            for p in 0..pods {
                for a in 0..aggs_per_pod {
                    for c in 0..block {
                        wiring.push((agg_base + p * aggs_per_pod + a, core_base + a * block + c));
                    }
                }
            }
            let host_of = (0..hosts).map(|h| h / edge_downlinks).collect();
            (count, wiring, host_of)
        }
    }
}

/// BFS hop distances from `from` over the switch adjacency.
fn bfs_distances(adj: &[Vec<(usize, usize, usize)>], from: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[from] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for &(n, _, _) in &adj[s] {
            if dist[n] == usize::MAX {
                dist[n] = dist[s] + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Trunk indices forming a BFS spanning tree rooted at switch 0.
fn spanning_tree(adj: &[Vec<(usize, usize, usize)>], count: usize) -> Vec<usize> {
    let mut seen = vec![false; count];
    let mut tree = Vec::new();
    if count == 0 {
        return tree;
    }
    seen[0] = true;
    let mut queue = VecDeque::from([0usize]);
    while let Some(s) = queue.pop_front() {
        for &(n, _, t) in &adj[s] {
            if !seen[n] {
                seen[n] = true;
                tree.push(t);
                queue.push_back(n);
            }
        }
    }
    assert!(seen.iter().all(|&v| v), "fabric graph is disconnected");
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::mac::EtherType;
    use bytes::Bytes;
    use clic_sim::Sim;

    fn mk_hosts(n: usize) -> Vec<(MacAddr, Rc<RefCell<Link>>, LinkEnd)> {
        (0..n)
            .map(|i| (MacAddr::for_node(i as u32, 0), Link::gigabit(), LinkEnd::B))
            .collect()
    }

    fn rx_counters(hosts: &[(MacAddr, Rc<RefCell<Link>>, LinkEnd)]) -> Vec<Rc<RefCell<u32>>> {
        hosts
            .iter()
            .map(|(_, link, _)| {
                let got = Rc::new(RefCell::new(0u32));
                let g = got.clone();
                link.borrow_mut().attach(
                    LinkEnd::A,
                    Rc::new(move |_sim: &mut Sim, _f: Frame| {
                        *g.borrow_mut() += 1;
                    }),
                );
                got
            })
            .collect()
    }

    fn unicast(
        sim: &mut Sim,
        hosts: &[(MacAddr, Rc<RefCell<Link>>, LinkEnd)],
        from: usize,
        to: usize,
    ) {
        let f = Frame::new(
            hosts[to].0,
            hosts[from].0,
            EtherType::CLIC,
            Bytes::from_static(&[7u8; 64]),
        );
        Link::transmit(&hosts[from].1, sim, LinkEnd::A, f);
    }

    #[test]
    fn leaf_spine_all_pairs_reachable() {
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(8);
        let spec = FabricSpec::LeafSpine {
            spines: 2,
            leaf_downlinks: 2,
        };
        let fabric = Fabric::build(&spec, &hosts);
        assert_eq!(fabric.switch_count(), 6);
        assert_eq!(fabric.trunk_count(), 8);
        let rx = rx_counters(&hosts);
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    unicast(&mut sim, &hosts, i, j);
                }
            }
        }
        sim.run();
        for (i, got) in rx.iter().enumerate() {
            assert_eq!(*got.borrow(), 7, "host {i} must see exactly 7 frames");
        }
        assert_eq!(fabric.total_switch_drops(), 0);
    }

    #[test]
    fn fat_tree_all_pairs_reachable() {
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(16);
        let spec = FabricSpec::FatTree {
            pods: 4,
            edges_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            edge_downlinks: 2,
        };
        let fabric = Fabric::build(&spec, &hosts);
        assert_eq!(fabric.switch_count(), 4 * 2 + 4 * 2 + 4);
        let rx = rx_counters(&hosts);
        for i in 0..16 {
            for j in 0..16 {
                if i != j {
                    unicast(&mut sim, &hosts, i, j);
                }
            }
        }
        sim.run();
        for (i, got) in rx.iter().enumerate() {
            assert_eq!(*got.borrow(), 15, "host {i} must see exactly 15 frames");
        }
    }

    #[test]
    fn single_host_leaf_spine_is_a_valid_degenerate_fabric() {
        // `leaf_spine_for(1)`: one leaf under the default spines, one
        // attached host. Nothing to deliver to, but the fabric must build,
        // a broadcast must terminate, and nothing may be dropped.
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(1);
        let spec = FabricSpec::leaf_spine_for(1);
        assert!(spec.capacity() >= 1);
        let fabric = Fabric::build(&spec, &hosts);
        assert_eq!(fabric.host_switch(0), 0);
        let rx = rx_counters(&hosts);
        let f = Frame::new(
            MacAddr::BROADCAST,
            hosts[0].0,
            EtherType::CLIC,
            Bytes::from_static(&[3u8; 64]),
        );
        Link::transmit(&hosts[0].1, &mut sim, LinkEnd::A, f);
        sim.set_event_limit(sim.events_executed() + 100_000);
        sim.run();
        assert_eq!(*rx[0].borrow(), 0, "no copy back to the only host");
        assert_eq!(fabric.total_switch_drops(), 0);
    }

    #[test]
    fn single_spine_ecmp_degenerates_to_one_path() {
        // One spine: every leaf pair has exactly one equal-cost path, so
        // ECMP hashing must not lose or duplicate anything.
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(4);
        let spec = FabricSpec::LeafSpine {
            spines: 1,
            leaf_downlinks: 2,
        };
        let fabric = Fabric::build(&spec, &hosts);
        assert_eq!(fabric.switch_count(), 3, "2 leaves + 1 spine");
        assert_eq!(fabric.trunk_count(), 2, "one uplink per leaf");
        let rx = rx_counters(&hosts);
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    unicast(&mut sim, &hosts, i, j);
                }
            }
        }
        sim.run();
        for (i, got) in rx.iter().enumerate() {
            assert_eq!(*got.borrow(), 3, "host {i} must see exactly 3 frames");
        }
        assert_eq!(fabric.total_switch_drops(), 0);
    }

    #[test]
    fn two_host_fat_tree_delivers_both_ways() {
        // `fat_tree_for(2)` keeps the minimum two pods, so the fabric is
        // far larger than its two tenants; both directions must still
        // deliver exactly once with zero drops.
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(2);
        let spec = FabricSpec::fat_tree_for(2);
        assert_eq!(spec.kind_name(), "fat-tree");
        assert!(spec.capacity() >= 2);
        let fabric = Fabric::build(&spec, &hosts);
        assert_eq!(fabric.switch_count(), 2 * 2 + 2 * 2 + 4);
        let rx = rx_counters(&hosts);
        unicast(&mut sim, &hosts, 0, 1);
        unicast(&mut sim, &hosts, 1, 0);
        sim.run();
        assert_eq!(*rx[0].borrow(), 1);
        assert_eq!(*rx[1].borrow(), 1);
        assert_eq!(fabric.total_switch_drops(), 0);
    }

    #[test]
    fn broadcast_is_loop_free_and_exactly_once() {
        // The frame-storm regression: on a cyclic switch graph a broadcast
        // must terminate and reach every other host exactly once.
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(8);
        let spec = FabricSpec::LeafSpine {
            spines: 4, // heavily redundant: 4 parallel paths between leaves
            leaf_downlinks: 2,
        };
        let fabric = Fabric::build(&spec, &hosts);
        let rx = rx_counters(&hosts);
        let f = Frame::new(
            MacAddr::BROADCAST,
            hosts[0].0,
            EtherType::CLIC,
            Bytes::from_static(&[9u8; 64]),
        );
        Link::transmit(&hosts[0].1, &mut sim, LinkEnd::A, f);
        sim.set_event_limit(sim.events_executed() + 1_000_000);
        sim.run();
        assert_eq!(*rx[0].borrow(), 0, "no copy back to the sender");
        for (i, got) in rx.iter().enumerate().skip(1) {
            assert_eq!(*got.borrow(), 1, "host {i} must see exactly one copy");
        }
        // The redundant trunks were pruned from the flood, proving the
        // spanning-tree restriction (not luck) stopped the storm.
        assert!(fabric.total_flood_pruned() > 0);
    }

    #[test]
    fn multicast_is_loop_free_on_fat_tree() {
        let mut sim = Sim::new(0);
        let hosts = mk_hosts(8);
        let spec = FabricSpec::FatTree {
            pods: 2,
            edges_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            edge_downlinks: 2,
        };
        let _fabric = Fabric::build(&spec, &hosts);
        let rx = rx_counters(&hosts);
        let f = Frame::new(
            MacAddr::multicast_group(3),
            hosts[2].0,
            EtherType::COLL,
            Bytes::from_static(&[1u8; 64]),
        );
        Link::transmit(&hosts[2].1, &mut sim, LinkEnd::A, f);
        sim.set_event_limit(sim.events_executed() + 1_000_000);
        sim.run();
        for (i, got) in rx.iter().enumerate() {
            let expect = u32::from(i != 2);
            assert_eq!(*got.borrow(), expect, "host {i}");
        }
    }

    #[test]
    fn ecmp_spreads_destinations_across_spines() {
        // With 4 spines and many destination MACs, the leaf's programmed
        // next hops must not all collapse onto one trunk.
        let hosts = mk_hosts(16);
        let spec = FabricSpec::LeafSpine {
            spines: 4,
            leaf_downlinks: 8,
        };
        let fabric = Fabric::build(&spec, &hosts);
        let leaf0 = &fabric.switches()[0];
        let mut used = std::collections::BTreeSet::new();
        for (h, (mac, _, _)) in hosts.iter().enumerate() {
            if fabric.host_switch(h) != 0 {
                if let Some(port) = leaf0.borrow().static_route(*mac) {
                    used.insert(port);
                }
            }
        }
        assert!(used.len() >= 2, "ECMP picked only {used:?}");
    }

    #[test]
    fn build_is_deterministic() {
        let hosts_a = mk_hosts(12);
        let hosts_b = mk_hosts(12);
        let spec = FabricSpec::fat_tree_for(12);
        let fa = Fabric::build(&spec, &hosts_a);
        let fb = Fabric::build(&spec, &hosts_b);
        assert_eq!(fa.switch_count(), fb.switch_count());
        for (sa, sb) in fa.switches().iter().zip(fb.switches()) {
            for (mac, _, _) in &hosts_a {
                assert_eq!(
                    sa.borrow().static_route(*mac),
                    sb.borrow().static_route(*mac)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "ports for")]
    fn overfull_fat_tree_rejected() {
        let hosts = mk_hosts(33);
        let spec = FabricSpec::FatTree {
            pods: 2,
            edges_per_pod: 2,
            aggs_per_pod: 2,
            cores: 4,
            edge_downlinks: 8,
        };
        Fabric::build(&spec, &hosts);
    }
}
