//! Ethernet frames and their wire cost.
//!
//! CLIC uses the level-1 ("pure Ethernet") header only: 6 B destination,
//! 6 B source, 2 B type — 14 bytes, exactly as §3.1 of the paper describes.
//! Frames carry real payload bytes so end-to-end integrity can be asserted
//! in tests; serialization (`to_bytes`/`parse`) is implemented and verified
//! even though the simulator normally passes `Frame` values around directly.

use crate::mac::{EtherType, MacAddr};
use bytes::Bytes;
use clic_sim::SimDuration;

/// Level-1 Ethernet header: dst(6) + src(6) + type(2).
pub const ETH_HEADER: usize = 14;
/// Frame check sequence.
pub const ETH_CRC: usize = 4;
/// Preamble + start-of-frame delimiter, on the wire before each frame.
pub const ETH_PREAMBLE: usize = 8;
/// Minimum inter-frame gap, in byte times.
pub const ETH_IFG: usize = 12;
/// Minimum payload (frames are padded up to the 64-byte minimum frame).
pub const ETH_MIN_PAYLOAD: usize = 46;

/// An Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Destination station.
    pub dst: MacAddr,
    /// Source station.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
    /// Payload bytes (the level-2+ content, e.g. CLIC header + user data).
    pub payload: Bytes,
    /// Out-of-band instrumentation: pipeline-trace id (0 = untraced). Not
    /// part of the wire image; carried across the simulated wire so the
    /// receive side can attribute its stages to the same packet (Figure 7).
    pub trace: u64,
    /// Out-of-band fault-injection marker: the link flipped bits in this
    /// frame, so its FCS no longer matches. The receiving NIC discards it
    /// on FCS verification (the wire time was still paid). Not part of
    /// the wire image — real corruption would change the CRC itself.
    pub fcs_corrupt: bool,
}

impl Frame {
    /// Build a frame. The payload length must fit the 16-bit-ish sizes the
    /// simulator works with; MTU enforcement happens at the NIC, which knows
    /// its configured MTU.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Frame {
        Frame {
            dst,
            src,
            ethertype,
            payload,
            trace: 0,
            fcs_corrupt: false,
        }
    }

    /// Tag the frame with a pipeline-trace id.
    pub fn with_trace(mut self, id: u64) -> Frame {
        self.trace = id;
        self
    }

    /// Bytes of the frame proper: header + padded payload + CRC.
    pub fn frame_bytes(&self) -> usize {
        ETH_HEADER + self.payload.len().max(ETH_MIN_PAYLOAD) + ETH_CRC
    }

    /// Bytes the frame occupies on the wire, including preamble and IFG.
    /// This is what divides into link bandwidth to give serialization time —
    /// the per-frame overhead that makes jumbo frames pay off.
    pub fn wire_bytes(&self) -> usize {
        ETH_PREAMBLE + self.frame_bytes() + ETH_IFG
    }

    /// Serialization time on a link of `bits_per_sec`.
    pub fn wire_time(&self, bits_per_sec: u64) -> SimDuration {
        SimDuration::for_bytes(self.wire_bytes() as u64, bits_per_sec)
    }

    /// Serialize to header + payload (+ zero padding) + zeroed CRC image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.frame_bytes());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.0.to_be_bytes());
        out.extend_from_slice(&self.payload);
        if self.payload.len() < ETH_MIN_PAYLOAD {
            out.resize(ETH_HEADER + ETH_MIN_PAYLOAD, 0);
        }
        out.extend_from_slice(&[0u8; ETH_CRC]);
        out
    }

    /// Parse a serialized frame image. Padding cannot be distinguished from
    /// payload at this layer (as on real Ethernet), so short payloads come
    /// back padded; upper layers carry their own length fields.
    pub fn parse(buf: &[u8]) -> Option<Frame> {
        if buf.len() < ETH_HEADER + ETH_MIN_PAYLOAD + ETH_CRC {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType(u16::from_be_bytes([buf[12], buf[13]]));
        let payload = Bytes::copy_from_slice(&buf[ETH_HEADER..buf.len() - ETH_CRC]);
        Some(Frame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload,
            trace: 0,
            fcs_corrupt: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_payload(len: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(2, 0),
            MacAddr::for_node(1, 0),
            EtherType::CLIC,
            Bytes::from(vec![0xabu8; len]),
        )
    }

    #[test]
    fn minimum_frame_is_64_bytes_plus_overhead() {
        let f = frame_with_payload(1);
        assert_eq!(f.frame_bytes(), 64);
        assert_eq!(f.wire_bytes(), 64 + ETH_PREAMBLE + ETH_IFG);
    }

    #[test]
    fn standard_mtu_frame_sizes() {
        let f = frame_with_payload(1500);
        assert_eq!(f.frame_bytes(), 1518);
        assert_eq!(f.wire_bytes(), 1538);
    }

    #[test]
    fn jumbo_frame_sizes() {
        let f = frame_with_payload(9000);
        assert_eq!(f.frame_bytes(), 9018);
        assert_eq!(f.wire_bytes(), 9038);
    }

    #[test]
    fn wire_time_at_gigabit() {
        // 1538 wire bytes @1 Gb/s = 12.304 us — the paper's "one interrupt
        // every ~12 microseconds" for back-to-back MTU-1500 frames.
        let f = frame_with_payload(1500);
        let t = f.wire_time(1_000_000_000);
        assert_eq!(t, SimDuration::from_ns(12_304));
    }

    #[test]
    fn roundtrip_long_payload() {
        let f = frame_with_payload(900);
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn roundtrip_short_payload_padded() {
        let f = frame_with_payload(10);
        let parsed = Frame::parse(&f.to_bytes()).unwrap();
        assert_eq!(parsed.dst, f.dst);
        assert_eq!(parsed.src, f.src);
        assert_eq!(parsed.ethertype, f.ethertype);
        // Ethernet pads: first 10 bytes match, rest is zero padding.
        assert_eq!(parsed.payload.len(), ETH_MIN_PAYLOAD);
        assert_eq!(&parsed.payload[..10], &f.payload[..]);
        assert!(parsed.payload[10..].iter().all(|&b| b == 0));
    }

    #[test]
    fn parse_rejects_runt() {
        assert!(Frame::parse(&[0u8; 32]).is_none());
    }
}
