//! # clic-ethernet — Ethernet data-link substrate
//!
//! Models the parts of (Gigabit) Ethernet the paper's evaluation depends on:
//!
//! * [`frame`] — real level-1 ("pure Ethernet") frames: 14-byte header, CRC,
//!   minimum-frame padding, preamble + inter-frame gap wire overheads, jumbo
//!   frame support (MTU 9000),
//! * [`link`] — full-duplex point-to-point 1 Gb/s links with serialization
//!   and propagation delay plus per-direction fault injection (bursty
//!   Gilbert–Elliott loss, corruption, reordering, duplication, outages)
//!   to exercise the reliability machinery of CLIC and TCP,
//! * [`switch`] — a store-and-forward switch with MAC learning, flooding for
//!   broadcast/multicast/unknown destinations, and finite tail-drop output
//!   queues,
//! * [`mac`] — addresses and EtherTypes (IPv4 for the TCP/IP baseline, an
//!   experimental EtherType for CLIC, one for the GAMMA-like baseline),
//! * [`bonding`] — the round-robin channel-bonding selector CLIC uses to
//!   stripe traffic over several NICs (§5 of the paper), plus the
//!   stateless flow-hash selector fabrics use for ECMP trunk choice,
//! * [`topology`] — multi-switch fabric builders (leaf–spine and fat-tree)
//!   with statically programmed deterministic-ECMP routes and loop-free
//!   spanning-tree flooding.

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bonding;
pub mod frame;
pub mod link;
pub mod mac;
pub mod switch;
pub mod topology;

pub use bonding::{FlowHash, RoundRobin};
pub use frame::{Frame, ETH_CRC, ETH_HEADER, ETH_IFG, ETH_MIN_PAYLOAD, ETH_PREAMBLE};
pub use link::{FaultPlan, Link, LinkEnd, LossModel};
pub use mac::{EtherType, MacAddr};
pub use switch::{Switch, SwitchConfigError};
pub use topology::{Fabric, FabricSpec};
