//! Channel bonding support.
//!
//! The paper (§5) notes CLIC "allows the use of several network cards to
//! increase the communication bandwidth when a switch is used to build the
//! network (channel bonding)". CLIC stripes packets over the node's NICs in
//! round-robin order; this module provides the selector. Reordering
//! introduced by striping is absorbed by CLIC's sequence numbers.

/// A round-robin index selector over `width` channels.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    width: usize,
    next: usize,
}

impl RoundRobin {
    /// Selector over `width` channels (`width >= 1`).
    pub fn new(width: usize) -> RoundRobin {
        assert!(width >= 1, "bonding width must be at least 1");
        RoundRobin { width, next: 0 }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The next channel index.
    pub fn next_index(&mut self) -> usize {
        let i = self.next;
        self.next = (self.next + 1) % self.width;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_in_order() {
        let mut rr = RoundRobin::new(3);
        let picks: Vec<usize> = (0..7).map(|_| rr.next_index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn width_one_always_zero() {
        let mut rr = RoundRobin::new(1);
        assert_eq!(rr.next_index(), 0);
        assert_eq!(rr.next_index(), 0);
    }

    #[test]
    fn fair_distribution() {
        let mut rr = RoundRobin::new(4);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[rr.next_index()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_rejected() {
        RoundRobin::new(0);
    }
}
