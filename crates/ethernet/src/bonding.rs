//! Channel bonding support.
//!
//! The paper (§5) notes CLIC "allows the use of several network cards to
//! increase the communication bandwidth when a switch is used to build the
//! network (channel bonding)". CLIC stripes packets over the node's NICs in
//! round-robin order; this module provides the selector. Reordering
//! introduced by striping is absorbed by CLIC's sequence numbers.
//!
//! [`FlowHash`] is the stateless sibling of [`RoundRobin`]: instead of
//! cycling, it hashes an identifying key to a channel index. The topology
//! layer ([`crate::topology`]) uses it for ECMP-style trunk selection in
//! multi-switch fabrics, where the choice must be a pure function of the
//! flow (so runs are deterministic and packets of one flow never split
//! across paths).

/// A round-robin index selector over `width` channels.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    width: usize,
    next: usize,
}

impl RoundRobin {
    /// Selector over `width` channels (`width >= 1`).
    pub fn new(width: usize) -> RoundRobin {
        assert!(width >= 1, "bonding width must be at least 1");
        RoundRobin { width, next: 0 }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The next channel index.
    pub fn next_index(&mut self) -> usize {
        let i = self.next;
        self.next = (self.next + 1) % self.width;
        i
    }
}

/// A stateless hash selector over `width` channels.
///
/// Where [`RoundRobin`] spreads *successive* packets, `FlowHash` pins a
/// *key* (for ECMP: the destination MAC plus the deciding switch's index)
/// to one channel forever. The hash is FNV-1a, fixed for all time — the
/// selection is part of the determinism contract, not a tuning knob.
///
/// ```
/// use clic_ethernet::bonding::FlowHash;
///
/// let ecmp = FlowHash::new(4);
/// // Same key, same channel — on every call, every run, every machine.
/// assert_eq!(ecmp.index(b"host-17"), ecmp.index(b"host-17"));
/// // Different keys spread across the width.
/// let picks: Vec<usize> = (0u8..16).map(|k| ecmp.index(&[k])).collect();
/// assert!(picks.iter().any(|&p| p != picks[0]));
/// assert!(picks.iter().all(|&p| p < 4));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FlowHash {
    width: usize,
}

impl FlowHash {
    /// Selector over `width` channels (`width >= 1`).
    pub fn new(width: usize) -> FlowHash {
        assert!(width >= 1, "bonding width must be at least 1");
        FlowHash { width }
    }

    /// Number of channels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The channel index for `key` (FNV-1a over the bytes, mod width).
    pub fn index(&self, key: &[u8]) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.width as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_in_order() {
        let mut rr = RoundRobin::new(3);
        let picks: Vec<usize> = (0..7).map(|_| rr.next_index()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn width_one_always_zero() {
        let mut rr = RoundRobin::new(1);
        assert_eq!(rr.next_index(), 0);
        assert_eq!(rr.next_index(), 0);
    }

    #[test]
    fn fair_distribution() {
        let mut rr = RoundRobin::new(4);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            counts[rr.next_index()] += 1;
        }
        assert_eq!(counts, [100; 4]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_width_rejected() {
        RoundRobin::new(0);
    }

    #[test]
    fn flow_hash_is_stable_and_in_range() {
        let fh = FlowHash::new(3);
        for k in 0u32..64 {
            let a = fh.index(&k.to_be_bytes());
            let b = fh.index(&k.to_be_bytes());
            assert_eq!(a, b);
            assert!(a < 3);
        }
    }

    #[test]
    fn flow_hash_spreads_keys() {
        let fh = FlowHash::new(4);
        let mut counts = [0u32; 4];
        for k in 0u32..400 {
            counts[fh.index(&k.to_be_bytes())] += 1;
        }
        // Not a statistical test — just "no channel starves" on a simple
        // ascending key set, which is what ECMP route spreading needs.
        assert!(counts.iter().all(|&c| c > 40), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn flow_hash_zero_width_rejected() {
        FlowHash::new(0);
    }
}
