//! Full-duplex point-to-point links with composable fault injection.
//!
//! A link serializes frames per direction (modeling the transmit FIFO of
//! the attached station), applies a propagation delay, and can inject
//! faults according to a per-direction [`FaultPlan`]: loss (including
//! Gilbert–Elliott bursty loss), bit corruption (the frame is still
//! delivered and costs wire time; the receiving MAC discards it on FCS
//! check), bounded reordering, duplication, and scheduled outages.
//! Delivery calls the handler registered at the far end.
//!
//! All randomness comes from the simulator's deterministic RNG, so a run
//! is a pure function of configuration and seed. A plan whose
//! probabilistic knobs are all zero draws nothing from the RNG, which
//! keeps clean-link runs byte-identical with and without the fault
//! machinery compiled in.

use crate::frame::Frame;
use crate::link::private::Direction;
use clic_sim::catalog::{counter_id, histogram_id};
use clic_sim::{Layer, MetricId, Sim, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Interned metric ids — transmit runs once per frame, so names are
/// resolved against the catalog at compile time.
const M_FRAME_BYTES: MetricId = histogram_id("eth.link.frame_bytes");
const TL_TX_BYTES: MetricId = counter_id("eth.link.tx_bytes");
const M_FRAMES_LOST: MetricId = counter_id("eth.link.frames_lost");
const M_CORRUPT: MetricId = counter_id("eth.corrupt");
const M_DUPLICATES: MetricId = counter_id("eth.duplicates");
const M_REORDERS: MetricId = counter_id("eth.reorders");

/// Callback invoked when a frame fully arrives at a link end.
pub type FrameHandler = Rc<dyn Fn(&mut Sim, Frame)>;

/// Which end of the link a station is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEnd {
    /// First end.
    A,
    /// Second end.
    B,
}

impl LinkEnd {
    /// The opposite end.
    pub fn other(self) -> LinkEnd {
        match self {
            LinkEnd::A => LinkEnd::B,
            LinkEnd::B => LinkEnd::A,
        }
    }
}

/// Frame loss injection.
///
/// # Examples
///
/// ```
/// use clic_ethernet::LossModel;
///
/// // Memoryless 0.5 % loss — every frame flips the same weighted coin.
/// let uniform = LossModel::Bernoulli(0.005);
///
/// // Bursty loss with the same 0.5 % long-run average: the link spends
/// // most of its time in a lossless "good" state, occasionally enters a
/// // "bad" state where every frame dies, and leaves it again with
/// // probability 0.25 per frame (mean burst length 4 frames).
/// let p = 0.005_f64;
/// let bursty = LossModel::GilbertElliott {
///     p_enter_burst: 0.25 * p / (1.0 - p),
///     p_exit_burst: 0.25,
///     loss_good: 0.0,
///     loss_bad: 1.0,
/// };
/// assert_ne!(uniform, bursty);
/// assert_eq!(LossModel::default(), LossModel::None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum LossModel {
    /// Lossless (the common cluster case).
    #[default]
    None,
    /// Independent drop probability per frame.
    Bernoulli(f64),
    /// Drop every n-th frame deterministically (1-based; `EveryNth(3)`
    /// drops frames 3, 6, 9…). Deterministic, for reliability tests.
    EveryNth(u64),
    /// Two-state Gilbert–Elliott bursty loss. Each frame first resolves
    /// the Markov state (good ↔ bad), then drops with that state's loss
    /// probability. The classic Gilbert model is `loss_good: 0.0,
    /// loss_bad: 1.0`; the stationary loss rate is then
    /// `p_enter_burst / (p_enter_burst + p_exit_burst)` and the mean
    /// burst length is `1 / p_exit_burst` frames.
    GilbertElliott {
        /// Per-frame probability of moving good → bad.
        p_enter_burst: f64,
        /// Per-frame probability of moving bad → good.
        p_exit_burst: f64,
        /// Drop probability while in the good state.
        loss_good: f64,
        /// Drop probability while in the bad state.
        loss_bad: f64,
    },
}

/// Per-direction fault injection plan for a [`Link`].
///
/// Faults compose: a frame that survives the loss model may still be
/// corrupted, duplicated, or held back (reordered). Probabilistic knobs
/// set to `0.0` consume no RNG draws, so the default plan leaves a run's
/// event and RNG sequence untouched.
///
/// Fault semantics:
///
/// * `loss` — the frame disappears after serialization (it still cost
///   wire time on the sender side).
/// * `corrupt` — the frame is delivered with [`Frame::fcs_corrupt`] set;
///   the receiving NIC discards it on FCS verification, so the wire and
///   propagation time are paid but no payload arrives.
/// * `duplicate` — a second copy arrives one wire-time after the first.
/// * `reorder` — the frame is held for `reorder_hold` extra delay, so
///   later frames can overtake it.
/// * `outages` — half-open `[start, end)` windows in which every frame
///   in this direction is dropped (link flaps / cable pulls).
///
/// # Examples
///
/// ```
/// use clic_ethernet::{FaultPlan, LossModel};
/// use clic_sim::{SimDuration, SimTime};
///
/// let plan = FaultPlan {
///     loss: LossModel::Bernoulli(0.01),
///     corrupt: 0.001,
///     duplicate: 0.0005,
///     reorder: 0.002,
///     reorder_hold: SimDuration::from_us(50),
///     outages: vec![(SimTime::from_us(10_000), SimTime::from_us(12_000))],
/// };
/// assert!(plan.is_faulty());
/// assert!(!FaultPlan::default().is_faulty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Frame loss model (applied first).
    pub loss: LossModel,
    /// Probability of delivering a frame with a bad FCS.
    pub corrupt: f64,
    /// Probability of delivering a frame twice.
    pub duplicate: f64,
    /// Probability of holding a frame back by `reorder_hold`.
    pub reorder: f64,
    /// Extra delay applied to held frames.
    pub reorder_hold: SimDuration,
    /// Scheduled `[start, end)` outage windows (all frames dropped).
    pub outages: Vec<(SimTime, SimTime)>,
}

impl FaultPlan {
    /// A plan that only injects loss — what [`Link::set_loss`] installs.
    pub fn loss_only(loss: LossModel) -> FaultPlan {
        FaultPlan {
            loss,
            ..FaultPlan::default()
        }
    }

    /// Whether this plan can perturb traffic at all.
    pub fn is_faulty(&self) -> bool {
        self.loss != LossModel::None
            || self.corrupt > 0.0
            || self.duplicate > 0.0
            || self.reorder > 0.0
            || !self.outages.is_empty()
    }
}

mod private {
    use clic_sim::{SimDuration, SimTime};

    #[derive(Debug, Default)]
    pub struct Direction {
        pub busy_until: SimTime,
        pub in_flight: usize,
        pub frames_offered: u64,
        pub frames_delivered: u64,
        pub frames_lost: u64,
        pub frames_duplicated: u64,
        pub bytes_delivered: u64,
        pub busy_time: SimDuration,
        /// Gilbert–Elliott Markov state for this direction.
        pub in_burst: bool,
    }
}

/// What the fault plan decided for one frame.
enum Fate {
    Lost,
    Deliver {
        corrupt: bool,
        duplicate: bool,
        hold: SimDuration,
    },
}

/// A full-duplex link.
pub struct Link {
    bits_per_sec: u64,
    propagation: SimDuration,
    faults_a_to_b: FaultPlan,
    faults_b_to_a: FaultPlan,
    a_to_b: Direction,
    b_to_a: Direction,
    handler_a: Option<FrameHandler>,
    handler_b: Option<FrameHandler>,
}

impl Link {
    /// Create a link of the given bandwidth and propagation delay.
    pub fn new(bits_per_sec: u64, propagation: SimDuration) -> Rc<RefCell<Link>> {
        assert!(bits_per_sec > 0);
        Rc::new(RefCell::new(Link {
            bits_per_sec,
            propagation,
            faults_a_to_b: FaultPlan::default(),
            faults_b_to_a: FaultPlan::default(),
            a_to_b: Direction::default(),
            b_to_a: Direction::default(),
            handler_a: None,
            handler_b: None,
        }))
    }

    /// A 1 Gb/s link with sub-µs propagation — the paper's testbed cabling.
    pub fn gigabit() -> Rc<RefCell<Link>> {
        Self::new(1_000_000_000, SimDuration::from_ns(500))
    }

    /// Install the same loss model in both directions (convenience; other
    /// fault knobs in each direction's plan are left untouched).
    pub fn set_loss(&mut self, loss: LossModel) {
        self.faults_a_to_b.loss = loss;
        self.faults_b_to_a.loss = loss;
    }

    /// Install a loss model for one direction only (`from` names the
    /// transmitting end).
    pub fn set_loss_dir(&mut self, from: LinkEnd, loss: LossModel) {
        self.plan_mut(from).loss = loss;
    }

    /// Install a full fault plan for one direction (`from` names the
    /// transmitting end).
    pub fn set_faults(&mut self, from: LinkEnd, plan: FaultPlan) {
        *self.plan_mut(from) = plan;
    }

    /// Install the same fault plan in both directions.
    pub fn set_faults_both(&mut self, plan: FaultPlan) {
        self.faults_a_to_b = plan.clone();
        self.faults_b_to_a = plan;
    }

    /// Schedule an additional `[start, end)` outage window for one
    /// direction (`from` names the transmitting end), preserving whatever
    /// fault plan is already installed.
    pub fn add_outage(&mut self, from: LinkEnd, start: SimTime, end: SimTime) {
        assert!(start < end, "outage window must be non-empty");
        self.plan_mut(from).outages.push((start, end));
    }

    /// Flap the link: every frame in *both* directions is dropped during
    /// `[start, end)` — a cable pull or switch-port down/up cycle. Layered
    /// on top of the existing fault plans.
    pub fn flap(&mut self, start: SimTime, end: SimTime) {
        self.add_outage(LinkEnd::A, start, end);
        self.add_outage(LinkEnd::B, start, end);
    }

    /// The fault plan currently applied to frames transmitted by `from`.
    pub fn faults(&self, from: LinkEnd) -> &FaultPlan {
        match from {
            LinkEnd::A => &self.faults_a_to_b,
            LinkEnd::B => &self.faults_b_to_a,
        }
    }

    fn plan_mut(&mut self, from: LinkEnd) -> &mut FaultPlan {
        match from {
            LinkEnd::A => &mut self.faults_a_to_b,
            LinkEnd::B => &mut self.faults_b_to_a,
        }
    }

    /// Link bandwidth in bits per second.
    pub fn bits_per_sec(&self) -> u64 {
        self.bits_per_sec
    }

    /// Register the receive handler for one end.
    pub fn attach(&mut self, end: LinkEnd, handler: FrameHandler) {
        let slot = match end {
            LinkEnd::A => &mut self.handler_a,
            LinkEnd::B => &mut self.handler_b,
        };
        assert!(slot.is_none(), "link end attached twice");
        *slot = Some(handler);
    }

    fn dir_mut(&mut self, from: LinkEnd) -> &mut Direction {
        match from {
            LinkEnd::A => &mut self.a_to_b,
            LinkEnd::B => &mut self.b_to_a,
        }
    }

    fn dir(&self, from: LinkEnd) -> &Direction {
        match from {
            LinkEnd::A => &self.a_to_b,
            LinkEnd::B => &self.b_to_a,
        }
    }

    /// Frames accepted but not yet fully on the wire from `from`'s side
    /// (transmit backlog) — the switch uses this for tail drop.
    pub fn tx_backlog(&self, from: LinkEnd) -> usize {
        self.dir(from).in_flight
    }

    /// Frames fully delivered to the end opposite `from`.
    pub fn delivered(&self, from: LinkEnd) -> u64 {
        self.dir(from).frames_delivered
    }

    /// Frames dropped by the loss model in the `from` direction.
    pub fn lost(&self, from: LinkEnd) -> u64 {
        self.dir(from).frames_lost
    }

    /// Extra copies injected by the duplication fault in the `from`
    /// direction (not counted in [`Link::delivered`]).
    pub fn duplicated(&self, from: LinkEnd) -> u64 {
        self.dir(from).frames_duplicated
    }

    /// Payload-inclusive bytes delivered in the `from` direction.
    pub fn bytes_delivered(&self, from: LinkEnd) -> u64 {
        self.dir(from).bytes_delivered
    }

    /// Cumulative serialization time in the `from` direction (for link
    /// utilisation reporting).
    pub fn busy_time(&self, from: LinkEnd) -> SimDuration {
        self.dir(from).busy_time
    }

    /// Resolve the fault plan for one frame. RNG draw discipline: a plan
    /// with `LossModel::None` and zero probabilities draws nothing;
    /// `Bernoulli` draws exactly once per frame (as it always has);
    /// `GilbertElliott` draws the state transition, then the state's loss
    /// probability; corrupt/duplicate/reorder each draw only when their
    /// probability is non-zero. Outage checks never draw.
    fn decide_fate(&mut self, sim: &mut Sim, from: LinkEnd, frame_seq: u64) -> Fate {
        let (plan, dir) = match from {
            LinkEnd::A => (&self.faults_a_to_b, &mut self.a_to_b),
            LinkEnd::B => (&self.faults_b_to_a, &mut self.b_to_a),
        };
        let now = sim.now();
        if plan.outages.iter().any(|&(s, e)| s <= now && now < e) {
            return Fate::Lost;
        }
        let lost = match plan.loss {
            LossModel::None => false,
            LossModel::Bernoulli(p) => sim.rng.gen_bool(p),
            LossModel::EveryNth(n) => n > 0 && frame_seq.is_multiple_of(n),
            LossModel::GilbertElliott {
                p_enter_burst,
                p_exit_burst,
                loss_good,
                loss_bad,
            } => {
                let flip = if dir.in_burst {
                    sim.rng.gen_bool(p_exit_burst)
                } else {
                    sim.rng.gen_bool(p_enter_burst)
                };
                if flip {
                    dir.in_burst = !dir.in_burst;
                }
                let p = if dir.in_burst { loss_bad } else { loss_good };
                sim.rng.gen_bool(p)
            }
        };
        if lost {
            return Fate::Lost;
        }
        let corrupt = plan.corrupt > 0.0 && sim.rng.gen_bool(plan.corrupt);
        let duplicate = plan.duplicate > 0.0 && sim.rng.gen_bool(plan.duplicate);
        let hold = if plan.reorder > 0.0 && sim.rng.gen_bool(plan.reorder) {
            plan.reorder_hold
        } else {
            SimDuration::ZERO
        };
        if corrupt {
            sim.metrics.counter_inc_id(M_CORRUPT);
        }
        if duplicate {
            sim.metrics.counter_inc_id(M_DUPLICATES);
        }
        if hold > SimDuration::ZERO {
            sim.metrics.counter_inc_id(M_REORDERS);
        }
        Fate::Deliver {
            corrupt,
            duplicate,
            hold,
        }
    }

    /// Transmit `frame` from `from` towards the opposite end. The frame is
    /// serialized after any frames already queued in that direction, then
    /// propagates and is delivered to the far handler (unless lost).
    pub fn transmit(link: &Rc<RefCell<Link>>, sim: &mut Sim, from: LinkEnd, frame: Frame) {
        sim.metrics
            .observe_id(M_FRAME_BYTES, frame.frame_bytes() as u64);
        sim.timeline
            .counter(sim.now(), TL_TX_BYTES, frame.frame_bytes() as u64);
        if frame.trace != 0 {
            sim.trace.begin(sim.now(), Layer::Eth, "wire", frame.trace);
        }
        let (deliver_at, serialize_done, frame_seq, wire) = {
            let mut l = link.borrow_mut();
            let wire = frame.wire_time(l.bits_per_sec);
            let prop = l.propagation;
            let d = l.dir_mut(from);
            // lint:allow(time-overflow, reason="u64 frame tally; wraps only after 2^64 frames on one link")
            d.frames_offered += 1;
            let seq = d.frames_offered;
            d.in_flight += 1;
            let start = d.busy_until.max(sim.now());
            let done = start + wire;
            d.busy_until = done;
            d.busy_time += wire;
            // lint:allow(time-overflow, reason="SimTime + SimDuration routes through the checked Add guard in sim::time")
            (done + prop, done, seq, wire)
        };
        let link2 = link.clone();
        sim.schedule_at(serialize_done, move |sim| {
            let (handler, frame, corrupt, duplicate, hold) = {
                let mut l = link2.borrow_mut();
                let fate = l.decide_fate(sim, from, frame_seq);
                let d = l.dir_mut(from);
                d.in_flight -= 1;
                match fate {
                    Fate::Lost => {
                        d.frames_lost += 1;
                        sim.metrics.counter_inc_id(M_FRAMES_LOST);
                        if frame.trace != 0 {
                            // Close the wire span at the loss point so the
                            // trace stays balanced, then mark the drop.
                            sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                            sim.trace
                                .instant(sim.now(), Layer::Eth, "link_drop", frame.trace);
                        }
                        return;
                    }
                    Fate::Deliver {
                        corrupt,
                        duplicate,
                        hold,
                    } => {
                        d.frames_delivered += 1;
                        d.bytes_delivered += frame.frame_bytes() as u64;
                        if duplicate {
                            d.frames_duplicated += 1;
                        }
                        let handler = match from.other() {
                            LinkEnd::A => l.handler_a.clone(),
                            LinkEnd::B => l.handler_b.clone(),
                        };
                        (handler, frame, corrupt, duplicate, hold)
                    }
                }
            };
            match handler {
                Some(h) => {
                    let delay = (deliver_at + hold) - sim.now();
                    sim.schedule_in(delay, move |sim| {
                        if frame.trace != 0 {
                            sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                        }
                        let mut frame = frame;
                        if corrupt {
                            frame.fcs_corrupt = true;
                        }
                        if duplicate {
                            // The copy lands one wire-time later, with no
                            // trace id so spans stay balanced.
                            let mut copy = frame.clone();
                            copy.trace = 0;
                            let h2 = h.clone();
                            sim.schedule_in(wire, move |sim| h2(sim, copy));
                        }
                        h(sim, frame)
                    });
                }
                None if frame.trace != 0 => {
                    // No station attached: the frame vanishes, but the span
                    // must still close.
                    sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                }
                None => {}
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{EtherType, MacAddr};
    use bytes::Bytes;
    use clic_sim::SimTime;
    use std::cell::RefCell;

    fn mk_frame(len: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(2, 0),
            MacAddr::for_node(1, 0),
            EtherType::CLIC,
            Bytes::from(vec![7u8; len]),
        )
    }

    type Log = Rc<RefCell<Vec<(SimTime, usize)>>>;

    fn attach_logger(link: &Rc<RefCell<Link>>, end: LinkEnd) -> Log {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        link.borrow_mut().attach(
            end,
            Rc::new(move |sim: &mut Sim, f: Frame| {
                l.borrow_mut().push((sim.now(), f.payload.len()));
            }),
        );
        log
    }

    #[test]
    fn delivery_after_serialization_plus_propagation() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::from_ns(500));
        let log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        sim.run();
        // 1538 wire bytes = 12304 ns, +500 ns propagation.
        assert_eq!(*log.borrow(), vec![(SimTime::from_ns(12_804), 1500)]);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }

    #[test]
    fn back_to_back_frames_serialize() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..3 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        }
        sim.run();
        let times: Vec<u64> = log.borrow().iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![12_304, 24_608, 36_912]);
    }

    #[test]
    fn directions_are_independent() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let log_b = attach_logger(&link, LinkEnd::B);
        let log_a = attach_logger(&link, LinkEnd::A);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        Link::transmit(&link, &mut sim, LinkEnd::B, mk_frame(1500));
        sim.run();
        // Full duplex: both arrive at the one-frame serialization time.
        assert_eq!(log_b.borrow()[0].0, SimTime::from_ns(12_304));
        assert_eq!(log_a.borrow()[0].0, SimTime::from_ns(12_304));
    }

    #[test]
    fn every_nth_loss_drops_deterministically() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_loss(LossModel::EveryNth(3));
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..9 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        }
        sim.run();
        assert_eq!(log.borrow().len(), 6);
        assert_eq!(link.borrow().lost(LinkEnd::A), 3);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 6);
    }

    #[test]
    fn bernoulli_loss_statistics() {
        let mut sim = Sim::new(42);
        let link = Link::new(10_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_loss(LossModel::Bernoulli(0.2));
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..2000 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(64));
        }
        sim.run();
        let delivered = log.borrow().len();
        assert!(
            (1500..1700).contains(&delivered),
            "delivered={delivered}, expected ~1600"
        );
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        let mut sim = Sim::new(7);
        let link = Link::new(10_000_000_000, SimDuration::ZERO);
        // Classic Gilbert: lossless good state, total loss in bursts of
        // mean length 4; stationary loss rate 0.1/(0.1+0.25) ≈ 28.6 %.
        link.borrow_mut().set_loss(LossModel::GilbertElliott {
            p_enter_burst: 0.1,
            p_exit_burst: 0.25,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let log = attach_logger(&link, LinkEnd::B);
        for i in 0..2000u64 {
            // Distinct payload sizes let the log identify frames.
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(64 + (i % 2) as usize));
        }
        sim.run();
        let lost = link.borrow().lost(LinkEnd::A);
        assert!(
            (400..750).contains(&lost),
            "lost={lost}, expected ~570 (28.6 %)"
        );
        assert_eq!(log.borrow().len() as u64, 2000 - lost);
        // Determinism: a second run with the same seed reproduces the
        // exact same loss count.
        let mut sim2 = Sim::new(7);
        let link2 = Link::new(10_000_000_000, SimDuration::ZERO);
        link2.borrow_mut().set_loss(LossModel::GilbertElliott {
            p_enter_burst: 0.1,
            p_exit_burst: 0.25,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let _log2 = attach_logger(&link2, LinkEnd::B);
        for i in 0..2000u64 {
            Link::transmit(
                &link2,
                &mut sim2,
                LinkEnd::A,
                mk_frame(64 + (i % 2) as usize),
            );
        }
        sim2.run();
        assert_eq!(link2.borrow().lost(LinkEnd::A), lost);
    }

    #[test]
    fn per_direction_loss_is_independent() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut()
            .set_loss_dir(LinkEnd::A, LossModel::EveryNth(1));
        let log_b = attach_logger(&link, LinkEnd::B);
        let log_a = attach_logger(&link, LinkEnd::A);
        for _ in 0..4 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
            Link::transmit(&link, &mut sim, LinkEnd::B, mk_frame(100));
        }
        sim.run();
        assert_eq!(log_b.borrow().len(), 0, "a→b drops everything");
        assert_eq!(log_a.borrow().len(), 4, "b→a stays clean");
        assert_eq!(link.borrow().lost(LinkEnd::A), 4);
        assert_eq!(link.borrow().lost(LinkEnd::B), 0);
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_faults(
            LinkEnd::A,
            FaultPlan {
                duplicate: 1.0,
                ..FaultPlan::default()
            },
        );
        let log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        sim.run();
        assert_eq!(log.borrow().len(), 2, "original + duplicate");
        // The copy lands exactly one wire-time (1104 ns for 138 wire
        // bytes) after the original.
        let times: Vec<u64> = log.borrow().iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times[1] - times[0], 1104);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
        assert_eq!(link.borrow().duplicated(LinkEnd::A), 1);
    }

    #[test]
    fn reordering_holds_frames_back() {
        let mut sim = Sim::new(3);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_faults(
            LinkEnd::A,
            FaultPlan {
                reorder: 0.3,
                reorder_hold: SimDuration::from_us(50),
                ..FaultPlan::default()
            },
        );
        let log = attach_logger(&link, LinkEnd::B);
        // Distinct sizes identify frames in the log.
        for i in 0..20 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100 + i));
        }
        sim.run();
        assert_eq!(log.borrow().len(), 20, "reordering never loses frames");
        let sizes: Vec<usize> = log.borrow().iter().map(|&(_, s)| s).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_ne!(sizes, sorted, "at least one frame must be overtaken");
    }

    #[test]
    fn corruption_marks_frames_for_fcs_discard() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_faults(
            LinkEnd::A,
            FaultPlan {
                corrupt: 1.0,
                ..FaultPlan::default()
            },
        );
        let seen: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        link.borrow_mut().attach(
            LinkEnd::B,
            Rc::new(move |_sim: &mut Sim, f: Frame| {
                s.borrow_mut().push(f.fcs_corrupt);
            }),
        );
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        sim.run();
        assert_eq!(*seen.borrow(), vec![true]);
        // Corrupt frames still count as delivered at the link layer —
        // they cost wire time; the NIC discards them.
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }

    #[test]
    fn outage_window_drops_frames() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        // A 100-byte frame is 138 wire bytes = 1104 ns. The first frame
        // finishes serializing at 1104 (inside the outage), the second at
        // 2208 (after it ends).
        link.borrow_mut().set_faults(
            LinkEnd::A,
            FaultPlan {
                outages: vec![(SimTime::ZERO, SimTime::from_ns(2_000))],
                ..FaultPlan::default()
            },
        );
        let log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        sim.run();
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(link.borrow().lost(LinkEnd::A), 1);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }

    #[test]
    fn flap_drops_both_directions_then_recovers() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        // Layered on top of an existing plan: the flap must not clobber it.
        link.borrow_mut()
            .set_loss_dir(LinkEnd::A, LossModel::EveryNth(1000));
        link.borrow_mut()
            .flap(SimTime::ZERO, SimTime::from_ns(2_000));
        let log_b = attach_logger(&link, LinkEnd::B);
        let log_a = attach_logger(&link, LinkEnd::A);
        // First frame per direction finishes serializing at 1104 ns
        // (inside the flap), the second at 2208 ns (after it ends).
        for _ in 0..2 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
            Link::transmit(&link, &mut sim, LinkEnd::B, mk_frame(100));
        }
        sim.run();
        assert_eq!(log_b.borrow().len(), 1);
        assert_eq!(log_a.borrow().len(), 1);
        assert_eq!(link.borrow().lost(LinkEnd::A), 1);
        assert_eq!(link.borrow().lost(LinkEnd::B), 1);
        assert!(
            matches!(
                link.borrow().faults(LinkEnd::A).loss,
                LossModel::EveryNth(1000)
            ),
            "flap must preserve the installed plan"
        );
    }

    #[test]
    fn clean_plan_draws_nothing_from_rng() {
        // Two runs, one with the default plan and one with a plan whose
        // probabilistic knobs are all zero, must leave the RNG in the
        // same state (checked via a sentinel draw after the run).
        let draw_after = |plan: Option<FaultPlan>| -> u64 {
            let mut sim = Sim::new(99);
            let link = Link::new(1_000_000_000, SimDuration::ZERO);
            if let Some(p) = plan {
                link.borrow_mut().set_faults_both(p);
            }
            let _log = attach_logger(&link, LinkEnd::B);
            for _ in 0..10 {
                Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(200));
            }
            sim.run();
            sim.rng.gen_range_u64(0..u64::MAX)
        };
        let baseline = draw_after(None);
        let zeroed = draw_after(Some(FaultPlan {
            outages: vec![(SimTime::from_us(500_000), SimTime::from_us(600_000))],
            ..FaultPlan::default()
        }));
        assert_eq!(baseline, zeroed, "clean path must not consume RNG draws");
    }

    #[test]
    fn backlog_tracks_queued_frames() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let _log = attach_logger(&link, LinkEnd::B);
        for _ in 0..5 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        }
        assert_eq!(link.borrow().tx_backlog(LinkEnd::A), 5);
        sim.run();
        assert_eq!(link.borrow().tx_backlog(LinkEnd::A), 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let _log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        sim.run();
        assert_eq!(
            link.borrow().busy_time(LinkEnd::A),
            SimDuration::from_ns(24_608)
        );
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let link = Link::gigabit();
        let h: FrameHandler = Rc::new(|_, _| {});
        link.borrow_mut().attach(LinkEnd::A, h.clone());
        link.borrow_mut().attach(LinkEnd::A, h);
    }

    #[test]
    fn unattached_end_discards_silently() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        sim.run();
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }
}
