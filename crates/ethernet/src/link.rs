//! Full-duplex point-to-point links.
//!
//! A link serializes frames per direction (modeling the transmit FIFO of
//! the attached station), applies a propagation delay, and can drop frames
//! according to a configurable loss model. Delivery calls the handler
//! registered at the far end.

use crate::frame::Frame;
use crate::link::private::Direction;
use clic_sim::{Layer, Sim, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

/// Callback invoked when a frame fully arrives at a link end.
pub type FrameHandler = Rc<dyn Fn(&mut Sim, Frame)>;

/// Which end of the link a station is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEnd {
    /// First end.
    A,
    /// Second end.
    B,
}

impl LinkEnd {
    /// The opposite end.
    pub fn other(self) -> LinkEnd {
        match self {
            LinkEnd::A => LinkEnd::B,
            LinkEnd::B => LinkEnd::A,
        }
    }
}

/// Frame loss injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Lossless (the common cluster case).
    None,
    /// Independent drop probability per frame.
    Bernoulli(f64),
    /// Drop every n-th frame deterministically (1-based; `EveryNth(3)`
    /// drops frames 3, 6, 9…). Deterministic, for reliability tests.
    EveryNth(u64),
}

mod private {
    use clic_sim::{SimDuration, SimTime};

    #[derive(Debug, Default)]
    pub struct Direction {
        pub busy_until: SimTime,
        pub in_flight: usize,
        pub frames_offered: u64,
        pub frames_delivered: u64,
        pub frames_lost: u64,
        pub bytes_delivered: u64,
        pub busy_time: SimDuration,
    }
}

/// A full-duplex link.
pub struct Link {
    bits_per_sec: u64,
    propagation: SimDuration,
    loss: LossModel,
    a_to_b: Direction,
    b_to_a: Direction,
    handler_a: Option<FrameHandler>,
    handler_b: Option<FrameHandler>,
}

impl Link {
    /// Create a link of the given bandwidth and propagation delay.
    pub fn new(bits_per_sec: u64, propagation: SimDuration) -> Rc<RefCell<Link>> {
        assert!(bits_per_sec > 0);
        Rc::new(RefCell::new(Link {
            bits_per_sec,
            propagation,
            loss: LossModel::None,
            a_to_b: Direction::default(),
            b_to_a: Direction::default(),
            handler_a: None,
            handler_b: None,
        }))
    }

    /// A 1 Gb/s link with sub-µs propagation — the paper's testbed cabling.
    pub fn gigabit() -> Rc<RefCell<Link>> {
        Self::new(1_000_000_000, SimDuration::from_ns(500))
    }

    /// Install the loss model.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
    }

    /// Link bandwidth in bits per second.
    pub fn bits_per_sec(&self) -> u64 {
        self.bits_per_sec
    }

    /// Register the receive handler for one end.
    pub fn attach(&mut self, end: LinkEnd, handler: FrameHandler) {
        let slot = match end {
            LinkEnd::A => &mut self.handler_a,
            LinkEnd::B => &mut self.handler_b,
        };
        assert!(slot.is_none(), "link end attached twice");
        *slot = Some(handler);
    }

    fn dir_mut(&mut self, from: LinkEnd) -> &mut Direction {
        match from {
            LinkEnd::A => &mut self.a_to_b,
            LinkEnd::B => &mut self.b_to_a,
        }
    }

    fn dir(&self, from: LinkEnd) -> &Direction {
        match from {
            LinkEnd::A => &self.a_to_b,
            LinkEnd::B => &self.b_to_a,
        }
    }

    /// Frames accepted but not yet fully on the wire from `from`'s side
    /// (transmit backlog) — the switch uses this for tail drop.
    pub fn tx_backlog(&self, from: LinkEnd) -> usize {
        self.dir(from).in_flight
    }

    /// Frames fully delivered to the end opposite `from`.
    pub fn delivered(&self, from: LinkEnd) -> u64 {
        self.dir(from).frames_delivered
    }

    /// Frames dropped by the loss model in the `from` direction.
    pub fn lost(&self, from: LinkEnd) -> u64 {
        self.dir(from).frames_lost
    }

    /// Payload-inclusive bytes delivered in the `from` direction.
    pub fn bytes_delivered(&self, from: LinkEnd) -> u64 {
        self.dir(from).bytes_delivered
    }

    /// Cumulative serialization time in the `from` direction (for link
    /// utilisation reporting).
    pub fn busy_time(&self, from: LinkEnd) -> SimDuration {
        self.dir(from).busy_time
    }

    /// Transmit `frame` from `from` towards the opposite end. The frame is
    /// serialized after any frames already queued in that direction, then
    /// propagates and is delivered to the far handler (unless lost).
    pub fn transmit(link: &Rc<RefCell<Link>>, sim: &mut Sim, from: LinkEnd, frame: Frame) {
        sim.metrics
            .observe("eth.link.frame_bytes", frame.frame_bytes() as u64);
        if frame.trace != 0 {
            sim.trace.begin(sim.now(), Layer::Eth, "wire", frame.trace);
        }
        let (deliver_at, serialize_done, frame_seq) = {
            let mut l = link.borrow_mut();
            let wire = frame.wire_time(l.bits_per_sec);
            let prop = l.propagation;
            let d = l.dir_mut(from);
            d.frames_offered += 1;
            let seq = d.frames_offered;
            d.in_flight += 1;
            let start = d.busy_until.max(sim.now());
            let done = start + wire;
            d.busy_until = done;
            d.busy_time += wire;
            (done + prop, done, seq)
        };
        let link2 = link.clone();
        sim.schedule_at(serialize_done, move |sim| {
            let (handler, frame) = {
                let mut l = link2.borrow_mut();
                let lost = match l.loss {
                    LossModel::None => false,
                    LossModel::Bernoulli(p) => sim.rng.gen_bool(p),
                    LossModel::EveryNth(n) => n > 0 && frame_seq % n == 0,
                };
                let d = l.dir_mut(from);
                d.in_flight -= 1;
                if lost {
                    d.frames_lost += 1;
                    sim.metrics.counter_inc("eth.link.frames_lost");
                    if frame.trace != 0 {
                        // Close the wire span at the loss point so the
                        // trace stays balanced, then mark the drop.
                        sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                        sim.trace
                            .instant(sim.now(), Layer::Eth, "link_drop", frame.trace);
                    }
                    return;
                }
                d.frames_delivered += 1;
                d.bytes_delivered += frame.frame_bytes() as u64;
                let handler = match from.other() {
                    LinkEnd::A => l.handler_a.clone(),
                    LinkEnd::B => l.handler_b.clone(),
                };
                (handler, frame)
            };
            match handler {
                Some(h) => {
                    let prop = deliver_at - sim.now();
                    sim.schedule_in(prop, move |sim| {
                        if frame.trace != 0 {
                            sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                        }
                        h(sim, frame)
                    });
                }
                None if frame.trace != 0 => {
                    // No station attached: the frame vanishes, but the span
                    // must still close.
                    sim.trace.end(sim.now(), Layer::Eth, "wire", frame.trace);
                }
                None => {}
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{EtherType, MacAddr};
    use bytes::Bytes;
    use clic_sim::SimTime;
    use std::cell::RefCell;

    fn mk_frame(len: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(2, 0),
            MacAddr::for_node(1, 0),
            EtherType::CLIC,
            Bytes::from(vec![7u8; len]),
        )
    }

    type Log = Rc<RefCell<Vec<(SimTime, usize)>>>;

    fn attach_logger(link: &Rc<RefCell<Link>>, end: LinkEnd) -> Log {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        link.borrow_mut().attach(
            end,
            Rc::new(move |sim: &mut Sim, f: Frame| {
                l.borrow_mut().push((sim.now(), f.payload.len()));
            }),
        );
        log
    }

    #[test]
    fn delivery_after_serialization_plus_propagation() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::from_ns(500));
        let log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        sim.run();
        // 1538 wire bytes = 12304 ns, +500 ns propagation.
        assert_eq!(*log.borrow(), vec![(SimTime::from_ns(12_804), 1500)]);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }

    #[test]
    fn back_to_back_frames_serialize() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..3 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        }
        sim.run();
        let times: Vec<u64> = log.borrow().iter().map(|(t, _)| t.as_ns()).collect();
        assert_eq!(times, vec![12_304, 24_608, 36_912]);
    }

    #[test]
    fn directions_are_independent() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let log_b = attach_logger(&link, LinkEnd::B);
        let log_a = attach_logger(&link, LinkEnd::A);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        Link::transmit(&link, &mut sim, LinkEnd::B, mk_frame(1500));
        sim.run();
        // Full duplex: both arrive at the one-frame serialization time.
        assert_eq!(log_b.borrow()[0].0, SimTime::from_ns(12_304));
        assert_eq!(log_a.borrow()[0].0, SimTime::from_ns(12_304));
    }

    #[test]
    fn every_nth_loss_drops_deterministically() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_loss(LossModel::EveryNth(3));
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..9 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        }
        sim.run();
        assert_eq!(log.borrow().len(), 6);
        assert_eq!(link.borrow().lost(LinkEnd::A), 3);
        assert_eq!(link.borrow().delivered(LinkEnd::A), 6);
    }

    #[test]
    fn bernoulli_loss_statistics() {
        let mut sim = Sim::new(42);
        let link = Link::new(10_000_000_000, SimDuration::ZERO);
        link.borrow_mut().set_loss(LossModel::Bernoulli(0.2));
        let log = attach_logger(&link, LinkEnd::B);
        for _ in 0..2000 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(64));
        }
        sim.run();
        let delivered = log.borrow().len();
        assert!(
            (1500..1700).contains(&delivered),
            "delivered={delivered}, expected ~1600"
        );
    }

    #[test]
    fn backlog_tracks_queued_frames() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let _log = attach_logger(&link, LinkEnd::B);
        for _ in 0..5 {
            Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        }
        assert_eq!(link.borrow().tx_backlog(LinkEnd::A), 5);
        sim.run();
        assert_eq!(link.borrow().tx_backlog(LinkEnd::A), 0);
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = Sim::new(0);
        let link = Link::new(1_000_000_000, SimDuration::ZERO);
        let _log = attach_logger(&link, LinkEnd::B);
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(1500));
        sim.run();
        assert_eq!(
            link.borrow().busy_time(LinkEnd::A),
            SimDuration::from_ns(24_608)
        );
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let link = Link::gigabit();
        let h: FrameHandler = Rc::new(|_, _| {});
        link.borrow_mut().attach(LinkEnd::A, h.clone());
        link.borrow_mut().attach(LinkEnd::A, h);
    }

    #[test]
    fn unattached_end_discards_silently() {
        let mut sim = Sim::new(0);
        let link = Link::gigabit();
        Link::transmit(&link, &mut sim, LinkEnd::A, mk_frame(100));
        sim.run();
        assert_eq!(link.borrow().delivered(LinkEnd::A), 1);
    }
}
