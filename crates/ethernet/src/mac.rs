//! MAC addresses and EtherTypes.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Deterministic locally-administered unicast address for a simulated
    /// node's `nic`-th interface.
    pub fn for_node(node: u32, nic: u8) -> MacAddr {
        let n = node.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, nic, n[0], n[1], n[2], n[3]])
    }

    /// Deterministic multicast group address (I/G bit set).
    pub fn multicast_group(group: u32) -> MacAddr {
        let g = group.to_be_bytes();
        MacAddr([0x03, 0x00, g[0], g[1], g[2], g[3]])
    }

    /// True for broadcast.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True when the I/G bit is set (multicast or broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for a specific-station address.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The 2-byte type field of the level-1 Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4 — carries the TCP/IP baseline.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// CLIC — the paper's protocol rides directly on level-1 Ethernet with
    /// its own packet type (we use an address from the experimental range).
    pub const CLIC: EtherType = EtherType(0x88B5);
    /// The GAMMA-like comparison protocol.
    pub const GAMMA: EtherType = EtherType(0x88B6);
    /// NIC-level fragmentation-offload shim (see `clic-hw`): both NICs must
    /// enable the offload, mirroring the paper's interoperability caveat.
    pub const FRAG: EtherType = EtherType(0x88B7);
    /// NIC-resident collective engine control frames (see `clic-hw`):
    /// barrier/broadcast/reduction messages processed entirely in NIC
    /// firmware, never raising a host interrupt.
    pub const COLL: EtherType = EtherType(0x88B8);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_addresses_unique_and_unicast() {
        let a = MacAddr::for_node(1, 0);
        let b = MacAddr::for_node(1, 1);
        let c = MacAddr::for_node(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert!(a.is_unicast());
        assert!(!a.is_broadcast());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let m = MacAddr::multicast_group(9);
        assert!(m.is_multicast());
        assert!(!m.is_broadcast());
        assert!(!m.is_unicast());
    }

    #[test]
    fn multicast_groups_distinct() {
        assert_ne!(MacAddr::multicast_group(1), MacAddr::multicast_group(2));
    }

    #[test]
    fn display_format() {
        let a = MacAddr([0x02, 0x00, 0, 0, 0, 0x2a]);
        assert_eq!(a.to_string(), "02:00:00:00:00:2a");
    }

    #[test]
    fn ethertypes_distinct() {
        assert_ne!(EtherType::IPV4, EtherType::CLIC);
        assert_ne!(EtherType::CLIC, EtherType::GAMMA);
    }
}
