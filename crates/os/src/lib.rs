//! # clic-os — Linux-like kernel substrate
//!
//! Everything the paper's protocols touch inside the operating system:
//!
//! * [`costs`] — the OS-level cost model: the 0.65 µs system call of §3.1,
//!   the lightweight-call variant GAMMA uses (§3.2), IRQ entry, bottom-half
//!   dispatch, context switches, per-frame driver work.
//! * [`skbuff`] — the `SK_BUFF` abstraction: composed protocol headers plus
//!   scatter-gather data fragments that may point at **user** memory
//!   (0-copy) or a **kernel** staging buffer (1-copy).
//! * [`process`] — minimal process bookkeeping: pids, blocked/running
//!   state, context-switch accounting for wakeups.
//! * [`kernel`] — the per-node kernel: CPU, system calls, protocol handler
//!   dispatch by EtherType, bottom halves (with the Figure 8b "direct call"
//!   improvement as a switch), timers.
//! * [`driver`] — the unmodified GbE driver both TCP/IP and CLIC share:
//!   `hard_start_xmit` on the send side; on receive the IRQ routine that
//!   moves frames from NIC to system memory (the dominant stage of
//!   Figure 7a) and hands them to protocols via bottom halves.

#![allow(clippy::type_complexity)]
#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod costs;
pub mod driver;
pub mod kernel;
pub mod process;
pub mod skbuff;

pub use costs::OsCosts;
pub use kernel::{Kernel, PacketHandler};
pub use process::{Pid, ProcessTable};
pub use skbuff::{DataLocation, SkBuff};
