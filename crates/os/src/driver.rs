//! The (unmodified) Gigabit Ethernet driver.
//!
//! CLIC's design constraint is that it must work with stock NIC drivers —
//! the same `hard_start_xmit` and interrupt routine serve both CLIC and the
//! TCP/IP baseline, matching §3.1 of the paper.
//!
//! * **Transmit**: a short descriptor-setup cost, then the NIC is kicked;
//!   the NIC DMAs the SkBuff as bus master, so "CLIC_MODULE and the driver
//!   can finish before the data transference starts, and free the CPU".
//! * **Receive**: the interrupt routine drains the NIC RX buffers, moving
//!   each frame to system memory (the driver busy-waits the DMA — this is
//!   the ≈ 15 µs stage of Figure 7a for a 1400-byte frame) and dispatches
//!   frames to protocol handlers through bottom halves, or directly when
//!   [`Kernel::direct_dispatch`] is set (Figure 8b).

use crate::kernel::Kernel;
use crate::skbuff::SkBuff;
use clic_ethernet::{EtherType, MacAddr, ETH_HEADER};
use clic_hw::{Nic, TxDescriptor};
use clic_sim::catalog::counter_id;
use clic_sim::{Layer, MetricId, Sim};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::{Rc, Weak};

/// Interned id of the per-interrupt counter (one bump per hardware IRQ).
const M_IRQS: MetricId = counter_id("os.irqs");

/// Post an SkBuff for transmission on device `dev`. The driver charges its
/// descriptor-setup cost, then posts to the NIC; `on_result` receives
/// `false` when the TX ring is full (the caller stages and retries — §3.1's
/// "if the data cannot be sent at the present moment" branch).
pub fn hard_start_xmit(
    kernel: &Rc<RefCell<Kernel>>,
    sim: &mut Sim,
    dev: usize,
    dst: MacAddr,
    ethertype: EtherType,
    skb: SkBuff,
    on_result: impl FnOnce(&mut Sim, bool) + 'static,
) {
    let (nic, cost) = {
        let k = kernel.borrow();
        (k.device(dev), k.costs.driver_tx_per_frame)
    };
    if skb.trace != 0 {
        sim.trace
            .begin(sim.now(), Layer::Os, "driver_tx", skb.trace);
    }
    let trace = skb.trace;
    Kernel::cpu_task(kernel, sim, cost, move |sim| {
        if trace != 0 {
            sim.trace.end(sim.now(), Layer::Os, "driver_tx", trace);
        }
        let ok = Nic::transmit(
            &nic,
            sim,
            TxDescriptor {
                dst,
                ethertype,
                payload: skb.linearize(),
                trace,
            },
        );
        on_result(sim, ok);
    });
}

/// Wire device `dev`'s interrupt line to the driver top half. Called by
/// [`Kernel::add_device`].
pub(crate) fn install_irq(kernel: &Rc<RefCell<Kernel>>, dev: usize) {
    let nic = kernel.borrow().device(dev);
    // Weak reference: the NIC outlives nothing here, but a strong ref would
    // cycle kernel -> nic -> handler -> kernel.
    let weak: Weak<RefCell<Kernel>> = Rc::downgrade(kernel);
    nic.borrow_mut()
        .set_irq_handler(Rc::new(move |sim: &mut Sim| {
            if let Some(kernel) = weak.upgrade() {
                irq_top_half(&kernel, sim, dev);
            }
        }));
}

/// IRQ entry: charge prologue + per-interrupt driver fixed cost, then start
/// moving frames.
fn irq_top_half(kernel: &Rc<RefCell<Kernel>>, sim: &mut Sim, dev: usize) {
    if kernel.borrow().is_halted() {
        // Crash-stopped node: nobody services the interrupt. Discard the
        // NIC's pending frames (the ring is overwritten on a dead host) and
        // acknowledge so the device re-arms cleanly for a later restart.
        let nic = kernel.borrow().device(dev);
        nic.borrow_mut().drain_rx_up_to(usize::MAX);
        Nic::ack_irq(&nic, sim);
        return;
    }
    let cost = {
        let mut k = kernel.borrow_mut();
        k.stats.irqs += 1;
        k.costs.irq_entry + k.costs.driver_irq_fixed
    };
    sim.metrics.counter_inc_id(M_IRQS);
    let kernel2 = kernel.clone();
    Kernel::cpu_irq(kernel, sim, cost, move |sim| {
        rx_round(&kernel2, sim, dev, RX_BUDGET);
    });
}

/// Frames one interrupt may move before yielding (NAPI-style budget): it
/// bounds how long the IRQ monopolizes the CPU, so bottom halves (protocol
/// processing, ACK generation) get a window under sustained load.
const RX_BUDGET: usize = 32;

/// Drain the NIC once and process that batch ("it moves all the pending
/// packets", §3.2) up to the budget, then acknowledge; frames that arrive
/// meanwhile re-raise the interrupt (deferred by the coalescing timer),
/// which gives bottom halves — protocol processing, ACK generation — a
/// window between batches instead of livelocking the CPU in IRQ context.
fn rx_round(kernel: &Rc<RefCell<Kernel>>, sim: &mut Sim, dev: usize, budget: usize) {
    let nic = kernel.borrow().device(dev);
    let pkts: VecDeque<_> = nic.borrow_mut().drain_rx_up_to(budget).into();
    if pkts.is_empty() {
        Nic::ack_irq(&nic, sim);
        return;
    }
    process_frames(kernel, sim, dev, pkts);
}

fn process_frames(
    kernel: &Rc<RefCell<Kernel>>,
    sim: &mut Sim,
    dev: usize,
    mut pkts: VecDeque<clic_hw::RxPacket>,
) {
    let Some(pkt) = pkts.pop_front() else {
        let nic = kernel.borrow().device(dev);
        Nic::ack_irq(&nic, sim);
        return;
    };
    let frame = pkt.frame;
    let (nic, per_frame) = {
        let k = kernel.borrow();
        (k.device(dev), k.costs.driver_rx_per_frame)
    };
    let pci = nic.borrow().pci();
    let bytes = ETH_HEADER + frame.payload.len();
    // With host rings the data is already in system memory: the driver only
    // does ring bookkeeping. Otherwise it allocates the SK_BUFF and stays
    // in the routine until the data has been moved to system memory: CPU
    // held for setup + DMA time, and the bus transaction accounted on PCI.
    let move_cost = if nic.borrow().host_rings() {
        per_frame
    } else {
        pci.dma(sim, bytes, |_| {});
        per_frame + pci.service_time(bytes)
    };
    if frame.trace != 0 {
        sim.trace
            .begin(sim.now(), Layer::Os, "driver_rx", frame.trace);
    }
    let kernel2 = kernel.clone();
    Kernel::cpu_irq(kernel, sim, move_cost, move |sim| {
        if frame.trace != 0 {
            sim.trace
                .end(sim.now(), Layer::Os, "driver_rx", frame.trace);
        }
        kernel2.borrow_mut().stats.frames_received += 1;
        dispatch(&kernel2, sim, dev, frame);
        process_frames(&kernel2, sim, dev, pkts);
    });
}

/// Hand a frame (now in system memory) to its protocol.
fn dispatch(kernel: &Rc<RefCell<Kernel>>, sim: &mut Sim, dev: usize, frame: Frame) {
    let (handler, direct) = {
        let k = kernel.borrow();
        if k.halted {
            return; // crashed between the interrupt and protocol dispatch
        }
        (k.handler_for(frame.ethertype.0), k.direct_dispatch)
    };
    let Some(handler) = handler else {
        return; // no protocol registered: frame silently dropped
    };
    if direct {
        // Figure 8b: the driver calls the module straight away.
        let kernel2 = kernel.clone();
        handler.handle(sim, &kernel2, dev, frame);
    } else {
        let kernel2 = kernel.clone();
        let trace = frame.trace;
        if trace != 0 {
            sim.trace.begin(sim.now(), Layer::Os, "bottom_half", trace);
        }
        Kernel::schedule_bh(kernel, sim, move |sim| {
            if trace != 0 {
                sim.trace.end(sim.now(), Layer::Os, "bottom_half", trace);
            }
            handler.handle(sim, &kernel2, dev, frame);
        });
    }
}

use clic_ethernet::Frame;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::OsCosts;
    use crate::kernel::PacketHandler;
    use bytes::Bytes;
    use clic_ethernet::{Link, LinkEnd};
    use clic_hw::{NicConfig, PciBus};
    use clic_sim::{SimDuration, SimTime};

    /// Two full nodes (kernel + NIC + PCI) wired back-to-back.
    struct TwoNodes {
        a: Rc<RefCell<Kernel>>,
        b: Rc<RefCell<Kernel>>,
        b_mac: MacAddr,
    }

    fn no_coalesce() -> NicConfig {
        let mut cfg = NicConfig::gigabit_standard();
        cfg.coalesce_usecs = 0;
        cfg.coalesce_frames = 1;
        cfg
    }

    fn mk_nodes(cfg: NicConfig) -> TwoNodes {
        let link = Link::gigabit();
        let a = Kernel::new(1, OsCosts::era_2002());
        let b = Kernel::new(2, OsCosts::era_2002());
        let nic_a = Nic::new(
            MacAddr::for_node(1, 0),
            cfg.clone(),
            PciBus::pci_33mhz_32bit(),
            link.clone(),
            LinkEnd::A,
        );
        let nic_b = Nic::new(
            MacAddr::for_node(2, 0),
            cfg,
            PciBus::pci_33mhz_32bit(),
            link,
            LinkEnd::B,
        );
        Nic::attach_to_link(&nic_a);
        Nic::attach_to_link(&nic_b);
        Kernel::add_device(&a, nic_a);
        Kernel::add_device(&b, nic_b);
        let b_mac = MacAddr::for_node(2, 0);
        TwoNodes { a, b, b_mac }
    }

    /// Records every frame a node's test protocol receives.
    struct Recorder {
        frames: RefCell<Vec<(SimTime, Frame)>>,
    }
    impl PacketHandler for Recorder {
        fn handle(&self, sim: &mut Sim, _: &Rc<RefCell<Kernel>>, _: usize, frame: Frame) {
            self.frames.borrow_mut().push((sim.now(), frame));
        }
    }

    fn install_recorder(k: &Rc<RefCell<Kernel>>) -> Rc<Recorder> {
        let r = Rc::new(Recorder {
            frames: RefCell::new(Vec::new()),
        });
        k.borrow_mut()
            .register_handler(EtherType::CLIC.0, r.clone());
        r
    }

    fn xmit(nodes: &TwoNodes, sim: &mut Sim, payload: Bytes) {
        let skb = SkBuff::zero_copy(Bytes::from_static(b"HDRxHDRxHDRx"), payload);
        hard_start_xmit(
            &nodes.a,
            sim,
            0,
            nodes.b_mac,
            EtherType::CLIC,
            skb,
            |_, ok| assert!(ok),
        );
    }

    #[test]
    fn frame_travels_kernel_to_kernel() {
        let mut sim = Sim::new(0);
        let nodes = mk_nodes(no_coalesce());
        let rx = install_recorder(&nodes.b);
        xmit(&nodes, &mut sim, Bytes::from(vec![0x77u8; 1000]));
        sim.run();
        let frames = rx.frames.borrow();
        assert_eq!(frames.len(), 1);
        // Header + data concatenated on the wire.
        assert_eq!(frames[0].1.payload.len(), 12 + 1000);
        assert_eq!(&frames[0].1.payload[..12], b"HDRxHDRxHDRx");
        assert!(frames[0].1.payload[12..].iter().all(|&b| b == 0x77));
        assert_eq!(nodes.b.borrow().stats().irqs, 1);
        assert_eq!(nodes.b.borrow().stats().frames_received, 1);
        assert_eq!(nodes.b.borrow().stats().bhs, 1);
    }

    #[test]
    fn direct_dispatch_skips_bottom_half_and_is_faster() {
        fn deliver_time(direct: bool) -> SimTime {
            let mut sim = Sim::new(0);
            let nodes = mk_nodes(no_coalesce());
            nodes.b.borrow_mut().direct_dispatch = direct;
            let rx = install_recorder(&nodes.b);
            xmit(&nodes, &mut sim, Bytes::from(vec![1u8; 1400]));
            sim.run();
            let t = rx.frames.borrow()[0].0;
            if direct {
                assert_eq!(nodes.b.borrow().stats().bhs, 0);
            } else {
                assert_eq!(nodes.b.borrow().stats().bhs, 1);
            }
            t
        }
        let via_bh = deliver_time(false);
        let direct = deliver_time(true);
        assert!(direct < via_bh, "direct={direct} bh={via_bh}");
    }

    #[test]
    fn unregistered_ethertype_dropped_without_panic() {
        let mut sim = Sim::new(0);
        let nodes = mk_nodes(no_coalesce());
        // No handler registered on b.
        xmit(&nodes, &mut sim, Bytes::from(vec![1u8; 100]));
        sim.run();
        assert_eq!(nodes.b.borrow().stats().frames_received, 1);
    }

    #[test]
    fn burst_is_drained_with_fewer_interrupts_than_frames() {
        let mut sim = Sim::new(0);
        // Realistic coalescing.
        let nodes = mk_nodes(NicConfig::gigabit_standard());
        let rx = install_recorder(&nodes.b);
        for _ in 0..32 {
            xmit(&nodes, &mut sim, Bytes::from(vec![2u8; 1400]));
        }
        sim.run();
        assert_eq!(rx.frames.borrow().len(), 32);
        let irqs = nodes.b.borrow().stats().irqs;
        assert!(
            irqs < 32,
            "coalescing + in-routine draining should batch: {irqs} irqs"
        );
        assert!(irqs >= 1);
    }

    #[test]
    fn receive_stage_times_match_figure7_scale() {
        // A 1400-byte packet's driver receive stage should land in the
        // 10..20 us band the paper measures (Fig. 7a shows ~15 us).
        let mut sim = Sim::new(0);
        sim.trace = clic_sim::Trace::enabled();
        let nodes = mk_nodes(no_coalesce());
        install_recorder(&nodes.b);
        let skb = SkBuff::zero_copy(Bytes::new(), Bytes::from(vec![5u8; 1400])).with_trace(42);
        hard_start_xmit(
            &nodes.a,
            &mut sim,
            0,
            nodes.b_mac,
            EtherType::CLIC,
            skb,
            |_, ok| assert!(ok),
        );
        sim.run();
        let spans = sim.trace.spans_for(42).expect("all marks matched");
        let driver_rx = spans.iter().find(|s| s.stage == "driver_rx").unwrap();
        let d = driver_rx.duration();
        assert!(
            (SimDuration::from_us(10)..SimDuration::from_us(20)).contains(&d),
            "driver_rx stage = {d}"
        );
    }

    #[test]
    fn halted_node_drops_frames_and_resumes_cleanly() {
        let mut sim = Sim::new(0);
        let nodes = mk_nodes(no_coalesce());
        let rx = install_recorder(&nodes.b);
        nodes.b.borrow_mut().halt();
        assert!(nodes.b.borrow().is_halted());
        xmit(&nodes, &mut sim, Bytes::from(vec![1u8; 100]));
        sim.run();
        assert_eq!(
            rx.frames.borrow().len(),
            0,
            "a crash-stopped node must not dispatch frames"
        );
        assert_eq!(
            nodes.b.borrow().stats().irqs,
            0,
            "dead CPU services nothing"
        );

        nodes.b.borrow_mut().resume();
        xmit(&nodes, &mut sim, Bytes::from(vec![2u8; 100]));
        sim.run();
        let frames = rx.frames.borrow();
        assert_eq!(frames.len(), 1, "a resumed node receives again");
        assert!(frames[0].1.payload[12..].iter().all(|&b| b == 2));
    }

    #[test]
    fn tx_ring_full_reported_to_caller() {
        let mut sim = Sim::new(0);
        let mut cfg = no_coalesce();
        cfg.tx_ring = 1;
        let nodes = mk_nodes(cfg);
        install_recorder(&nodes.b);
        let results = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let r = results.clone();
            let skb = SkBuff::zero_copy(Bytes::new(), Bytes::from(vec![0u8; 1400]));
            hard_start_xmit(
                &nodes.a,
                &mut sim,
                0,
                nodes.b_mac,
                EtherType::CLIC,
                skb,
                move |_, ok| r.borrow_mut().push(ok),
            );
        }
        sim.run();
        let results = results.borrow();
        assert_eq!(results.len(), 3);
        assert!(results.contains(&false), "expected at least one refusal");
    }
}

#[cfg(test)]
mod host_ring_tests {
    use super::*;
    use crate::costs::OsCosts;
    use crate::kernel::PacketHandler;
    use bytes::Bytes;
    use clic_ethernet::{Link, LinkEnd};
    use clic_hw::{NicConfig, PciBus};
    use clic_sim::SimTime;

    struct Stamp {
        at: RefCell<Option<SimTime>>,
    }
    impl PacketHandler for Stamp {
        fn handle(&self, sim: &mut Sim, _: &Rc<RefCell<Kernel>>, _: usize, _: Frame) {
            *self.at.borrow_mut() = Some(sim.now());
        }
    }

    /// With host rings the driver's per-frame stage shrinks to ring
    /// bookkeeping — the NIC paid the PCI time before interrupting — so
    /// end-to-end delivery is faster than the busy-wait model even though
    /// the same bytes cross the same bus.
    #[test]
    fn host_rings_speed_up_delivery() {
        fn deliver(host_rings: bool) -> SimTime {
            let mut sim = Sim::new(0);
            let link = Link::gigabit();
            let mut cfg = NicConfig::gigabit_standard();
            cfg.coalesce_usecs = 0;
            cfg.coalesce_frames = 1;
            cfg.host_rings = host_rings;
            let a = Kernel::new(1, OsCosts::era_2002());
            let b = Kernel::new(2, OsCosts::era_2002());
            let nic_a = Nic::new(
                MacAddr::for_node(1, 0),
                cfg.clone(),
                PciBus::pci_33mhz_32bit(),
                link.clone(),
                LinkEnd::A,
            );
            let nic_b = Nic::new(
                MacAddr::for_node(2, 0),
                cfg,
                PciBus::pci_33mhz_32bit(),
                link,
                LinkEnd::B,
            );
            Nic::attach_to_link(&nic_a);
            Nic::attach_to_link(&nic_b);
            Kernel::add_device(&a, nic_a);
            Kernel::add_device(&b, nic_b);
            let stamp = Rc::new(Stamp {
                at: RefCell::new(None),
            });
            b.borrow_mut()
                .register_handler(EtherType::CLIC.0, stamp.clone());
            let skb = SkBuff::zero_copy(Bytes::new(), Bytes::from(vec![3u8; 1400]));
            hard_start_xmit(
                &a,
                &mut sim,
                0,
                MacAddr::for_node(2, 0),
                EtherType::CLIC,
                skb,
                |_, ok| assert!(ok),
            );
            sim.run();
            let at = stamp.at.borrow().expect("frame must be dispatched");
            at
        }
        let busy_wait = deliver(false);
        let rings = deliver(true);
        // Both models pay the PCI transfer; the ring model additionally
        // drops the in-IRQ busy wait for it, so it must not be slower.
        assert!(
            rings <= busy_wait,
            "host rings {rings} should not lose to busy-wait {busy_wait}"
        );
    }
}
