//! Minimal process bookkeeping.
//!
//! Protocol layers own their wait queues (a blocked `recv` parks a
//! continuation with the protocol); the process table tracks identity and
//! run state so wakeups can charge scheduler/context-switch time and tests
//! can assert on multiprogramming behaviour.

use std::collections::BTreeMap;

/// Process identifier, unique within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Run state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable or running.
    Running,
    /// Parked waiting for a message or event.
    Blocked,
}

#[derive(Debug)]
struct Proc {
    name: String,
    state: ProcState,
    wakeups: u64,
}

/// The per-node process table.
#[derive(Debug, Default)]
pub struct ProcessTable {
    next: u32,
    procs: BTreeMap<Pid, Proc>,
}

impl ProcessTable {
    /// New empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a process.
    pub fn spawn(&mut self, name: impl Into<String>) -> Pid {
        let pid = Pid(self.next);
        self.next += 1;
        self.procs.insert(
            pid,
            Proc {
                name: name.into(),
                state: ProcState::Running,
                wakeups: 0,
            },
        );
        pid
    }

    /// Current state, `None` for unknown pids.
    pub fn state(&self, pid: Pid) -> Option<ProcState> {
        self.procs.get(&pid).map(|p| p.state)
    }

    /// Process name.
    pub fn name(&self, pid: Pid) -> Option<&str> {
        self.procs.get(&pid).map(|p| p.name.as_str())
    }

    /// Mark blocked (idempotent).
    pub fn block(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.state = ProcState::Blocked;
        }
    }

    /// Mark runnable; returns true if the process was blocked (i.e. a real
    /// wakeup that costs a context switch).
    pub fn wake(&mut self, pid: Pid) -> bool {
        match self.procs.get_mut(&pid) {
            Some(p) if p.state == ProcState::Blocked => {
                p.state = ProcState::Running;
                p.wakeups += 1;
                true
            }
            _ => false,
        }
    }

    /// Number of wakeups the process has experienced.
    pub fn wakeups(&self, pid: Pid) -> u64 {
        self.procs.get(&pid).map(|p| p.wakeups).unwrap_or(0)
    }

    /// Number of registered processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when no process is registered.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_assigns_unique_pids() {
        let mut t = ProcessTable::new();
        let a = t.spawn("a");
        let b = t.spawn("b");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), Some("a"));
        assert_eq!(t.state(a), Some(ProcState::Running));
    }

    #[test]
    fn block_wake_cycle() {
        let mut t = ProcessTable::new();
        let p = t.spawn("w");
        t.block(p);
        assert_eq!(t.state(p), Some(ProcState::Blocked));
        assert!(t.wake(p));
        assert_eq!(t.state(p), Some(ProcState::Running));
        assert_eq!(t.wakeups(p), 1);
        // Waking a running process is a no-op.
        assert!(!t.wake(p));
        assert_eq!(t.wakeups(p), 1);
    }

    #[test]
    fn unknown_pid_is_none() {
        let t = ProcessTable::new();
        assert_eq!(t.state(Pid(99)), None);
        assert_eq!(t.name(Pid(99)), None);
    }
}
