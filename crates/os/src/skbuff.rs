//! The SK_BUFF abstraction.
//!
//! §3.1: "The SK_BUFF structure used by the drivers allows a fragmented
//! send, i.e. it is possible to send data which are not allocated in
//! contiguous memory addresses. Thus, SK_BUFF includes the pointers to the
//! headers and the data to be sent from the user space."
//!
//! Our `SkBuff` carries the real composed header bytes plus the data, and
//! records *where* the data lives. The location is what distinguishes the
//! 0-copy path (scatter-gather straight out of user memory) from the 1-copy
//! path (a kernel staging buffer the CPU filled): the bytes are identical,
//! but whoever built a kernel-located SkBuff already paid the copy cost.

use bytes::{BufMut, Bytes, BytesMut};

/// Where an SkBuff's data fragments live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataLocation {
    /// Pinned user pages — the 0-copy send path (path 2 of Figure 1).
    User,
    /// A kernel staging buffer — the 1-copy path (paths 3/4 of Figure 1).
    Kernel,
}

/// A socket buffer: protocol headers + payload fragments.
#[derive(Debug, Clone)]
pub struct SkBuff {
    /// Composed protocol headers (Ethernet-level payload prefix).
    pub header: Bytes,
    /// Payload data.
    pub data: Bytes,
    /// Where `data` resides.
    pub location: DataLocation,
    /// Pipeline-trace id (0 = untraced).
    pub trace: u64,
}

impl SkBuff {
    /// Build an SkBuff whose data is referenced in place in user memory
    /// (scatter-gather send, no CPU copy).
    pub fn zero_copy(header: Bytes, data: Bytes) -> SkBuff {
        SkBuff {
            header,
            data,
            location: DataLocation::User,
            trace: 0,
        }
    }

    /// Build an SkBuff whose data was staged into kernel memory. The caller
    /// is responsible for charging the copy cost; this constructor
    /// physically clones the bytes so aliasing bugs in the protocol stacks
    /// cannot fake integrity.
    pub fn staged(header: Bytes, data: &Bytes) -> SkBuff {
        SkBuff {
            header,
            data: Bytes::copy_from_slice(data),
            location: DataLocation::Kernel,
            trace: 0,
        }
    }

    /// Tag with a pipeline-trace id.
    pub fn with_trace(mut self, id: u64) -> SkBuff {
        self.trace = id;
        self
    }

    /// Total bytes the NIC must read from host memory.
    pub fn wire_payload_len(&self) -> usize {
        self.header.len() + self.data.len()
    }

    /// Linearize header + data into the on-wire payload. (In the model this
    /// is how the scatter-gather DMA presents the frame; it is not a
    /// CPU copy.)
    pub fn linearize(&self) -> Bytes {
        let mut out = BytesMut::with_capacity(self.wire_payload_len());
        out.put_slice(&self.header);
        out.put_slice(&self.data);
        out.freeze()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_shares_no_bytes_cloned() {
        let data = Bytes::from(vec![9u8; 1000]);
        let skb = SkBuff::zero_copy(Bytes::from_static(b"HDR"), data.clone());
        assert_eq!(skb.location, DataLocation::User);
        // Bytes handles share the same backing storage: same pointer.
        assert_eq!(skb.data.as_ptr(), data.as_ptr());
    }

    #[test]
    fn staged_clones_storage() {
        let data = Bytes::from(vec![7u8; 64]);
        let skb = SkBuff::staged(Bytes::new(), &data);
        assert_eq!(skb.location, DataLocation::Kernel);
        assert_ne!(skb.data.as_ptr(), data.as_ptr());
        assert_eq!(skb.data, data);
    }

    #[test]
    fn linearize_concatenates() {
        let skb = SkBuff::zero_copy(Bytes::from_static(&[1, 2]), Bytes::from_static(&[3, 4, 5]));
        assert_eq!(skb.wire_payload_len(), 5);
        assert_eq!(&skb.linearize()[..], &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_data_allowed() {
        let skb = SkBuff::zero_copy(Bytes::from_static(&[0xa]), Bytes::new());
        assert_eq!(skb.wire_payload_len(), 1);
        assert_eq!(&skb.linearize()[..], &[0xa]);
    }
}
