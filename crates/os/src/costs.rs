//! OS-level cost model.
//!
//! These constants are *inputs* calibrated to the scalars the paper
//! publishes (system call 0.65 µs on a 1.5 GHz PC; a receive-interrupt path
//! of ≈ 20 µs for a 1400-byte packet, §4/Fig. 7). Bandwidth curves and
//! latency totals are *outputs* of the simulation, checked against the
//! paper in EXPERIMENTS.md.

use clic_hw::CopyModel;
use clic_sim::SimDuration;

/// Costs charged by kernel code paths.
#[derive(Debug, Clone, Copy)]
pub struct OsCosts {
    /// Enter + leave the kernel through INT 80h, including the scheduler
    /// check on return (§3.1: ≈ 0.65 µs at 1.5 GHz).
    pub syscall: SimDuration,
    /// A lightweight call à la GAMMA: no scheduler on return (§3.2).
    pub lightweight_call: SimDuration,
    /// IRQ prologue/epilogue: vector dispatch, PIC ack, register save.
    pub irq_entry: SimDuration,
    /// Per-interrupt driver fixed work: status register reads over PCI
    /// (slow I/O), ring bookkeeping, buffer replenish.
    pub driver_irq_fixed: SimDuration,
    /// Per-frame driver fixed work on receive: SK_BUFF allocation and
    /// initialisation (the data move itself is charged at PCI speed).
    pub driver_rx_per_frame: SimDuration,
    /// Per-frame driver work on transmit: descriptor setup, DMA kick.
    pub driver_tx_per_frame: SimDuration,
    /// Dispatching one bottom half.
    pub bh_dispatch: SimDuration,
    /// Waking a blocked process (scheduler + context switch).
    pub context_switch: SimDuration,
    /// CPU memory-copy cost model (user↔kernel staging copies).
    pub copy: CopyModel,
}

impl OsCosts {
    /// The paper's testbed: Linux 2.4-era kernel on a 1.5 GHz PC.
    pub fn era_2002() -> OsCosts {
        OsCosts {
            syscall: SimDuration::from_ns(650),
            lightweight_call: SimDuration::from_ns(200),
            irq_entry: SimDuration::from_ns(3_000),
            driver_irq_fixed: SimDuration::from_ns(8_000),
            driver_rx_per_frame: SimDuration::from_ns(4_000),
            driver_tx_per_frame: SimDuration::from_ns(1_000),
            bh_dispatch: SimDuration::from_ns(500),
            context_switch: SimDuration::from_ns(4_000),
            copy: CopyModel::era_2002(),
        }
    }
}

impl Default for OsCosts {
    fn default() -> Self {
        Self::era_2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scalars_respected() {
        let c = OsCosts::era_2002();
        assert_eq!(c.syscall, SimDuration::from_ns(650));
        assert!(c.lightweight_call < c.syscall);
        assert!(c.bh_dispatch < c.irq_entry);
    }
}
